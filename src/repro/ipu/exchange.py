"""IPU-Exchange fabric model (paper Section 3.1, Fig 3, Observation 1).

The defining property of the exchange is that inter-tile transfer cost
depends on message size but *not* on the physical distance between tiles —
the fabric is a synchronous, compiled, all-to-all crossbar.  The model
therefore costs a transfer as

    ``t(bytes) = (setup_cycles + ceil(bytes / bytes_per_cycle)) / clock``

with no distance term; :func:`repro.experiments.fig3` demonstrates the flat
curves for the paper's neighbouring (0, 1) and distant (0, 644) tile pairs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ipu.machine import IPUSpec

__all__ = ["ExchangeModel", "TransferMeasurement"]


@dataclass(frozen=True)
class TransferMeasurement:
    """One point of a Fig 3 latency/bandwidth sweep."""

    src_tile: int
    dst_tile: int
    n_bytes: int
    latency_s: float

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Achieved bandwidth (bytes / latency)."""
        return self.n_bytes / self.latency_s if self.latency_s > 0 else 0.0


class ExchangeModel:
    """Cost model of the on-chip exchange fabric."""

    def __init__(self, spec: IPUSpec) -> None:
        self.spec = spec

    def _check_tile(self, tile: int) -> None:
        if not 0 <= tile < self.spec.n_tiles:
            raise ValueError(
                f"tile {tile} out of range [0, {self.spec.n_tiles})"
            )

    def transfer_cycles(self, n_bytes: int) -> int:
        """Cycles to move *n_bytes* into one tile (setup + streaming)."""
        if n_bytes < 0:
            raise ValueError(f"n_bytes must be >= 0, got {n_bytes}")
        if n_bytes == 0:
            return 0
        return self.spec.exchange_setup_cycles + math.ceil(
            n_bytes / self.spec.exchange_bytes_per_cycle
        )

    def transfer_time(
        self, n_bytes: int, src_tile: int = 0, dst_tile: int = 1
    ) -> float:
        """Seconds to move *n_bytes* between two tiles.

        ``src_tile``/``dst_tile`` are validated but do not affect the cost:
        that independence *is* Observation 1.
        """
        self._check_tile(src_tile)
        self._check_tile(dst_tile)
        if src_tile == dst_tile:
            # Local copy: no exchange setup, pure SRAM streaming.
            return math.ceil(
                n_bytes / self.spec.exchange_bytes_per_cycle
            ) / self.spec.clock_hz
        return self.transfer_cycles(n_bytes) / self.spec.clock_hz

    def measure(
        self, n_bytes: int, src_tile: int, dst_tile: int
    ) -> TransferMeasurement:
        """Produce a Fig 3 style measurement record."""
        return TransferMeasurement(
            src_tile=src_tile,
            dst_tile=dst_tile,
            n_bytes=n_bytes,
            latency_s=self.transfer_time(n_bytes, src_tile, dst_tile),
        )

    def sweep(
        self, sizes: list[int], src_tile: int, dst_tile: int
    ) -> list[TransferMeasurement]:
        """Latency/bandwidth sweep over message sizes for one tile pair."""
        return [self.measure(s, src_tile, dst_tile) for s in sizes]

    def ecc_scrub_time(self) -> float:
        """Receiver-side cost of detecting an ECC-failed packet.

        Charged once per corrupted exchange before the re-transfer: the
        tile scrubs the parity failure and issues a replay request.  The
        re-transfer itself is charged separately at the normal rate.
        """
        return self.spec.exchange_ecc_retry_cycles / self.spec.clock_hz

    def gather_time(self, bytes_per_tile: dict[int, int]) -> float:
        """Exchange-phase time when several tiles receive concurrently.

        The BSP exchange phase ends when the most-loaded tile has received
        all its data; tiles stream in parallel.
        """
        if not bytes_per_tile:
            return 0.0
        worst = max(bytes_per_tile.values())
        return self.transfer_cycles(worst) / self.spec.clock_hz
