"""Multi-IPU scaling and streaming memory — the paper's future work.

The conclusion of the paper: *"we plan to further investigate … scaling to
multiple IPUs and the use of streaming memory in combination with sparse
methods for scalable learning problems."*  This module models both on top
of the single-IPU simulator:

* **Data-parallel training** across the M2000's four GC200s: each replica
  trains ``batch / n_ipus`` samples, then gradients ring-allreduce over the
  IPU-Link fabric (Table 1: 320 GB/s inter-chip).  Compressed models
  (butterfly: ~30 k parameters) allreduce in microseconds where the dense
  baseline (1 M+ parameters) pays real communication time — the memory
  reduction becomes a *communication* reduction at scale, which is exactly
  why the authors care.
* **Weight streaming** from off-chip DDR (Table 1: 64 GB at 20 GB/s): when
  a model's weights do not fit In-Processor-Memory, they stream in per
  step (and gradients stream back).  This makes oversized dense models
  *runnable but slow*, quantifying the paper's motivation: butterfly-sized
  models stay resident while dense ones hit the 20 GB/s wall.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ipu.machine import GC200, IPUSpec
from repro.ipu.poptorch import IPUModule
from repro.nn.module import Module

__all__ = [
    "IPULinkSpec",
    "M2000",
    "allreduce_time",
    "DataParallelReport",
    "data_parallel_step",
    "StreamingReport",
    "streaming_step",
]


@dataclass(frozen=True)
class IPULinkSpec:
    """An IPU-Machine: several IPUs joined by IPU-Link."""

    name: str
    n_ipus: int
    #: Inter-chip bandwidth per direction, bytes/s (Table 1: 320 GB/s).
    link_bandwidth: float
    #: Per-message link latency, seconds (sync + serialisation).
    link_latency_s: float = 2e-6
    #: Time to detect a dropped link and re-route a collective over the
    #: surviving direction (timeout + topology re-negotiation).
    link_retry_timeout_s: float = 20e-6
    ipu: IPUSpec = GC200


#: The paper's M2000 IPU-Machine: 4 x GC200.
M2000 = IPULinkSpec(
    name="M2000", n_ipus=4, link_bandwidth=320e9, ipu=GC200
)


def allreduce_time(
    machine: IPULinkSpec,
    nbytes: int,
    n_ipus: int | None = None,
    failed_links: int = 0,
) -> float:
    """Ring all-reduce time for *nbytes* of gradients.

    Standard ring cost: ``2 (p - 1) / p`` traversals of the payload over
    the slowest link, plus ``2 (p - 1)`` latency hops.

    ``failed_links=1`` models the recovery path after one IPU-Link
    direction drops: the collective times out
    (``link_retry_timeout_s``), then retries over the surviving
    direction — the broken ring becomes a chain whose end-segments carry
    the traffic of both directions, halving the effective bandwidth of
    the slowest link while the latency hop count is unchanged.  A second
    failed link partitions the ring, so the all-reduce is impossible.
    """
    p = machine.n_ipus if n_ipus is None else n_ipus
    if not 1 <= p <= machine.n_ipus:
        raise ValueError(
            f"n_ipus must be in [1, {machine.n_ipus}], got {p}"
        )
    if nbytes < 0:
        raise ValueError(f"nbytes must be >= 0, got {nbytes}")
    if failed_links < 0:
        raise ValueError(f"failed_links must be >= 0, got {failed_links}")
    if p == 1:
        # A single replica has no ring to partition: any failed-link
        # count is vacuously survivable and the collective is free.
        return 0.0
    if failed_links > 1:
        # Checked before the zero-byte fast path: a partitioned ring is
        # a topology error, not a free all-reduce of nothing.
        raise ValueError(
            f"{failed_links} failed links partition the {p}-IPU ring; "
            "all-reduce is impossible"
        )
    if nbytes == 0:
        return 0.0
    steps = 2 * (p - 1)
    payload = 2 * (p - 1) / p * nbytes
    bandwidth = machine.link_bandwidth
    detect_s = 0.0
    if failed_links == 1:
        bandwidth /= 2.0
        detect_s = machine.link_retry_timeout_s
    return (
        detect_s + steps * machine.link_latency_s + payload / bandwidth
    )


@dataclass(frozen=True)
class DataParallelReport:
    """Cost breakdown of one data-parallel training step."""

    n_ipus: int
    global_batch: int
    compute_s: float
    allreduce_s: float
    single_ipu_s: float
    failed_links: int = 0

    @property
    def step_s(self) -> float:
        return self.compute_s + self.allreduce_s

    @property
    def speedup(self) -> float:
        """Throughput speedup over one IPU at the same global batch."""
        return self.single_ipu_s / self.step_s if self.step_s > 0 else 0.0

    @property
    def scaling_efficiency(self) -> float:
        """Speedup / n_ipus (1.0 = perfect scaling)."""
        return self.speedup / self.n_ipus

    @property
    def communication_fraction(self) -> float:
        """Share of the step spent in the all-reduce."""
        return self.allreduce_s / self.step_s if self.step_s > 0 else 0.0


def data_parallel_step(
    model: Module,
    in_features: int,
    global_batch: int,
    machine: IPULinkSpec = M2000,
    n_ipus: int | None = None,
    failed_links: int = 0,
) -> DataParallelReport:
    """Model one synchronous data-parallel training step.

    Each replica runs ``global_batch / n_ipus`` samples through the
    single-IPU step model, then gradients (one FP32 value per parameter)
    ring-allreduce across the machine.  ``failed_links`` degrades the
    all-reduce (see :func:`allreduce_time`): compute is unaffected, only
    the gradient exchange pays the surviving-direction penalty.
    """
    p = machine.n_ipus if n_ipus is None else n_ipus
    if not 1 <= p <= machine.n_ipus:
        raise ValueError(
            f"n_ipus must be in [1, {machine.n_ipus}], got {p}"
        )
    if global_batch < p:
        raise ValueError(
            f"global batch {global_batch} smaller than replica count {p}"
        )
    local_batch = math.ceil(global_batch / p)
    replica = IPUModule(
        model, in_features=in_features, batch=local_batch, spec=machine.ipu
    )
    compute_s = replica.training_step_time()
    reduce_s = allreduce_time(
        machine, replica.param_bytes, n_ipus=p, failed_links=failed_links
    )
    single = IPUModule(
        model, in_features=in_features, batch=global_batch, spec=machine.ipu
    ).training_step_time()
    return DataParallelReport(
        n_ipus=p,
        global_batch=global_batch,
        compute_s=compute_s,
        allreduce_s=reduce_s,
        single_ipu_s=single,
        failed_links=failed_links,
    )


@dataclass(frozen=True)
class StreamingReport:
    """Cost of running a model with weights streamed from off-chip DDR."""

    param_bytes: int
    resident: bool
    stream_s: float
    compute_s: float

    @property
    def step_s(self) -> float:
        return self.compute_s + self.stream_s

    @property
    def streaming_overhead(self) -> float:
        """Slowdown factor vs the weights-resident step."""
        return self.step_s / self.compute_s if self.compute_s > 0 else 0.0


def streaming_step(
    model: Module,
    in_features: int,
    batch: int,
    spec: IPUSpec = GC200,
    weight_budget_bytes: int | None = None,
) -> StreamingReport:
    """Model one training step with optional weight streaming.

    If the model's parameters fit in *weight_budget_bytes* (default: a
    quarter of In-Processor-Memory, leaving room for activations and code),
    they stay resident and the step equals the normal step.  Otherwise
    weights stream in before the forward pass and gradients stream back
    after the backward pass — ``2 x param_bytes`` over the DDR link per
    step, the paper's streaming-memory trade.
    """
    module = IPUModule(model, in_features=in_features, batch=batch, spec=spec)
    budget = (
        spec.total_memory_bytes // 4
        if weight_budget_bytes is None
        else weight_budget_bytes
    )
    compute_s = module.training_step_time()
    resident = module.param_bytes <= budget
    stream_s = 0.0
    if not resident:
        stream_s = 2.0 * module.param_bytes / spec.effective_host_bandwidth
    return StreamingReport(
        param_bytes=module.param_bytes,
        resident=resident,
        stream_s=stream_s,
        compute_s=compute_s,
    )
