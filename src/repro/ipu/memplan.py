"""Liveness-driven memory planner: compile-time buffer reuse.

Real Poplar reclaims the storage of dead temporaries; the base compiler
charges every variable as always-live.  This module closes that gap: it
takes the live intervals from :func:`repro.ipu.liveness.compute_liveness`
and packs variables into shared tile-memory *slots* with a linear scan —
intervals sorted by start step, greedy first-fit into the earliest
compatible freed slot.  The planned per-tile footprint replaces the
no-reuse one when :func:`repro.ipu.compiler.compile_graph` is called with
``plan_memory=True``.

Soundness rules (why aliasing cannot corrupt numerics)
------------------------------------------------------
A variable may *reuse* a slot (become a non-first occupant) only if all
of the following hold, so that no program step can observe the previous
occupant's bytes through it:

1. it is not ``upward_exposed`` (never read before its first def — an
   upward-exposed variable must hold external data from program start);
2. its first def is ``fully_defined`` (writes every element, so no read
   mixes fresh and stale data);
3. its first def strictly precedes its first use (``def_before_use`` —
   nothing reads it during the step that initialises it).

A slot is reusable only *strictly after* its current occupant's last use
(``free_after < start``), so producer and consumer of the same step never
share storage.  Slots are layout classes: two variables share a slot only
if they have the same ``(home_tile, tile_span)`` placement, which keeps
the per-tile accounting exact.  Never-written variables (weights, inputs)
are pinned to dedicated slots that never free.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ipu.graph import Graph
from repro.ipu.liveness import LivenessReport, compute_liveness
from repro.utils import format_bytes

__all__ = ["MemorySlot", "MemoryPlan", "plan_memory"]


@dataclass(frozen=True)
class MemorySlot:
    """One reusable arena: storage shared by non-overlapping variables."""

    index: int
    home_tile: int
    tile_span: int
    #: Slot capacity: the largest member footprint, in bytes / elements.
    nbytes: int
    n_elements: int
    #: Occupants in program order; members[0] founded the slot.
    members: tuple[str, ...]
    #: Pinned slots (always-live occupants) are never reused.
    pinned: bool = False

    @property
    def shared(self) -> bool:
        return len(self.members) > 1


@dataclass
class MemoryPlan:
    """Slot assignment for every variable of one graph."""

    slots: list[MemorySlot]
    #: variable name -> slot index.
    assignment: dict[str, int]
    #: Planned variable bytes per tile (slot capacities, spread evenly).
    per_tile_bytes: np.ndarray
    #: The no-reuse footprint per tile (every variable charged fully).
    no_reuse_per_tile_bytes: np.ndarray

    @property
    def planned_variable_bytes(self) -> int:
        return sum(slot.nbytes for slot in self.slots)

    @property
    def no_reuse_variable_bytes(self) -> int:
        return int(round(self.no_reuse_per_tile_bytes.sum()))

    @property
    def reclaimed_bytes(self) -> int:
        return self.no_reuse_variable_bytes - self.planned_variable_bytes

    @property
    def reuse_fraction(self) -> float:
        """Fraction of the no-reuse variable footprint reclaimed."""
        total = self.no_reuse_variable_bytes
        if total == 0:
            return 0.0
        return self.reclaimed_bytes / total

    @property
    def n_slots(self) -> int:
        return len(self.slots)

    @property
    def n_shared_slots(self) -> int:
        return sum(1 for slot in self.slots if slot.shared)

    def reused_variables(self) -> set[str]:
        """Variables that are non-first occupants of a shared slot.

        Their pre-def contents are unobservable by construction, so the
        executor skips seeding them from host inputs.
        """
        return {
            name
            for slot in self.slots
            for name in slot.members[1:]
        }

    def surviving_variables(self) -> set[str]:
        """The last occupant of every slot: its bytes outlive the program."""
        return {slot.members[-1] for slot in self.slots}

    def __str__(self) -> str:
        return (
            f"MemoryPlan({self.n_slots} slots for "
            f"{len(self.assignment)} variables, "
            f"{self.n_shared_slots} shared, planned="
            f"{format_bytes(self.planned_variable_bytes)} vs no-reuse="
            f"{format_bytes(self.no_reuse_variable_bytes)}, "
            f"reclaimed {self.reuse_fraction:.0%})"
        )


@dataclass
class _OpenSlot:
    """Mutable slot record during the linear scan."""

    index: int
    home_tile: int
    tile_span: int
    nbytes: int
    n_elements: int
    members: list[str] = field(default_factory=list)
    #: Last step at which the current occupant may be read.
    free_after: int = -1
    pinned: bool = False


def plan_memory(
    graph: Graph, liveness: LivenessReport | None = None
) -> MemoryPlan:
    """Assign every variable of *graph* to a (possibly shared) slot.

    Deterministic: intervals are processed in ``(start, -nbytes, name)``
    order and slots are scanned first-fit in creation order, so the same
    graph always yields the same plan.
    """
    report = liveness if liveness is not None else compute_liveness(graph)
    n_tiles = graph.n_tiles
    open_slots: list[_OpenSlot] = []
    by_class: dict[tuple[int, int], list[_OpenSlot]] = {}
    assignment: dict[str, int] = {}

    def new_slot(iv, n_elements: int, pinned: bool) -> _OpenSlot:
        slot = _OpenSlot(
            index=len(open_slots),
            home_tile=iv.home_tile,
            tile_span=iv.tile_span,
            nbytes=iv.nbytes,
            n_elements=n_elements,
            members=[iv.var],
            free_after=iv.end,
            pinned=pinned,
        )
        open_slots.append(slot)
        by_class.setdefault((iv.home_tile, iv.tile_span), []).append(slot)
        assignment[iv.var] = slot.index
        return slot

    # Never-written variables hold live data for the whole program: one
    # dedicated slot each, never offered for reuse.
    for iv in report.always_live:
        new_slot(iv, graph.variables[iv.var].n_elements, pinned=True)

    order = sorted(
        report.intervals, key=lambda iv: (iv.start, -iv.nbytes, iv.var)
    )
    for iv in order:
        n_elements = graph.variables[iv.var].n_elements
        reusable = (
            not iv.upward_exposed
            and iv.fully_defined
            and iv.def_before_use
        )
        placed = None
        if reusable:
            for slot in by_class.get((iv.home_tile, iv.tile_span), ()):
                if not slot.pinned and slot.free_after < iv.start:
                    placed = slot
                    break
        if placed is None:
            new_slot(iv, n_elements, pinned=False)
        else:
            placed.nbytes = max(placed.nbytes, iv.nbytes)
            placed.n_elements = max(placed.n_elements, n_elements)
            placed.members.append(iv.var)
            placed.free_after = max(placed.free_after, iv.end)
            assignment[iv.var] = placed.index

    per_tile = np.zeros(n_tiles)
    for slot in open_slots:
        share = slot.nbytes / slot.tile_span
        per_tile[slot.home_tile : slot.home_tile + slot.tile_span] += share

    no_reuse = np.zeros(n_tiles)
    for var in graph.variables.values():
        share = var.total_bytes / var.tile_span
        no_reuse[var.home_tile : var.home_tile + var.tile_span] += share

    slots = [
        MemorySlot(
            index=s.index,
            home_tile=s.home_tile,
            tile_span=s.tile_span,
            nbytes=s.nbytes,
            n_elements=s.n_elements,
            members=tuple(s.members),
            pinned=s.pinned,
        )
        for s in open_slots
    ]
    return MemoryPlan(
        slots=slots,
        assignment=assignment,
        per_tile_bytes=per_tile,
        no_reuse_per_tile_bytes=no_reuse,
    )
