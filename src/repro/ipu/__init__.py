"""Tile-level IPU simulator (Graphcore GC200 stand-in).

Substitutes for the paper's hardware: a BSP machine model
(:mod:`repro.ipu.machine`), the distance-free exchange fabric
(:mod:`repro.ipu.exchange`), a Poplar-like dataflow graph
(:mod:`repro.ipu.graph`) with codelets (:mod:`repro.ipu.vertices`), a
compiler that accounts tile memory structurally (:mod:`repro.ipu.compiler`),
a BSP executor (:mod:`repro.ipu.executor`), poplin/popsparse planners, a
PopVision-style profiler, and a PopTorch-style bridge for
:mod:`repro.nn` models (:mod:`repro.ipu.poptorch`).
"""

from repro.ipu.machine import IPUSpec, GC200, GC2
from repro.ipu.exchange import ExchangeModel, TransferMeasurement
from repro.ipu.graph import Graph, Variable, Vertex, Edge, ComputeSet
from repro.ipu.compiler import (
    compile_graph,
    CompiledGraph,
    MemoryReport,
    GraphProfile,
    IPUOutOfMemoryError,
)
from repro.ipu.memplan import MemoryPlan, MemorySlot, plan_memory
from repro.ipu.executor import Executor, ExecutionReport, StepTiming
from repro.ipu.poplin import (
    MatMulPlan,
    choose_grid,
    emit_matmul,
    build_matmul_graph,
    build_blocked_matmul_graph,
    matmul_report,
    poptorch_matmul_report,
)
from repro.ipu.popsparse import build_spmm_graph, spmm_report
from repro.ipu.profiler import (
    ProfilePoint,
    profile_graph,
    sweep_profiles,
    render_profile_table,
)
from repro.ipu.poptorch import IPUModule, lower_model
from repro.ipu.multi import (
    IPULinkSpec,
    M2000,
    allreduce_time,
    DataParallelReport,
    data_parallel_step,
    StreamingReport,
    streaming_step,
)

__all__ = [
    "IPUSpec",
    "GC200",
    "GC2",
    "ExchangeModel",
    "TransferMeasurement",
    "Graph",
    "Variable",
    "Vertex",
    "Edge",
    "ComputeSet",
    "compile_graph",
    "CompiledGraph",
    "MemoryReport",
    "GraphProfile",
    "IPUOutOfMemoryError",
    "MemoryPlan",
    "MemorySlot",
    "plan_memory",
    "Executor",
    "ExecutionReport",
    "StepTiming",
    "MatMulPlan",
    "choose_grid",
    "emit_matmul",
    "build_matmul_graph",
    "build_blocked_matmul_graph",
    "matmul_report",
    "poptorch_matmul_report",
    "build_spmm_graph",
    "spmm_report",
    "ProfilePoint",
    "profile_graph",
    "sweep_profiles",
    "render_profile_table",
    "IPUModule",
    "lower_model",
    "IPULinkSpec",
    "M2000",
    "allreduce_time",
    "DataParallelReport",
    "data_parallel_step",
    "StreamingReport",
    "streaming_step",
]
