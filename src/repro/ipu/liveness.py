"""Variable liveness analysis for compiled IPU graphs.

The base compiler (:mod:`repro.ipu.compiler`) charges every variable as
always-live — a safe over-approximation.  Real Poplar reuses the storage of
dead temporaries, which matters for layer pipelines whose staging buffers
live for one superstep each.  This module computes per-program-step live
sets from def/use positions and reports the *peak* live footprint, giving a
tighter memory bound and a way to quantify how much reuse is on the table.

Definitions
-----------
A variable is *defined* at a step that writes it (a vertex output edge, a
copy destination, a host write) and *used* at a step that reads it (vertex
input, copy source, host read).  Its live interval spans first definition to
last use.  Variables never written inside the program (weights, inputs fed
via :meth:`Executor.run`) are conservatively live for the whole program.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ipu.graph import Graph
from repro.utils import format_bytes

__all__ = ["LiveInterval", "LivenessReport", "compute_liveness"]


@dataclass(frozen=True)
class LiveInterval:
    """Live range of one variable in program-step indices (inclusive)."""

    var: str
    start: int
    end: int
    nbytes: int

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    def live_at(self, step: int) -> bool:
        return self.start <= step <= self.end


@dataclass
class LivenessReport:
    """Per-step live bytes and the peak footprint."""

    intervals: list[LiveInterval]
    per_step_bytes: np.ndarray
    always_live_bytes: int

    @property
    def n_steps(self) -> int:
        return len(self.per_step_bytes)

    @property
    def peak_bytes(self) -> float:
        """Largest simultaneous live footprint over the program."""
        if len(self.per_step_bytes) == 0:
            return float(self.always_live_bytes)
        return float(self.per_step_bytes.max())

    @property
    def peak_step(self) -> int:
        """Program step where the peak occurs."""
        if len(self.per_step_bytes) == 0:
            return 0
        return int(self.per_step_bytes.argmax())

    @property
    def total_bytes(self) -> int:
        """Sum of all variable sizes (the no-reuse upper bound)."""
        return self.always_live_bytes + sum(
            iv.nbytes for iv in self.intervals
        )

    @property
    def reuse_saving(self) -> float:
        """Fraction of the no-reuse footprint that liveness reclaims."""
        total = self.total_bytes
        if total == 0:
            return 0.0
        return 1.0 - self.peak_bytes / total

    def __str__(self) -> str:
        return (
            f"LivenessReport(peak={format_bytes(self.peak_bytes)} at step "
            f"{self.peak_step}/{self.n_steps}, no-reuse total="
            f"{format_bytes(self.total_bytes)}, saving="
            f"{self.reuse_saving:.0%})"
        )


def compute_liveness(graph: Graph) -> LivenessReport:
    """Compute variable live ranges over *graph*'s program order."""
    n_steps = len(graph.program)
    first_def: dict[str, int] = {}
    last_use: dict[str, int] = {}

    def note_def(var: str, step: int) -> None:
        if var not in first_def:
            first_def[var] = step
        last_use[var] = max(last_use.get(var, step), step)

    def note_use(var: str, step: int) -> None:
        last_use[var] = max(last_use.get(var, step), step)

    for step_idx, step in enumerate(graph.program):
        if step.kind == "compute":
            cs = graph.compute_sets[step.ref]
            for vertex in graph.vertices_in(cs):
                for edge in vertex.inputs:
                    note_use(edge.var, step_idx)
                for edge in vertex.outputs:
                    note_def(edge.var, step_idx)
        elif step.kind == "copy":
            src, dst = step.ref
            note_use(src, step_idx)
            note_def(dst, step_idx)
        elif step.kind == "host_write":
            note_def(step.ref, step_idx)
        elif step.kind == "host_read":
            note_use(step.ref, step_idx)

    intervals: list[LiveInterval] = []
    always_live = 0
    for name, var in graph.variables.items():
        if name not in first_def:
            # Never written inside the program: an external input or a
            # parameter — conservatively live throughout.
            always_live += var.total_bytes
            continue
        start = first_def[name]
        end = last_use.get(name, start)
        intervals.append(
            LiveInterval(
                var=name, start=start, end=end, nbytes=var.total_bytes
            )
        )

    per_step = np.full(n_steps, float(always_live))
    for iv in intervals:
        per_step[iv.start : iv.end + 1] += iv.nbytes
    return LivenessReport(
        intervals=intervals,
        per_step_bytes=per_step,
        always_live_bytes=always_live,
    )
