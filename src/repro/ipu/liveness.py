"""Variable liveness analysis for compiled IPU graphs.

The base compiler (:mod:`repro.ipu.compiler`) charges every variable as
always-live — a safe over-approximation.  Real Poplar reuses the storage of
dead temporaries, which matters for layer pipelines whose staging buffers
live for one superstep each.  This module computes per-program-step live
sets from def/use positions and reports the *peak* live footprint, giving a
tighter memory bound and a way to quantify how much reuse is on the table.
The memory planner (:mod:`repro.ipu.memplan`) turns these intervals into
actual slot assignments.

Definitions
-----------
A variable is *defined* at a step that writes it (a vertex output edge, a
copy destination, a host write) and *used* at a step that reads it (vertex
input, copy source, host read).  Its live interval spans first definition to
last use.  Variables never written inside the program (weights, inputs fed
via :meth:`Executor.run`) are conservatively live for the whole program.

A variable *used before its first in-program def* must hold externally
supplied data at program start, so its interval starts at step 0 — not at
the first def — and it is flagged ``upward_exposed``.  The planner never
places such a variable into a reused slot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ipu.graph import Graph
from repro.utils import format_bytes

__all__ = ["LiveInterval", "LivenessReport", "compute_liveness"]


@dataclass(frozen=True)
class LiveInterval:
    """Live range of one variable in program-step indices (inclusive)."""

    var: str
    start: int
    end: int
    nbytes: int
    #: Read before its first in-program def: holds external data at step 0.
    upward_exposed: bool = False
    #: First def writes every element (safe to read nothing older).
    fully_defined: bool = True
    #: First def strictly precedes the first use (or the var is never
    #: read) — no step observes pre-def contents.
    def_before_use: bool = True
    home_tile: int = 0
    tile_span: int = 1

    @property
    def length(self) -> int:
        return self.end - self.start + 1

    def live_at(self, step: int) -> bool:
        return self.start <= step <= self.end


@dataclass
class LivenessReport:
    """Per-step live bytes and the peak footprint."""

    intervals: list[LiveInterval]
    per_step_bytes: np.ndarray
    always_live_bytes: int
    #: Intervals for never-written variables (live for the whole program).
    always_live: list[LiveInterval] = field(default_factory=list)
    #: Peak live bytes per tile over all steps (None if not computed).
    per_tile_peak_bytes: np.ndarray | None = None

    @property
    def n_steps(self) -> int:
        return len(self.per_step_bytes)

    @property
    def peak_bytes(self) -> float:
        """Largest simultaneous live footprint over the program."""
        if len(self.per_step_bytes) == 0:
            return float(self.always_live_bytes)
        return float(self.per_step_bytes.max())

    @property
    def peak_step(self) -> int:
        """Program step where the peak occurs."""
        if len(self.per_step_bytes) == 0:
            return 0
        return int(self.per_step_bytes.argmax())

    @property
    def total_bytes(self) -> int:
        """Sum of all variable sizes (the no-reuse upper bound)."""
        return self.always_live_bytes + sum(
            iv.nbytes for iv in self.intervals
        )

    @property
    def peak_tile_bytes(self) -> float:
        """Largest per-tile peak (0.0 when per-tile data was not computed)."""
        if self.per_tile_peak_bytes is None or not len(
            self.per_tile_peak_bytes
        ):
            return 0.0
        return float(self.per_tile_peak_bytes.max())

    @property
    def reuse_saving(self) -> float:
        """Fraction of the no-reuse footprint that liveness reclaims."""
        total = self.total_bytes
        if total == 0:
            return 0.0
        return 1.0 - self.peak_bytes / total

    def __str__(self) -> str:
        return (
            f"LivenessReport(peak={format_bytes(self.peak_bytes)} at step "
            f"{self.peak_step}/{self.n_steps}, no-reuse total="
            f"{format_bytes(self.total_bytes)}, saving="
            f"{self.reuse_saving:.0%})"
        )


def _first_def_coverage(graph: Graph) -> dict[str, int]:
    """Elements written to each variable at its first defining step."""
    first_def_step: dict[str, int] = {}
    coverage: dict[str, int] = {}
    for step_idx, step in enumerate(graph.program):
        if step.kind == "compute":
            cs = graph.compute_sets[step.ref]
            for vertex in graph.vertices_in(cs):
                for edge in vertex.outputs:
                    if edge.var not in first_def_step:
                        first_def_step[edge.var] = step_idx
                        coverage[edge.var] = 0
                    if first_def_step[edge.var] == step_idx:
                        coverage[edge.var] += edge.n_elements
        elif step.kind == "copy":
            _, dst = step.ref
            if dst not in first_def_step:
                first_def_step[dst] = step_idx
                coverage[dst] = graph.variables[dst].n_elements
        elif step.kind == "host_write":
            if step.ref not in first_def_step:
                first_def_step[step.ref] = step_idx
                coverage[step.ref] = graph.variables[step.ref].n_elements
    return coverage


def compute_liveness(graph: Graph) -> LivenessReport:
    """Compute variable live ranges over *graph*'s program order."""
    n_steps = len(graph.program)
    first_def: dict[str, int] = {}
    first_use: dict[str, int] = {}
    last_use: dict[str, int] = {}

    def note_def(var: str, step: int) -> None:
        if var not in first_def:
            first_def[var] = step
        last_use[var] = max(last_use.get(var, step), step)

    def note_use(var: str, step: int) -> None:
        if var not in first_use:
            first_use[var] = step
        last_use[var] = max(last_use.get(var, step), step)

    for step_idx, step in enumerate(graph.program):
        if step.kind == "compute":
            cs = graph.compute_sets[step.ref]
            for vertex in graph.vertices_in(cs):
                for edge in vertex.inputs:
                    note_use(edge.var, step_idx)
                for edge in vertex.outputs:
                    note_def(edge.var, step_idx)
        elif step.kind == "copy":
            src, dst = step.ref
            note_use(src, step_idx)
            note_def(dst, step_idx)
        elif step.kind == "host_write":
            note_def(step.ref, step_idx)
        elif step.kind == "host_read":
            note_use(step.ref, step_idx)

    coverage = _first_def_coverage(graph)
    intervals: list[LiveInterval] = []
    always_live_ivs: list[LiveInterval] = []
    always_live = 0
    last_step = max(n_steps - 1, 0)
    for name, var in graph.variables.items():
        if name not in first_def:
            # Never written inside the program: an external input or a
            # parameter — conservatively live throughout.
            always_live += var.total_bytes
            always_live_ivs.append(
                LiveInterval(
                    var=name,
                    start=0,
                    end=last_step,
                    nbytes=var.total_bytes,
                    upward_exposed=True,
                    fully_defined=False,
                    def_before_use=False,
                    home_tile=var.home_tile,
                    tile_span=var.tile_span,
                )
            )
            continue
        upward_exposed = first_use.get(name, n_steps) < first_def[name]
        # Used before its first def: it must already hold external data,
        # so the footprint exists from program start.
        start = 0 if upward_exposed else first_def[name]
        end = last_use.get(name, first_def[name])
        intervals.append(
            LiveInterval(
                var=name,
                start=start,
                end=end,
                nbytes=var.total_bytes,
                upward_exposed=upward_exposed,
                fully_defined=coverage.get(name, 0) >= var.n_elements,
                def_before_use=first_use.get(name, n_steps + 1)
                > first_def[name],
                home_tile=var.home_tile,
                tile_span=var.tile_span,
            )
        )

    per_step = np.full(n_steps, float(always_live))
    for iv in intervals:
        per_step[iv.start : iv.end + 1] += iv.nbytes

    # Per-tile peaks via a 2D difference array over (step, tile): each
    # interval spreads nbytes/tile_span uniformly over its tile range.
    n_tiles = graph.n_tiles
    rows = max(n_steps, 1)
    diff = np.zeros((rows + 1, n_tiles + 1))
    for iv in intervals + always_live_ivs:
        share = iv.nbytes / iv.tile_span
        t0, t1 = iv.home_tile, iv.home_tile + iv.tile_span
        diff[iv.start, t0] += share
        diff[iv.start, t1] -= share
        diff[iv.end + 1, t0] -= share
        diff[iv.end + 1, t1] += share
    grid = diff.cumsum(axis=0).cumsum(axis=1)[:rows, :n_tiles]
    per_tile_peak = grid.max(axis=0) if rows else np.zeros(n_tiles)

    return LivenessReport(
        intervals=intervals,
        per_step_bytes=per_step,
        always_live_bytes=always_live,
        always_live=always_live_ivs,
        per_tile_peak_bytes=per_tile_peak,
    )
