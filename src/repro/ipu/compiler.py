"""Graph compilation: tile memory accounting and fit checking.

This is where the paper's Observation 3 lives: *"overall memory usage for
the IPU does not only depend on the problem size … there are additional
effects"*.  Compiling a graph charges each tile for

* its share of every variable's data,
* per-vertex descriptor state,
* per-edge exchange/copy code,
* per-compute-set control code (on every participating tile),
* per-codelet-type code, and
* exchange receive buffers sized by the heaviest superstep.

All but the first grow with graph *structure* (vertices, edges, compute
sets) rather than tensor footprint — reproducing Fig 5's super-linear
memory curves and the OOM that stops ``torch.nn.Linear`` before butterfly
in Fig 6.
"""

from __future__ import annotations

import hashlib
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.cache import (
    NULL_CACHE,
    CacheRecord,
    CompilationCache,
    canonical_key,
    dataclass_key,
    get_cache,
)
from repro.ipu.graph import Graph
from repro.ipu.machine import IPUSpec
from repro.ipu.memplan import MemoryPlan, plan_memory as _plan_memory
from repro.obs import get_logger, get_registry, get_tracer
from repro.obs.metrics import DEFAULT_BYTES_EDGES
from repro.utils import format_bytes

__all__ = [
    "IPUOutOfMemoryError",
    "MemoryBreakdown",
    "MemoryReport",
    "GraphProfile",
    "GraphSummary",
    "CompiledGraph",
    "compile_graph",
    "cached_compile",
    "compile_cache_key",
    "graph_fingerprint",
]


class IPUOutOfMemoryError(RuntimeError):
    """Raised when a compiled graph exceeds some tile's memory."""


@dataclass(frozen=True)
class MemoryBreakdown:
    """Aggregate bytes by category (summed over all tiles)."""

    variables: float
    vertex_state: float
    edge_code: float
    control_code: float
    codelet_code: float
    exchange_buffers: float

    @property
    def total(self) -> float:
        return (
            self.variables
            + self.vertex_state
            + self.edge_code
            + self.control_code
            + self.codelet_code
            + self.exchange_buffers
        )

    @property
    def overhead(self) -> float:
        """Everything that is not raw tensor data."""
        return self.total - self.variables

    @property
    def overhead_fraction(self) -> float:
        """Overhead / total (0 when the graph is empty)."""
        return self.overhead / self.total if self.total > 0 else 0.0


@dataclass
class MemoryReport:
    """Per-tile memory map plus totals for one compiled graph.

    For a planned compile (``compile_graph(..., plan_memory=True)``)
    ``per_tile_bytes`` is the *planned* footprint — variables charged at
    their shared-slot capacities — and ``no_reuse_per_tile_bytes`` keeps
    the footprint the same graph would have without buffer reuse, so the
    reclaimed headroom is always inspectable.  ``fits``/``check_fit``
    therefore gate on the planned peak.
    """

    spec: IPUSpec
    per_tile_bytes: np.ndarray
    breakdown: MemoryBreakdown
    #: Per-tile footprint without buffer reuse (None for unplanned
    #: compiles, where ``per_tile_bytes`` *is* the no-reuse footprint).
    no_reuse_per_tile_bytes: np.ndarray | None = None

    @property
    def planned(self) -> bool:
        """True when this report came from a planned compile."""
        return self.no_reuse_per_tile_bytes is not None

    @property
    def peak_planned_bytes(self) -> float:
        """Peak tile bytes under the memory plan (== peak when planned)."""
        return self.peak_tile_bytes

    @property
    def no_reuse_peak_tile_bytes(self) -> float:
        """Peak tile bytes without buffer reuse."""
        if self.no_reuse_per_tile_bytes is None:
            return self.peak_tile_bytes
        if not len(self.no_reuse_per_tile_bytes):
            return 0.0
        return float(self.no_reuse_per_tile_bytes.max())

    @property
    def plan_saving_bytes(self) -> float:
        """Peak-tile bytes reclaimed by the planner (0 when unplanned)."""
        return self.no_reuse_peak_tile_bytes - self.peak_tile_bytes

    @property
    def plan_saving_fraction(self) -> float:
        """Reclaimed fraction of the no-reuse peak (0 when unplanned)."""
        no_reuse = self.no_reuse_peak_tile_bytes
        if no_reuse <= 0:
            return 0.0
        return self.plan_saving_bytes / no_reuse

    @property
    def total_bytes(self) -> float:
        return float(self.per_tile_bytes.sum())

    @property
    def peak_tile_bytes(self) -> float:
        return float(self.per_tile_bytes.max()) if len(
            self.per_tile_bytes
        ) else 0.0

    @property
    def free_bytes(self) -> float:
        """Remaining usable memory across the device (>= 0 per tile)."""
        usable = self.spec.usable_tile_memory
        return float(np.maximum(usable - self.per_tile_bytes, 0).sum())

    @property
    def fits(self) -> bool:
        """True iff every tile fits in its usable memory."""
        return bool(
            (self.per_tile_bytes <= self.spec.usable_tile_memory).all()
        )

    def over_capacity_tiles(self) -> np.ndarray:
        """Tile indices exceeding usable memory."""
        return np.flatnonzero(
            self.per_tile_bytes > self.spec.usable_tile_memory
        )

    def __str__(self) -> str:
        b = self.breakdown
        planned = (
            f", planned saving={format_bytes(self.plan_saving_bytes)} "
            f"[{self.plan_saving_fraction:.0%} of no-reuse peak "
            f"{format_bytes(self.no_reuse_peak_tile_bytes)}]"
            if self.planned
            else ""
        )
        return (
            f"MemoryReport(total={format_bytes(self.total_bytes)}, "
            f"peak tile={format_bytes(self.peak_tile_bytes)}, "
            f"free={format_bytes(self.free_bytes)}, "
            f"variables={format_bytes(b.variables)}, "
            f"overhead={format_bytes(b.overhead)} "
            f"[{b.overhead_fraction:.0%}]{planned})"
        )


@dataclass(frozen=True)
class GraphProfile:
    """The Fig 5 / Fig 7 quantities for one graph."""

    n_variables: int
    n_vertices: int
    n_edges: int
    n_compute_sets: int
    variable_bytes: int
    total_bytes: float
    free_bytes: float
    fits: bool
    #: Peak per-tile footprint (planned footprint for planned compiles).
    peak_tile_bytes: float = 0.0
    #: Peak per-tile footprint without buffer reuse.
    no_reuse_peak_tile_bytes: float = 0.0
    #: True when the compile ran the memory planner.
    planned: bool = False

    @property
    def plan_saving_fraction(self) -> float:
        """Reclaimed fraction of the no-reuse peak (0 when unplanned)."""
        if self.no_reuse_peak_tile_bytes <= 0:
            return 0.0
        return (
            self.no_reuse_peak_tile_bytes - self.peak_tile_bytes
        ) / self.no_reuse_peak_tile_bytes


@dataclass(frozen=True)
class GraphSummary:
    """Structural statistics standing in for a :class:`Graph`.

    A warm :func:`cached_compile` hit skips graph *construction*
    entirely, so there is no ``Graph`` object to attach — the summary
    (persisted in the cache record) carries exactly the fields
    :meth:`CompiledGraph.profile` needs.  Anything that must execute the
    program (:class:`~repro.ipu.executor.Executor`) needs a real graph;
    use :func:`compile_graph` directly for that.
    """

    name: str
    n_tiles: int
    n_variables: int
    n_vertices: int
    n_edges: int
    n_compute_sets: int
    total_variable_bytes: int

    def variable_bytes(self) -> int:
        return self.total_variable_bytes


@dataclass
class CompiledGraph:
    """A graph plus its compilation artefacts.

    ``excluded_tiles``/``tile_map`` record a degraded compilation: when
    tiles are excluded (permanent tile failures), every logical tile of
    the graph is folded onto a surviving physical tile and ``tile_map``
    holds that logical -> physical mapping (``None`` for a healthy
    compile, where the mapping is the identity).

    ``graph`` is usually the real :class:`Graph`; a warm
    :func:`cached_compile` hit substitutes a :class:`GraphSummary`
    (enough for :meth:`profile`, not for execution).
    """

    graph: Graph | GraphSummary
    spec: IPUSpec
    memory: MemoryReport
    per_cs_tiles: list[set[int]] = field(default_factory=list)
    excluded_tiles: frozenset[int] = frozenset()
    tile_map: np.ndarray | None = None
    #: Slot assignment when compiled with ``plan_memory=True`` (None for
    #: unplanned compiles and for planned cache hits, where
    #: :meth:`memory_plan` recomputes it deterministically on demand).
    plan: MemoryPlan | None = None

    @property
    def n_surviving_tiles(self) -> int:
        return self.spec.n_tiles - len(self.excluded_tiles)

    def memory_plan(self) -> MemoryPlan | None:
        """The memory plan of a planned compile, recomputed if needed.

        A planned cache hit carries the planned *footprint* but not the
        slot assignment; planning is deterministic, so it is recomputed
        from the real graph here.  Returns ``None`` for unplanned
        compiles and for warm hits that only have a
        :class:`GraphSummary`.
        """
        if self.plan is not None:
            return self.plan
        if not self.memory.planned or not isinstance(self.graph, Graph):
            return None
        self.plan = _plan_memory(self.graph)
        return self.plan

    def physical_tile(self, logical_tile: int) -> int:
        """Physical tile a logical (graph) tile was placed on."""
        if self.tile_map is None:
            return logical_tile
        return int(self.tile_map[logical_tile])

    def profile(self) -> GraphProfile:
        """Summarise into the Fig 5 quantities."""
        g = self.graph
        return GraphProfile(
            n_variables=g.n_variables,
            n_vertices=g.n_vertices,
            n_edges=g.n_edges,
            n_compute_sets=g.n_compute_sets,
            variable_bytes=g.variable_bytes(),
            total_bytes=self.memory.total_bytes,
            free_bytes=self.memory.free_bytes,
            fits=self.memory.fits,
            peak_tile_bytes=self.memory.peak_tile_bytes,
            no_reuse_peak_tile_bytes=self.memory.no_reuse_peak_tile_bytes,
            planned=self.memory.planned,
        )


def _tile_fold_map(
    n_tiles: int, excluded: frozenset[int]
) -> np.ndarray:
    """Logical -> physical mapping folding work off excluded tiles.

    Logical tiles are assigned round-robin over the surviving tiles, so a
    degraded device carries ``n_tiles / n_surviving`` logical tiles per
    physical tile.  Placement does not affect exchange cost (Observation
    1: the fabric is distance-free), only per-tile memory and the
    serialised compute of co-located logical tiles.
    """
    surviving = np.array(
        [t for t in range(n_tiles) if t not in excluded], dtype=np.int64
    )
    return surviving[np.arange(n_tiles) % len(surviving)]


# -- content addressing --------------------------------------------------------


def graph_fingerprint(graph: Graph) -> str:
    """Structural hash of everything the memory accounting reads.

    Covers tile count, every variable's layout, every vertex (codelet,
    tile, edge endpoints/sizes/locality, params), compute-set membership
    and the program — but *not* the graph's display name, so two
    identically-built graphs hash equal regardless of labelling.  The
    full walk costs O(graph); builders that can name their output
    cheaply attach ``graph.provenance`` instead (see
    :func:`compile_cache_key`).
    """
    h = hashlib.blake2b(digest_size=16)
    h.update(f"tiles|{graph.n_tiles}\n".encode())
    for name in sorted(graph.variables):
        v = graph.variables[name]
        h.update(
            f"V|{name}|{v.shape}|{v.element_bytes}"
            f"|{v.home_tile}|{v.tile_span}\n".encode()
        )
    for vertex in graph.vertices:
        parts = [f"X|{vertex.codelet}|{vertex.tile}"]
        for edge in vertex.inputs:
            parts.append(f"i|{edge.var}|{edge.n_elements}|{int(edge.local)}")
        for edge in vertex.outputs:
            parts.append(f"o|{edge.var}|{edge.n_elements}|{int(edge.local)}")
        parts.append(f"p|{sorted(vertex.params.items())}")
        h.update(("|".join(parts) + "\n").encode())
    for cs in graph.compute_sets:
        ids = ",".join(str(vid) for vid in cs.vertex_ids)
        h.update(f"C|{cs.name}|{ids}\n".encode())
    for step in graph.program:
        h.update(f"P|{step.kind}|{step.ref}\n".encode())
    return h.hexdigest()


def _identity_parts(graph: Graph) -> tuple:
    provenance = getattr(graph, "provenance", None)
    if provenance is not None:
        return ("provenance",) + tuple(provenance)
    return ("fingerprint", graph_fingerprint(graph))


def _key_from_parts(
    identity: tuple,
    spec: IPUSpec,
    excluded: frozenset[int],
    planned: bool = False,
) -> str:
    parts = [
        identity,
        dataclass_key(spec),
        ("exclude",) + tuple(sorted(excluded)),
    ]
    if planned:
        # Unplanned keys stay byte-identical to earlier cache versions;
        # planned compiles get their own namespace.
        parts.append(("plan", "linear-scan-v1"))
    return canonical_key(*parts)


def compile_cache_key(
    graph: Graph,
    spec: IPUSpec,
    exclude_tiles: "frozenset[int] | set[int] | None" = None,
    plan_memory: bool = False,
) -> str:
    """The content-addressed cache key of one ``compile_graph`` call.

    Combines the graph's identity — its ``provenance`` tuple when a
    builder attached one, else the full structural
    :func:`graph_fingerprint` — with **every** :class:`IPUSpec` field,
    the sorted excluded-tile set, and (for planned compiles) the memory
    planner version.  ``check_fit`` is deliberately not part of the key:
    it changes only whether an OOM report raises, never the computed
    artefacts.  ``plan_memory`` *is* part of it: a planned compile
    produces a different per-tile footprint.
    """
    excluded = frozenset(int(t) for t in (exclude_tiles or ()))
    return _key_from_parts(
        _identity_parts(graph), spec, excluded, planned=plan_memory
    )


def _record_from(compiled: CompiledGraph) -> CacheRecord:
    """Encode a compilation's artefacts as a cacheable record."""
    g = compiled.graph
    b = compiled.memory.breakdown
    cs_lens = np.array(
        [len(tiles) for tiles in compiled.per_cs_tiles], dtype=np.int64
    )
    cs_tiles = np.array(
        [t for tiles in compiled.per_cs_tiles for t in sorted(tiles)],
        dtype=np.int64,
    )
    arrays = {
        "per_tile_bytes": np.asarray(
            compiled.memory.per_tile_bytes, dtype=np.float64
        ),
        "breakdown": np.array(
            [
                b.variables,
                b.vertex_state,
                b.edge_code,
                b.control_code,
                b.codelet_code,
                b.exchange_buffers,
            ],
            dtype=np.float64,
        ),
        "cs_lens": cs_lens,
        "cs_tiles": cs_tiles,
        "excluded": np.array(
            sorted(compiled.excluded_tiles), dtype=np.int64
        ),
    }
    if compiled.tile_map is not None:
        arrays["tile_map"] = np.asarray(compiled.tile_map, dtype=np.int64)
    if compiled.memory.no_reuse_per_tile_bytes is not None:
        arrays["no_reuse_per_tile"] = np.asarray(
            compiled.memory.no_reuse_per_tile_bytes, dtype=np.float64
        )
    meta = {
        "graph": {
            "name": g.name,
            "n_tiles": int(g.n_tiles),
            "n_variables": int(g.n_variables),
            "n_vertices": int(g.n_vertices),
            "n_edges": int(g.n_edges),
            "n_compute_sets": int(g.n_compute_sets),
            "variable_bytes": int(g.variable_bytes()),
        },
        "spec": compiled.spec.name,
    }
    if compiled.plan is not None:
        meta["plan"] = {
            "n_slots": compiled.plan.n_slots,
            "n_shared_slots": compiled.plan.n_shared_slots,
            "planned_variable_bytes": int(
                compiled.plan.planned_variable_bytes
            ),
            "reuse_fraction": float(compiled.plan.reuse_fraction),
        }
    return CacheRecord(arrays=arrays, meta=meta)


def _compiled_from_record(
    record: CacheRecord, graph: Graph | None, spec: IPUSpec
) -> CompiledGraph:
    """Decode a cache record back into a :class:`CompiledGraph`.

    *graph* is the caller's real graph when one exists (the
    ``compile_graph`` path); ``None`` substitutes a
    :class:`GraphSummary` from the record (the warm
    :func:`cached_compile` path, where no graph was ever built).
    """
    arrays = record.arrays
    breakdown = MemoryBreakdown(*(float(x) for x in arrays["breakdown"]))
    memory = MemoryReport(
        spec=spec,
        per_tile_bytes=arrays["per_tile_bytes"],
        breakdown=breakdown,
        no_reuse_per_tile_bytes=arrays.get("no_reuse_per_tile"),
    )
    per_cs_tiles: list[set[int]] = []
    offset = 0
    flat = arrays["cs_tiles"]
    for length in arrays["cs_lens"]:
        per_cs_tiles.append(
            {int(t) for t in flat[offset : offset + int(length)]}
        )
        offset += int(length)
    tile_map = arrays.get("tile_map")
    if graph is None:
        info = record.meta["graph"]
        graph = GraphSummary(
            name=info["name"],
            n_tiles=int(info["n_tiles"]),
            n_variables=int(info["n_variables"]),
            n_vertices=int(info["n_vertices"]),
            n_edges=int(info["n_edges"]),
            n_compute_sets=int(info["n_compute_sets"]),
            total_variable_bytes=int(info["variable_bytes"]),
        )
    return CompiledGraph(
        graph=graph,
        spec=spec,
        memory=memory,
        per_cs_tiles=per_cs_tiles,
        excluded_tiles=frozenset(int(t) for t in arrays["excluded"]),
        tile_map=tile_map if tile_map is not None else None,
    )


def _raise_oom(
    name: str, report: MemoryReport, excluded: frozenset[int]
) -> None:
    bad = report.over_capacity_tiles()
    degraded = f" with {len(excluded)} tiles excluded" if excluded else ""
    log = get_logger()
    if log.enabled:
        log.error(
            "compile.oom",
            graph=name,
            over_capacity_tiles=len(bad),
            peak_tile_bytes=report.peak_tile_bytes,
            usable_tile_bytes=report.spec.usable_tile_memory,
        )
    raise IPUOutOfMemoryError(
        f"graph {name!r} exceeds tile memory on {len(bad)} tiles"
        f"{degraded} (peak {format_bytes(report.peak_tile_bytes)} vs "
        f"usable {format_bytes(report.spec.usable_tile_memory)})"
    )


def compile_graph(
    graph: Graph,
    spec: IPUSpec,
    check_fit: bool = True,
    exclude_tiles: "frozenset[int] | set[int] | None" = None,
    cache: CompilationCache | None = None,
    plan_memory: bool = False,
) -> CompiledGraph:
    """Account memory for *graph* on *spec*; optionally raise on OOM.

    ``plan_memory=True`` runs the liveness-driven slot allocator
    (:func:`repro.ipu.memplan.plan_memory`): variables with disjoint
    live ranges share storage, the per-tile footprint charges slot
    capacities instead of every variable, and ``check_fit`` gates on the
    *planned* peak — so problem sizes that OOM unplanned can compile.
    The no-reuse footprint is kept on the report
    (:attr:`MemoryReport.no_reuse_per_tile_bytes`) for comparison.

    ``exclude_tiles`` compiles the graph onto the surviving tile set
    (graceful degradation after permanent tile failures): logical tiles
    fold round-robin onto surviving physical tiles, concentrating both
    memory and compute.  :class:`IPUOutOfMemoryError` is raised only when
    the shrunk SRAM genuinely cannot hold the graph — which is how the
    dead-tile-tolerance sweep quantifies that compressed (butterfly /
    pixelfly) models survive far more failed tiles than the dense
    baseline.

    When a :class:`~repro.cache.CompilationCache` is installed (or
    passed via *cache*), the call is content-addressed: a hit skips the
    accounting entirely and returns a ``CompiledGraph`` whose
    :class:`MemoryReport` is byte-identical to a cold compile's.
    ``check_fit`` is re-applied to cached results, so an over-capacity
    graph raises identically hot or cold.
    """
    if graph.n_tiles > spec.n_tiles:
        raise ValueError(
            f"graph built for {graph.n_tiles} tiles, spec has {spec.n_tiles}"
        )
    excluded = frozenset(int(t) for t in (exclude_tiles or ()))
    for t in excluded:
        if not 0 <= t < spec.n_tiles:
            raise ValueError(
                f"excluded tile {t} out of range [0, {spec.n_tiles})"
            )
    if len(excluded) >= spec.n_tiles:
        raise ValueError(
            f"cannot exclude all {spec.n_tiles} tiles of {spec.name}"
        )
    cache = cache if cache is not None else get_cache()
    key: str | None = None
    if cache.enabled:
        key = _key_from_parts(
            _identity_parts(graph), spec, excluded, planned=plan_memory
        )
        record = cache.lookup(key)
        if record is not None:
            compiled = _compiled_from_record(record, graph, spec)
            if check_fit and not compiled.memory.fits:
                _raise_oom(graph.name, compiled.memory, excluded)
            return compiled
    tracer = get_tracer()
    with tracer.span(
        "compile_graph",
        category="compile",
        graph=graph.name,
        n_vertices=graph.n_vertices,
        n_edges=graph.n_edges,
        n_compute_sets=graph.n_compute_sets,
        n_excluded_tiles=len(excluded),
        plan_memory=plan_memory,
    ) as compile_span:
        per_tile = np.zeros(spec.n_tiles, dtype=np.float64)

        # Variable data, spread over each variable's home range.  A
        # planned compile charges slot capacities (variables with
        # disjoint live ranges share storage); the no-reuse shares are
        # kept alongside for the report.
        var_total = 0.0
        var_share = np.zeros(spec.n_tiles, dtype=np.float64)
        plan: MemoryPlan | None = None
        with tracer.span("compile.map_variables", category="compile"):
            for var in graph.variables.values():
                share = var.total_bytes / var.tile_span
                var_share[
                    var.home_tile : var.home_tile + var.tile_span
                ] += share
                var_total += var.total_bytes
        if plan_memory:
            with tracer.span("compile.plan_memory", category="compile"):
                plan = _plan_memory(graph)
            planned_share = np.zeros(spec.n_tiles, dtype=np.float64)
            planned_share[: graph.n_tiles] = plan.per_tile_bytes
            per_tile += planned_share
            var_total = float(plan.planned_variable_bytes)
        else:
            per_tile += var_share

        # Vertex state and edge code on the vertex's tile.
        vertex_total = 0.0
        edge_total = 0.0
        codelets_per_tile: dict[int, set[str]] = defaultdict(set)
        with tracer.span("compile.map_vertices", category="compile"):
            for vertex in graph.vertices:
                per_tile[vertex.tile] += spec.vertex_state_bytes
                vertex_total += spec.vertex_state_bytes
                edge_bytes = vertex.n_edges * spec.edge_code_bytes
                per_tile[vertex.tile] += edge_bytes
                edge_total += edge_bytes
                codelets_per_tile[vertex.tile].add(vertex.codelet)

            # Codelet code: once per codelet type per instantiating tile.
            codelet_total = 0.0
            for tile, names in codelets_per_tile.items():
                nbytes = len(names) * spec.codelet_code_bytes
                per_tile[tile] += nbytes
                codelet_total += nbytes

        # Control code per compute set on each participating tile, and
        # exchange receive buffers sized by the heaviest superstep per tile.
        control_total = 0.0
        per_cs_tiles: list[set[int]] = []
        recv_peak = np.zeros(spec.n_tiles, dtype=np.float64)
        with tracer.span("compile.account_supersteps", category="compile"):
            for cs in graph.compute_sets:
                tiles: set[int] = set()
                recv_this = defaultdict(float)
                for vertex in graph.vertices_in(cs):
                    tiles.add(vertex.tile)
                    recv_this[vertex.tile] += vertex.remote_input_bytes()
                for tile in tiles:
                    per_tile[tile] += spec.cs_control_bytes
                    control_total += spec.cs_control_bytes
                for tile, nbytes in recv_this.items():
                    recv_peak[tile] = max(recv_peak[tile], nbytes)
                per_cs_tiles.append(tiles)
            per_tile += recv_peak
        exchange_total = float(recv_peak.sum())

        # The footprint the same graph would have without buffer reuse
        # (identical overheads, full variable charges).
        no_reuse_tile: np.ndarray | None = None
        if plan_memory:
            no_reuse_tile = per_tile - planned_share + var_share

        # Degraded compile: fold every logical tile's load onto its
        # surviving physical tile (receive buffers of co-located logical
        # tiles coexist, so the fold sums them too).  The memory plan is
        # on logical tiles, so a planned degraded compile re-plans the
        # folded footprint automatically.
        tile_map: np.ndarray | None = None
        if excluded:
            with tracer.span("compile.fold_degraded", category="compile"):
                tile_map = _tile_fold_map(spec.n_tiles, excluded)
                folded = np.zeros(spec.n_tiles, dtype=np.float64)
                np.add.at(folded, tile_map, per_tile)
                per_tile = folded
                if no_reuse_tile is not None:
                    folded_nr = np.zeros(spec.n_tiles, dtype=np.float64)
                    np.add.at(folded_nr, tile_map, no_reuse_tile)
                    no_reuse_tile = folded_nr

        breakdown = MemoryBreakdown(
            variables=var_total,
            vertex_state=vertex_total,
            edge_code=edge_total,
            control_code=control_total,
            codelet_code=codelet_total,
            exchange_buffers=exchange_total,
        )
        report = MemoryReport(
            spec=spec,
            per_tile_bytes=per_tile,
            breakdown=breakdown,
            no_reuse_per_tile_bytes=no_reuse_tile,
        )
        if tracer.enabled:
            compile_span.attributes.update(
                peak_tile_bytes=report.peak_tile_bytes,
                total_bytes=report.total_bytes,
                fits=report.fits,
            )
            counter_fields = {
                "peak_tile_bytes": report.peak_tile_bytes,
                "total_bytes": report.total_bytes,
                "variable_bytes": breakdown.variables,
                "overhead_bytes": breakdown.overhead,
            }
            if report.planned:
                compile_span.attributes.update(
                    peak_planned_bytes=report.peak_planned_bytes,
                    no_reuse_peak_tile_bytes=(
                        report.no_reuse_peak_tile_bytes
                    ),
                )
                counter_fields["peak_planned_bytes"] = (
                    report.peak_planned_bytes
                )
                counter_fields["no_reuse_peak_tile_bytes"] = (
                    report.no_reuse_peak_tile_bytes
                )
            tracer.counter("compile.memory", counter_fields)
        registry = get_registry()
        if registry.enabled:
            # The Fig 5 quantities (graph structure) as gauges, the Fig 7
            # memory split as gauges, and the per-tile byte distribution
            # as a fixed-bucket histogram — all keyed by graph name so a
            # sweep's sizes stay distinguishable in the manifest.
            name = graph.name
            registry.counter("compile.graphs").inc()
            for metric, value in (
                ("compile.variables", graph.n_variables),
                ("compile.vertices", graph.n_vertices),
                ("compile.edges", graph.n_edges),
                ("compile.compute_sets", graph.n_compute_sets),
                ("compile.peak_tile_bytes", report.peak_tile_bytes),
                ("compile.total_bytes", report.total_bytes),
                ("compile.variable_bytes", breakdown.variables),
                ("compile.overhead_bytes", breakdown.overhead),
                ("compile.free_bytes", report.free_bytes),
            ):
                registry.gauge(metric, graph=name).set(value)
            if report.planned and plan is not None:
                for metric, value in (
                    ("compile.peak_planned_bytes",
                     report.peak_planned_bytes),
                    ("compile.no_reuse_peak_bytes",
                     report.no_reuse_peak_tile_bytes),
                    ("compile.plan_reuse_fraction",
                     plan.reuse_fraction),
                    ("compile.plan_slots", plan.n_slots),
                ):
                    registry.gauge(metric, graph=name).set(value)
            registry.histogram(
                "compile.tile_bytes", edges=DEFAULT_BYTES_EDGES, graph=name
            ).observe_many(per_tile)
    compiled = CompiledGraph(
        graph=graph,
        spec=spec,
        memory=report,
        per_cs_tiles=per_cs_tiles,
        excluded_tiles=excluded,
        tile_map=tile_map,
        plan=plan,
    )
    if cache.enabled and key is not None:
        # Unfitting graphs are cached too: the OOM outcome is a pure
        # function of the report, and is re-raised on every hit below.
        cache.store(key, _record_from(compiled))
    if check_fit and not report.fits:
        _raise_oom(graph.name, report, excluded)
    return compiled


def cached_compile(
    provenance: tuple,
    build: Callable[[], Graph],
    spec: IPUSpec,
    check_fit: bool = True,
    exclude_tiles: "frozenset[int] | set[int] | None" = None,
    cache: CompilationCache | None = None,
    plan_memory: bool = False,
) -> CompiledGraph:
    """Compile-by-provenance: skip graph *construction* on a warm hit.

    :func:`compile_graph` can only be reached with a built graph, so a
    hit there still pays the (often dominant) cost of building it.
    ``cached_compile`` keys on *provenance* — a canonical description of
    what *build* would construct, e.g.
    ``("poplin.matmul", m, n, k, codelet, host_io)`` — and calls *build*
    only on a miss.  A hit returns a :class:`CompiledGraph` carrying a
    :class:`GraphSummary` in place of the graph: sufficient for
    :meth:`CompiledGraph.profile` and memory queries, not for execution.

    The provenance tuple is also attached to the built graph, so a
    plain ``compile_graph`` of the same construction shares the key.
    """
    excluded = frozenset(int(t) for t in (exclude_tiles or ()))
    provenance = tuple(provenance)
    cache = cache if cache is not None else get_cache()
    if cache.enabled:
        key = _key_from_parts(
            ("provenance",) + provenance, spec, excluded,
            planned=plan_memory,
        )
        record = cache.lookup(key)
        if record is not None:
            compiled = _compiled_from_record(record, None, spec)
            if check_fit and not compiled.memory.fits:
                _raise_oom(compiled.graph.name, compiled.memory, excluded)
            return compiled
    graph = build()
    graph.provenance = provenance
    if not cache.enabled:
        return compile_graph(
            graph,
            spec,
            check_fit=check_fit,
            exclude_tiles=excluded,
            plan_memory=plan_memory,
        )
    # The lookup above already counted this key's miss; compile uncached
    # and store under the same key so hot and cold stats stay exact.
    # Fit checking happens after the store: OOM outcomes are cached and
    # re-raised on hits just like compile_graph's own cached path.
    compiled = compile_graph(
        graph,
        spec,
        check_fit=False,
        exclude_tiles=excluded,
        cache=NULL_CACHE,
        plan_memory=plan_memory,
    )
    cache.store(key, _record_from(compiled))
    if check_fit and not compiled.memory.fits:
        _raise_oom(graph.name, compiled.memory, excluded)
    return compiled
