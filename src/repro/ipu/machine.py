"""IPU machine models (Graphcore GC200 and GC2).

All architecture constants trace to the paper's Table 1 or to public
microbenchmarking literature (Jia et al. 2019); the derived quantities
(clock-normalised rates) are computed, never hard-coded as outputs.

The performance-shaping parameters that could not be measured here (vertex
overhead cycles, exchange setup, host streaming efficiency) are explicit
fields with documented provenance, so ablation benchmarks can sweep them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils import KiB, MiB

__all__ = ["IPUSpec", "GC200", "GC2"]


@dataclass(frozen=True)
class IPUSpec:
    """Architecture description of a single IPU processor."""

    name: str
    #: Number of IPU-Tiles (core + local SRAM each).
    n_tiles: int
    #: In-Processor-Memory per tile, bytes.
    tile_memory_bytes: int
    #: Core clock, Hz.
    clock_hz: float
    #: Hardware worker threads per tile (time-sliced, MIMD).
    threads_per_tile: int
    #: AMP (Accumulating Matrix Product) unit MACs/cycle/tile.  Only *dense
    #: matmul vertices* use this path — the architectural fact behind the
    #: paper's finding that butterfly gains little on the IPU.
    amp_macs_per_cycle: int
    #: FLOPs/cycle/tile for vectorised generic vertices (float32x2 SIMD).
    vector_flops_per_cycle: float
    #: FLOPs/cycle/tile for scalar (naive) vertices.
    scalar_flops_per_cycle: float
    #: Effective cycles per element for gather/strided generic codelets,
    #: e.g. the PopTorch lowering of a butterfly level (einsum over strided
    #: views compiles to address-arithmetic-heavy generic vertices).
    gather_cycles_per_element: float
    #: Exchange-fabric bytes/cycle receivable per tile (distance-free).
    exchange_bytes_per_cycle: float
    #: BSP sync + compute-set dispatch overhead, cycles.
    sync_cycles: int
    #: Exchange-phase setup cycles (program switch, address setup).
    exchange_setup_cycles: int
    #: Host <-> IPU streaming bandwidth, bytes/s (off-chip DDR path;
    #: Table 1 lists 20 GB/s peak, streaming efficiency is far lower in
    #: PopTorch because tensors are serialised per engine run — the paper's
    #: Note 4).
    host_bandwidth: float
    host_stream_efficiency: float
    #: Fixed host-side engine-run overhead per program execution, seconds
    #: (PopTorch step dispatch; dominates tiny problem sizes in Fig 6).
    engine_run_overhead_s: float
    #: Off-chip streaming-memory capacity, bytes.
    offchip_memory_bytes: int
    #: Peak FP32 FLOP/s from the datasheet (used for utilisation reports
    #: and cross-checked against n_tiles * clock * amp rate in tests).
    peak_flops_fp32: float
    # -- graph-compilation memory accounting (per PopVision observations:
    # memory scales with vertices, edges and compute sets, Fig 5) --
    vertex_state_bytes: int = 32
    edge_code_bytes: int = 12
    cs_control_bytes: int = 8
    codelet_code_bytes: int = 2 * KiB
    #: Memory reserved per tile for runtime/control (not usable by graphs).
    reserved_tile_bytes: int = 16 * KiB
    #: Host-side training-loop overhead per step (data pipeline, loss and
    #: metric handling, PopTorch step dispatch) — common to every method,
    #: which is why Table 4's cheap methods cluster near the baseline.
    host_step_overhead_s: float = 160e-6
    #: Extra receiver-side cycles to detect and re-request an ECC-failed
    #: exchange packet before the superstep's data is re-streamed (parity
    #: scrub + replay request; the exchange itself is re-run at full cost).
    exchange_ecc_retry_cycles: int = 64

    # -- derived ------------------------------------------------------------

    @property
    def total_memory_bytes(self) -> int:
        """Aggregate In-Processor-Memory (Table 1: ~900 MB for GC200)."""
        return self.n_tiles * self.tile_memory_bytes

    @property
    def amp_flops_per_second(self) -> float:
        """Peak dense-matmul FLOP/s: tiles x clock x 2 x MACs/cycle."""
        return self.n_tiles * self.clock_hz * 2.0 * self.amp_macs_per_cycle

    @property
    def vector_flops_per_second(self) -> float:
        """Peak generic-vertex FLOP/s."""
        return self.n_tiles * self.clock_hz * self.vector_flops_per_cycle

    @property
    def scalar_flops_per_second(self) -> float:
        """Peak scalar-codelet FLOP/s."""
        return self.n_tiles * self.clock_hz * self.scalar_flops_per_cycle

    @property
    def exchange_bandwidth_per_tile(self) -> float:
        """Exchange bytes/s receivable by one tile."""
        return self.exchange_bytes_per_cycle * self.clock_hz

    @property
    def exchange_bandwidth_total(self) -> float:
        """Aggregate exchange bytes/s across all tiles."""
        return self.n_tiles * self.exchange_bandwidth_per_tile

    @property
    def usable_tile_memory(self) -> int:
        """Tile memory available to compiled graphs."""
        return self.tile_memory_bytes - self.reserved_tile_bytes

    @property
    def effective_host_bandwidth(self) -> float:
        """Streaming bytes/s actually achieved by PopTorch-style I/O."""
        return self.host_bandwidth * self.host_stream_efficiency


#: Second-generation GC200 (the paper's device; Table 1 column 2).
GC200 = IPUSpec(
    name="GC200",
    n_tiles=1472,
    tile_memory_bytes=624 * KiB,  # 1472 x 624 KiB ~= 897 MiB ("900 MB")
    clock_hz=1.33e9,
    threads_per_tile=6,
    amp_macs_per_cycle=16,  # 1472 * 1.33 GHz * 32 flop = 62.7 TFLOP/s peak
    vector_flops_per_cycle=4.0,
    scalar_flops_per_cycle=0.27,
    gather_cycles_per_element=5.0,
    exchange_bytes_per_cycle=8.0,
    sync_cycles=700,
    exchange_setup_cycles=150,
    host_bandwidth=20e9,
    host_stream_efficiency=0.4,
    engine_run_overhead_s=10e-6,
    offchip_memory_bytes=64 * 1024 * MiB,
    peak_flops_fp32=62.5e12,
)

#: First-generation GC2 (for the generational comparisons in related work).
GC2 = IPUSpec(
    name="GC2",
    n_tiles=1216,
    tile_memory_bytes=256 * KiB,
    clock_hz=1.6e9,
    threads_per_tile=6,
    amp_macs_per_cycle=8,  # 1216 * 1.6 GHz * 16 flop ~= 31.1 TFLOP/s
    vector_flops_per_cycle=4.0,
    scalar_flops_per_cycle=0.27,
    gather_cycles_per_element=9.0,
    exchange_bytes_per_cycle=8.0,
    sync_cycles=700,
    exchange_setup_cycles=150,
    host_bandwidth=16e9,
    host_stream_efficiency=0.085,
    engine_run_overhead_s=10e-6,
    offchip_memory_bytes=0,
    peak_flops_fp32=31.1e12,
)
