"""Codelet registry: per-vertex cycle models and numeric executors.

Each codelet couples a *cycle cost function* (architecture-derived, used by
the executor's timing) with an optional *execute function* (numpy numerics,
used to validate the simulator against ground truth).  Codelets without an
execute function can still be compiled and timed — the Fig 6/Fig 7 layer
sweeps only need costs, while the Table 2 matmul paths are fully executable.

Cycle models follow one of three rate classes from the machine spec:

* **AMP** — dense matmul partials; ``macs / amp_macs_per_cycle`` plus a
  pipeline-fill overhead.  This is the only accelerated path, mirroring the
  real AMP units (the paper's explanation for butterfly's modest IPU gains).
* **vector** — regular elementwise work at ``vector_flops_per_cycle``.
* **gather** — strided/indirect access patterns (butterfly stages, block
  gather/scatter, sparse row dots) paying ``gather_cycles_per_element``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.ipu.graph import Vertex
from repro.ipu.machine import IPUSpec

__all__ = ["Codelet", "CODELETS", "register_codelet", "vertex_cycles"]

#: Pipeline fill / loop setup overhead charged once per vertex invocation.
VERTEX_OVERHEAD_CYCLES = 60

#: Effective flops/cycle/tile of block-sparse matmul codelets lowered from
#: plain PyTorch (gather + einsum + scatter; no AMP path) — calibrated to the
#: throughput class Jia et al. report for generic vectorised vertices with
#: indirect addressing.
BLOCK_FLOPS_PER_CYCLE = 0.4


@dataclass(frozen=True)
class Codelet:
    """A codelet: cost model plus optional numeric implementation."""

    name: str
    cycles: Callable[[Vertex, IPUSpec], float]
    execute: Callable[[Vertex, dict[str, np.ndarray]], None] | None = None


CODELETS: dict[str, Codelet] = {}


def register_codelet(codelet: Codelet) -> Codelet:
    """Add a codelet to the registry (overwrites same-name entries)."""
    CODELETS[codelet.name] = codelet
    return codelet


def vertex_cycles(vertex: Vertex, spec: IPUSpec) -> float:
    """Cycle cost of one vertex on *spec*."""
    codelet = CODELETS.get(vertex.codelet)
    if codelet is None:
        raise KeyError(f"unknown codelet {vertex.codelet!r}")
    return codelet.cycles(vertex, spec)


# ---------------------------------------------------------------------------
# Dense matmul partials
# ---------------------------------------------------------------------------


def _matmul_dims(vertex: Vertex) -> tuple[int, int, int]:
    try:
        return vertex.params["m"], vertex.params["n"], vertex.params["k"]
    except KeyError as exc:
        raise KeyError(
            f"{vertex.codelet} vertex requires m/n/k params"
        ) from exc


def _amp_cycles(vertex: Vertex, spec: IPUSpec) -> float:
    m, n, k = _matmul_dims(vertex)
    macs = m * n * k
    # Short accumulation chains underfill the AMP pipeline.
    efficiency = min(1.0, k / 16.0)
    return VERTEX_OVERHEAD_CYCLES + macs / (
        spec.amp_macs_per_cycle * max(efficiency, 1e-3)
    )


def _execute_matmul_partial(vertex: Vertex, state: dict[str, np.ndarray]) -> None:
    a_edge, b_edge = vertex.inputs[0], vertex.inputs[1]
    out_edge = vertex.outputs[0]
    a = state[a_edge.var][a_edge.key]
    b = state[b_edge.var][b_edge.key]
    if vertex.params.get("accumulate"):
        state[out_edge.var][out_edge.key] += a @ b
    else:
        state[out_edge.var][out_edge.key] = a @ b


register_codelet(
    Codelet("MatMulPartialAMP", _amp_cycles, _execute_matmul_partial)
)


def _scalar_matmul_cycles(vertex: Vertex, spec: IPUSpec) -> float:
    m, n, k = _matmul_dims(vertex)
    return VERTEX_OVERHEAD_CYCLES + 2.0 * m * n * k / spec.scalar_flops_per_cycle


register_codelet(
    Codelet("MatMulPartialScalar", _scalar_matmul_cycles, _execute_matmul_partial)
)


def _vector_matmul_cycles(vertex: Vertex, spec: IPUSpec) -> float:
    # Hand-vectorised but non-AMP inner loop (the paper's blocked variant:
    # a custom codelet cannot reach the AMP pipeline).
    m, n, k = _matmul_dims(vertex)
    return VERTEX_OVERHEAD_CYCLES + 2.0 * m * n * k / spec.vector_flops_per_cycle


register_codelet(
    Codelet("MatMulPartialVector", _vector_matmul_cycles, _execute_matmul_partial)
)


# ---------------------------------------------------------------------------
# Reductions, copies, elementwise
# ---------------------------------------------------------------------------


def _reduce_cycles(vertex: Vertex, spec: IPUSpec) -> float:
    n_inputs = max(1, len(vertex.inputs))
    elements = vertex.outputs[0].n_elements
    return VERTEX_OVERHEAD_CYCLES + (
        elements * n_inputs / spec.vector_flops_per_cycle
    )


def _execute_reduce_add(vertex: Vertex, state: dict[str, np.ndarray]) -> None:
    out_edge = vertex.outputs[0]
    acc = None
    for edge in vertex.inputs:
        chunk = state[edge.var][edge.key]
        acc = chunk.copy() if acc is None else acc + chunk
    state[out_edge.var][out_edge.key] = acc


register_codelet(Codelet("ReduceAdd", _reduce_cycles, _execute_reduce_add))


def _copy_cycles(vertex: Vertex, spec: IPUSpec) -> float:
    elements = vertex.outputs[0].n_elements
    # SRAM copy: one 4-byte element per cycle per worker context.
    return VERTEX_OVERHEAD_CYCLES + elements


def _execute_copy(vertex: Vertex, state: dict[str, np.ndarray]) -> None:
    src, dst = vertex.inputs[0], vertex.outputs[0]
    s = state[src.var][src.key]
    d = state[dst.var][dst.key]
    if s.shape == d.shape:
        d[...] = s
        return
    # Pad/slice copy between differently-shaped activations (rectangular
    # butterfly lowerings): the overlapping prefix of the feature axis is
    # copied and any padding is zero-filled, matching the layer-level
    # zero-pad / truncate algebra.
    width = min(s.shape[-1], d.shape[-1])
    d[...] = 0.0
    d[..., :width] = s[..., :width]


register_codelet(Codelet("Copy", _copy_cycles, _execute_copy))


_UNARY_OPS = {
    "relu": lambda a: np.maximum(a, 0),
    "neg": lambda a: -a,
    "square": lambda a: a * a,
}


def _elementwise_cycles(vertex: Vertex, spec: IPUSpec) -> float:
    elements = vertex.outputs[0].n_elements
    return VERTEX_OVERHEAD_CYCLES + elements / spec.vector_flops_per_cycle


def _execute_unary(vertex: Vertex, state: dict[str, np.ndarray]) -> None:
    op = _UNARY_OPS[vertex.params["op"]]
    src, dst = vertex.inputs[0], vertex.outputs[0]
    state[dst.var][dst.key] = op(state[src.var][src.key])


register_codelet(
    Codelet("ElementwiseUnary", _elementwise_cycles, _execute_unary)
)


_BINARY_OPS = {
    "add": np.add,
    "sub": np.subtract,
    "mul": np.multiply,
}


def _execute_binary(vertex: Vertex, state: dict[str, np.ndarray]) -> None:
    op = _BINARY_OPS[vertex.params["op"]]
    a, b = vertex.inputs[0], vertex.inputs[1]
    dst = vertex.outputs[0]
    state[dst.var][dst.key] = op(state[a.var][a.key], state[b.var][b.key])


register_codelet(
    Codelet("ElementwiseBinary", _elementwise_cycles, _execute_binary)
)


# ---------------------------------------------------------------------------
# Sparse matmul (popsparse-style)
# ---------------------------------------------------------------------------


#: Output columns a popsparse-style SpMM codelet processes per panel pass.
SPMM_PANEL_COLS = 16

#: Per-panel setup cycles: panel sync, exchange program switch, pointer
#: rewind.  Wide outputs pay a long chain of small panel passes — the fixed
#: cost that makes popsparse throughput *rise* with density (more
#: arithmetic amortising the same panel chain), reproducing the paper's
#: Table 2 pattern where the 90 %-sparse column achieves a higher actual
#: FLOP rate than the 99 %-sparse one.
SPMM_PANEL_OVERHEAD_CYCLES = 1700


def _sparse_row_cycles(vertex: Vertex, spec: IPUSpec) -> float:
    nnz = vertex.params["nnz"]
    n_cols = vertex.params["n_cols"]
    # Panel-wise SpMM: per SPMM_PANEL_COLS-wide output panel, restream the
    # index array (2 cycles/nnz) on top of the panel setup; per nonzero an
    # indirect B-row gather plus a vectorised axpy over the panel.
    panels = math.ceil(n_cols / SPMM_PANEL_COLS)
    panel_cost = panels * (SPMM_PANEL_OVERHEAD_CYCLES + 2.0 * nnz)
    gather = nnz * spec.gather_cycles_per_element
    flops = 2.0 * nnz * n_cols / spec.vector_flops_per_cycle
    return VERTEX_OVERHEAD_CYCLES + panel_cost + gather + flops


def _execute_sparse_row_dot(vertex: Vertex, state: dict[str, np.ndarray]) -> None:
    indptr = vertex.params["indptr"]
    indices = vertex.params["indices"]
    data = vertex.params["data"]
    b_edge = vertex.inputs[0]
    out_edge = vertex.outputs[0]
    b = state[b_edge.var][b_edge.key] if b_edge.key else state[b_edge.var]
    n_rows = len(indptr) - 1
    out = np.zeros((n_rows, b.shape[1]), dtype=b.dtype)
    if len(data):
        contrib = data[:, None] * b[indices]
        nonempty = np.flatnonzero(np.diff(indptr) > 0)
        if len(nonempty):
            out[nonempty] = np.add.reduceat(contrib, indptr[nonempty])[
                : len(nonempty)
            ]
    state[out_edge.var][out_edge.key] = out


register_codelet(
    Codelet("SparseRowDotCSR", _sparse_row_cycles, _execute_sparse_row_dot)
)


def _sparse_coo_cycles(vertex: Vertex, spec: IPUSpec) -> float:
    nnz = vertex.params["nnz"]
    n_cols = vertex.params["n_cols"]
    # COO pays two index loads per nonzero and scatter-adds its output
    # (read-modify-write), hence the higher per-nnz cost vs CSR — the
    # paper's Note 2 (CSR beats COO on both devices).  Same panel chain as
    # the CSR codelet, with both index arrays restreamed.
    panels = math.ceil(n_cols / SPMM_PANEL_COLS)
    panel_cost = panels * (SPMM_PANEL_OVERHEAD_CYCLES + 4.0 * nnz)
    gather = nnz * (2.0 * spec.gather_cycles_per_element)
    flops = 3.0 * nnz * n_cols / spec.vector_flops_per_cycle
    return VERTEX_OVERHEAD_CYCLES + panel_cost + gather + flops


def _execute_sparse_coo(vertex: Vertex, state: dict[str, np.ndarray]) -> None:
    rows = vertex.params["rows"]
    cols = vertex.params["cols"]
    data = vertex.params["data"]
    n_rows = vertex.params["n_rows"]
    b_edge = vertex.inputs[0]
    out_edge = vertex.outputs[0]
    b = state[b_edge.var][b_edge.key] if b_edge.key else state[b_edge.var]
    out = np.zeros((n_rows, b.shape[1]), dtype=b.dtype)
    np.add.at(out, rows, data[:, None] * b[cols])
    state[out_edge.var][out_edge.key] = out


register_codelet(
    Codelet("SparseDotCOO", _sparse_coo_cycles, _execute_sparse_coo)
)


# ---------------------------------------------------------------------------
# Structured-layer codelets (estimate-only unless noted)
# ---------------------------------------------------------------------------


def _butterfly_stage_cycles(vertex: Vertex, spec: IPUSpec) -> float:
    # One butterfly level over `n_pairs` (pair, batch-row) elements: loads
    # two strided activations and four twiddles, 8 flops, two strided
    # stores — indirect addressing dominates, hence the gather rate.
    n_pairs = vertex.params["n_pairs"]
    return VERTEX_OVERHEAD_CYCLES + (
        2.0 * n_pairs * spec.gather_cycles_per_element
    )


register_codelet(Codelet("ButterflyStage", _butterfly_stage_cycles))


def _block_sparse_cycles(vertex: Vertex, spec: IPUSpec) -> float:
    flops = vertex.params["flops"]
    return VERTEX_OVERHEAD_CYCLES + flops / BLOCK_FLOPS_PER_CYCLE


register_codelet(Codelet("BlockSparseMatMul", _block_sparse_cycles))


def _fwht_stage_cycles(vertex: Vertex, spec: IPUSpec) -> float:
    # Add/sub over strided pairs: the same strided-access class as a
    # butterfly level (no twiddle loads, but the PyTorch per-stage lowering
    # still materialises intermediates).
    elements = vertex.params["elements"]
    return VERTEX_OVERHEAD_CYCLES + (
        elements * spec.gather_cycles_per_element
    )


register_codelet(Codelet("FWHTStage", _fwht_stage_cycles))


def _fft_stage_cycles(vertex: Vertex, spec: IPUSpec) -> float:
    # Complex butterfly stage: ~10 real flops per pair plus strided access.
    n_pairs = vertex.params["n_pairs"]
    return VERTEX_OVERHEAD_CYCLES + (
        n_pairs * (10.0 / spec.vector_flops_per_cycle
                   + 2.0 * spec.gather_cycles_per_element)
    )


register_codelet(Codelet("FFTStage", _fft_stage_cycles))


def _diag_scale_cycles(vertex: Vertex, spec: IPUSpec) -> float:
    elements = vertex.outputs[0].n_elements
    return VERTEX_OVERHEAD_CYCLES + elements / spec.vector_flops_per_cycle


def _execute_diag_scale(vertex: Vertex, state: dict[str, np.ndarray]) -> None:
    x_edge, d_edge = vertex.inputs[0], vertex.inputs[1]
    dst = vertex.outputs[0]
    x = state[x_edge.var][x_edge.key] if x_edge.key else state[x_edge.var]
    d = state[d_edge.var][d_edge.key] if d_edge.key else state[d_edge.var]
    state[dst.var][dst.key] = x * d


register_codelet(
    Codelet("DiagScale", _diag_scale_cycles, _execute_diag_scale)
)
