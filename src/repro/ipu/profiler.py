"""PopVision-style reporting: graph/memory profiles over problem sweeps.

The paper reads these quantities off the PopVision Graph Analyzer (Figs 5
and 7): number of variables, edges, vertices and compute sets, and the
resulting memory consumption / remaining free memory.  This module renders
the simulator's equivalents as text tables and provides the sweep drivers
the figures are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.ipu.compiler import CompiledGraph, GraphProfile, compile_graph
from repro.ipu.graph import Graph
from repro.ipu.machine import IPUSpec
from repro.utils import format_bytes

__all__ = [
    "ProfilePoint",
    "profile_graph",
    "sweep_profiles",
    "render_profile_table",
]


@dataclass(frozen=True)
class ProfilePoint:
    """A (problem size, graph profile) pair of a sweep."""

    label: str
    size: int
    profile: GraphProfile


def profile_graph(graph: Graph, spec: IPUSpec) -> GraphProfile:
    """Compile without fit enforcement and return the Fig 5 quantities."""
    compiled: CompiledGraph = compile_graph(graph, spec, check_fit=False)
    return compiled.profile()


def sweep_profiles(
    spec: IPUSpec,
    sizes: list[int],
    builder: Callable[[IPUSpec, int], Graph],
    label: str = "",
) -> list[ProfilePoint]:
    """Profile ``builder(spec, size)`` graphs across *sizes*."""
    points = []
    for size in sizes:
        graph = builder(spec, size)
        points.append(
            ProfilePoint(
                label=label or graph.name,
                size=size,
                profile=profile_graph(graph, spec),
            )
        )
    return points


def render_profile_table(points: list[ProfilePoint]) -> str:
    """Text table of a profile sweep (the Fig 5 series)."""
    header = (
        f"{'size':>8} {'vars':>7} {'vertices':>9} {'edges':>9} "
        f"{'compute sets':>13} {'data':>12} {'total mem':>12} "
        f"{'free mem':>12} {'fits':>5}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        pr = p.profile
        lines.append(
            f"{p.size:>8} {pr.n_variables:>7} {pr.n_vertices:>9} "
            f"{pr.n_edges:>9} {pr.n_compute_sets:>13} "
            f"{format_bytes(pr.variable_bytes):>12} "
            f"{format_bytes(pr.total_bytes):>12} "
            f"{format_bytes(pr.free_bytes):>12} "
            f"{'yes' if pr.fits else 'NO':>5}"
        )
    return "\n".join(lines)
