"""PopVision-style reporting: graph/memory profiles over problem sweeps.

The paper reads these quantities off the PopVision Graph Analyzer (Figs 5
and 7): number of variables, edges, vertices and compute sets, and the
resulting memory consumption / remaining free memory.  This module renders
the simulator's equivalents as text tables and provides the sweep drivers
the figures are built from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.ipu.compiler import CompiledGraph, GraphProfile, compile_graph
from repro.ipu.graph import Graph
from repro.ipu.machine import IPUSpec
from repro.utils import format_bytes

__all__ = [
    "ProfilePoint",
    "profile_graph",
    "sweep_profiles",
    "render_profile_table",
]


@dataclass(frozen=True)
class ProfilePoint:
    """A (problem size, graph profile) pair of a sweep."""

    label: str
    size: int
    profile: GraphProfile


def profile_graph(
    graph: Graph, spec: IPUSpec, plan_memory: bool = False
) -> GraphProfile:
    """Compile without fit enforcement and return the Fig 5 quantities.

    ``plan_memory=True`` profiles the liveness-planned footprint; the
    profile then carries both the planned and no-reuse peaks.
    """
    compiled: CompiledGraph = compile_graph(
        graph, spec, check_fit=False, plan_memory=plan_memory
    )
    return compiled.profile()


def sweep_profiles(
    spec: IPUSpec,
    sizes: list[int],
    builder: Callable[[IPUSpec, int], Graph],
    label: str = "",
    plan_memory: bool = False,
) -> list[ProfilePoint]:
    """Profile ``builder(spec, size)`` graphs across *sizes*."""
    points = []
    for size in sizes:
        graph = builder(spec, size)
        points.append(
            ProfilePoint(
                label=label or graph.name,
                size=size,
                profile=profile_graph(graph, spec, plan_memory=plan_memory),
            )
        )
    return points


def render_profile_table(points: list[ProfilePoint]) -> str:
    """Text table of a profile sweep (the Fig 5 series).

    Planned profiles grow two columns: the planned per-tile peak and the
    fraction of the no-reuse peak the planner reclaimed.
    """
    planned = any(p.profile.planned for p in points)
    header = (
        f"{'size':>8} {'vars':>7} {'vertices':>9} {'edges':>9} "
        f"{'compute sets':>13} {'data':>12} {'total mem':>12} "
        f"{'free mem':>12} {'fits':>5}"
    )
    if planned:
        header += f" {'planned peak':>13} {'reclaimed':>10}"
    lines = [header, "-" * len(header)]
    for p in points:
        pr = p.profile
        line = (
            f"{p.size:>8} {pr.n_variables:>7} {pr.n_vertices:>9} "
            f"{pr.n_edges:>9} {pr.n_compute_sets:>13} "
            f"{format_bytes(pr.variable_bytes):>12} "
            f"{format_bytes(pr.total_bytes):>12} "
            f"{format_bytes(pr.free_bytes):>12} "
            f"{'yes' if pr.fits else 'NO':>5}"
        )
        if planned:
            line += (
                f" {format_bytes(pr.peak_tile_bytes):>13} "
                f"{pr.plan_saving_fraction:>9.1%}"
            )
        lines.append(line)
    return "\n".join(lines)
