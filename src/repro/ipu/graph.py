"""Poplar-like dataflow graph: variables, vertices, edges, compute sets.

IPU programs are graphs of *vertices* (codelet instances mapped to tiles)
connected via *edges* to slices of *variables* (tensors spread over tile
memory), grouped into *compute sets* executed as BSP supersteps.  The
compiler (:mod:`repro.ipu.compiler`) accounts memory from exactly these
objects — which is how the Fig 5 / Fig 7 "memory grows with vertices, edges
and compute sets" behaviour arises structurally rather than by fiat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

__all__ = ["Variable", "Edge", "Vertex", "ComputeSet", "Graph", "ProgramStep"]


@dataclass
class Variable:
    """A tensor spread across a contiguous range of tile memories.

    ``home_tile``/``tile_span`` describe the layout: elements are split as
    evenly as possible over ``tile_span`` tiles starting at ``home_tile``.
    """

    name: str
    shape: tuple[int, ...]
    element_bytes: int = 4
    home_tile: int = 0
    tile_span: int = 1

    def __post_init__(self) -> None:
        if self.tile_span <= 0:
            raise ValueError(f"tile_span must be positive, got {self.tile_span}")
        if self.home_tile < 0:
            raise ValueError(f"home_tile must be >= 0, got {self.home_tile}")

    @property
    def n_elements(self) -> int:
        return int(np.prod(self.shape)) if self.shape else 1

    @property
    def total_bytes(self) -> int:
        return self.n_elements * self.element_bytes

    def bytes_on_tile(self, tile: int) -> float:
        """Bytes of this variable homed on *tile* (even spread)."""
        if self.home_tile <= tile < self.home_tile + self.tile_span:
            return self.total_bytes / self.tile_span
        return 0.0

    def tiles(self) -> range:
        """The tile range hosting this variable."""
        return range(self.home_tile, self.home_tile + self.tile_span)


@dataclass
class Edge:
    """A connection between a vertex port and (a slice of) a variable.

    ``key`` is an optional numpy index expression for numeric execution;
    ``n_elements`` is the element count the edge touches (used for exchange
    and code-size accounting even when ``key`` is omitted).  ``local`` marks
    edges whose data the planner placed on the consuming vertex's own tile,
    exempting them from exchange cost.
    """

    var: str
    n_elements: int
    key: Any = None
    local: bool = False

    def __post_init__(self) -> None:
        if self.n_elements < 0:
            raise ValueError(f"n_elements must be >= 0, got {self.n_elements}")


@dataclass
class Vertex:
    """A codelet instance mapped to one tile."""

    codelet: str
    tile: int
    inputs: list[Edge] = field(default_factory=list)
    outputs: list[Edge] = field(default_factory=list)
    params: dict[str, Any] = field(default_factory=dict)

    @property
    def n_edges(self) -> int:
        return len(self.inputs) + len(self.outputs)

    def input_bytes(self, element_bytes: int = 4) -> int:
        """Total bytes read by this vertex."""
        return sum(e.n_elements for e in self.inputs) * element_bytes

    def remote_input_bytes(self, element_bytes: int = 4) -> int:
        """Bytes that must cross the exchange to reach this vertex."""
        return (
            sum(e.n_elements for e in self.inputs if not e.local)
            * element_bytes
        )


@dataclass
class ComputeSet:
    """A named group of vertices executed as one BSP superstep."""

    name: str
    vertex_ids: list[int] = field(default_factory=list)


@dataclass
class ProgramStep:
    """One step of the program: a compute set, a copy, or host I/O.

    ``kind`` is one of ``'compute'`` (``ref`` = compute-set index),
    ``'copy'`` (``ref`` = (src_var, dst_var)), ``'host_write'`` or
    ``'host_read'`` (``ref`` = var name).
    """

    kind: str
    ref: Any

    _KINDS = ("compute", "copy", "host_write", "host_read")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown step kind {self.kind!r}")


class Graph:
    """A complete IPU program: variables + vertices + an execution program."""

    def __init__(self, n_tiles: int, name: str = "graph") -> None:
        if n_tiles <= 0:
            raise ValueError(f"n_tiles must be positive, got {n_tiles}")
        self.n_tiles = n_tiles
        self.name = name
        self.variables: dict[str, Variable] = {}
        self.vertices: list[Vertex] = []
        self.compute_sets: list[ComputeSet] = []
        self.program: list[ProgramStep] = []
        #: Optional canonical construction identity, set by builders that
        #: can describe their output cheaply (e.g. ``("poplin.matmul",
        #: m, n, k, codelet, host_io)``).  The compilation cache keys on
        #: it when present, sparing the full structural fingerprint walk;
        #: builders must only set it when the tuple determines the graph
        #: completely (given the spec).
        self.provenance: tuple | None = None

    # -- construction --------------------------------------------------------

    def add_variable(
        self,
        name: str,
        shape: tuple[int, ...],
        element_bytes: int = 4,
        home_tile: int = 0,
        tile_span: int | None = None,
    ) -> Variable:
        """Register a variable; default layout spreads it over all tiles."""
        if name in self.variables:
            raise ValueError(f"variable {name!r} already exists")
        if tile_span is None:
            tile_span = self.n_tiles - home_tile
        if home_tile + tile_span > self.n_tiles:
            raise ValueError(
                f"variable {name!r} layout [{home_tile}, "
                f"{home_tile + tile_span}) exceeds {self.n_tiles} tiles"
            )
        var = Variable(
            name=name,
            shape=tuple(shape),
            element_bytes=element_bytes,
            home_tile=home_tile,
            tile_span=tile_span,
        )
        self.variables[name] = var
        return var

    def add_vertex(self, compute_set: int, vertex: Vertex) -> int:
        """Add *vertex* to the graph inside compute set index *compute_set*."""
        if not 0 <= vertex.tile < self.n_tiles:
            raise ValueError(
                f"vertex tile {vertex.tile} out of range [0, {self.n_tiles})"
            )
        if not 0 <= compute_set < len(self.compute_sets):
            raise ValueError(f"no compute set with index {compute_set}")
        for edge in list(vertex.inputs) + list(vertex.outputs):
            if edge.var not in self.variables:
                raise ValueError(f"edge references unknown variable {edge.var!r}")
        vid = len(self.vertices)
        self.vertices.append(vertex)
        self.compute_sets[compute_set].vertex_ids.append(vid)
        return vid

    def add_compute_set(self, name: str, schedule: bool = True) -> int:
        """Create a compute set; optionally append it to the program."""
        cs_id = len(self.compute_sets)
        self.compute_sets.append(ComputeSet(name=name))
        if schedule:
            self.program.append(ProgramStep("compute", cs_id))
        return cs_id

    def add_copy(self, src: str, dst: str) -> None:
        """Schedule an on-device copy between two variables."""
        for name in (src, dst):
            if name not in self.variables:
                raise ValueError(f"unknown variable {name!r}")
        if self.variables[src].n_elements != self.variables[dst].n_elements:
            raise ValueError(
                f"copy size mismatch: {src} has "
                f"{self.variables[src].n_elements} elements, {dst} has "
                f"{self.variables[dst].n_elements}"
            )
        self.program.append(ProgramStep("copy", (src, dst)))

    def add_host_write(self, var: str) -> None:
        """Schedule a host -> device stream of *var*."""
        if var not in self.variables:
            raise ValueError(f"unknown variable {var!r}")
        self.program.append(ProgramStep("host_write", var))

    def add_host_read(self, var: str) -> None:
        """Schedule a device -> host stream of *var*."""
        if var not in self.variables:
            raise ValueError(f"unknown variable {var!r}")
        self.program.append(ProgramStep("host_read", var))

    # -- statistics -----------------------------------------------------------

    @property
    def n_variables(self) -> int:
        return len(self.variables)

    @property
    def n_vertices(self) -> int:
        return len(self.vertices)

    @property
    def n_edges(self) -> int:
        return sum(v.n_edges for v in self.vertices)

    @property
    def n_compute_sets(self) -> int:
        return len(self.compute_sets)

    def variable_bytes(self) -> int:
        """Total bytes of all variables."""
        return sum(v.total_bytes for v in self.variables.values())

    def vertices_in(self, cs: ComputeSet) -> list[Vertex]:
        """The vertex objects of a compute set."""
        return [self.vertices[vid] for vid in cs.vertex_ids]

    def codelets_used(self) -> set[str]:
        """Distinct codelet names instantiated anywhere in the graph."""
        return {v.codelet for v in self.vertices}

    def __repr__(self) -> str:
        return (
            f"Graph({self.name!r}: {self.n_variables} vars, "
            f"{self.n_vertices} vertices, {self.n_edges} edges, "
            f"{self.n_compute_sets} compute sets)"
        )
