"""PopTorch-style bridge: lower :mod:`repro.nn` models onto the IPU simulator.

``IPUModule`` walks a model (``Sequential`` of supported layers) and emits a
forward dataflow graph — one or more compute sets per layer, with the layer
type deciding the codelet class:

* ``Linear`` / ``LowRankLinear`` lower to planned AMP matmuls (poplin) —
  the *only* path that reaches the AMP units, mirroring the real hardware
  and the paper's explanation of butterfly's modest IPU speedups.
* ``ButterflyLinear`` lowers to ``log2 n`` gather-rate butterfly-stage
  compute sets (PopTorch turns the per-level strided einsum into generic
  vertices).
* ``PixelflyLinear`` lowers to a block-gather/matmul/scatter pipeline plus
  two low-rank matmuls — more arithmetic and more supersteps than
  butterfly, the overhead the paper blames for pixelfly's IPU slowdown.
* ``FastfoodLinear`` lowers to two full FWHT stage pyramids plus diagonal
  scales and a permutation — the largest compute-set count of all methods,
  matching its worst-of-table IPU training time (Table 4).
* ``CirculantLinear`` lowers to three library-fused FFT compute sets
  (poplibs has a fused FFT; PyTorch's per-stage FWHT does not).

Timing: ``forward_report`` estimates one forward pass; ``training_step_time``
models forward + backward (2x the forward's device work — the standard two
extra GEMM-equivalents per layer) + optimiser update compute sets, all under
a single engine run.  Host streaming of inputs/outputs is included exactly
when ``host_io=True`` (the paper's Note 4 measurement mode).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ipu.compiler import CompiledGraph, GraphProfile, compile_graph
from repro.ipu.executor import ExecutionReport, Executor
from repro.ipu.graph import Edge, Graph, Vertex
from repro.ipu.machine import GC200, IPUSpec
from repro.ipu.poplin import emit_matmul
from repro.nn.layers import (
    BatchNorm1d,
    Dropout,
    Flatten,
    Identity,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.module import Module
from repro.nn.structured import (
    ButterflyLinear,
    CirculantLinear,
    FastfoodLinear,
    LowRankLinear,
    PixelflyLinear,
)
from repro.utils import log2_int

__all__ = ["IPUModule", "lower_model", "module_signature"]

#: Minimum elements a generic vertex should process — below this the
#: per-vertex overhead dominates, so the lowering uses fewer tiles.
MIN_ELEMENTS_PER_VERTEX = 512


def _tiles_for(
    elements: int, spec: IPUSpec, min_per_vertex: int = MIN_ELEMENTS_PER_VERTEX
) -> int:
    """How many tiles to spread *elements* of generic work over."""
    return max(1, min(spec.n_tiles, elements // min_per_vertex))


def _chunks(total: int, parts: int) -> list[int]:
    """Split *total* into *parts* near-even positive chunk sizes."""
    base, rem = divmod(total, parts)
    return [base + (1 if i < rem else 0) for i in range(parts)]


class _Lowering:
    """Mutable state while emitting a model's forward graph."""

    def __init__(self, graph: Graph, spec: IPUSpec, batch: int) -> None:
        self.graph = graph
        self.spec = spec
        self.batch = batch
        self.counter = 0
        self.param_bytes = 0

    def fresh(self, hint: str) -> str:
        self.counter += 1
        return f"{hint}_{self.counter}"

    def new_activation(self, features: int, hint: str = "act") -> str:
        name = self.fresh(hint)
        self.graph.add_variable(name, (self.batch, features))
        return name

    def new_param(self, shape: tuple[int, ...], hint: str) -> str:
        name = self.fresh(hint)
        var = self.graph.add_variable(name, shape)
        self.param_bytes += var.total_bytes
        return name

    # -- generic emitters -----------------------------------------------------

    def emit_elementwise(
        self,
        codelet: str,
        cs_name: str,
        in_vars: list[str],
        out_var: str,
        elements: int,
        params: dict | None = None,
        remote_inputs: bool = False,
    ) -> None:
        """One compute set of elementwise vertices spread across tiles."""
        cs = self.graph.add_compute_set(cs_name)
        n_tiles = _tiles_for(elements, self.spec)
        for tile, chunk in enumerate(_chunks(elements, n_tiles)):
            self.graph.add_vertex(
                cs,
                Vertex(
                    codelet=codelet,
                    tile=tile,
                    inputs=[
                        Edge(v, chunk, local=not remote_inputs)
                        for v in in_vars
                    ],
                    outputs=[Edge(out_var, chunk, local=True)],
                    params=dict(params or {}),
                ),
            )

    def emit_stage_pyramid(
        self,
        codelet: str,
        cs_prefix: str,
        levels: int,
        x_var: str,
        features: int,
        params_per_vertex,
        aux_var: str | None = None,
        aux_elements_per_vertex: int = 0,
    ) -> str:
        """``levels`` compute sets of stage vertices, ping-ponging buffers.

        Each level reshuffles the activation across tiles (remote inputs —
        the exchange cost of strided butterfly/FWHT/FFT access patterns).
        Only two staging buffers are allocated and alternated — Poplar's
        liveness analysis would reuse the storage the same way, so a
        ``log n``-level pyramid costs 2 activations of memory, not
        ``log n``.  Returns the final activation variable.
        """
        ping = self.new_activation(features, hint=f"{cs_prefix}_ping")
        pong = self.new_activation(features, hint=f"{cs_prefix}_pong")
        cur = x_var
        for level in range(levels):
            nxt = ping if level % 2 == 0 else pong
            cs = self.graph.add_compute_set(f"{cs_prefix}/level{level}")
            total_pairs = (features // 2) * self.batch
            n_tiles = _tiles_for(total_pairs * 2, self.spec)
            for tile, pairs in enumerate(_chunks(total_pairs, n_tiles)):
                inputs = [Edge(cur, 2 * pairs)]
                if aux_var is not None:
                    inputs.append(
                        Edge(aux_var, aux_elements_per_vertex, local=True)
                    )
                self.graph.add_vertex(
                    cs,
                    Vertex(
                        codelet=codelet,
                        tile=tile,
                        inputs=inputs,
                        outputs=[Edge(nxt, 2 * pairs, local=True)],
                        params=params_per_vertex(level, pairs),
                    ),
                )
            cur = nxt
        return cur

    def emit_bias_add(self, x_var: str, features: int, hint: str) -> str:
        bias = self.new_param((features,), f"{hint}_bias")
        out = self.new_activation(features, hint=f"{hint}_biased")
        self.emit_elementwise(
            "ElementwiseBinary",
            f"{hint}/bias",
            [x_var, bias],
            out,
            elements=self.batch * features,
            params={"op": "add"},
        )
        return out

    def emit_matmul_layer(
        self,
        x_var: str,
        in_features: int,
        out_features: int,
        hint: str,
    ) -> str:
        """Planned AMP matmul: activation (B, in) @ weight (in, out)."""
        weight = self.new_param((in_features, out_features), f"{hint}_w")
        out = self.new_activation(out_features, hint=f"{hint}_out")
        emit_matmul(
            self.graph,
            self.spec,
            x_var,
            weight,
            out,
            m=self.batch,
            n=out_features,
            k=in_features,
            name=self.fresh(hint),
        )
        return out


# ---------------------------------------------------------------------------
# Per-layer lowerings
# ---------------------------------------------------------------------------


def _lower_linear(low: _Lowering, layer: Linear, x: str) -> tuple[str, int]:
    out = low.emit_matmul_layer(
        x, layer.in_features, layer.out_features, "linear"
    )
    if layer.bias is not None:
        out = low.emit_bias_add(out, layer.out_features, "linear")
    return out, layer.out_features


def _lower_butterfly(
    low: _Lowering, layer: ButterflyLinear, x: str
) -> tuple[str, int]:
    n = layer.n
    levels = log2_int(n)
    if layer.in_features < n:
        padded = low.new_activation(n, hint="bfly_pad")
        low.emit_elementwise(
            "Copy",
            "butterfly/pad",
            [x],
            padded,
            elements=low.batch * layer.in_features,
        )
        x = padded
    pairs_per_level = (n // 2) * low.batch
    n_tiles = _tiles_for(pairs_per_level * 2, low.spec)
    twiddle_per_vertex = math.ceil((n // 2) * 4 / n_tiles)
    out = x
    for block in range(getattr(layer, "nblocks", 1)):
        twiddle = low.new_param((levels, n // 2, 2, 2), "bfly_twiddle")
        out = low.emit_stage_pyramid(
            "ButterflyStage",
            f"butterfly{block}" if block else "butterfly",
            levels,
            out,
            n,
            params_per_vertex=lambda level, pairs: {"n_pairs": pairs},
            aux_var=twiddle,
            aux_elements_per_vertex=twiddle_per_vertex,
        )
    if layer.out_features < n:
        sliced = low.new_activation(layer.out_features, hint="bfly_slice")
        low.emit_elementwise(
            "Copy",
            "butterfly/slice",
            [out],
            sliced,
            elements=low.batch * layer.out_features,
        )
        out = sliced
    if layer.bias is not None:
        out = low.emit_bias_add(out, layer.out_features, "butterfly")
    return out, layer.out_features


def _lower_pixelfly(
    low: _Lowering, layer: PixelflyLinear, x: str
) -> tuple[str, int]:
    pattern = layer.pattern
    n = layer.features
    bs = pattern.block_size
    blocks = low.new_param((pattern.n_blocks, bs, bs), "pxf_blocks")
    sparse_out = low.new_activation(n, hint="pxf_sparse")

    # Block-sparse product: vertices partition the active blocks; each
    # gathers its input block-columns over the exchange and computes dense
    # bs x bs x batch products at the generic (non-AMP) block rate.
    cs = low.graph.add_compute_set("pixelfly/blocksparse")
    total_flops = 2 * pattern.n_blocks * bs * bs * low.batch
    # Parallelism: one vertex per (block, 64-row batch chunk) — the einsum
    # batches over blocks and coarse batch slabs, so small mini-batches
    # (like Table 4's 50) leave most tiles idle.
    batch_chunks = max(1, low.batch // 64)
    n_tiles = max(
        1, min(low.spec.n_tiles, pattern.n_blocks * batch_chunks)
    )
    for tile, nblk in enumerate(_chunks(pattern.n_blocks, n_tiles)):
        if nblk == 0:
            continue
        low.graph.add_vertex(
            cs,
            Vertex(
                codelet="BlockSparseMatMul",
                tile=tile,
                inputs=[
                    Edge(x, nblk * bs * low.batch),
                    Edge(blocks, nblk * bs * bs, local=True),
                ],
                outputs=[
                    Edge(sparse_out, nblk * bs * low.batch, local=True)
                ],
                params={"flops": total_flops // n_tiles},
            ),
        )
    # Scatter-reduce: blocks mapping to the same output row-block are summed.
    reduced = low.new_activation(n, hint="pxf_reduced")
    low.emit_elementwise(
        "ReduceAdd",
        "pixelfly/scatter_reduce",
        [sparse_out],
        reduced,
        elements=low.batch * n,
        remote_inputs=True,
    )
    out = reduced
    if layer.u is not None:
        r = pattern.rank
        mid = low.emit_matmul_layer(x, n, r, "pxf_lowrank_v")
        lr_out = low.emit_matmul_layer(mid, r, n, "pxf_lowrank_u")
        combined = low.new_activation(n, hint="pxf_sum")
        low.emit_elementwise(
            "ElementwiseBinary",
            "pixelfly/add_lowrank",
            [out, lr_out],
            combined,
            elements=low.batch * n,
            params={"op": "add"},
        )
        out = combined
    if layer.residual:
        res = low.new_activation(n, hint="pxf_res")
        low.emit_elementwise(
            "ElementwiseBinary",
            "pixelfly/residual",
            [out, x],
            res,
            elements=low.batch * n,
            params={"op": "add"},
        )
        out = res
    if layer.bias is not None:
        out = low.emit_bias_add(out, n, "pixelfly")
    return out, n


def _lower_fastfood(
    low: _Lowering, layer: FastfoodLinear, x: str
) -> tuple[str, int]:
    n = layer.features
    levels = log2_int(n)

    def diag(cur: str, hint: str) -> str:
        d = low.new_param((n,), f"ff_{hint}")
        out = low.new_activation(n, hint=f"ff_{hint}_out")
        low.emit_elementwise(
            "DiagScale",
            f"fastfood/{hint}",
            [cur, d],
            out,
            elements=low.batch * n,
        )
        return out

    cur = diag(x, "B")
    cur = low.emit_stage_pyramid(
        "FWHTStage",
        "fastfood/H1",
        levels,
        cur,
        n,
        params_per_vertex=lambda level, pairs: {"elements": 2 * pairs},
    )
    # Permutation: a full remote reshuffle (gather by fixed indices).
    permuted = low.new_activation(n, hint="ff_perm")
    low.emit_elementwise(
        "Copy",
        "fastfood/permute",
        [cur],
        permuted,
        elements=low.batch * n,
        remote_inputs=True,
    )
    cur = diag(permuted, "G")
    cur = low.emit_stage_pyramid(
        "FWHTStage",
        "fastfood/H2",
        levels,
        cur,
        n,
        params_per_vertex=lambda level, pairs: {"elements": 2 * pairs},
    )
    cur = diag(cur, "S")
    if layer.bias is not None:
        cur = low.emit_bias_add(cur, n, "fastfood")
    return cur, n


def _lower_circulant(
    low: _Lowering, layer: CirculantLinear, x: str
) -> tuple[str, int]:
    n = layer.features
    levels = max(1, int(math.ceil(math.log2(max(n, 2)))))
    low.new_param((n,), "circ_c")  # the defining vector (spectrum cached)
    # poplibs exposes a fused FFT: one compute set per transform, not one
    # per stage — the library advantage PyTorch's FWHT lacks.
    pairs = (n // 2) * low.batch

    def fft_cs(cur: str, hint: str) -> str:
        out = low.new_activation(n, hint=hint)
        cs = low.graph.add_compute_set(f"circulant/{hint}")
        # Library-fused FFT spreads much finer than per-stage generic code.
        n_tiles = _tiles_for(pairs * 2, low.spec, min_per_vertex=64)
        for tile, chunk in enumerate(_chunks(pairs, n_tiles)):
            low.graph.add_vertex(
                cs,
                Vertex(
                    codelet="FFTStage",
                    tile=tile,
                    inputs=[Edge(cur, 2 * chunk)],
                    outputs=[Edge(out, 2 * chunk, local=True)],
                    # Fused library FFT: all log n stages inside the vertex.
                    params={"n_pairs": chunk * levels},
                ),
            )
        return out

    cur = fft_cs(x, "rfft")
    spec_mul = low.new_activation(n, hint="circ_specmul")
    low.emit_elementwise(
        "ElementwiseBinary",
        "circulant/spectrum_mul",
        [cur, cur],
        spec_mul,
        elements=low.batch * n,
        params={"op": "mul"},
    )
    cur = fft_cs(spec_mul, "irfft")
    if layer.bias is not None:
        cur = low.emit_bias_add(cur, n, "circulant")
    return cur, n


def _lower_lowrank(
    low: _Lowering, layer: LowRankLinear, x: str
) -> tuple[str, int]:
    mid = low.emit_matmul_layer(x, layer.in_features, layer.rank, "lr_v")
    out = low.emit_matmul_layer(mid, layer.rank, layer.out_features, "lr_u")
    if layer.bias is not None:
        out = low.emit_bias_add(out, layer.out_features, "lowrank")
    return out, layer.out_features


def _lower_activation(
    low: _Lowering, op: str, x: str, features: int, hint: str
) -> str:
    out = low.new_activation(features, hint=f"{hint}_out")
    low.emit_elementwise(
        "ElementwiseUnary",
        f"{hint}/{op}",
        [x],
        out,
        elements=low.batch * features,
        params={"op": op},
    )
    return out


def module_signature(module: Module) -> tuple | None:
    """Canonical structural identity of *module* for the compilation cache.

    Captures exactly the attributes the lowering reads — layer sizes,
    block/rank/stride structure, bias presence — and nothing weight-valued,
    so two models that lower to identical graphs share a signature.
    Returns ``None`` for module types the walk does not recognise, which
    makes the cache fall back to fingerprinting the built graph.
    """
    if isinstance(module, Sequential):
        parts = []
        for child in module:
            sig = module_signature(child)
            if sig is None:
                return None
            parts.append(sig)
        return ("seq",) + tuple(parts)
    if isinstance(module, LowRankLinear):
        return (
            "lowrank", module.in_features, module.out_features,
            module.rank, module.bias is not None,
        )
    if isinstance(module, Linear):
        return (
            "linear", module.in_features, module.out_features,
            module.bias is not None,
        )
    if isinstance(module, ButterflyLinear):
        return (
            "butterfly", module.in_features, module.out_features, module.n,
            module.nblocks, module.increasing_stride,
            module.bias is not None,
        )
    if isinstance(module, PixelflyLinear):
        return (
            "pixelfly", module.features, module.block_size,
            module.butterfly_size, module.rank, module.pattern.n_blocks,
            module.residual, module.u is not None, module.bias is not None,
        )
    if isinstance(module, FastfoodLinear):
        return ("fastfood", module.features, module.bias is not None)
    if isinstance(module, CirculantLinear):
        return ("circulant", module.features, module.bias is not None)
    if isinstance(module, (ReLU, Tanh, Sigmoid, BatchNorm1d, LayerNorm)):
        return (type(module).__name__.lower(),)
    if isinstance(module, (Identity, Flatten, Dropout)):
        return ("noop",)
    return None


def lower_model(
    model: Module, spec: IPUSpec, batch: int, in_features: int,
    host_io: bool = False,
) -> tuple[Graph, int]:
    """Emit the forward graph of *model*; returns (graph, param_bytes)."""
    if batch <= 0 or in_features <= 0:
        raise ValueError("batch and in_features must be positive")
    graph = Graph(spec.n_tiles, name=f"ipu_{type(model).__name__}")
    low = _Lowering(graph, spec, batch)
    x = low.new_activation(in_features, hint="input")
    if host_io:
        graph.add_host_write(x)
    features = in_features

    def lower(module: Module, x: str, features: int) -> tuple[str, int]:
        if isinstance(module, Sequential):
            for child in module:
                x, features = lower(child, x, features)
            return x, features
        if isinstance(module, Linear):
            return _lower_linear(low, module, x)
        if isinstance(module, ButterflyLinear):
            return _lower_butterfly(low, module, x)
        if isinstance(module, PixelflyLinear):
            return _lower_pixelfly(low, module, x)
        if isinstance(module, FastfoodLinear):
            return _lower_fastfood(low, module, x)
        if isinstance(module, CirculantLinear):
            return _lower_circulant(low, module, x)
        if isinstance(module, LowRankLinear):
            return _lower_lowrank(low, module, x)
        if isinstance(module, ReLU):
            return _lower_activation(low, "relu", x, features, "relu"), features
        if isinstance(module, (Tanh, Sigmoid)):
            # Costed like any other elementwise op.
            return (
                _lower_activation(low, "square", x, features, "act"),
                features,
            )
        if isinstance(module, (BatchNorm1d, LayerNorm)):
            # Two supersteps: reduce for statistics, then normalise+affine.
            stats = low.new_activation(features, hint="norm_stats")
            low.emit_elementwise(
                "ReduceAdd",
                "norm/stats",
                [x],
                stats,
                elements=low.batch * features,
                remote_inputs=isinstance(module, BatchNorm1d),
            )
            out = low.new_activation(features, hint="norm_out")
            low.emit_elementwise(
                "ElementwiseBinary",
                "norm/apply",
                [x, stats],
                out,
                elements=low.batch * features,
                params={"op": "mul"},
            )
            return out, features
        if isinstance(module, (Identity, Flatten, Dropout)):
            return x, features
        raise TypeError(
            f"IPU lowering does not support {type(module).__name__}"
        )

    x, features = lower(model, x, features)
    if host_io:
        graph.add_host_read(x)
    sig = module_signature(model)
    if sig is not None:
        graph.provenance = (
            "poptorch.lower", sig, batch, in_features, bool(host_io)
        )
    return graph, low.param_bytes


@dataclass
class IPUModule:
    """A model lowered onto the IPU simulator (PopTorch stand-in).

    Parameters mirror the real workflow: wrap the model, pick a batch size,
    then query compiled-graph statistics and timing estimates.
    """

    model: Module
    in_features: int
    batch: int
    spec: IPUSpec = GC200
    host_io: bool = False
    #: Compile with the liveness-driven memory planner: staging buffers
    #: with disjoint live ranges share tile memory (see
    #: :mod:`repro.ipu.memplan`).
    plan_memory: bool = False

    def __post_init__(self) -> None:
        self._graph, self.param_bytes = lower_model(
            self.model, self.spec, self.batch, self.in_features,
            host_io=self.host_io,
        )
        self._compiled: CompiledGraph | None = None

    @property
    def graph(self) -> Graph:
        return self._graph

    def compile(self, check_fit: bool = False) -> CompiledGraph:
        """Compile (memoised) and return the compiled graph."""
        if self._compiled is None:
            self._compiled = compile_graph(
                self._graph,
                self.spec,
                check_fit=check_fit,
                plan_memory=self.plan_memory,
            )
        return self._compiled

    def fits(self) -> bool:
        """True iff the forward graph fits in tile memory."""
        return self.compile().memory.fits

    def forward(self, x) -> "np.ndarray":
        """Numeric forward of up to ``batch`` input rows.

        The device executes one fixed compiled batch shape, so fewer
        rows are padded with zeros up to ``batch`` before the model runs
        and the padding rows are stripped from the result.  Because
        every call goes through the *same* padded shape and every layer
        this repo ships is row-independent, a batch of requests returns
        bit-identical bytes to running each request alone — the
        micro-batcher's correctness precondition, pinned down by the
        ``batched_forward`` verify oracle and
        ``tests/ipu/test_batched_forward.py``.
        """
        import numpy as np

        from repro.nn.tensor import Tensor

        x = np.asarray(x, dtype=float)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"expected (rows, {self.in_features}) input, "
                f"got shape {x.shape}"
            )
        rows = x.shape[0]
        if not 1 <= rows <= self.batch:
            raise ValueError(
                f"got {rows} rows; the compiled batch holds "
                f"1..{self.batch}"
            )
        padded = np.zeros((self.batch, self.in_features), dtype=x.dtype)
        padded[:rows] = x
        return self.model(Tensor(padded)).data[:rows]

    def profile(self) -> GraphProfile:
        """Fig 5 / Fig 7 statistics of the forward graph."""
        return self.compile().profile()

    def forward_report(self) -> ExecutionReport:
        """Estimated timing of one forward pass."""
        return Executor(self.compile()).estimate()

    def forward_time(self) -> float:
        """Seconds for one forward pass (including engine overhead)."""
        return self.forward_report().total_s

    def training_step_time(self, stream_io: bool = True) -> float:
        """Seconds for one training step (fwd + bwd + optimiser update).

        Backward re-runs the layer pipeline with roughly twice the device
        work (grad-input and grad-weight products per layer); the optimiser
        adds one elementwise compute set per parameter tensor.  Everything
        shares a single engine run, as PopTorch compiles the full step.

        With ``stream_io`` (the default, matching how PopTorch training
        actually behaves — the paper's Note 4), each step also streams the
        input mini-batch from the host.
        """
        fwd = self.forward_report()
        device_work = fwd.total_s - fwd.engine_overhead_s
        n_param_tensors = sum(1 for _ in self.model.parameters())
        update_s = (
            n_param_tensors * self.spec.sync_cycles / self.spec.clock_hz
            + (self.param_bytes / 4) / self.spec.vector_flops_per_second
        )
        stream_s = 0.0
        if stream_io and not self.host_io:  # avoid double counting
            stream_s = (
                self.batch * self.in_features * 4
            ) / self.spec.effective_host_bandwidth
        return fwd.engine_overhead_s + 3.0 * device_work + update_s + stream_s

    def training_memory_bytes(self) -> dict[str, float]:
        """Memory footprint of a *training* step, by category.

        Training needs, beyond the compiled forward graph: one gradient
        buffer per parameter, the SGD momentum state (another parameter
        copy), and the activation stash — forward activations are kept
        live for the backward pass (no ping-pong reuse during training).

        Returns a dict with ``weights``, ``gradients``, ``optimizer_state``,
        ``activations``, ``graph_overhead`` and ``total`` (bytes).  This is
        the quantity the paper's title is about: butterfly cuts ``weights +
        gradients + optimizer_state`` by its compression ratio.
        """
        compiled = self.compile()
        breakdown = compiled.memory.breakdown
        activations = breakdown.variables - self.param_bytes
        report = {
            "weights": float(self.param_bytes),
            "gradients": float(self.param_bytes),
            "optimizer_state": float(self.param_bytes),
            "activations": float(max(activations, 0.0)),
            "graph_overhead": float(breakdown.overhead),
        }
        report["total"] = sum(report.values())
        return report

    def fits_for_training(self) -> bool:
        """True iff the training-step footprint fits In-Processor-Memory."""
        usable = self.spec.n_tiles * self.spec.usable_tile_memory
        return self.training_memory_bytes()["total"] <= usable
