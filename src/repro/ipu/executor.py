"""BSP execution engine: runs or time-estimates a compiled graph.

Each compute set is one superstep: all participating tiles run their
vertices (compute phase, bounded by the slowest tile), then the fabric
moves every remote edge's data (exchange phase), then a global sync.
Timing is therefore

    ``t_cs = sync + max_tile(compute cycles)/f + exchange(max tile recv)``

Copies and host I/O are separate program steps with their own costs.  The
executor can run with numerics (validating the simulator against numpy) or
as a pure estimate (for large sweeps).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

import numpy as np

from repro.ipu.compiler import CompiledGraph
from repro.ipu.exchange import ExchangeModel
from repro.ipu.vertices import CODELETS, vertex_cycles
from repro.obs import get_tracer
from repro.utils import format_seconds

__all__ = ["StepTiming", "ExecutionReport", "Executor"]


@dataclass(frozen=True)
class StepTiming:
    """Time breakdown of one program step."""

    name: str
    kind: str
    compute_s: float = 0.0
    exchange_s: float = 0.0
    sync_s: float = 0.0
    host_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.compute_s + self.exchange_s + self.sync_s + self.host_s


@dataclass
class ExecutionReport:
    """Aggregated timing of one program execution."""

    steps: list[StepTiming] = field(default_factory=list)
    engine_overhead_s: float = 0.0

    @property
    def compute_s(self) -> float:
        return sum(s.compute_s for s in self.steps)

    @property
    def exchange_s(self) -> float:
        return sum(s.exchange_s for s in self.steps)

    @property
    def sync_s(self) -> float:
        return sum(s.sync_s for s in self.steps)

    @property
    def host_s(self) -> float:
        return sum(s.host_s for s in self.steps)

    @property
    def total_s(self) -> float:
        """End-to-end time including the fixed engine-run overhead."""
        return self.engine_overhead_s + sum(s.total_s for s in self.steps)

    def __str__(self) -> str:
        return (
            f"ExecutionReport(total={format_seconds(self.total_s)}: "
            f"compute={format_seconds(self.compute_s)}, "
            f"exchange={format_seconds(self.exchange_s)}, "
            f"sync={format_seconds(self.sync_s)}, "
            f"host={format_seconds(self.host_s)}, "
            f"overhead={format_seconds(self.engine_overhead_s)})"
        )


class Executor:
    """Runs or estimates a :class:`CompiledGraph` program."""

    def __init__(self, compiled: CompiledGraph) -> None:
        self.compiled = compiled
        self.spec = compiled.spec
        self.graph = compiled.graph
        self.exchange = ExchangeModel(self.spec)

    # -- timing ---------------------------------------------------------------

    def _compute_set_timing(self, cs_index: int) -> StepTiming:
        cs = self.graph.compute_sets[cs_index]
        cycles_per_tile: dict[int, float] = defaultdict(float)
        recv_per_tile: dict[int, int] = defaultdict(int)
        for vertex in self.graph.vertices_in(cs):
            cycles_per_tile[vertex.tile] += vertex_cycles(vertex, self.spec)
            recv_per_tile[vertex.tile] += vertex.remote_input_bytes()
        compute_s = (
            max(cycles_per_tile.values()) / self.spec.clock_hz
            if cycles_per_tile
            else 0.0
        )
        exchange_s = self.exchange.gather_time(
            {t: b for t, b in recv_per_tile.items() if b > 0}
        )
        sync_s = self.spec.sync_cycles / self.spec.clock_hz
        return StepTiming(
            name=cs.name,
            kind="compute",
            compute_s=compute_s,
            exchange_s=exchange_s,
            sync_s=sync_s,
        )

    def _copy_timing(self, src: str, dst: str) -> StepTiming:
        src_var = self.graph.variables[src]
        dst_var = self.graph.variables[dst]
        # Copy streams through the exchange; tiles move their shares in
        # parallel, bounded by the most-loaded destination tile.
        per_tile = src_var.total_bytes / dst_var.tile_span
        exchange_s = self.exchange.gather_time({0: int(np.ceil(per_tile))})
        sync_s = self.spec.sync_cycles / self.spec.clock_hz
        return StepTiming(
            name=f"copy {src}->{dst}",
            kind="copy",
            exchange_s=exchange_s,
            sync_s=sync_s,
        )

    def _host_timing(self, var: str, kind: str) -> StepTiming:
        nbytes = self.graph.variables[var].total_bytes
        host_s = nbytes / self.spec.effective_host_bandwidth
        return StepTiming(name=f"{kind} {var}", kind=kind, host_s=host_s)

    #: Virtual tracer track the executor's simulated timeline lives on.
    TRACE_TRACK = "ipu"

    def _trace_report(self, report: ExecutionReport) -> None:
        """Emit the report as spans on the simulated-IPU timeline.

        One top-level span per program step (category = step kind, with
        the compute/exchange/sync/host split as attributes) plus nested
        phase spans, so the Chrome trace shows exactly the BSP structure.
        Span durations match :class:`StepTiming` totals exactly.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return
        track = self.TRACE_TRACK
        graph_name = self.graph.name
        if report.engine_overhead_s > 0:
            tracer.add_span(
                "engine_overhead",
                report.engine_overhead_s,
                track,
                category="overhead",
                graph=graph_name,
            )
        for step in report.steps:
            t0 = tracer.cursor(track)
            tracer.add_span(
                step.name,
                step.total_s,
                track,
                category=step.kind,
                graph=graph_name,
                compute_s=step.compute_s,
                exchange_s=step.exchange_s,
                sync_s=step.sync_s,
                host_s=step.host_s,
            )
            offset = t0
            for phase in ("compute", "exchange", "sync", "host"):
                duration = getattr(step, f"{phase}_s")
                if duration > 0:
                    tracer.add_span(
                        phase,
                        duration,
                        track,
                        category="phase",
                        start_s=offset,
                        depth=1,
                    )
                    offset += duration

    def estimate(self) -> ExecutionReport:
        """Time the program without executing numerics."""
        report = ExecutionReport(
            engine_overhead_s=self.spec.engine_run_overhead_s
        )
        for step in self.graph.program:
            if step.kind == "compute":
                report.steps.append(self._compute_set_timing(step.ref))
            elif step.kind == "copy":
                report.steps.append(self._copy_timing(*step.ref))
            else:
                report.steps.append(self._host_timing(step.ref, step.kind))
        self._trace_report(report)
        return report

    # -- numeric execution -----------------------------------------------------

    def run(
        self, inputs: dict[str, np.ndarray]
    ) -> tuple[dict[str, np.ndarray], ExecutionReport]:
        """Execute the program numerically; returns (state, timing report).

        Every variable gets a zero-initialised buffer unless supplied in
        *inputs*.  Raises if the graph uses estimate-only codelets.
        """
        state: dict[str, np.ndarray] = {}
        for name, var in self.graph.variables.items():
            if name in inputs:
                arr = np.asarray(inputs[name])
                if arr.shape != var.shape:
                    raise ValueError(
                        f"input {name!r} has shape {arr.shape}, variable "
                        f"expects {var.shape}"
                    )
                state[name] = arr.astype(np.float64, copy=True)
            else:
                state[name] = np.zeros(var.shape, dtype=np.float64)
        unknown = {
            v.codelet
            for v in self.graph.vertices
            if CODELETS.get(v.codelet) is None
            or CODELETS[v.codelet].execute is None
        }
        if unknown:
            raise RuntimeError(
                f"graph uses estimate-only codelets {sorted(unknown)}; "
                "numeric run is not available"
            )
        report = ExecutionReport(
            engine_overhead_s=self.spec.engine_run_overhead_s
        )
        with get_tracer().span(
            "executor.run", category="ipu", graph=self.graph.name
        ):
            for step in self.graph.program:
                if step.kind == "compute":
                    cs = self.graph.compute_sets[step.ref]
                    for vertex in self.graph.vertices_in(cs):
                        CODELETS[vertex.codelet].execute(vertex, state)
                    report.steps.append(self._compute_set_timing(step.ref))
                elif step.kind == "copy":
                    src, dst = step.ref
                    state[dst] = state[src].reshape(
                        self.graph.variables[dst].shape
                    ).copy()
                    report.steps.append(self._copy_timing(src, dst))
                else:
                    report.steps.append(
                        self._host_timing(step.ref, step.kind)
                    )
        self._trace_report(report)
        return state, report
