"""BSP execution engine: runs or time-estimates a compiled graph.

Each compute set is one superstep: all participating tiles run their
vertices (compute phase, bounded by the slowest tile), then the fabric
moves every remote edge's data (exchange phase), then a global sync.
Timing is therefore

    ``t_cs = sync + max_tile(compute cycles)/f + exchange(max tile recv)``

Copies and host I/O are separate program steps with their own costs.  The
executor can run with numerics (validating the simulator against numpy) or
as a pure estimate (for large sweeps).

Chaos testing: an optional :class:`~repro.faults.injector.FaultInjector`
delivers seeded faults per program step.  Transient compute faults and
exchange ECC corruption are recovered in place — each retry re-runs the
superstep and adds realistic resync + re-exchange time to the step's
``retry_s`` — while a permanent tile failure raises
:class:`~repro.faults.injector.PermanentTileFault` so the caller can
recompile onto the surviving tile set (``compile_graph(...,
exclude_tiles=...)``) and re-execute.  Without an injector the fault hooks
cost one attribute check per step and the output is byte-identical to the
pre-fault executor.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, replace

import numpy as np

from repro.faults.injector import (
    NULL_INJECTOR,
    FaultInjector,
    PermanentTileFault,
    UnrecoveredFaultError,
)
from repro.faults.plan import (
    EXCHANGE_CORRUPTION,
    HOST_STALL,
    PERMANENT_TILE,
    TRANSIENT_COMPUTE,
    FaultEvent,
)
from repro.ipu.compiler import CompiledGraph
from repro.ipu.exchange import ExchangeModel
from repro.ipu.vertices import CODELETS, vertex_cycles
from repro.obs import get_logger, get_registry, get_tracer
from repro.utils import format_seconds

__all__ = ["StepTiming", "ExecutionReport", "Executor"]


@dataclass(frozen=True)
class StepTiming:
    """Time breakdown of one program step.

    ``retry_s`` is the extra time spent recovering injected faults on
    this step (superstep re-runs, backoff, ECC scrubs, host stalls);
    ``retries`` counts the recovery attempts.  Both stay zero on healthy
    runs.
    """

    name: str
    kind: str
    compute_s: float = 0.0
    exchange_s: float = 0.0
    sync_s: float = 0.0
    host_s: float = 0.0
    retry_s: float = 0.0
    retries: int = 0
    #: Bytes moved through the exchange fabric (or host link) this step.
    exchange_bytes: int = 0

    @property
    def total_s(self) -> float:
        return (
            self.compute_s
            + self.exchange_s
            + self.sync_s
            + self.host_s
            + self.retry_s
        )


@dataclass
class ExecutionReport:
    """Aggregated timing of one program execution."""

    steps: list[StepTiming] = field(default_factory=list)
    engine_overhead_s: float = 0.0

    @property
    def compute_s(self) -> float:
        return sum(s.compute_s for s in self.steps)

    @property
    def exchange_s(self) -> float:
        return sum(s.exchange_s for s in self.steps)

    @property
    def sync_s(self) -> float:
        return sum(s.sync_s for s in self.steps)

    @property
    def host_s(self) -> float:
        return sum(s.host_s for s in self.steps)

    @property
    def retry_s(self) -> float:
        """Total fault-recovery time across all steps."""
        return sum(s.retry_s for s in self.steps)

    @property
    def exchange_bytes(self) -> int:
        """Total bytes moved through the exchange/host links."""
        return sum(s.exchange_bytes for s in self.steps)

    @property
    def retries(self) -> int:
        """Total fault-recovery attempts across all steps."""
        return sum(s.retries for s in self.steps)

    @property
    def total_s(self) -> float:
        """End-to-end time including the fixed engine-run overhead."""
        return self.engine_overhead_s + sum(s.total_s for s in self.steps)

    def __str__(self) -> str:
        retry = (
            f", retry={format_seconds(self.retry_s)}"
            if self.retry_s > 0
            else ""
        )
        return (
            f"ExecutionReport(total={format_seconds(self.total_s)}: "
            f"compute={format_seconds(self.compute_s)}, "
            f"exchange={format_seconds(self.exchange_s)}, "
            f"sync={format_seconds(self.sync_s)}, "
            f"host={format_seconds(self.host_s)}{retry}, "
            f"overhead={format_seconds(self.engine_overhead_s)})"
        )


class Executor:
    """Runs or estimates a :class:`CompiledGraph` program.

    ``injector`` (default: the inactive :data:`NULL_INJECTOR`) delivers
    seeded faults per program step and keeps the recovery ledger; see the
    module docstring for the recovery semantics.
    """

    def __init__(
        self,
        compiled: CompiledGraph,
        injector: FaultInjector | None = None,
    ) -> None:
        self.compiled = compiled
        self.spec = compiled.spec
        self.graph = compiled.graph
        self.exchange = ExchangeModel(self.spec)
        self.injector = injector if injector is not None else NULL_INJECTOR
        #: Per-step fault windows of the most recent execution, parallel
        #: to ``report.steps``: (event, [(span name, category, seconds)]).
        self._fault_windows: list[
            list[tuple[FaultEvent, list[tuple[str, str, float]]]]
        ] = []

    # -- timing ---------------------------------------------------------------

    def _compute_set_timing(self, cs_index: int) -> StepTiming:
        cs = self.graph.compute_sets[cs_index]
        cycles_per_tile: dict[int, float] = defaultdict(float)
        recv_per_tile: dict[int, int] = defaultdict(int)
        tile_map = self.compiled.tile_map
        for vertex in self.graph.vertices_in(cs):
            tile = (
                vertex.tile if tile_map is None else int(tile_map[vertex.tile])
            )
            cycles_per_tile[tile] += vertex_cycles(vertex, self.spec)
            recv_per_tile[tile] += vertex.remote_input_bytes()
        compute_s = (
            max(cycles_per_tile.values()) / self.spec.clock_hz
            if cycles_per_tile
            else 0.0
        )
        exchange_s = self.exchange.gather_time(
            {t: b for t, b in recv_per_tile.items() if b > 0}
        )
        sync_s = self.spec.sync_cycles / self.spec.clock_hz
        return StepTiming(
            name=cs.name,
            kind="compute",
            compute_s=compute_s,
            exchange_s=exchange_s,
            sync_s=sync_s,
            exchange_bytes=int(sum(recv_per_tile.values())),
        )

    def _copy_timing(self, src: str, dst: str) -> StepTiming:
        src_var = self.graph.variables[src]
        dst_var = self.graph.variables[dst]
        # Copy streams through the exchange; tiles move their shares in
        # parallel, bounded by the most-loaded destination tile.
        per_tile = src_var.total_bytes / dst_var.tile_span
        exchange_s = self.exchange.gather_time({0: int(np.ceil(per_tile))})
        sync_s = self.spec.sync_cycles / self.spec.clock_hz
        return StepTiming(
            name=f"copy {src}->{dst}",
            kind="copy",
            exchange_s=exchange_s,
            sync_s=sync_s,
            exchange_bytes=int(src_var.total_bytes),
        )

    def _host_timing(self, var: str, kind: str) -> StepTiming:
        nbytes = self.graph.variables[var].total_bytes
        host_s = nbytes / self.spec.effective_host_bandwidth
        return StepTiming(
            name=f"{kind} {var}",
            kind=kind,
            host_s=host_s,
            exchange_bytes=int(nbytes),
        )

    # -- fault injection -------------------------------------------------------

    def _apply_faults(
        self, step_index: int, timing: StepTiming
    ) -> tuple[StepTiming, list[tuple[FaultEvent, list[tuple[str, str, float]]]]]:
        """Inject this step's planned faults into *timing*.

        Returns the (possibly fault-extended) timing plus the fault
        windows for trace emission.  Raises :class:`PermanentTileFault`
        for permanent tile deaths (recorded fatal until the caller
        recompiles and marks them recovered) and
        :class:`UnrecoveredFaultError` when a transient fault exceeds the
        policy's retry budget.
        """
        policy = self.injector.policy
        sync_s = self.spec.sync_cycles / self.spec.clock_hz
        windows: list[tuple[FaultEvent, list[tuple[str, str, float]]]] = []
        retry_s = 0.0
        retries = 0
        for event in self.injector.faults_at(step_index, self.spec.n_tiles):
            if event.kind == PERMANENT_TILE:
                if timing.kind != "compute":
                    continue
                self.injector.record_fatal(event)
                log = get_logger()
                if log.enabled:
                    log.error(
                        "executor.abort",
                        "permanent tile death",
                        step=step_index,
                        tile=event.tile,
                    )
                raise PermanentTileFault(event)
            if event.kind == TRANSIENT_COMPUTE:
                if timing.kind != "compute":
                    continue
                if event.severity > policy.max_retries:
                    self.injector.record_fatal(event)
                    log = get_logger()
                    if log.enabled:
                        log.error(
                            "executor.abort",
                            "retry budget exhausted",
                            step=step_index,
                            tile=event.tile,
                            max_retries=policy.max_retries,
                        )
                    raise UnrecoveredFaultError(event, policy.max_retries)
                # Each failed attempt: backoff, then re-run the whole
                # superstep (compute + re-exchange + resync); one final
                # resync once the retry succeeds.
                rerun_s = timing.compute_s + timing.exchange_s + timing.sync_s
                segments = [
                    (
                        f"retry{a}",
                        "retry",
                        policy.backoff_s(a) + rerun_s,
                    )
                    for a in range(1, event.severity + 1)
                ]
                segments.append(("recovery", "recovery", sync_s))
                n_retries = event.severity
            elif event.kind == EXCHANGE_CORRUPTION:
                if timing.kind not in ("compute", "copy"):
                    continue
                # ECC scrub + full re-exchange of the superstep's data,
                # then a resync so all tiles rejoin the BSP schedule.
                segments = [
                    (
                        "retry1",
                        "retry",
                        self.exchange.ecc_scrub_time() + timing.exchange_s,
                    ),
                    ("recovery", "recovery", sync_s),
                ]
                n_retries = 1
            elif event.kind == HOST_STALL:
                if timing.kind not in ("host_write", "host_read"):
                    continue
                segments = [
                    (
                        "retry1",
                        "retry",
                        policy.host_stall_s * event.severity,
                    ),
                    ("recovery", "recovery", 0.0),
                ]
                n_retries = 1
            else:  # pragma: no cover - link faults live in ipu.multi
                continue
            window_s = sum(s for _, _, s in segments)
            retry_s += window_s
            retries += n_retries
            windows.append((event, segments))
            self.injector.record_recovered(
                event, retries=n_retries, retry_s=window_s
            )
        if not windows:
            return timing, windows
        return (
            replace(timing, retry_s=timing.retry_s + retry_s,
                    retries=timing.retries + retries),
            windows,
        )

    def _step_timing(self, step_index: int, step) -> StepTiming:
        """Timing of one program step, faults included when injecting."""
        if step.kind == "compute":
            timing = self._compute_set_timing(step.ref)
        elif step.kind == "copy":
            timing = self._copy_timing(*step.ref)
        else:
            timing = self._host_timing(step.ref, step.kind)
        if self.injector.active:
            timing, windows = self._apply_faults(step_index, timing)
            self._fault_windows.append(windows)
        return timing

    #: Virtual tracer track the executor's simulated timeline lives on.
    TRACE_TRACK = "ipu"

    def _trace_report(self, report: ExecutionReport) -> None:
        """Emit the report as spans on the simulated-IPU timeline.

        One top-level span per program step (category = step kind, with
        the compute/exchange/sync/host split as attributes) plus nested
        phase spans, so the Chrome trace shows exactly the BSP structure.
        Span durations match :class:`StepTiming` totals exactly.
        """
        tracer = get_tracer()
        if not tracer.enabled:
            return
        track = self.TRACE_TRACK
        graph_name = self.graph.name
        if report.engine_overhead_s > 0:
            tracer.add_span(
                "engine_overhead",
                report.engine_overhead_s,
                track,
                category="overhead",
                graph=graph_name,
            )
        for index, step in enumerate(report.steps):
            t0 = tracer.cursor(track)
            tracer.add_span(
                step.name,
                step.total_s,
                track,
                category=step.kind,
                graph=graph_name,
                compute_s=step.compute_s,
                exchange_s=step.exchange_s,
                sync_s=step.sync_s,
                host_s=step.host_s,
            )
            offset = t0
            for phase in ("compute", "exchange", "sync", "host"):
                duration = getattr(step, f"{phase}_s")
                if duration > 0:
                    tracer.add_span(
                        phase,
                        duration,
                        track,
                        category="phase",
                        start_s=offset,
                        depth=1,
                    )
                    offset += duration
            # Fault windows trail the healthy phases: one depth-1 span
            # per injected fault (category "fault") wrapping its retry /
            # recovery segments, so chaos runs are legible in the trace.
            windows = (
                self._fault_windows[index]
                if index < len(self._fault_windows)
                else []
            )
            for event, segments in windows:
                window_s = sum(s for _, _, s in segments)
                tracer.add_span(
                    event.kind,
                    window_s,
                    track,
                    category="fault",
                    start_s=offset,
                    depth=1,
                    tile=event.tile,
                    step=event.step,
                    severity=event.severity,
                )
                seg_offset = offset
                for seg_name, seg_category, seg_s in segments:
                    tracer.add_span(
                        seg_name,
                        seg_s,
                        track,
                        category=seg_category,
                        start_s=seg_offset,
                        depth=2,
                    )
                    seg_offset += seg_s
                offset += window_s

    def _record_metrics(self, report: ExecutionReport) -> None:
        """Fold the report into the metric registry (no-op when off)."""
        registry = get_registry()
        if not registry.enabled:
            return
        graph = self.graph.name
        for phase in ("compute", "exchange", "sync", "host", "retry"):
            registry.counter(f"executor.{phase}_s", graph=graph).inc(
                getattr(report, f"{phase}_s")
            )
        registry.counter("executor.retries", graph=graph).inc(
            report.retries
        )
        registry.counter("executor.exchange_bytes", graph=graph).inc(
            report.exchange_bytes
        )
        step_hist = registry.histogram("executor.step_s", graph=graph)
        for step in report.steps:
            registry.counter(
                "executor.steps", graph=graph, kind=step.kind
            ).inc()
            step_hist.observe(step.total_s)

    def estimate(self) -> ExecutionReport:
        """Time the program without executing numerics."""
        report = ExecutionReport(
            engine_overhead_s=self.spec.engine_run_overhead_s
        )
        self._fault_windows = []
        for index, step in enumerate(self.graph.program):
            report.steps.append(self._step_timing(index, step))
        self._trace_report(report)
        self._record_metrics(report)
        return report

    # -- numeric execution -----------------------------------------------------

    def _zero_state(self) -> dict[str, np.ndarray]:
        """One private zero buffer per variable (unplanned layout)."""
        return {
            name: np.zeros(var.shape, dtype=np.float64)
            for name, var in self.graph.variables.items()
        }

    def _aliased_state(self, plan) -> dict[str, np.ndarray]:
        """Slot-aliased buffers mirroring the compile-time memory plan.

        One flat buffer per slot; every member variable maps a reshaped
        view of the buffer's prefix, so slot-mates genuinely share
        storage and a planning bug would corrupt numerics visibly.
        """
        buffers = {
            slot.index: np.zeros(slot.n_elements, dtype=np.float64)
            for slot in plan.slots
        }
        return {
            name: buffers[plan.assignment[name]][: var.n_elements].reshape(
                var.shape
            )
            for name, var in self.graph.variables.items()
        }

    def _seed_inputs(
        self,
        state: dict[str, np.ndarray],
        inputs: dict[str, np.ndarray],
        skip: "frozenset[str] | set[str]" = frozenset(),
    ) -> None:
        """Write host inputs into *state* buffers (in place).

        *skip* holds the plan's reused variables: they are fully defined
        before any read, so their initial contents are unobservable and
        seeding them would scribble over an aliased slot-mate.
        """
        for name, var in self.graph.variables.items():
            if name not in inputs:
                continue
            arr = np.asarray(inputs[name])
            if arr.shape != var.shape:
                raise ValueError(
                    f"input {name!r} has shape {arr.shape}, variable "
                    f"expects {var.shape}"
                )
            if name in skip:
                continue
            state[name][...] = arr.astype(np.float64, copy=False)

    def _apply_step(self, step, state: dict[str, np.ndarray]) -> None:
        """Apply one program step's numerics to *state*, in place."""
        if step.kind == "compute":
            cs = self.graph.compute_sets[step.ref]
            for vertex in self.graph.vertices_in(cs):
                CODELETS[vertex.codelet].execute(vertex, state)
        elif step.kind == "copy":
            src, dst = step.ref
            state[dst][...] = state[src].reshape(
                self.graph.variables[dst].shape
            )

    def _verify_aliasing(
        self,
        inputs: dict[str, np.ndarray],
        state: dict[str, np.ndarray],
        plan,
    ) -> None:
        """Replay unplanned and require bit-identical surviving values.

        A slot's last occupant owns its bytes at program end, so every
        surviving variable must match the unplanned reference exactly —
        any divergence means the planner aliased two overlapping live
        ranges.
        """
        shadow = self._zero_state()
        self._seed_inputs(shadow, inputs)
        for step in self.graph.program:
            self._apply_step(step, shadow)
        for name in sorted(plan.surviving_variables()):
            if not np.array_equal(state[name], shadow[name]):
                raise RuntimeError(
                    f"memory plan corrupted variable {name!r}: planned "
                    "execution diverged from the unplanned reference"
                )

    def run(
        self,
        inputs: dict[str, np.ndarray],
        check_aliasing: bool = False,
    ) -> tuple[dict[str, np.ndarray], ExecutionReport]:
        """Execute the program numerically; returns (state, timing report).

        Every variable gets a zero-initialised buffer unless supplied in
        *inputs*.  Raises if the graph uses estimate-only codelets.

        When the graph was compiled with ``plan_memory=True``, buffers
        are allocated slot-aliased exactly as planned: variables sharing
        a slot share storage, and the values of
        ``plan.surviving_variables()`` (every slot's last occupant —
        which includes all program outputs) are guaranteed bit-identical
        to an unplanned run.  ``check_aliasing=True`` verifies that
        guarantee against an unplanned replay and raises on divergence.
        """
        unknown = {
            v.codelet
            for v in self.graph.vertices
            if CODELETS.get(v.codelet) is None
            or CODELETS[v.codelet].execute is None
        }
        if unknown:
            raise RuntimeError(
                f"graph uses estimate-only codelets {sorted(unknown)}; "
                "numeric run is not available"
            )
        plan = self.compiled.memory_plan()
        if plan is not None:
            state = self._aliased_state(plan)
            self._seed_inputs(state, inputs, skip=plan.reused_variables())
        else:
            state = self._zero_state()
            self._seed_inputs(state, inputs)
        report = ExecutionReport(
            engine_overhead_s=self.spec.engine_run_overhead_s
        )
        self._fault_windows = []
        with get_tracer().span(
            "executor.run",
            category="ipu",
            graph=self.graph.name,
            planned=plan is not None,
        ):
            for index, step in enumerate(self.graph.program):
                # Timing first: a permanent tile fault aborts the step
                # before its numerics execute (the data died with the
                # tile); recovered faults replay to the same values.
                timing = self._step_timing(index, step)
                self._apply_step(step, state)
                report.steps.append(timing)
        self._trace_report(report)
        self._record_metrics(report)
        if check_aliasing and plan is not None:
            self._verify_aliasing(inputs, state, plan)
        return state, report
