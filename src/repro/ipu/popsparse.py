"""popsparse-style sparse x dense matmul on the IPU simulator.

Rows of the CSR operand are partitioned across tiles balanced by *nonzero
count* (not row count) so no tile straggles; each tile's vertex gathers the
dense-operand rows its column indices touch over the exchange and emits its
output rows locally.  The COO path partitions by row ranges instead (COO
carries no row pointer to balance with), one of the structural reasons CSR
wins on the IPU (paper Note 2).
"""

from __future__ import annotations

import math

import numpy as np

from repro.ipu.compiler import compile_graph
from repro.ipu.executor import ExecutionReport, Executor
from repro.ipu.graph import Edge, Graph, Vertex
from repro.ipu.machine import IPUSpec
from repro.linalg.sparse import COOMatrix, CSRMatrix

__all__ = ["build_spmm_graph", "spmm_report"]


def _csr_row_partition(csr: CSRMatrix, n_parts: int) -> list[tuple[int, int]]:
    """Split rows into contiguous ranges with near-equal nnz."""
    m = csr.shape[0]
    n_parts = min(n_parts, m)
    target = csr.nnz / n_parts if n_parts else 0
    ranges: list[tuple[int, int]] = []
    start = 0
    for part in range(n_parts):
        if part == n_parts - 1:
            ranges.append((start, m))
            break
        # Advance until this part holds ~ (part+1) * target nnz.
        goal = (part + 1) * target
        end = int(np.searchsorted(csr.indptr, goal, side="left"))
        end = max(start + 1, min(end, m - (n_parts - part - 1)))
        ranges.append((start, end))
        start = end
    return ranges


def build_spmm_graph(
    spec: IPUSpec,
    a: CSRMatrix | COOMatrix,
    n_cols: int,
    name: str = "spmm",
) -> Graph:
    """Graph computing ``C = A_sparse @ B`` for dense ``B (k, n_cols)``."""
    if n_cols <= 0:
        raise ValueError(f"n_cols must be positive, got {n_cols}")
    m, k = a.shape
    graph = Graph(spec.n_tiles, name=name)
    graph.add_variable("B", (k, n_cols))
    graph.add_variable("C", (m, n_cols))
    # Index/value storage is part of the device footprint.
    graph.add_variable("A_values", (a.nnz,))
    if isinstance(a, CSRMatrix):
        graph.add_variable("A_indices", (a.nnz,))
        graph.add_variable("A_indptr", (m + 1,))
    else:
        graph.add_variable("A_rows", (a.nnz,))
        graph.add_variable("A_cols", (a.nnz,))

    cs = graph.add_compute_set(f"{name}/spmm")
    if isinstance(a, CSRMatrix):
        ranges = _csr_row_partition(a, spec.n_tiles)
        for tile, (r0, r1) in enumerate(ranges):
            lo, hi = int(a.indptr[r0]), int(a.indptr[r1])
            nnz = hi - lo
            chunk_indices = a.indices[lo:hi]
            unique_cols = (
                len(np.unique(chunk_indices)) if nnz else 0
            )
            graph.add_vertex(
                cs,
                Vertex(
                    codelet="SparseRowDotCSR",
                    tile=tile,
                    inputs=[
                        Edge("B", unique_cols * n_cols),
                        Edge("A_values", nnz, local=True),
                    ],
                    outputs=[
                        Edge(
                            "C",
                            (r1 - r0) * n_cols,
                            key=(slice(r0, r1), slice(0, n_cols)),
                            local=True,
                        )
                    ],
                    params={
                        "nnz": nnz,
                        "n_cols": n_cols,
                        "indptr": (a.indptr[r0 : r1 + 1] - lo),
                        "indices": chunk_indices,
                        "data": a.data[lo:hi],
                    },
                ),
            )
    else:
        n_parts = min(spec.n_tiles, m)
        rows_per = math.ceil(m / n_parts)
        order = np.argsort(a.row, kind="stable")
        rows_sorted = a.row[order]
        for tile in range(n_parts):
            r0 = tile * rows_per
            r1 = min(r0 + rows_per, m)
            lo = int(np.searchsorted(rows_sorted, r0, side="left"))
            hi = int(np.searchsorted(rows_sorted, r1, side="left"))
            idx = order[lo:hi]
            nnz = len(idx)
            unique_cols = len(np.unique(a.col[idx])) if nnz else 0
            graph.add_vertex(
                cs,
                Vertex(
                    codelet="SparseDotCOO",
                    tile=tile,
                    inputs=[
                        Edge("B", unique_cols * n_cols),
                        Edge("A_values", nnz, local=True),
                    ],
                    outputs=[
                        Edge(
                            "C",
                            (r1 - r0) * n_cols,
                            key=(slice(r0, r1), slice(0, n_cols)),
                            local=True,
                        )
                    ],
                    params={
                        "nnz": nnz,
                        "n_cols": n_cols,
                        "rows": a.row[idx] - r0,
                        "cols": a.col[idx],
                        "data": a.data[idx],
                        "n_rows": r1 - r0,
                    },
                ),
            )
    return graph


def spmm_report(
    spec: IPUSpec,
    a: CSRMatrix | COOMatrix,
    n_cols: int,
    check_fit: bool = True,
) -> ExecutionReport:
    """Compile and time ``A_sparse @ B``; convenience wrapper for benches."""
    graph = build_spmm_graph(spec, a, n_cols)
    compiled = compile_graph(graph, spec, check_fit=check_fit)
    return Executor(compiled).estimate()
