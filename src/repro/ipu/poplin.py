"""poplin-style dense matmul planning for the IPU simulator.

``choose_grid`` searches tile-partition grids ``(pm, pn, pk)`` balancing
compute, exchange and per-tile memory — the role of poplibs' matmul planner.
``build_matmul_graph`` then materialises the plan as a real
:class:`~repro.ipu.graph.Graph`: one AMP partial-product vertex per grid
cell, plus a reduction compute set when ``pk > 1``.

Three variants mirror the paper's Table 2 columns:

* ``poplin`` — planned AMP matmul (the fast path).
* ``naive`` — scalar codelets, no AMP (the "IPU naive" column).
* ``blocked`` — a hand-blocked implementation that stages operand blocks
  through temporaries with explicit copy vertices and keeps per-phase
  partials live; its copy traffic and temporary memory are why the paper's
  Note 3 reports it suffering ("too much temporal data … many copies").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.ipu.compiler import compile_graph
from repro.ipu.exchange import ExchangeModel
from repro.ipu.executor import ExecutionReport, Executor
from repro.ipu.graph import Edge, Graph, Vertex
from repro.ipu.machine import IPUSpec
from repro.ipu.vertices import VERTEX_OVERHEAD_CYCLES

__all__ = [
    "MatMulPlan",
    "choose_grid",
    "emit_matmul",
    "build_matmul_graph",
    "build_blocked_matmul_graph",
    "matmul_provenance",
    "matmul_report",
    "poptorch_matmul_report",
]


def _pow2_candidates(limit: int) -> list[int]:
    """Powers of two from 1 up to *limit* (inclusive of the largest <=)."""
    out = [1]
    while out[-1] * 2 <= limit:
        out.append(out[-1] * 2)
    return out


@dataclass(frozen=True)
class MatMulPlan:
    """A chosen partition grid and its per-tile chunk shapes.

    The grid may have more cells than tiles: like real poplin, the schedule
    then *serialises* — each tile runs several partial-product vertices over
    consecutive supersteps, accumulating into its output chunk in place
    (the AMP is an *accumulating* matrix product unit), so per-tile memory
    stays bounded by one chunk set regardless of problem size.
    """

    m: int
    n: int
    k: int
    pm: int
    pn: int
    pk: int
    element_bytes: int = 4
    n_tiles: int = 1472

    @property
    def chunk(self) -> tuple[int, int, int]:
        """Per-vertex chunk (mt, nt, kt), ceil-divided."""
        return (
            math.ceil(self.m / self.pm),
            math.ceil(self.n / self.pn),
            math.ceil(self.k / self.pk),
        )

    @property
    def cells(self) -> int:
        """Total partial-product vertices."""
        return self.pm * self.pn * self.pk

    @property
    def tiles_used(self) -> int:
        """Distinct tiles hosting partial-product vertices."""
        return min(self.pm * self.pn, self.n_tiles)

    @property
    def supersteps(self) -> int:
        """Sequential compute sets needed to serialise the cells.

        All ``pk`` k-chunks of an output cell stay on one tile (in-place
        accumulation), so the serial depth is the per-tile vertex count.
        """
        ij = self.pm * self.pn
        return math.ceil(ij / self.tiles_used) * self.pk

    def tile_memory_bytes(self) -> int:
        """Operand + output bytes a single tile must hold at once."""
        mt, nt, kt = self.chunk
        return self.element_bytes * (mt * kt + kt * nt + mt * nt)

    def exchange_bytes_per_vertex(self) -> int:
        """Operand bytes one partial-product vertex receives."""
        mt, nt, kt = self.chunk
        return self.element_bytes * (mt * kt + kt * nt)


def _plan_time(plan: MatMulPlan, spec: IPUSpec) -> float:
    """Cheap analytic estimate used only to rank candidate grids."""
    mt, nt, kt = plan.chunk
    amp_eff = min(1.0, kt / 16.0)
    per_vertex_cycles = VERTEX_OVERHEAD_CYCLES + (
        mt * nt * kt / (spec.amp_macs_per_cycle * max(amp_eff, 1e-3))
    )
    exchange = ExchangeModel(spec)
    per_step_exchange = exchange.gather_time(
        {0: plan.exchange_bytes_per_vertex()}
    )
    steps = plan.supersteps
    sync_s = steps * spec.sync_cycles / spec.clock_hz
    return (
        steps * per_vertex_cycles / spec.clock_hz
        + steps * per_step_exchange
        + sync_s
    )


def choose_grid(
    spec: IPUSpec, m: int, n: int, k: int, element_bytes: int = 4
) -> MatMulPlan:
    """Pick the fastest memory-feasible partition grid for a GEMM."""
    if min(m, n, k) <= 0:
        raise ValueError(f"matmul dims must be positive, got {(m, n, k)}")
    budget = spec.usable_tile_memory * 0.8  # leave headroom for code/buffers
    max_cells = 64 * spec.n_tiles
    feasible: list[tuple[float, MatMulPlan]] = []
    best_infeasible: tuple[float, MatMulPlan] | None = None
    for pm in _pow2_candidates(m):
        for pn in _pow2_candidates(n):
            if pm * pn > max_cells:
                break
            for pk in _pow2_candidates(min(k, max_cells // (pm * pn))):
                plan = MatMulPlan(
                    m, n, k, pm, pn, pk, element_bytes, spec.n_tiles
                )
                if plan.tile_memory_bytes() <= budget:
                    feasible.append((_plan_time(plan, spec), plan))
                else:
                    mem = plan.tile_memory_bytes()
                    if best_infeasible is None or mem < best_infeasible[0]:
                        best_infeasible = (mem, plan)
    if feasible:
        # Among near-optimal plans (within 10 % of the fastest), prefer the
        # smallest grid: fewer vertices/edges means less code and control
        # memory — the same economy real poplin applies, and the reason the
        # Fig 5 graph statistics grow with problem size.
        best_t = min(t for t, _ in feasible)
        near = [p for t, p in feasible if t <= 1.10 * best_t]
        return min(near, key=lambda p: p.cells)
    # Nothing fits: return the least-bad plan; compile_graph will raise.
    assert best_infeasible is not None
    return best_infeasible[1]


def _ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """Split [0, total) into *parts* near-even contiguous ranges."""
    base = total // parts
    rem = total % parts
    out = []
    start = 0
    for i in range(parts):
        size = base + (1 if i < rem else 0)
        out.append((start, start + size))
        start += size
    return out


def emit_matmul(
    graph: Graph,
    spec: IPUSpec,
    a: str,
    b: str,
    c: str,
    m: int,
    n: int,
    k: int,
    codelet: str = "MatMulPartialAMP",
    plan: MatMulPlan | None = None,
    name: str | None = None,
) -> MatMulPlan:
    """Emit a planned GEMM ``C = A @ B`` into an existing graph.

    Variables *a* (m,k), *b* (k,n) and *c* (m,n) must already exist; a
    partials variable is created when the plan splits ``k``.  Used both by
    :func:`build_matmul_graph` and by the PopTorch-style layer lowering in
    :mod:`repro.ipu.poptorch`.
    """
    if plan is None:
        plan = choose_grid(spec, m, n, k)
    name = name or f"{c}_mm"

    row_ranges = _ranges(m, plan.pm)
    col_ranges = _ranges(n, plan.pn)
    k_ranges = _ranges(k, plan.pk)

    # Serialised schedule: all k-chunks of an output cell share a tile and
    # accumulate in place; each tile's vertices are spread over sequential
    # compute sets so only one chunk set is live per superstep.
    compute_sets: list[int] = []
    vertices_on_tile: dict[int, int] = {}
    for ij_index, ((i0, i1), (j0, j1)) in enumerate(
        ((r, c_) for r in row_ranges for c_ in col_ranges)
    ):
        tile = ij_index % plan.tiles_used
        for kk, (k0, k1) in enumerate(k_ranges):
            step = vertices_on_tile.get(tile, 0)
            vertices_on_tile[tile] = step + 1
            while step >= len(compute_sets):
                compute_sets.append(
                    graph.add_compute_set(
                        f"{name}/partials{len(compute_sets)}"
                    )
                )
            graph.add_vertex(
                compute_sets[step],
                Vertex(
                    codelet=codelet,
                    tile=tile,
                    inputs=[
                        Edge(
                            a,
                            (i1 - i0) * (k1 - k0),
                            key=(slice(i0, i1), slice(k0, k1)),
                        ),
                        Edge(
                            b,
                            (k1 - k0) * (j1 - j0),
                            key=(slice(k0, k1), slice(j0, j1)),
                        ),
                    ],
                    outputs=[
                        Edge(
                            c,
                            (i1 - i0) * (j1 - j0),
                            key=(slice(i0, i1), slice(j0, j1)),
                            local=True,
                        )
                    ],
                    params={
                        "m": i1 - i0,
                        "n": j1 - j0,
                        "k": k1 - k0,
                        "accumulate": kk > 0,
                    },
                ),
            )
    return plan


def build_matmul_graph(
    spec: IPUSpec,
    m: int,
    n: int,
    k: int,
    codelet: str = "MatMulPartialAMP",
    plan: MatMulPlan | None = None,
    host_io: bool = False,
    name: str = "matmul",
) -> tuple[Graph, MatMulPlan]:
    """Materialise a planned GEMM as a standalone executable IPU graph.

    Variables: ``A (m,k)``, ``B (k,n)``, ``C (m,n)`` spread over all tiles,
    plus partials when the plan splits ``k``.  With ``host_io=True`` the
    program also streams A/B in and C out (the PopTorch measurement mode of
    the paper's Note 4).
    """
    graph = Graph(spec.n_tiles, name=name)
    graph.add_variable("A", (m, k))
    graph.add_variable("B", (k, n))
    graph.add_variable("C", (m, n))
    if host_io:
        graph.add_host_write("A")
        graph.add_host_write("B")
    explicit_plan = plan is not None
    plan = emit_matmul(
        graph, spec, "A", "B", "C", m, n, k, codelet=codelet, plan=plan,
        name=name,
    )
    if host_io:
        graph.add_host_read("C")
    if not explicit_plan:
        # With the plan chosen by choose_grid the graph is a pure
        # function of (dims, codelet, host_io) given the spec, so the
        # compilation cache can key on this tuple instead of walking the
        # whole structure.  An explicit plan falls back to fingerprinting.
        graph.provenance = matmul_provenance(
            m, n, k, codelet=codelet, host_io=host_io
        )
    return graph, plan


def matmul_provenance(
    m: int,
    n: int,
    k: int,
    codelet: str = "MatMulPartialAMP",
    host_io: bool = False,
) -> tuple:
    """The cache-key identity of a default-planned matmul graph.

    Matches what :func:`build_matmul_graph` attaches, so
    :func:`~repro.ipu.compiler.cached_compile` callers can look up a
    graph without building it.
    """
    return ("poplin.matmul", m, n, k, codelet, bool(host_io))


def build_blocked_matmul_graph(
    spec: IPUSpec,
    m: int,
    n: int,
    k: int,
    block: int = 128,
    name: str = "blocked_matmul",
) -> Graph:
    """The paper's hand-blocked variant: staged copies + live partials.

    Each k-phase first *copies* its operand panels into temporaries
    (distributed Copy vertices — a full extra superstep of exchange per
    phase), then computes partials into a per-phase slab that stays live
    until the final reduction.  Both the copies and the ``phases x m x n``
    partials are deliberate: they model why the paper measured only
    93 GFLOPS for this variant (Note 3).
    """
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")
    phases = math.ceil(k / block)
    pm_b = math.ceil(m / block)
    pn_b = math.ceil(n / block)
    graph = Graph(spec.n_tiles, name=name)
    graph.add_variable("A", (m, k))
    graph.add_variable("B", (k, n))
    graph.add_variable("C", (m, n))
    graph.add_variable("tmpA", (m, block))
    graph.add_variable("tmpB", (block, n))
    # The phase-partial slab stays live until the final reduce — the
    # "too much temporal data" of the paper's Note 3.
    graph.add_variable("P", (phases, m, n))

    row_ranges = _ranges(m, pm_b)
    col_ranges = _ranges(n, pn_b)

    def block_tile(bi: int, bj: int) -> int:
        return (bi * pn_b + bj) % spec.n_tiles

    for phase in range(phases):
        k0 = phase * block
        k1 = min(k0 + block, k)
        kb = k1 - k0
        # Stage the operand panels through temporaries: a full extra
        # superstep of exchange per phase ("many copies taking place").
        cs_copy = graph.add_compute_set(f"{name}/copy_in_{phase}")
        for bi, (i0, i1) in enumerate(row_ranges):
            graph.add_vertex(
                cs_copy,
                Vertex(
                    codelet="Copy",
                    tile=block_tile(bi, 0),
                    inputs=[
                        Edge(
                            "A",
                            (i1 - i0) * kb,
                            key=(slice(i0, i1), slice(k0, k1)),
                        )
                    ],
                    outputs=[
                        Edge(
                            "tmpA",
                            (i1 - i0) * kb,
                            key=(slice(i0, i1), slice(0, kb)),
                        )
                    ],
                ),
            )
        for bj, (j0, j1) in enumerate(col_ranges):
            graph.add_vertex(
                cs_copy,
                Vertex(
                    codelet="Copy",
                    tile=block_tile(0, bj),
                    inputs=[
                        Edge(
                            "B",
                            kb * (j1 - j0),
                            key=(slice(k0, k1), slice(j0, j1)),
                        )
                    ],
                    outputs=[
                        Edge(
                            "tmpB",
                            kb * (j1 - j0),
                            key=(slice(0, kb), slice(j0, j1)),
                        )
                    ],
                ),
            )
        cs_mm = graph.add_compute_set(f"{name}/mm_{phase}")
        for bi, (i0, i1) in enumerate(row_ranges):
            for bj, (j0, j1) in enumerate(col_ranges):
                graph.add_vertex(
                    cs_mm,
                    Vertex(
                        # A hand-written codelet drives neither the AMP
                        # pipeline nor the SIMD path (the paper's blocked
                        # variant performs below even the naive one:
                        # Table 2's 93 vs 525 GFLOPS).
                        codelet="MatMulPartialScalar",
                        tile=block_tile(bi, bj),
                        inputs=[
                            Edge(
                                "tmpA",
                                (i1 - i0) * kb,
                                key=(slice(i0, i1), slice(0, kb)),
                            ),
                            Edge(
                                "tmpB",
                                kb * (j1 - j0),
                                key=(slice(0, kb), slice(j0, j1)),
                            ),
                        ],
                        outputs=[
                            Edge(
                                "P",
                                (i1 - i0) * (j1 - j0),
                                key=(
                                    phase,
                                    slice(i0, i1),
                                    slice(j0, j1),
                                ),
                                local=True,
                            )
                        ],
                        params={
                            "m": i1 - i0,
                            "n": j1 - j0,
                            "k": kb,
                        },
                    ),
                )

    cs_red = graph.add_compute_set(f"{name}/reduce")
    for bi, (i0, i1) in enumerate(row_ranges):
        for bj, (j0, j1) in enumerate(col_ranges):
            elements = (i1 - i0) * (j1 - j0)
            graph.add_vertex(
                cs_red,
                Vertex(
                    codelet="ReduceAdd",
                    tile=block_tile(bi, bj),
                    inputs=[
                        Edge(
                            "P",
                            elements,
                            key=(phase, slice(i0, i1), slice(j0, j1)),
                            local=True,
                        )
                        for phase in range(phases)
                    ],
                    outputs=[
                        Edge(
                            "C",
                            elements,
                            key=(slice(i0, i1), slice(j0, j1)),
                            local=True,
                        )
                    ],
                ),
            )
    graph.provenance = ("poplin.blocked_matmul", m, n, k, block)
    return graph


def matmul_report(
    spec: IPUSpec,
    m: int,
    n: int,
    k: int,
    codelet: str = "MatMulPartialAMP",
    host_io: bool = False,
    check_fit: bool = True,
) -> ExecutionReport:
    """Plan, compile and time a GEMM; convenience wrapper for benches."""
    graph, _ = build_matmul_graph(
        spec, m, n, k, codelet=codelet, host_io=host_io
    )
    compiled = compile_graph(graph, spec, check_fit=check_fit)
    return Executor(compiled).estimate()


def poptorch_matmul_report(
    spec: IPUSpec, m: int, n: int, k: int
) -> ExecutionReport:
    """The PopTorch measurement mode: matmul time *including* host copies."""
    return matmul_report(spec, m, n, k, host_io=True)
