"""From-scratch CSR and COO sparse-matrix formats.

The paper benchmarks sparse x dense matmul through cuSPARSE (GPU) and
popsparse (IPU), in both CSR and COO storage (its Note 2: CSR wins on both
devices).  We implement both formats directly on numpy arrays rather than
wrapping :mod:`scipy.sparse`, because the device simulators need access to
the raw index structure for cost accounting (gathers per row, index bytes
moved), and because the formats themselves are part of the system under test.

The numerics are vectorised: CSR matmul uses ``np.add.reduceat`` over the
row-pointer structure; COO matmul uses ``np.add.at`` scatter-accumulation.
Both are validated against dense ground truth in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import as_rng

__all__ = ["CSRMatrix", "COOMatrix", "random_sparse", "sparsity"]


def sparsity(a: np.ndarray) -> float:
    """Fraction of exactly-zero entries in *a* (1.0 means all zero)."""
    if a.size == 0:
        return 0.0
    return float(np.count_nonzero(a == 0) / a.size)


@dataclass(frozen=True)
class CSRMatrix:
    """Compressed-sparse-row matrix.

    Attributes
    ----------
    indptr:
        ``(m+1,)`` int64 row pointers; row *i* occupies
        ``indices[indptr[i]:indptr[i+1]]``.
    indices:
        ``(nnz,)`` int64 column indices, sorted within each row.
    data:
        ``(nnz,)`` values.
    shape:
        ``(m, n)`` logical shape.
    """

    indptr: np.ndarray
    indices: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        m, n = self.shape
        if self.indptr.shape != (m + 1,):
            raise ValueError(
                f"indptr must have shape ({m + 1},), got {self.indptr.shape}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.data):
            raise ValueError("indptr must start at 0 and end at nnz")
        if np.any(np.diff(self.indptr) < 0):
            raise ValueError("indptr must be non-decreasing")
        if len(self.indices) != len(self.data):
            raise ValueError("indices and data must have equal length")
        if len(self.indices) and (
            self.indices.min() < 0 or self.indices.max() >= n
        ):
            raise ValueError("column index out of range")

    # -- construction -----------------------------------------------------

    @classmethod
    def from_dense(cls, a: np.ndarray) -> "CSRMatrix":
        """Build a CSR matrix from a dense array, dropping exact zeros."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise ValueError(f"expected 2-D array, got ndim={a.ndim}")
        rows, cols = np.nonzero(a)
        order = np.lexsort((cols, rows))
        rows, cols = rows[order], cols[order]
        indptr = np.zeros(a.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return cls(
            indptr=indptr,
            indices=cols.astype(np.int64),
            data=a[rows, cols].copy(),
            shape=a.shape,
        )

    @classmethod
    def from_coo(cls, coo: "COOMatrix") -> "CSRMatrix":
        """Convert a COO matrix to CSR (duplicates are summed)."""
        return coo.sum_duplicates().to_csr()

    # -- properties -------------------------------------------------------

    @property
    def nnz(self) -> int:
        """Number of stored (nonzero) entries."""
        return int(len(self.data))

    @property
    def density(self) -> float:
        """nnz / (m*n)."""
        m, n = self.shape
        return self.nnz / (m * n) if m * n else 0.0

    def row_nnz(self) -> np.ndarray:
        """Per-row nonzero counts, shape ``(m,)``."""
        return np.diff(self.indptr)

    def storage_bytes(
        self,
        value_bytes: int | None = None,
        index_bytes: int | None = None,
    ) -> int:
        """Storage footprint of the format (values + indices + indptr).

        Defaults to the widths this object *actually stores* (float64
        values, int64 indices — numpy's natural dtypes), so the default
        answer is honest about host memory.  Device simulators modelling
        narrower on-device formats (e.g. fp32 values with int32 column
        indices, as cuSPARSE/PopSparse use) must pass the widths they
        model explicitly.
        """
        if value_bytes is None:
            value_bytes = int(self.data.itemsize)
        if index_bytes is None:
            index_bytes = int(self.indices.itemsize)
        return (
            self.nnz * (value_bytes + index_bytes)
            + len(self.indptr) * index_bytes
        )

    # -- numerics ---------------------------------------------------------

    def to_dense(self) -> np.ndarray:
        """Expand to a dense ``(m, n)`` array."""
        m, n = self.shape
        out = np.zeros((m, n), dtype=self.data.dtype)
        rows = np.repeat(np.arange(m), self.row_nnz())
        out[rows, self.indices] = self.data
        return out

    def matmul(self, b: np.ndarray) -> np.ndarray:
        """Sparse x dense product ``self @ b`` with vectorised row reduce.

        Gathers the needed rows of *b* once (``b[indices]``), scales by the
        stored values, and reduces contiguous row segments via
        ``np.add.reduceat`` — no Python-level loop over rows.
        """
        b = np.asarray(b)
        m, n = self.shape
        if b.shape[0] != n:
            raise ValueError(f"dimension mismatch: {self.shape} @ {b.shape}")
        squeeze = b.ndim == 1
        if squeeze:
            b = b[:, None]
        out = np.zeros((m, b.shape[1]), dtype=np.result_type(self.data, b))
        if self.nnz:
            contrib = self.data[:, None] * b[self.indices]
            nonempty = np.flatnonzero(np.diff(self.indptr) > 0)
            if len(nonempty):
                starts = self.indptr[nonempty]
                out[nonempty] = np.add.reduceat(contrib, starts, axis=0)[
                    : len(nonempty)
                ]
        return out[:, 0] if squeeze else out

    def __matmul__(self, b: np.ndarray) -> np.ndarray:
        return self.matmul(b)

    def transpose(self) -> "CSRMatrix":
        """Return the transpose, re-compressed along the other axis."""
        return self.to_coo().transpose().to_csr()

    def to_coo(self) -> "COOMatrix":
        """Convert to COO (row, col, value) triplets."""
        rows = np.repeat(
            np.arange(self.shape[0], dtype=np.int64), self.row_nnz()
        )
        return COOMatrix(
            row=rows,
            col=self.indices.copy(),
            data=self.data.copy(),
            shape=self.shape,
        )


@dataclass(frozen=True)
class COOMatrix:
    """Coordinate-format sparse matrix: parallel (row, col, value) arrays."""

    row: np.ndarray
    col: np.ndarray
    data: np.ndarray
    shape: tuple[int, int]

    def __post_init__(self) -> None:
        if not (len(self.row) == len(self.col) == len(self.data)):
            raise ValueError("row, col, data must have equal length")
        m, n = self.shape
        if len(self.row) and (
            self.row.min() < 0
            or self.row.max() >= m
            or self.col.min() < 0
            or self.col.max() >= n
        ):
            raise ValueError("index out of range")

    @classmethod
    def from_dense(cls, a: np.ndarray) -> "COOMatrix":
        """Build a COO matrix from a dense array, dropping exact zeros."""
        a = np.asarray(a)
        if a.ndim != 2:
            raise ValueError(f"expected 2-D array, got ndim={a.ndim}")
        rows, cols = np.nonzero(a)
        return cls(
            row=rows.astype(np.int64),
            col=cols.astype(np.int64),
            data=a[rows, cols].copy(),
            shape=a.shape,
        )

    @property
    def nnz(self) -> int:
        """Number of stored entries (duplicates counted individually)."""
        return int(len(self.data))

    def storage_bytes(
        self,
        value_bytes: int | None = None,
        index_bytes: int | None = None,
    ) -> int:
        """Storage footprint of the format (values + both index arrays).

        As with :meth:`CSRMatrix.storage_bytes`, defaults reflect the
        stored dtypes (float64 values, int64 row/col indices); device
        simulators pass the narrower widths they model.
        """
        if value_bytes is None:
            value_bytes = int(self.data.itemsize)
        if index_bytes is None:
            index_bytes = int(self.row.itemsize)
        return self.nnz * (value_bytes + 2 * index_bytes)

    def sum_duplicates(self) -> "COOMatrix":
        """Coalesce duplicate (row, col) entries by summation."""
        if self.nnz == 0:
            return self
        m, n = self.shape
        keys = self.row * n + self.col
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        uniq, starts = np.unique(keys, return_index=True)
        summed = np.add.reduceat(self.data[order], starts)
        return COOMatrix(
            row=(uniq // n).astype(np.int64),
            col=(uniq % n).astype(np.int64),
            data=summed,
            shape=self.shape,
        )

    def to_dense(self) -> np.ndarray:
        """Expand to dense; duplicate entries accumulate."""
        out = np.zeros(self.shape, dtype=self.data.dtype)
        np.add.at(out, (self.row, self.col), self.data)
        return out

    def to_csr(self) -> CSRMatrix:
        """Convert to CSR; duplicates are preserved as separate entries."""
        order = np.lexsort((self.col, self.row))
        rows = self.row[order]
        indptr = np.zeros(self.shape[0] + 1, dtype=np.int64)
        np.add.at(indptr, rows + 1, 1)
        np.cumsum(indptr, out=indptr)
        return CSRMatrix(
            indptr=indptr,
            indices=self.col[order].astype(np.int64),
            data=self.data[order].copy(),
            shape=self.shape,
        )

    def matmul(self, b: np.ndarray) -> np.ndarray:
        """Sparse x dense product via scatter-accumulation (``np.add.at``)."""
        b = np.asarray(b)
        m, n = self.shape
        if b.shape[0] != n:
            raise ValueError(f"dimension mismatch: {self.shape} @ {b.shape}")
        squeeze = b.ndim == 1
        if squeeze:
            b = b[:, None]
        out = np.zeros((m, b.shape[1]), dtype=np.result_type(self.data, b))
        np.add.at(out, self.row, self.data[:, None] * b[self.col])
        return out[:, 0] if squeeze else out

    def __matmul__(self, b: np.ndarray) -> np.ndarray:
        return self.matmul(b)

    def transpose(self) -> "COOMatrix":
        """Swap rows and columns."""
        return COOMatrix(
            row=self.col.copy(),
            col=self.row.copy(),
            data=self.data.copy(),
            shape=(self.shape[1], self.shape[0]),
        )


def random_sparse(
    m: int,
    n: int,
    density: float,
    seed: int | np.random.Generator | None = 0,
    fmt: str = "csr",
    dtype: np.dtype = np.float32,
) -> CSRMatrix | COOMatrix:
    """Generate a uniformly random sparse matrix with exact nnz count.

    ``density`` is the fraction of nonzeros (paper's "99 % sparsity" equals
    ``density=0.01``).  Positions are sampled without replacement so the nnz
    count is exact, which the GFLOP accounting in Table 2 relies on.
    """
    if not 0.0 <= density <= 1.0:
        raise ValueError(f"density must be in [0, 1], got {density}")
    rng = as_rng(seed)
    total = m * n
    nnz = int(round(density * total))
    flat = rng.choice(total, size=nnz, replace=False)
    rows = (flat // n).astype(np.int64)
    cols = (flat % n).astype(np.int64)
    vals = rng.standard_normal(nnz).astype(dtype)
    # Avoid sampled zeros so nnz stays exact after any from_dense round-trip.
    vals[vals == 0] = 1.0
    coo = COOMatrix(row=rows, col=cols, data=vals, shape=(m, n))
    if fmt == "coo":
        return coo
    if fmt == "csr":
        return coo.to_csr()
    raise ValueError(f"unknown format {fmt!r} (expected 'csr' or 'coo')")
