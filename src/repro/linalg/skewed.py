"""Skewed-shape utilities for the Fig 4 experiment.

The paper defines the skewness of ``A(m x n) @ B(n x k)`` as ``s = m / n``
and sweeps it at (approximately) constant arithmetic work, showing the GPU
losing throughput at high aspect ratios while the IPU stays flat.  These
helpers build that sweep: shape families with a fixed FLOP budget and varying
skew.
"""

from __future__ import annotations

import numpy as np

__all__ = ["skew_ratio", "skewed_shapes", "equal_flops_shapes"]


def skew_ratio(m: int, n: int) -> float:
    """Paper's skewness ``s = m / n`` for the left operand of a GEMM."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return m / n


def skewed_shapes(base: int, exponent: int) -> tuple[int, int, int]:
    """Shape ``(m, n, k)`` with skew ``2**exponent`` around a square *base*.

    Positive exponents stretch ``m`` (tall A), negative stretch ``n`` (wide A);
    ``k`` tracks ``n`` so B stays square-ish, matching the paper's setup of
    skewing one operand.
    """
    if base <= 0:
        raise ValueError(f"base must be positive, got {base}")
    if exponent >= 0:
        m = base << exponent
        n = base
    else:
        m = base
        n = base << (-exponent)
    return m, n, n


def equal_flops_shapes(
    flops_budget: int, exponents: list[int] | np.ndarray
) -> list[tuple[int, int, int]]:
    """Shapes ``(m, n, k)`` with skew ``2**e`` each, all near *flops_budget*.

    For skew ``s = m/n`` with ``k = n``, FLOPs ``= 2 m n k = 2 s n^3``, so we
    solve for ``n`` per exponent and round to an even integer.  Exact FLOP
    equality is impossible with integer shapes; callers normalise by the
    realised FLOPs (as GFLOP/s plots do anyway).
    """
    if flops_budget <= 0:
        raise ValueError(f"flops_budget must be positive, got {flops_budget}")
    shapes: list[tuple[int, int, int]] = []
    for e in exponents:
        s = 2.0 ** float(e)
        n = max(2, int(round((flops_budget / (2.0 * s)) ** (1.0 / 3.0))))
        m = max(1, int(round(s * n)))
        shapes.append((m, n, n))
    return shapes
