"""Cache/tile-blocked dense matmul.

Both simulators plan GEMMs as grids of ``block x block`` sub-products: the
GPU's shared-memory kernel and the IPU's per-tile partials are the same
decomposition with different cost attributions.  The numeric kernel here is
the shared ground truth (and is exercised by the "IPU blocked" column of
Table 2, whose paper Note 3 observes that materialising per-block temporaries
costs memory — the accounting in :mod:`repro.ipu.poplin` mirrors that).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["block_grid", "blocked_matmul"]


def block_grid(m: int, n: int, k: int, block: int) -> tuple[int, int, int]:
    """Number of blocks along each GEMM dimension (ceil division)."""
    if block <= 0:
        raise ValueError(f"block must be positive, got {block}")
    return (
        math.ceil(m / block),
        math.ceil(n / block),
        math.ceil(k / block),
    )


def blocked_matmul(a: np.ndarray, b: np.ndarray, block: int = 64) -> np.ndarray:
    """Compute ``a @ b`` by accumulating ``block``-sized sub-products.

    Equivalent to a plain matmul; exists so tests can validate the exact
    decomposition the simulators cost out, including ragged edge blocks.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"dimension mismatch: {a.shape} @ {b.shape}")
    m, k = a.shape
    _, n = b.shape
    out = np.zeros((m, n), dtype=np.result_type(a, b))
    for i0 in range(0, m, block):
        i1 = min(i0 + block, m)
        for j0 in range(0, n, block):
            j1 = min(j0 + block, n)
            acc = out[i0:i1, j0:j1]
            for p0 in range(0, k, block):
                p1 = min(p0 + block, k)
                # In-place accumulate into the output view: no (m, n) temp.
                acc += a[i0:i1, p0:p1] @ b[p0:p1, j0:j1]
    return out
