"""Dense matmul reference and FLOP/byte accounting.

The device cost models express every kernel time as
``max(flops / rate, bytes / bandwidth) + overheads``; the canonical FLOP and
byte counts for a GEMM live here so GPU and IPU models agree on the workload.
"""

from __future__ import annotations

import numpy as np

__all__ = ["matmul_flops", "matmul_bytes", "dense_matmul"]


def matmul_flops(m: int, n: int, k: int) -> int:
    """FLOPs of ``(m x k) @ (k x n)`` counting one multiply + one add each."""
    return 2 * m * n * k


def matmul_bytes(m: int, n: int, k: int, element_bytes: int = 4) -> int:
    """Minimum bytes moved for a GEMM: read A and B once, write C once."""
    return element_bytes * (m * k + k * n + m * n)


def dense_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference dense matmul (delegates to BLAS via numpy)."""
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape[-1] != b.shape[0]:
        raise ValueError(f"dimension mismatch: {a.shape} @ {b.shape}")
    return a @ b
