"""Dense and sparse linear-algebra substrate.

This package provides the matrix representations the paper's Section 3
benchmarks exercise: from-scratch CSR and COO sparse formats, cache-blocked
dense matmul, and skewed-shape utilities.  The device simulators
(:mod:`repro.ipu`, :mod:`repro.gpu`) consume these for both numerics and
cost accounting.
"""

from repro.linalg.sparse import CSRMatrix, COOMatrix, random_sparse, sparsity
from repro.linalg.dense import matmul_flops, matmul_bytes, dense_matmul
from repro.linalg.blocked import blocked_matmul, block_grid
from repro.linalg.skewed import skew_ratio, skewed_shapes, equal_flops_shapes

__all__ = [
    "CSRMatrix",
    "COOMatrix",
    "random_sparse",
    "sparsity",
    "matmul_flops",
    "matmul_bytes",
    "dense_matmul",
    "blocked_matmul",
    "block_grid",
    "skew_ratio",
    "skewed_shapes",
    "equal_flops_shapes",
]
