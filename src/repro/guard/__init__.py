"""Supervised grid execution: deadlines, retries, quarantine, journals.

The paper's artefacts are long-running sweeps (the fig5/6/7
compile-and-profile grids, the Table 5 pixelfly hyper-parameter sweep).
:mod:`repro.bench.parallel` made them parallel; this package makes them
*survivable*: a grid cell that hangs, crashes or fails transiently no
longer discards every completed sibling.  The supervisor gives
:func:`~repro.bench.parallel.run_grid` the same treatment
:mod:`repro.faults` gave the simulated hardware — failures are expected,
bounded, observable, and recoverable:

* **Deadlines** — a per-cell wall-clock budget enforced by a watchdog
  that kills the hung worker process and replaces it
  (:class:`GuardPolicy.cell_timeout_s`).
* **Retries** — transient failures (crashes, deadline kills,
  :class:`TransientError`, unrecovered *transient* hardware fault kinds
  from :mod:`repro.faults`) are retried with seeded
  exponential-backoff-with-jitter; the backoff schedule is a pure
  function of ``(seed, cell index, attempt)``, so replays are exact.
* **Quarantine** — a cell that fails permanently, or exhausts its retry
  budget, is quarantined so the rest of the grid completes; the
  per-cell :class:`GridReport` says what happened to every cell instead
  of the first failure aborting the sweep (``strict=True`` restores the
  raise, after the whole grid has been driven to completion).
* **Journals** — completed cells append to an on-disk journal (atomic
  writes via :mod:`repro.faults.checkpoint`, keyed by
  :func:`repro.cache.canonical_key` over the worker identity, grid seed
  and config), so ``resume=True`` after a mid-grid kill re-executes
  only the missing cells with bit-identical results.

Enable it by passing a :class:`GuardPolicy` to ``run_grid(...,
guard=policy)`` — or from the command line::

    python -m repro fig5 --jobs 4 --cell-timeout 120 --retries 2 --resume

See docs/RESILIENCE.md ("Supervised grids") for the full story and
docs/OBSERVABILITY.md for the ``guard.*`` metrics and the ``guard``
section of ``repro.run/1`` manifests.
"""

from repro.guard.policy import (
    PERMANENT,
    TRANSIENT,
    GuardPolicy,
    TransientError,
    classify_exception,
)
from repro.guard.report import (
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_RETRIED,
    STATUS_TIMED_OUT,
    CellReport,
    GridReport,
    collected_reports,
    record_report,
    reporting,
)
from repro.guard.journal import GridJournal, JournalEntry
from repro.guard.supervisor import run_supervised_grid

__all__ = [
    "GuardPolicy",
    "TransientError",
    "classify_exception",
    "TRANSIENT",
    "PERMANENT",
    "CellReport",
    "GridReport",
    "STATUS_OK",
    "STATUS_RETRIED",
    "STATUS_QUARANTINED",
    "STATUS_TIMED_OUT",
    "reporting",
    "record_report",
    "collected_reports",
    "GridJournal",
    "JournalEntry",
    "run_supervised_grid",
]
