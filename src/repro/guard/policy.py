"""Guard policy: retry bounds, deadlines, and failure classification.

A :class:`GuardPolicy` is the declarative half of the supervisor: how
long a cell may run, how many times a transient failure is retried, how
the backoff between attempts is derived, and whether the grid raises
(``strict``) or quarantines on unrecoverable cells.

**Determinism.**  Mirroring :class:`repro.faults.plan.FaultPlan`, every
backoff delay is a pure function of ``(seed, cell index, attempt)``
through :class:`numpy.random.SeedSequence` — never of wall-clock time or
scheduling order — so two supervised runs of the same grid wait the
same schedule and a replayed chaos run is exact.

**Classification.**  A worker failure is either *transient* (worth a
fresh process and a retry: crashes, deadline kills,
:class:`TransientError`, connection drops, and
:class:`~repro.faults.injector.UnrecoveredFaultError` for the fault
kinds :mod:`repro.faults` itself models as transient) or *permanent*
(deterministic bugs and genuine OOM — retrying would fail identically,
so the cell is quarantined on first observation).  Classification runs
on the worker side of the process boundary, where the live exception
object is still available.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.faults.injector import UnrecoveredFaultError
from repro.faults.plan import (
    EXCHANGE_CORRUPTION,
    HOST_STALL,
    TRANSIENT_COMPUTE,
)

__all__ = [
    "TRANSIENT",
    "PERMANENT",
    "TRANSIENT_FAULT_KINDS",
    "TransientError",
    "classify_exception",
    "GuardPolicy",
]

#: Classification verdicts.
TRANSIENT = "transient"
PERMANENT = "permanent"

#: The fault kinds ``repro.faults`` models as transient: a fresh attempt
#: on healthy hardware can succeed even after the device-level retry
#: budget was exhausted.  (``permanent_tile`` and ``link_drop`` demand
#: recompilation/topology recovery, not a blind re-run.)
TRANSIENT_FAULT_KINDS = frozenset(
    {TRANSIENT_COMPUTE, EXCHANGE_CORRUPTION, HOST_STALL}
)


class TransientError(RuntimeError):
    """A worker failure the raiser knows to be retryable.

    Workers (and the chaos harness) raise this — or any exception with a
    truthy ``transient`` attribute — to tell the supervisor a fresh
    attempt is worthwhile.
    """

    transient = True


def classify_exception(exc: BaseException) -> str:
    """:data:`TRANSIENT` or :data:`PERMANENT` for a worker exception.

    Anything not positively identified as transient is permanent:
    retrying a deterministic failure burns the retry budget and delays
    the quarantine verdict without changing it.
    """
    if getattr(exc, "transient", False):
        return TRANSIENT
    if isinstance(exc, UnrecoveredFaultError):
        kind = getattr(getattr(exc, "event", None), "kind", None)
        return TRANSIENT if kind in TRANSIENT_FAULT_KINDS else PERMANENT
    if isinstance(exc, (ConnectionError, EOFError, InterruptedError)):
        return TRANSIENT
    return PERMANENT


@dataclass(frozen=True)
class GuardPolicy:
    """Supervision bounds for one grid run.

    The default policy retries transient failures twice with a small
    seeded backoff, never times cells out (``cell_timeout_s=None``), and
    quarantines instead of raising.  ``strict=True`` preserves the
    historical contract: the grid is still driven to completion, then a
    :class:`~repro.bench.parallel.WorkerError` naming *every* failed
    cell is raised with the completed results attached.
    """

    #: Wall-clock budget per attempt; ``None`` disables the watchdog.
    cell_timeout_s: float | None = None
    #: Transient-failure retries per cell (attempts = retries + 1).
    retries: int = 2
    #: Backoff before retry 1 (doubles per retry, capped at the max).
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    #: Fractional jitter: the seeded draw scales each delay into
    #: ``[delay, delay * (1 + jitter)]``.
    jitter: float = 0.25
    #: Seed for the jitter draws (pure function of (seed, index, attempt)).
    seed: int = 0
    #: Abnormal worker deaths (crashes + deadline kills) tolerated before
    #: the supervisor degrades to serial execution of the remaining cells.
    max_pool_rebuilds: int = 4
    #: Raise after the grid completes if any cell failed (legacy contract).
    strict: bool = False
    #: Journal directory; completed cells are recorded here when set.
    journal_dir: str | Path | None = field(default=None)
    #: Skip cells already present in the journal (requires journal_dir).
    resume: bool = False

    def __post_init__(self) -> None:
        if self.cell_timeout_s is not None and self.cell_timeout_s <= 0:
            raise ValueError(
                f"cell_timeout_s must be positive, got {self.cell_timeout_s}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.backoff_base_s < 0 or self.backoff_max_s < 0:
            raise ValueError("backoff_base_s and backoff_max_s must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")
        if self.max_pool_rebuilds < 0:
            raise ValueError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )
        if self.resume and self.journal_dir is None:
            raise ValueError("resume=True requires a journal_dir")

    def backoff_s(self, index: int, attempt: int) -> float:
        """Delay before retry *attempt* (1-based) of cell *index*.

        Exponential in the attempt, jittered by a draw keyed on
        ``(seed, index, attempt)`` — deterministic for replays, but
        decorrelated across cells so a burst of same-step retries does
        not thunder back in lockstep.
        """
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        base = min(
            self.backoff_max_s, self.backoff_base_s * 2.0 ** (attempt - 1)
        )
        if base == 0.0 or self.jitter == 0.0:
            return base
        rng = np.random.default_rng(
            np.random.SeedSequence([int(self.seed), int(index), int(attempt)])
        )
        return base * (1.0 + self.jitter * float(rng.random()))

    def backoff_schedule(self, index: int) -> tuple[float, ...]:
        """The full retry-delay schedule for cell *index* (replay aid)."""
        return tuple(
            self.backoff_s(index, attempt)
            for attempt in range(1, self.retries + 1)
        )
