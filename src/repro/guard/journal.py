"""Append-only journal of completed grid cells, enabling ``--resume``.

Each completed cell becomes one content-addressed entry file in the
journal directory, written with the atomic write-temp/fsync/rename
discipline of :mod:`repro.faults.checkpoint` — a run killed mid-write
never leaves a half-written entry, and concurrent writers never
interleave.  The *set of entry files* is the journal; appending is file
creation, so there is no index to corrupt and no compaction to race.

Keys come from :func:`repro.cache.canonical_key` over the worker's
identity (module + qualname), the grid seed, the cell index and the
config's canonical ``repr`` — the same inputs that determine the cell's
result — so a resume only ever replays an entry produced by an
identical computation, and a changed worker, seed or config simply
misses.

An entry stores the cell's *result* (pickled) **and** the worker's
metric snapshot + cache statistics captured when it originally ran;
resuming merges those into the parent exactly as a live worker would,
which is what makes a resumed run's manifest metrics bit-identical to
an uninterrupted one.  Corrupt or foreign files are skipped (counted,
never raised), mirroring the compilation cache's fallback contract.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.cache import canonical_key
from repro.faults.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)

__all__ = ["JOURNAL_SCHEMA", "JournalEntry", "GridJournal", "cell_key"]

#: Entry format tag; mixed into every key and checked on read, so a
#: layout change invalidates old entries instead of misreading them.
#: ``/2`` added the per-cell trace/log buffers, so a ``--resume``
#: rebuilds the merged grid timeline bit-identically.
JOURNAL_SCHEMA = "repro.guard.journal/2"


def cell_key(worker: Callable, seed: int, index: int, config: Any) -> str:
    """Content key for one grid cell.

    The config contributes through its ``repr`` (configs are tuples of
    scalars and frozen dataclasses throughout the experiment drivers,
    whose reprs are deterministic); the worker contributes by identity
    so two grids sharing a journal directory cannot collide.
    """
    return canonical_key(
        JOURNAL_SCHEMA,
        getattr(worker, "__module__", "?"),
        getattr(worker, "__qualname__", repr(worker)),
        int(seed),
        int(index),
        repr(config),
    )


@dataclass(frozen=True)
class JournalEntry:
    """One journalled cell: its result plus the observability side-band.

    ``trace`` is the worker tracer's snapshot (spans + counters as plain
    dicts, see :meth:`repro.obs.tracer.Tracer.snapshot`) and ``logs``
    the worker's structured-log snapshot; both are empty when the cell
    originally ran with observability disabled.
    """

    key: str
    index: int
    config: str
    result: Any
    metrics: list[dict]
    cache_stats: dict
    trace: dict
    logs: list[dict]


class GridJournal:
    """Directory-backed journal of completed cells.

    ``corrupt`` counts entries that existed but could not be replayed
    (truncated writes, schema drift); they are treated as missing.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.corrupt = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"cell-{key}.npz"

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()

    def record(
        self,
        key: str,
        index: int,
        config: Any,
        result: Any,
        metrics: list[dict],
        cache_stats: dict,
        trace: dict | None = None,
        logs: list[dict] | None = None,
    ) -> Path:
        """Atomically append the completed cell under *key*."""
        payload = np.frombuffer(
            pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL),
            dtype=np.uint8,
        )
        meta = {
            "journal_schema": JOURNAL_SCHEMA,
            "key": key,
            "index": int(index),
            "config": repr(config),
            "metrics": list(metrics),
            "cache_stats": dict(cache_stats),
            "trace": dict(trace) if trace else {},
            "logs": list(logs) if logs else [],
        }
        return save_checkpoint(self._path(key), {"result": payload}, meta)

    def lookup(self, key: str) -> JournalEntry | None:
        """The entry under *key*, or ``None`` (corrupt counts as missing)."""
        path = self._path(key)
        if not path.exists():
            return None
        try:
            arrays, meta = load_checkpoint(path)
        except CheckpointError:
            self.corrupt += 1
            return None
        if (
            meta.get("journal_schema") != JOURNAL_SCHEMA
            or meta.get("key") != key
            or "result" not in arrays
        ):
            self.corrupt += 1
            return None
        try:
            result = pickle.loads(arrays["result"].tobytes())
        except Exception:
            self.corrupt += 1
            return None
        return JournalEntry(
            key=key,
            index=int(meta["index"]),
            config=str(meta["config"]),
            result=result,
            metrics=list(meta.get("metrics", [])),
            cache_stats=dict(meta.get("cache_stats", {})),
            trace=dict(meta.get("trace", {})),
            logs=list(meta.get("logs", [])),
        )

    def keys(self) -> list[str]:
        """Every key with an entry file present (sorted, corrupt included)."""
        if not self.directory.is_dir():
            return []
        return sorted(
            p.name[len("cell-") : -len(".npz")]
            for p in self.directory.iterdir()
            if p.name.startswith("cell-") and p.name.endswith(".npz")
        )

    def __len__(self) -> int:
        return len(self.keys())
