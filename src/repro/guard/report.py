"""Per-cell grid reports and the ambient report collector.

A supervised grid returns its results *and* leaves behind a
:class:`GridReport`: one :class:`CellReport` per cell saying whether it
completed clean (``ok``), recovered after retries (``retried``), was
``quarantined`` after a permanent failure or an exhausted retry budget,
or ``timed_out`` against its deadline.  The report is what the manifest
``guard`` section, the chaos harness and the strict-mode exception are
built from: every retry, timeout, crash and quarantine in the run is
accounted for exactly once.

Because experiment drivers return row lists (not reports), the
supervisor publishes each report to an ambient collector, mirroring
``obs.tracing()``/``obs.collecting()``::

    with guard.reporting() as reports:
        fig5.run(jobs=4, guard=policy)
    manifest = obs.build_manifest("fig5", guard=reports)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "STATUS_OK",
    "STATUS_RETRIED",
    "STATUS_QUARANTINED",
    "STATUS_TIMED_OUT",
    "CELL_STATUSES",
    "CellReport",
    "GridReport",
    "reporting",
    "record_report",
    "collected_reports",
]

#: Final per-cell verdicts.
STATUS_OK = "ok"
STATUS_RETRIED = "retried"
STATUS_QUARANTINED = "quarantined"
STATUS_TIMED_OUT = "timed_out"

CELL_STATUSES = (
    STATUS_OK,
    STATUS_RETRIED,
    STATUS_QUARANTINED,
    STATUS_TIMED_OUT,
)


@dataclass
class CellReport:
    """What happened to one grid cell under supervision.

    ``retries``/``timeouts``/``crashes`` count what the cell *survived
    or died of* across all attempts; ``status`` is the final verdict.
    A cell served from the journal is ``ok`` with ``from_journal=True``
    and zero attempts.
    """

    index: int
    config: str
    status: str = STATUS_OK
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    crashes: int = 0
    backoff_s: tuple[float, ...] = ()
    wall_s: float = 0.0
    error: str | None = None
    from_journal: bool = False
    # Observability recovered from the worker: spans/log events shipped
    # back over the pipe — including what a failing attempt flushed
    # before it died, so a quarantined cell is not a blind spot.
    n_spans: int = 0
    n_log_events: int = 0

    @property
    def ok(self) -> bool:
        """The cell produced a result (clean, retried, or journalled)."""
        return self.status in (STATUS_OK, STATUS_RETRIED)

    def as_dict(self) -> dict:
        return {
            "index": self.index,
            "config": self.config,
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "from_journal": self.from_journal,
            "error": self.error,
            "n_spans": self.n_spans,
            "n_log_events": self.n_log_events,
        }


@dataclass
class GridReport:
    """Roll-up of one supervised grid: every cell's fate plus pool events."""

    name: str
    cells: list[CellReport] = field(default_factory=list)
    pool_rebuilds: int = 0
    serial_fallback: bool = False
    journal_hits: int = 0

    def count(self, status: str) -> int:
        return sum(1 for c in self.cells if c.status == status)

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def n_ok(self) -> int:
        return self.count(STATUS_OK)

    @property
    def n_retried(self) -> int:
        return self.count(STATUS_RETRIED)

    @property
    def n_quarantined(self) -> int:
        return self.count(STATUS_QUARANTINED)

    @property
    def n_timed_out(self) -> int:
        return self.count(STATUS_TIMED_OUT)

    @property
    def total_retries(self) -> int:
        return sum(c.retries for c in self.cells)

    @property
    def total_timeouts(self) -> int:
        return sum(c.timeouts for c in self.cells)

    @property
    def total_crashes(self) -> int:
        return sum(c.crashes for c in self.cells)

    @property
    def ok(self) -> bool:
        """True iff every cell produced a result."""
        return all(c.ok for c in self.cells)

    def failed_cells(self) -> list[CellReport]:
        """Cells that produced no result, in index order."""
        return [c for c in self.cells if not c.ok]

    def render(self) -> str:
        lines = [
            f"GridReport[{self.name}]: {self.n_cells} cells — "
            f"{self.n_ok} ok, {self.n_retried} retried, "
            f"{self.n_quarantined} quarantined, "
            f"{self.n_timed_out} timed out; "
            f"{self.total_retries} retries, "
            f"{self.total_timeouts} deadline kills, "
            f"{self.total_crashes} crashes, "
            f"{self.pool_rebuilds} pool rebuilds, "
            f"{self.journal_hits} journal hits"
            + (" [serial fallback]" if self.serial_fallback else "")
        ]
        for cell in self.cells:
            if cell.status == STATUS_OK and not cell.retries:
                continue
            detail = f"  cell {cell.index} [{cell.config}]: {cell.status}"
            detail += (
                f" (attempts={cell.attempts}, retries={cell.retries},"
                f" timeouts={cell.timeouts}, crashes={cell.crashes}"
                + (", journal" if cell.from_journal else "")
                + ")"
            )
            if cell.error:
                first = cell.error.strip().splitlines()[-1]
                detail += f" — {first}"
            lines.append(detail)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


# -- ambient collection --------------------------------------------------------

#: The active collector, or None (collection off — reports are dropped).
_collector: list[GridReport] | None = None


def record_report(report: GridReport) -> None:
    """Publish *report* to the ambient collector, if one is active."""
    if _collector is not None:
        _collector.append(report)


def collected_reports() -> list[GridReport]:
    """The reports collected so far (empty when collection is off)."""
    return list(_collector) if _collector is not None else []


@contextmanager
def reporting() -> Iterator[list[GridReport]]:
    """Collect every :class:`GridReport` published inside the block.

    Nestable: the inner collector shadows the outer one for its
    duration (reports land in exactly one collector).
    """
    global _collector
    previous = _collector
    reports: list[GridReport] = []
    _collector = reports
    try:
        yield reports
    finally:
        _collector = previous
