"""The supervised process pool: one watched process per grid cell.

:mod:`repro.bench.parallel` fans cells out over a shared
``ProcessPoolExecutor``; its failure mode is the reason this module
exists — one worker dying abruptly breaks the *pool* (every sibling
future collapses into ``BrokenProcessPool``), and a hung worker cannot
be killed at all without tearing the pool down blind.  The supervisor
therefore owns its processes directly: every attempt of every cell runs
in a fresh ``spawn`` process with a private pipe, so the watchdog can
kill exactly the hung cell, an ``os._exit`` loses exactly one attempt,
and siblings never observe each other's deaths.

Event loop
----------

The parent multiplexes all live workers with
:func:`multiprocessing.connection.wait`, bounded by the nearest of (a)
a running cell's deadline and (b) a backed-off retry's wake time.  An
attempt ends in one of four ways:

* **result** — the worker sent ``("ok", result, metrics, cache_stats,
  trace, logs)``, the last two being its tracer/log snapshots
  (:mod:`repro.obs.propagate`);
* **failure** — it sent ``("error", traceback, verdict, trace, logs)``
  with the transient/permanent verdict classified worker-side
  (:func:`repro.guard.policy.classify_exception`) and whatever
  observability the attempt flushed before dying;
* **crash** — the pipe hit EOF without a message (``os._exit``, OOM
  kill, interpreter abort): the dead process is replaced and the cell
  retried as a transient failure;
* **deadline** — the watchdog ``terminate()``-s the process and the
  cell is retried; a cell whose *last* failure was a deadline kill is
  reported ``timed_out`` rather than ``quarantined``.

Every replaced worker process (crash or deadline kill) counts as a pool
rebuild; past :attr:`GuardPolicy.max_pool_rebuilds` the supervisor
degrades to serial execution (one live worker) for the remaining cells,
bounding the blast radius of a misbehaving environment.

Determinism
-----------

Results, metric merges, cache-stat merges and trace/log buffer merges
are applied in config order after the grid completes — identical to the
serial runner — and each cell's seed comes from the same
``SeedSequence.spawn`` walk, so a supervised run's results are bitwise
equal to a clean serial run regardless of retries, kills or worker
count.  Worker span buffers land on ``cell{i}/...`` tracks under the
grid's deterministic run id (:func:`repro.obs.context.derive_run_id`);
the journal stores each cell's buffers, so ``--resume`` rebuilds the
merged timeline bit-identically.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as connection_wait
from typing import Any, Callable, Sequence

import numpy as np

from repro.cache import CompilationCache, caching, get_cache
from repro.guard.journal import GridJournal, cell_key
from repro.guard.policy import PERMANENT, TRANSIENT, GuardPolicy, classify_exception
from repro.guard.report import (
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_RETRIED,
    STATUS_TIMED_OUT,
    CellReport,
    GridReport,
    record_report,
)
from repro.obs.context import TraceContext, context as trace_context, derive_run_id, worker_track
from repro.obs.log import get_logger
from repro.obs.metrics import MetricRegistry, collecting, get_registry
from repro.obs.propagate import obs_spec, worker_observability
from repro.obs.tracer import get_tracer

__all__ = ["GUARD_TRACK", "run_supervised_grid"]

#: Virtual trace track carrying one ``guard.cell`` span per attempt.
GUARD_TRACK = "guard"

#: How long to wait for a worker that already delivered its message (or
#: was terminated) to actually exit before escalating to SIGKILL.
_JOIN_GRACE_S = 10.0


def _supervised_child(
    conn: Connection,
    worker: Callable,
    config: Any,
    seed_seq: np.random.SeedSequence,
    cache_dir: str | None,
    spec: dict | None = None,
) -> None:
    """Child entry point: run one attempt, ship one message, exit.

    Mirrors ``bench.parallel._run_in_worker`` (fresh metric registry,
    shared disk cache, per-cell observability from *spec*) but
    classifies failures while the live exception object is still in
    hand — the verdict crosses the process boundary, the exception type
    does not have to.  The trace/log buffers are flushed into the
    message on the failure path too, *before* ``conn.send`` — whatever
    a dying attempt recorded reaches the supervisor instead of dying
    with the process.
    """
    cache = (
        CompilationCache(path=cache_dir)
        if cache_dir is not None
        else CompilationCache()
    )
    tracer, runlog = None, None
    try:
        with collecting() as registry, caching(cache), \
                worker_observability(spec) as (tracer, runlog):
            result = worker(config, seed_seq)
        message = (
            "ok",
            result,
            registry.snapshot(),
            cache.stats.as_dict(),
            tracer.snapshot(),
            runlog.snapshot(),
        )
    except Exception as exc:
        message = (
            "error",
            traceback.format_exc(),
            classify_exception(exc),
            tracer.snapshot() if tracer is not None else {},
            runlog.snapshot() if runlog is not None else [],
        )
    try:
        conn.send(message)
    except Exception:
        # The result itself would not pickle: that is deterministic, so
        # report it as a permanent failure rather than crashing (which
        # would be retried pointlessly).
        try:
            conn.send(
                (
                    "error",
                    f"result for config {config!r} is not picklable:\n"
                    f"{traceback.format_exc()}",
                    PERMANENT,
                    tracer.snapshot() if tracer is not None else {},
                    runlog.snapshot() if runlog is not None else [],
                )
            )
        except Exception:
            pass
    finally:
        conn.close()


@dataclass
class _Cell:
    """Supervisor-side state for one grid cell."""

    index: int
    config: Any
    seed_seq: np.random.SeedSequence
    key: str
    report: CellReport
    attempt: int = 0  # attempts started so far
    result: Any = None
    metrics: list = field(default_factory=list)
    cache_stats: dict | None = None
    trace: dict = field(default_factory=dict)  # successful attempt's spans
    logs: list = field(default_factory=list)  # successful attempt's events
    done: bool = False
    last_failure: str = ""  # "error" | "crash" | "timeout"


@dataclass
class _Running:
    """One live worker process executing one attempt."""

    cell: _Cell
    process: Any
    conn: Connection
    started: float
    deadline: float | None


def _reap(running: _Running, kill: bool = False) -> None:
    """Join (optionally kill) a finished or condemned worker process."""
    proc = running.process
    if kill and proc.is_alive():
        proc.terminate()
    proc.join(_JOIN_GRACE_S)
    if proc.is_alive():
        proc.kill()
        proc.join(_JOIN_GRACE_S)
    running.conn.close()


def run_supervised_grid(
    worker: Callable,
    configs: Sequence[Any],
    *,
    policy: GuardPolicy,
    jobs: int = 1,
    seed: int = 0,
    cache_dir=None,
    registry: MetricRegistry | None = None,
    name: str | None = None,
) -> tuple[list[Any], GridReport]:
    """Run *worker* over *configs* under supervision.

    Returns ``(results, report)`` where *results* is in config order
    with ``None`` for cells that produced no result (quarantined or
    timed out) and *report* accounts for every attempt.  The report is
    also published to the ambient collector
    (:func:`repro.guard.report.record_report`).  Raising on failures is
    the caller's decision (``run_grid`` raises under ``strict``).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    configs = list(configs)
    seed_seqs = np.random.SeedSequence(seed).spawn(len(configs))
    registry = registry if registry is not None else get_registry()
    tracer = get_tracer()
    runlog = get_logger()
    parent_cache = get_cache()
    if cache_dir is None and parent_cache.enabled:
        cache_dir = parent_cache.path
    cache_dir = str(cache_dir) if cache_dir is not None else None

    grid_name = name or getattr(worker, "__qualname__", "grid")
    run_id = derive_run_id(grid_name, seed, len(configs))
    parent_ctx = TraceContext(run_id=run_id, parent_span=grid_name)
    report = GridReport(name=grid_name)
    journal = (
        GridJournal(policy.journal_dir)
        if policy.journal_dir is not None
        else None
    )

    cells: list[_Cell] = []
    for index, (config, seed_seq) in enumerate(zip(configs, seed_seqs)):
        cell = _Cell(
            index=index,
            config=config,
            seed_seq=seed_seq,
            key=cell_key(worker, seed, index, config),
            report=CellReport(index=index, config=repr(config)),
        )
        cells.append(cell)
        report.cells.append(cell.report)

    # -- resume pre-pass: serve journalled cells without executing them.
    if journal is not None and policy.resume:
        with trace_context(parent_ctx):
            for cell in cells:
                entry = journal.lookup(cell.key)
                if entry is None:
                    continue
                cell.result = entry.result
                cell.metrics = entry.metrics
                cell.cache_stats = entry.cache_stats
                # The journalled trace/log buffers replay through the
                # same post-grid merge as a live worker's, which is
                # what makes a resumed timeline bit-identical.
                cell.trace = entry.trace
                cell.logs = entry.logs
                cell.done = True
                cell.report.status = STATUS_OK
                cell.report.from_journal = True
                report.journal_hits += 1
                if runlog.enabled:
                    runlog.info(
                        "guard.journal_hit",
                        config=cell.report.config,
                        cell=cell.index,
                    )

    pending: list[_Cell] = [c for c in cells if not c.done]
    waiting: list[tuple[float, int, _Cell]] = []  # (wake time, index, cell)
    running: dict[Connection, _Running] = {}
    ctx = get_context("spawn")
    max_workers = max(1, min(jobs, len(pending) or 1))

    def finalize(cell: _Cell, status: str, error: str | None = None) -> None:
        cell.done = True
        cell.report.status = status
        cell.report.error = error
        if status in (STATUS_QUARANTINED, STATUS_TIMED_OUT):
            if registry.enabled:
                registry.counter("guard.quarantined").inc()

    def launch(cell: _Cell) -> None:
        cell.attempt += 1
        cell.report.attempts = cell.attempt
        parent_conn, child_conn = ctx.Pipe(duplex=False)
        proc = ctx.Process(
            target=_supervised_child,
            args=(
                child_conn,
                worker,
                cell.config,
                cell.seed_seq,
                cache_dir,
                obs_spec(run_id, grid_name, cell.index),
            ),
            daemon=True,
        )
        proc.start()
        # Close the parent's copy of the write end: the pipe then hits
        # EOF the moment the child dies, however it dies.
        child_conn.close()
        now = time.monotonic()
        deadline = (
            now + policy.cell_timeout_s
            if policy.cell_timeout_s is not None
            else None
        )
        running[parent_conn] = _Running(
            cell=cell,
            process=proc,
            conn=parent_conn,
            started=now,
            deadline=deadline,
        )

    def attempt_span(cell: _Cell, wall_s: float, outcome: str) -> None:
        cell.report.wall_s += wall_s
        tracer.add_span(
            "guard.cell",
            wall_s,
            GUARD_TRACK,
            category="guard",
            index=cell.index,
            attempt=cell.attempt,
            outcome=outcome,
        )

    def absorb_failed_buffers(
        cell: _Cell, trace_snap: dict, log_snap: list
    ) -> None:
        """Keep what a failing attempt flushed before it died.

        Merged immediately (successful attempts merge post-grid in
        config order) onto an attempt-suffixed track — a retried cell's
        dead attempts stay distinguishable from its final clean run —
        and counted on the cell report, so a quarantined cell still
        shows how far it got.
        """
        cell.report.n_spans += len(trace_snap.get("spans", ()))
        cell.report.n_log_events += len(log_snap)
        prefix = f"{worker_track(cell.index)}.a{cell.attempt}"
        tracer.merge_snapshot(trace_snap, prefix=prefix)
        runlog.merge_snapshot(log_snap, worker=cell.index)

    def note_rebuild(cell: _Cell) -> None:
        """A worker process had to be replaced (crash or deadline kill)."""
        nonlocal max_workers
        report.pool_rebuilds += 1
        if registry.enabled:
            registry.counter("guard.pool_rebuilds").inc()
        if (
            report.pool_rebuilds > policy.max_pool_rebuilds
            and not report.serial_fallback
        ):
            report.serial_fallback = True
            max_workers = 1
            if runlog.enabled:
                runlog.warning(
                    "guard.serial_fallback",
                    f"{report.pool_rebuilds} pool rebuilds exceeded the "
                    f"budget; degrading to one worker",
                )

    def retry_or_quarantine(cell: _Cell, kind: str, detail: str) -> None:
        """Schedule a transient retry, or hand down the final verdict."""
        cell.last_failure = kind
        if cell.attempt <= policy.retries:
            cell.report.retries += 1
            if registry.enabled:
                registry.counter("guard.retries").inc()
            delay = policy.backoff_s(cell.index, cell.attempt)
            cell.report.backoff_s = cell.report.backoff_s + (delay,)
            waiting.append((time.monotonic() + delay, cell.index, cell))
            waiting.sort(key=lambda item: (item[0], item[1]))
            if runlog.enabled:
                runlog.warning(
                    "guard.retry",
                    kind,
                    cell=cell.index,
                    attempt=cell.attempt,
                    backoff_s=delay,
                )
        else:
            status = (
                STATUS_TIMED_OUT if kind == "timeout" else STATUS_QUARANTINED
            )
            finalize(cell, status, error=detail)
            if runlog.enabled:
                runlog.error(
                    "guard.quarantine",
                    detail.strip().splitlines()[-1] if detail else "",
                    cell=cell.index,
                    status=status,
                    attempts=cell.attempt,
                )

    def handle_message(run: _Running) -> None:
        cell = run.cell
        try:
            message = run.conn.recv()
        except (EOFError, OSError):
            message = None
        wall = time.monotonic() - run.started
        _reap(run)
        if message is None:
            # Died without a word: os._exit, SIGKILL, interpreter abort.
            # Nothing to salvage — the buffers died unsent with the
            # process (the except-path flush only covers exceptions).
            exitcode = run.process.exitcode
            cell.report.crashes += 1
            attempt_span(cell, wall, "crash")
            if runlog.enabled:
                runlog.error(
                    "guard.crash",
                    f"exit code {exitcode}",
                    cell=cell.index,
                    attempt=cell.attempt,
                )
            note_rebuild(cell)
            retry_or_quarantine(
                cell,
                "crash",
                f"worker process for config {cell.config!r} died abruptly "
                f"(exit code {exitcode}) and exhausted its retries",
            )
            return
        if message[0] == "ok":
            _, result, metrics, cache_stats, trace_snap, log_snap = message
            cell.result = result
            cell.metrics = metrics
            cell.cache_stats = cache_stats
            cell.trace = trace_snap
            cell.logs = log_snap
            cell.report.n_spans += len(trace_snap.get("spans", ()))
            cell.report.n_log_events += len(log_snap)
            attempt_span(cell, wall, "ok")
            finalize(
                cell,
                STATUS_RETRIED if cell.report.retries else STATUS_OK,
            )
            if journal is not None:
                journal.record(
                    cell.key,
                    cell.index,
                    cell.config,
                    result,
                    metrics,
                    cache_stats,
                    trace=trace_snap,
                    logs=log_snap,
                )
            return
        _, detail, verdict, trace_snap, log_snap = message
        attempt_span(cell, wall, "error")
        absorb_failed_buffers(cell, trace_snap, log_snap)
        if verdict == TRANSIENT:
            retry_or_quarantine(cell, "error", detail)
        else:
            finalize(cell, STATUS_QUARANTINED, error=detail)
            if runlog.enabled:
                runlog.error(
                    "guard.quarantine",
                    detail.strip().splitlines()[-1] if detail else "",
                    cell=cell.index,
                    status=STATUS_QUARANTINED,
                    attempts=cell.attempt,
                )

    def handle_deadline(run: _Running) -> None:
        cell = run.cell
        wall = time.monotonic() - run.started
        _reap(run, kill=True)
        cell.report.timeouts += 1
        if registry.enabled:
            registry.counter("guard.timeouts").inc()
        attempt_span(cell, wall, "timeout")
        if runlog.enabled:
            runlog.error(
                "guard.timeout",
                f"killed after {wall:.1f}s against a "
                f"{policy.cell_timeout_s:g}s deadline",
                cell=cell.index,
                attempt=cell.attempt,
            )
        note_rebuild(cell)
        retry_or_quarantine(
            cell,
            "timeout",
            f"worker for config {cell.config!r} exceeded the "
            f"{policy.cell_timeout_s:g}s cell deadline on every attempt",
        )

    # The parent context makes every supervisor-side log event (retry,
    # quarantine, crash, ...) carry the grid's deterministic run id.
    with trace_context(parent_ctx):
        try:
            while pending or waiting or running:
                now = time.monotonic()
                while waiting and waiting[0][0] <= now:
                    _, _, cell = waiting.pop(0)
                    pending.append(cell)
                while pending and len(running) < max_workers:
                    launch(pending.pop(0))

                bounds = [r.deadline for r in running.values() if r.deadline]
                if waiting:
                    bounds.append(waiting[0][0])
                now = time.monotonic()
                timeout = max(0.0, min(bounds) - now) if bounds else None

                if running:
                    ready = connection_wait(list(running), timeout=timeout)
                    for conn in ready:
                        handle_message(running.pop(conn))
                elif waiting:
                    # Nothing live, first retry still backing off: sleep it
                    # out.
                    time.sleep(max(0.0, waiting[0][0] - time.monotonic()))

                now = time.monotonic()
                for conn, run in list(running.items()):
                    if run.deadline is not None and run.deadline <= now:
                        handle_deadline(running.pop(conn))
        finally:
            for run in running.values():
                _reap(run, kill=True)

    # -- deterministic merge: config order, exactly like the serial path.
    # Successful cells' trace/log buffers (live or journalled) land on
    # their cell{i}/... tracks here, regardless of completion order.
    results: list[Any] = []
    for cell in cells:
        results.append(cell.result)
        if cell.metrics:
            registry.merge_snapshot(cell.metrics)
        if cell.cache_stats and parent_cache.enabled:
            parent_cache.stats.merge(cell.cache_stats)
        if cell.trace:
            tracer.merge_snapshot(
                cell.trace, prefix=worker_track(cell.index)
            )
        if cell.logs:
            runlog.merge_snapshot(cell.logs, worker=cell.index)
        if cell.report.from_journal:
            cell.report.n_spans += len(cell.trace.get("spans", ()))
            cell.report.n_log_events += len(cell.logs)
    record_report(report)
    return results, report
