"""Reverse-mode autograd tensor.

PyTorch is unavailable in this environment, so the training experiments run
on this from-scratch engine: a :class:`Tensor` wraps a numpy array and
records a backward graph of :class:`~repro.nn.functional.Function`
applications; :meth:`Tensor.backward` walks the graph in reverse topological
order accumulating gradients into leaf tensors.

Design notes
------------
* Gradients are plain numpy arrays (no grad-of-grad support — the paper's
  experiments only need first-order training).
* Broadcasting follows numpy semantics; each Function un-broadcasts its
  input gradients (see :func:`repro.nn.functional.unbroadcast`).
* Operator methods (``+``, ``@``, ``.relu()`` …) are installed onto
  :class:`Tensor` by :mod:`repro.nn.functional` at import time, keeping the
  op zoo in one place.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "Parameter", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager disabling graph recording (for eval / inference)."""

    def __enter__(self) -> "no_grad":
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc) -> None:
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev


def is_grad_enabled() -> bool:
    """True while graph recording is active."""
    return _GRAD_ENABLED


class Tensor:
    """A numpy-backed tensor with reverse-mode automatic differentiation."""

    __array_priority__ = 1000  # make numpy defer to our reflected ops

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        dtype: np.dtype | None = None,
    ) -> None:
        if isinstance(data, Tensor):
            data = data.data
        arr = np.asarray(data, dtype=dtype)
        if requires_grad and not np.issubdtype(arr.dtype, np.floating):
            arr = arr.astype(np.float64)
        self.data: np.ndarray = arr
        self.requires_grad: bool = bool(requires_grad)
        self.grad: np.ndarray | None = None
        # Backward-graph bookkeeping (set by Function.apply).
        self._ctx = None  # the Function instance that produced this tensor
        self._parents: tuple[Tensor, ...] = ()

    # -- introspection ------------------------------------------------------

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def is_leaf(self) -> bool:
        """True if this tensor was not produced by a recorded Function."""
        return self._ctx is None

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, threshold=8)}{grad_flag})"

    # -- conversions --------------------------------------------------------

    def numpy(self) -> np.ndarray:
        """The underlying array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        """Python scalar for 1-element tensors."""
        return float(self.data.reshape(-1)[0]) if self.size == 1 else _raise(
            ValueError(f"item() requires a 1-element tensor, got {self.shape}")
        )

    def detach(self) -> "Tensor":
        """A new leaf tensor sharing data, cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    # -- gradient machinery --------------------------------------------------

    def zero_grad(self) -> None:
        """Reset the accumulated gradient."""
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        For non-scalar tensors an explicit output gradient must be provided.
        Gradients accumulate (+=) into ``.grad`` of every reachable leaf with
        ``requires_grad=True``.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that has no grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient requires a "
                    f"scalar output, got shape {self.shape}"
                )
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)
        if grad.shape != self.data.shape:
            raise ValueError(
                f"gradient shape {grad.shape} does not match tensor shape "
                f"{self.shape}"
            )

        # Reverse topological order over the recorded graph.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited and parent.requires_grad:
                    stack.append((parent, False))

        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in reversed(topo):
            node_grad = grads.pop(id(node), None)
            if node_grad is None:
                continue
            if node.is_leaf:
                node.grad = (
                    node_grad if node.grad is None else node.grad + node_grad
                )
                continue
            parent_grads = node._ctx.parent_grads(node_grad)
            if len(parent_grads) != len(node._parents):
                raise RuntimeError(
                    f"{type(node._ctx).__name__}.backward returned "
                    f"{len(parent_grads)} gradients for {len(node._parents)} "
                    "inputs"
                )
            for parent, pgrad in zip(node._parents, parent_grads):
                if pgrad is None or not parent.requires_grad:
                    continue
                pgrad = np.asarray(pgrad)
                if pgrad.shape != parent.data.shape:
                    raise RuntimeError(
                        f"{type(node._ctx).__name__} produced gradient of "
                        f"shape {pgrad.shape} for input of shape "
                        f"{parent.shape}"
                    )
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + pgrad
                else:
                    grads[key] = pgrad


class Parameter(Tensor):
    """A trainable tensor — ``requires_grad=True`` and float dtype."""

    def __init__(self, data, dtype: np.dtype | None = None) -> None:
        super().__init__(data, requires_grad=True, dtype=dtype)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, dtype={self.dtype})"


def _raise(exc: Exception):
    raise exc


# Install the operator / method zoo onto Tensor.  The import is at module
# bottom on purpose: functional.py imports Tensor from here, and by this
# point the class object exists, so the circular import resolves cleanly.
from repro.nn import functional as _functional  # noqa: E402,F401
