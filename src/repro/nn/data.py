"""Datasets, loaders and splits.

Mirrors the paper's data handling: mini-batches of 50, a 15 % validation
split carved from the training set (Table 3), deterministic under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.utils import as_rng

__all__ = ["ArrayDataset", "DataLoader", "train_val_split"]


@dataclass
class ArrayDataset:
    """A supervised dataset held as parallel numpy arrays."""

    x: np.ndarray
    y: np.ndarray

    def __post_init__(self) -> None:
        if len(self.x) != len(self.y):
            raise ValueError(
                f"x and y lengths differ: {len(self.x)} vs {len(self.y)}"
            )

    def __len__(self) -> int:
        return len(self.x)

    def subset(self, indices: np.ndarray) -> "ArrayDataset":
        """Dataset restricted to *indices* (copy-free fancy-index views)."""
        return ArrayDataset(self.x[indices], self.y[indices])


def train_val_split(
    dataset: ArrayDataset,
    val_fraction: float = 0.15,
    seed: int | np.random.Generator | None = 0,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Shuffle and split off a validation fraction (paper: 15 %)."""
    if not 0.0 <= val_fraction < 1.0:
        raise ValueError(f"val_fraction must be in [0, 1), got {val_fraction}")
    rng = as_rng(seed)
    n = len(dataset)
    perm = rng.permutation(n)
    n_val = int(round(val_fraction * n))
    return dataset.subset(perm[n_val:]), dataset.subset(perm[:n_val])


class DataLoader:
    """Mini-batch iterator with optional shuffling.

    Iterating yields ``(x_batch, y_batch)`` numpy pairs.  Reshuffles each
    epoch from its own generator so epochs differ but runs are reproducible.

    The seed is expanded into a *spawned* child stream rather than used
    directly: experiment drivers routinely pass one seed (or one
    generator) to both :func:`train_val_split` and their loaders, and
    with the same stream on both sides the validation-split permutation
    and the first epoch's shuffle would be the *same* permutation.  This
    holds for every accepted seed type — an ``np.random.Generator`` is
    spawned from just like an integer or ``None``, so handing a shared
    generator to several loaders gives each an independent stream while
    leaving the caller's generator untouched.
    """

    def __init__(
        self,
        dataset: ArrayDataset,
        batch_size: int = 50,
        shuffle: bool = True,
        drop_last: bool = False,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        if isinstance(seed, np.random.Generator):
            self.rng = seed.spawn(1)[0]
        else:
            self.rng = np.random.default_rng(
                np.random.SeedSequence(seed).spawn(1)[0]
            )

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def rng_state(self) -> dict:
        """Snapshot of the shuffle stream (for checkpoint/resume).

        The returned dict is the underlying bit generator's state; restoring
        it with :meth:`set_rng_state` makes subsequent epoch permutations
        bit-identical to the run the snapshot was taken from.
        """
        return self.rng.bit_generator.state

    def set_rng_state(self, state: dict) -> None:
        """Restore a shuffle-stream snapshot from :meth:`rng_state`."""
        self.rng.bit_generator.state = state

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self.rng.permutation(n) if self.shuffle else np.arange(n)
        end = (n // self.batch_size) * self.batch_size if self.drop_last else n
        for start in range(0, end, self.batch_size):
            idx = order[start : start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                break
            yield self.dataset.x[idx], self.dataset.y[idx]
