"""Standard (unstructured) layers: Linear, activations, containers.

``Linear`` is the `torch.nn.Linear` stand-in every figure benchmarks
against; the structured replacements live in :mod:`repro.nn.structured`.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module
from repro.nn.tensor import Parameter, Tensor
from repro.utils import as_rng, derive_rng

__all__ = [
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Flatten",
    "Dropout",
    "Sequential",
    "BatchNorm1d",
    "LayerNorm",
]


class Linear(Module):
    """Dense affine layer ``y = x W^T + b`` (the paper's baseline)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        rng = as_rng(seed)
        self.weight = Parameter(
            init.kaiming_uniform(
                (out_features, in_features),
                fan_in=in_features,
                rng=derive_rng(rng, "weight"),
                gain=1.0,  # PyTorch Linear uses kaiming_uniform with a=sqrt(5)
            )
        )
        self.bias = (
            Parameter(
                init.uniform_fan_in(
                    (out_features,), in_features, rng=derive_rng(rng, "bias")
                )
            )
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        out = F.matmul(x, self.weight.T)
        if self.bias is not None:
            out = out + self.bias
        return out

    def extra_repr(self) -> str:
        return (
            f"in_features={self.in_features}, out_features={self.out_features}, "
            f"bias={self.bias is not None}"
        )


class ReLU(Module):
    """Rectified linear unit (the paper's Table 3 activation)."""

    def forward(self, x: Tensor) -> Tensor:
        return F.relu(x)


class Tanh(Module):
    """Hyperbolic-tangent activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.tanh(x)


class Sigmoid(Module):
    """Logistic activation."""

    def forward(self, x: Tensor) -> Tensor:
        return F.sigmoid(x)


class Identity(Module):
    """Pass-through layer (useful as an ablation placeholder)."""

    def forward(self, x: Tensor) -> Tensor:
        return x


class Flatten(Module):
    """Flatten all but the leading (batch) dimension."""

    def forward(self, x: Tensor) -> Tensor:
        return F.reshape(x, (x.shape[0], -1))


class Dropout(Module):
    """Inverted dropout, active only in training mode."""

    def __init__(
        self, p: float = 0.5, seed: int | np.random.Generator | None = 0
    ) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.rng = as_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self.rng, self.training)

    def extra_repr(self) -> str:
        return f"p={self.p}"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, module in enumerate(modules):
            setattr(self, f"layer{i}", module)
        self._order = [f"layer{i}" for i in range(len(modules))]

    def forward(self, x: Tensor) -> Tensor:
        for name in self._order:
            x = getattr(self, name)(x)
        return x

    def __iter__(self):
        return (getattr(self, name) for name in self._order)

    def __getitem__(self, idx: int) -> Module:
        return getattr(self, self._order[idx])

    def __len__(self) -> int:
        return len(self._order)


class BatchNorm1d(Module):
    """Batch normalisation over the feature axis of ``(batch, features)``.

    Training mode normalises with batch statistics and updates running
    estimates (exponential moving average, PyTorch semantics); eval mode
    uses the running estimates.  Gamma/beta are learnable.
    """

    def __init__(
        self,
        num_features: int,
        eps: float = 1e-5,
        momentum: float = 0.1,
    ) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        if not 0.0 < momentum <= 1.0:
            raise ValueError(f"momentum must be in (0, 1], got {momentum}")
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))
        # Running statistics are buffers, not parameters.
        self.running_mean = np.zeros(num_features)
        self.running_var = np.ones(num_features)

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 2 or x.shape[1] != self.num_features:
            raise ValueError(
                f"expected (batch, {self.num_features}), got {x.shape}"
            )
        if self.training:
            mean = F.mean(x, axis=0)
            centred = x - mean
            var = F.mean(centred * centred, axis=0)
            batch = x.shape[0]
            # Update running stats with the unbiased variance (PyTorch).
            unbiased = var.data * batch / max(batch - 1, 1)
            self.running_mean *= 1 - self.momentum
            self.running_mean += self.momentum * mean.data
            self.running_var *= 1 - self.momentum
            self.running_var += self.momentum * unbiased
            inv_std = (var + self.eps) ** -0.5
            normalised = centred * inv_std
        else:
            normalised = (x - self.running_mean) * (
                1.0 / np.sqrt(self.running_var + self.eps)
            )
        return normalised * self.weight + self.bias

    def extra_repr(self) -> str:
        return f"num_features={self.num_features}, eps={self.eps}"


class LayerNorm(Module):
    """Layer normalisation over the last axis, with learnable gamma/beta."""

    def __init__(self, num_features: int, eps: float = 1e-5) -> None:
        super().__init__()
        if num_features <= 0:
            raise ValueError(f"num_features must be positive, got {num_features}")
        self.num_features = num_features
        self.eps = eps
        self.weight = Parameter(np.ones(num_features))
        self.bias = Parameter(np.zeros(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.num_features:
            raise ValueError(
                f"expected trailing dim {self.num_features}, got {x.shape}"
            )
        mean = F.mean(x, axis=-1, keepdims=True)
        centred = x - mean
        var = F.mean(centred * centred, axis=-1, keepdims=True)
        normalised = centred * (var + self.eps) ** -0.5
        return normalised * self.weight + self.bias

    def extra_repr(self) -> str:
        return f"num_features={self.num_features}, eps={self.eps}"
