"""Custom autograd Functions for the structured transforms.

Each wraps a :mod:`repro.core` fast path with its hand-derived backward, so
the layers get ``O(n log n)`` gradients instead of materialising dense
weights.  Every backward here is validated against finite differences in
``tests/nn/test_structured_grads.py``.
"""

from __future__ import annotations

import numpy as np

from repro.core.butterfly import (
    butterfly_multiply_backward,
    butterfly_multiply_with_intermediates,
)
from repro.core.circulant import circulant_multiply, circulant_multiply_backward
from repro.core.fastfood import fwht
from repro.core.pixelfly import (
    PixelflyPattern,
    block_sparse_multiply,
    block_sparse_multiply_backward,
)
from repro.nn.functional import Function

__all__ = [
    "ButterflyMultiplyFn",
    "BlockSparseMultiplyFn",
    "CirculantMultiplyFn",
    "FWHTFn",
]


class ButterflyMultiplyFn(Function):
    """``y = B(twiddle) @ x`` rows-wise, O(n log n) forward and backward."""

    def forward(
        self, twiddle: np.ndarray, x: np.ndarray, increasing_stride: bool = True
    ) -> np.ndarray:
        y, inputs = butterfly_multiply_with_intermediates(
            twiddle, x, increasing_stride
        )
        self.twiddle = twiddle
        self.inputs = inputs
        self.increasing_stride = increasing_stride
        return y

    def backward(self, grad: np.ndarray):
        grad_twiddle, grad_x = butterfly_multiply_backward(
            self.twiddle, self.inputs, grad, self.increasing_stride
        )
        return grad_twiddle, grad_x, None


class BlockSparseMultiplyFn(Function):
    """Block-sparse product against a fixed :class:`PixelflyPattern`."""

    def forward(
        self, blocks: np.ndarray, x: np.ndarray, pattern: PixelflyPattern
    ) -> np.ndarray:
        self.blocks = blocks
        self.x = x
        self.pattern = pattern
        return block_sparse_multiply(blocks, pattern, x)

    def backward(self, grad: np.ndarray):
        grad_blocks, grad_x = block_sparse_multiply_backward(
            self.blocks, self.pattern, self.x, grad
        )
        return grad_blocks, grad_x, None


class CirculantMultiplyFn(Function):
    """FFT-fast circulant product ``y_i = C(c) x_i``."""

    def forward(self, c: np.ndarray, x: np.ndarray) -> np.ndarray:
        self.c = c
        self.x = x
        return circulant_multiply(c, x)

    def backward(self, grad: np.ndarray):
        grad_c, grad_x = circulant_multiply_backward(self.c, self.x, grad)
        return grad_c, grad_x


class FWHTFn(Function):
    """Normalised fast Walsh–Hadamard transform along the last axis.

    ``H`` is symmetric and (normalised) involutive, so the backward pass is
    simply the transform applied to the incoming gradient.
    """

    def forward(self, x: np.ndarray) -> np.ndarray:
        return fwht(x, normalized=True)

    def backward(self, grad: np.ndarray):
        return (fwht(grad, normalized=True),)
