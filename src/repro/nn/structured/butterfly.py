"""Learnable butterfly linear layer (Dao et al. 2019; paper Section 2.3.1).

Replaces an ``in -> out`` dense layer by a single learnable butterfly matrix
of size ``n = 2**ceil(log2(max(in, out)))`` with ``2 n log2 n`` parameters:
the input is zero-padded to ``n``, pushed through the butterfly in
``O(batch * n log n)``, and the first ``out`` outputs are kept — the same
rectangular handling as Dao's reference implementation.
"""

from __future__ import annotations

import numpy as np

from repro.core.butterfly import identity_twiddle, orthogonal_twiddle
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module
from repro.nn.structured._functions import ButterflyMultiplyFn
from repro.nn.tensor import Parameter, Tensor
from repro.utils import as_rng, derive_rng

__all__ = ["ButterflyLinear"]


class ButterflyLinear(Module):
    """Affine layer whose weight is a butterfly factorization.

    Parameters
    ----------
    in_features, out_features:
        Logical layer shape; internally rounded up to a power of two.
    bias:
        Add a learnable output bias (default True, like ``nn.Linear``).
    increasing_stride:
        Stride schedule of the first butterfly (both orders span the same
        matrix class; exposed for the ablation benchmarks).
    nblocks:
        Number of butterflies multiplied together (Dao's ``nblocks``):
        ``W = B_nblocks ... B_2 B_1``, with alternating stride order so
        consecutive blocks compose like an FFT/IFFT pair.  One butterfly
        spans only a subset of matrices; products widen the expressible
        class at ``nblocks x 2 n log2 n`` parameters.
    init_mode:
        ``'orthogonal'`` (random 2x2 rotations; keeps activations
        norm-preserving at init — Dao's recipe) or ``'identity'``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        increasing_stride: bool = True,
        nblocks: int = 1,
        init_mode: str = "orthogonal",
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("features must be positive")
        if nblocks <= 0:
            raise ValueError(f"nblocks must be positive, got {nblocks}")
        self.in_features = in_features
        self.out_features = out_features
        self.increasing_stride = increasing_stride
        self.nblocks = nblocks
        self.n = 1 << (max(in_features, out_features) - 1).bit_length()
        rng = as_rng(seed)
        self._twiddle_names: list[str] = []
        for block in range(nblocks):
            if init_mode == "orthogonal":
                twiddle = orthogonal_twiddle(
                    self.n, seed=derive_rng(rng, "twiddle", block)
                )
            elif init_mode == "identity":
                twiddle = identity_twiddle(self.n)
            else:
                raise ValueError(f"unknown init_mode {init_mode!r}")
            name = "twiddle" if block == 0 else f"twiddle{block}"
            setattr(self, name, Parameter(twiddle))
            self._twiddle_names.append(name)
        self.bias = (
            Parameter(
                init.uniform_fan_in(
                    (out_features,), in_features, rng=derive_rng(rng, "bias")
                )
            )
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} input features, got {x.shape[-1]}"
            )
        squeeze = x.ndim == 1
        if squeeze:
            x = F.reshape(x, (1, -1))
        if self.in_features < self.n:
            x = F.pad_last(x, self.n)
        out = x
        for block, name in enumerate(self._twiddle_names):
            # Alternate the stride schedule across blocks (Dao's layout).
            increasing = self.increasing_stride ^ (block % 2 == 1)
            out = ButterflyMultiplyFn.apply(
                getattr(self, name), out, increasing
            )
        if self.out_features < self.n:
            out = F.getitem(out, (slice(None), slice(0, self.out_features)))
        if self.bias is not None:
            out = out + self.bias
        if squeeze:
            out = F.reshape(out, (self.out_features,))
        return out

    def weight_dense(self) -> np.ndarray:
        """Dense ``(out, in)`` equivalent weight (for tests/inspection)."""
        from repro.core.butterfly import butterfly_to_dense

        full = np.eye(self.n)
        for block, name in enumerate(self._twiddle_names):
            increasing = self.increasing_stride ^ (block % 2 == 1)
            full = butterfly_to_dense(
                getattr(self, name).data, increasing
            ) @ full
        return full[: self.out_features, : self.in_features]

    def extra_repr(self) -> str:
        return (
            f"in_features={self.in_features}, out_features={self.out_features}, "
            f"n={self.n}, nblocks={self.nblocks}, bias={self.bias is not None}"
        )
