"""Low-rank linear layer ``W = U V^T`` (Table 4 baseline, rank 1 there)."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module
from repro.nn.tensor import Parameter, Tensor
from repro.utils import as_rng, derive_rng

__all__ = ["LowRankLinear"]


class LowRankLinear(Module):
    """Affine layer with a rank-*r* factorised weight (``(in + out) r`` params)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rank: int = 1,
        bias: bool = True,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("features must be positive")
        if rank <= 0:
            raise ValueError(f"rank must be positive, got {rank}")
        self.in_features = in_features
        self.out_features = out_features
        self.rank = rank
        rng = as_rng(seed)
        self.u = Parameter(
            init.kaiming_uniform(
                (out_features, rank), fan_in=rank, rng=derive_rng(rng, "u"),
                gain=1.0,
            )
        )
        self.v = Parameter(
            init.kaiming_uniform(
                (in_features, rank),
                fan_in=in_features,
                rng=derive_rng(rng, "v"),
                gain=1.0,
            )
        )
        self.bias = (
            Parameter(
                init.uniform_fan_in(
                    (out_features,), in_features, rng=derive_rng(rng, "bias")
                )
            )
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.in_features:
            raise ValueError(
                f"expected {self.in_features} input features, got {x.shape[-1]}"
            )
        # (x V) U^T keeps cost O((in + out) r) per row.
        out = F.matmul(F.matmul(x, self.v), self.u.T)
        if self.bias is not None:
            out = out + self.bias
        return out

    def weight_dense(self) -> np.ndarray:
        """Dense ``(out, in)`` weight (for tests/inspection)."""
        return self.u.data @ self.v.data.T

    def extra_repr(self) -> str:
        return (
            f"in_features={self.in_features}, out_features={self.out_features}, "
            f"rank={self.rank}, bias={self.bias is not None}"
        )
