"""Fastfood linear layer (Table 4 baseline).

``y = S H G P H B x`` with learnable diagonals ``S, G, B`` (``3 n``
parameters) and fixed Hadamards/permutation.  Composed from autograd
primitives plus the :class:`FWHTFn` custom op, so gradients need no bespoke
derivation here.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module
from repro.nn.structured._functions import FWHTFn
from repro.nn.tensor import Parameter, Tensor
from repro.utils import as_rng, check_power_of_two, derive_rng

__all__ = ["FastfoodLinear"]


class FastfoodLinear(Module):
    """Affine layer with a fastfood-parameterised square weight."""

    def __init__(
        self,
        features: int,
        bias: bool = True,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__()
        check_power_of_two(features, "features (fastfood requires powers of two)")
        self.features = features
        rng = as_rng(seed)
        # Learnable diagonals, initialised per Le et al.: B Rademacher,
        # G Gaussian, S chi-scaled by ||G||.
        b = derive_rng(rng, "b").choice([-1.0, 1.0], size=features)
        g = derive_rng(rng, "g").standard_normal(features)
        s_raw = np.sqrt(derive_rng(rng, "s").chisquare(df=features, size=features))
        s = s_raw / np.sqrt((g**2).sum())
        self.b = Parameter(b)
        self.g = Parameter(g)
        self.s = Parameter(s)
        # Fixed permutation between the Hadamards (not learnable).
        self.perm = derive_rng(rng, "perm").permutation(features)
        self.bias = (
            Parameter(
                init.uniform_fan_in(
                    (features,), features, rng=derive_rng(rng, "bias")
                )
            )
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.features:
            raise ValueError(
                f"expected {self.features} input features, got {x.shape[-1]}"
            )
        squeeze = x.ndim == 1
        if squeeze:
            x = F.reshape(x, (1, -1))
        y = x * self.b
        y = FWHTFn.apply(y)
        y = F.getitem(y, (slice(None), self.perm))
        y = y * self.g
        y = FWHTFn.apply(y)
        y = y * self.s
        if self.bias is not None:
            y = y + self.bias
        if squeeze:
            y = F.reshape(y, (self.features,))
        return y

    def weight_dense(self) -> np.ndarray:
        """Dense equivalent weight (for tests/inspection)."""
        from repro.core.fastfood import FastfoodTransform

        transform = FastfoodTransform(
            s=self.s.data, g=self.g.data, b=self.b.data, perm=self.perm
        )
        return transform.to_dense()

    def extra_repr(self) -> str:
        return f"features={self.features}, bias={self.bias is not None}"
