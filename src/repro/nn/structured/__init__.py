"""Structured-matrix replacements for dense Linear layers (Table 4 methods)."""

from repro.nn.structured.butterfly import ButterflyLinear
from repro.nn.structured.pixelfly import PixelflyLinear
from repro.nn.structured.fastfood import FastfoodLinear
from repro.nn.structured.circulant import CirculantLinear
from repro.nn.structured.lowrank import LowRankLinear

__all__ = [
    "ButterflyLinear",
    "PixelflyLinear",
    "FastfoodLinear",
    "CirculantLinear",
    "LowRankLinear",
]
