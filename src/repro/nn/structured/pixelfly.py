"""Pixelated-butterfly linear layer (Chen et al. 2021; paper Section 2.3.2).

Weight ``W = scatter(blocks, flat-block-butterfly mask) + U V^T`` with an
optional residual connection (the "flat butterfly approximates the product
by a sum *with residual connections*" of the paper's Fig 2).  Exposes the
three hyper-parameters the paper sweeps in Table 5: ``butterfly_size``,
``block_size`` and ``rank``.

Unlike :class:`~repro.nn.structured.butterfly.ButterflyLinear`, this layer
*requires* power-of-two feature sizes — the reason the paper could not run
pixelfly on MNIST (784 inputs).
"""

from __future__ import annotations

import numpy as np

from repro.core.pixelfly import PixelflyPattern, pixelfly_pattern
from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module
from repro.nn.structured._functions import BlockSparseMultiplyFn
from repro.nn.tensor import Parameter, Tensor
from repro.utils import as_rng, check_power_of_two, derive_rng

__all__ = ["PixelflyLinear"]


class PixelflyLinear(Module):
    """Affine layer with a pixelfly (block-sparse + low-rank) weight."""

    def __init__(
        self,
        features: int,
        block_size: int = 32,
        butterfly_size: int | None = None,
        rank: int = 1,
        bias: bool = True,
        residual: bool = False,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__()
        check_power_of_two(
            features, "features (pixelfly requires powers of two)"
        )
        self.features = features
        self.residual = residual
        self.pattern: PixelflyPattern = pixelfly_pattern(
            features, block_size=block_size, butterfly_size=butterfly_size,
            rank=rank,
        )
        rng = as_rng(seed)
        # Fan-in of the sparse term = active blocks per row * block size.
        blocks_per_row = max(
            1, int(self.pattern.block_mask.sum(axis=1).max())
        )
        fan_in = blocks_per_row * block_size
        self.blocks = Parameter(
            init.kaiming_uniform(
                (self.pattern.n_blocks, block_size, block_size),
                fan_in=fan_in,
                rng=derive_rng(rng, "blocks"),
                gain=1.0,
            )
        )
        if rank > 0:
            scale = 1.0 / np.sqrt(features * max(rank, 1))
            self.u = Parameter(
                init.normal(
                    (features, rank), std=scale, rng=derive_rng(rng, "u")
                )
            )
            self.v = Parameter(
                init.normal(
                    (features, rank), std=scale, rng=derive_rng(rng, "v")
                )
            )
        else:
            self.u = None
            self.v = None
        self.bias = (
            Parameter(
                init.uniform_fan_in(
                    (features,), features, rng=derive_rng(rng, "bias")
                )
            )
            if bias
            else None
        )

    @property
    def block_size(self) -> int:
        return self.pattern.block_size

    @property
    def butterfly_size(self) -> int:
        return self.pattern.butterfly_size

    @property
    def rank(self) -> int:
        return self.pattern.rank

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.features:
            raise ValueError(
                f"expected {self.features} input features, got {x.shape[-1]}"
            )
        squeeze = x.ndim == 1
        if squeeze:
            x = F.reshape(x, (1, -1))
        out = BlockSparseMultiplyFn.apply(self.blocks, x, self.pattern)
        if self.u is not None:
            out = out + F.matmul(F.matmul(x, self.v), self.u.T)
        if self.residual:
            out = out + x
        if self.bias is not None:
            out = out + self.bias
        if squeeze:
            out = F.reshape(out, (self.features,))
        return out

    def weight_dense(self) -> np.ndarray:
        """Dense equivalent weight (for tests/inspection)."""
        from repro.core.pixelfly import blocks_to_dense

        w = blocks_to_dense(self.blocks.data, self.pattern)
        if self.u is not None:
            w = w + self.u.data @ self.v.data.T
        if self.residual:
            w = w + np.eye(self.features, dtype=w.dtype)
        return w

    def extra_repr(self) -> str:
        return (
            f"features={self.features}, block_size={self.block_size}, "
            f"butterfly_size={self.butterfly_size}, rank={self.rank}, "
            f"blocks={self.pattern.n_blocks}, residual={self.residual}"
        )
