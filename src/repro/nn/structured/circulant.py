"""Circulant linear layer (Table 4 baseline): ``n`` weight parameters."""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn import init
from repro.nn.module import Module
from repro.nn.structured._functions import CirculantMultiplyFn
from repro.nn.tensor import Parameter, Tensor
from repro.utils import as_rng, derive_rng

__all__ = ["CirculantLinear"]


class CirculantLinear(Module):
    """Affine layer whose square weight is circulant (FFT-fast apply)."""

    def __init__(
        self,
        features: int,
        bias: bool = True,
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        super().__init__()
        if features <= 0:
            raise ValueError(f"features must be positive, got {features}")
        self.features = features
        rng = as_rng(seed)
        # Variance 1/n keeps ||Cx|| ~ ||x|| at init (rows have n entries).
        self.c = Parameter(
            init.normal(
                (features,),
                std=1.0 / np.sqrt(features),
                rng=derive_rng(rng, "c"),
            )
        )
        self.bias = (
            Parameter(
                init.uniform_fan_in(
                    (features,), features, rng=derive_rng(rng, "bias")
                )
            )
            if bias
            else None
        )

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.features:
            raise ValueError(
                f"expected {self.features} input features, got {x.shape[-1]}"
            )
        squeeze = x.ndim == 1
        if squeeze:
            x = F.reshape(x, (1, -1))
        out = CirculantMultiplyFn.apply(self.c, x)
        if self.bias is not None:
            out = out + self.bias
        if squeeze:
            out = F.reshape(out, (self.features,))
        return out

    def weight_dense(self) -> np.ndarray:
        """Dense circulant weight (for tests/inspection)."""
        from repro.core.circulant import circulant_to_dense

        return circulant_to_dense(self.c.data)

    def extra_repr(self) -> str:
        return f"features={self.features}, bias={self.bias is not None}"
