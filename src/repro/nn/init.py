"""Weight initialisers.

Matches the fan-based recipes PyTorch's ``nn.Linear`` uses, so the baseline
SHL model trains under the paper's Table 3 hyper-parameters without extra
tuning.
"""

from __future__ import annotations

import numpy as np

from repro.utils import as_rng

__all__ = [
    "kaiming_uniform",
    "xavier_uniform",
    "uniform_fan_in",
    "zeros",
    "normal",
]


def kaiming_uniform(
    shape: tuple[int, ...],
    fan_in: int,
    rng: int | np.random.Generator | None = 0,
    gain: float = np.sqrt(2.0),
    dtype: np.dtype = np.float64,
) -> np.ndarray:
    """He/Kaiming uniform: ``U(-bound, bound)``, ``bound = gain*sqrt(3/fan_in)``."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    rng = as_rng(rng)
    bound = gain * np.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def xavier_uniform(
    shape: tuple[int, ...],
    fan_in: int,
    fan_out: int,
    rng: int | np.random.Generator | None = 0,
    dtype: np.dtype = np.float64,
) -> np.ndarray:
    """Glorot uniform: ``U(-a, a)``, ``a = sqrt(6 / (fan_in + fan_out))``."""
    rng = as_rng(rng)
    bound = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def uniform_fan_in(
    shape: tuple[int, ...],
    fan_in: int,
    rng: int | np.random.Generator | None = 0,
    dtype: np.dtype = np.float64,
) -> np.ndarray:
    """PyTorch's default bias init: ``U(-1/sqrt(fan_in), 1/sqrt(fan_in))``."""
    rng = as_rng(rng)
    bound = 1.0 / np.sqrt(fan_in) if fan_in > 0 else 0.0
    return rng.uniform(-bound, bound, size=shape).astype(dtype)


def zeros(shape: tuple[int, ...], dtype: np.dtype = np.float64) -> np.ndarray:
    """All-zero initialiser."""
    return np.zeros(shape, dtype=dtype)


def normal(
    shape: tuple[int, ...],
    std: float = 1.0,
    rng: int | np.random.Generator | None = 0,
    dtype: np.dtype = np.float64,
) -> np.ndarray:
    """Zero-mean Gaussian with standard deviation *std*."""
    rng = as_rng(rng)
    return (rng.standard_normal(shape) * std).astype(dtype)
