"""Module base class: parameter registration, traversal, train/eval state."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.nn.tensor import Parameter, Tensor

__all__ = ["Module"]


class Module:
    """Base class for neural-network components.

    Assigning a :class:`Parameter` or another :class:`Module` as an attribute
    registers it automatically, so :meth:`parameters` and
    :meth:`named_parameters` can traverse arbitrarily nested models — the
    device bridges (:mod:`repro.ipu.poptorch`, :mod:`repro.gpu.torchsim`)
    rely on the same traversal to lower models onto the simulators.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", {})
        object.__setattr__(self, "_modules", {})
        object.__setattr__(self, "training", True)

    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    # -- traversal ----------------------------------------------------------

    def parameters(self) -> Iterator[Parameter]:
        """All parameters in this module and its submodules."""
        for _, param in self.named_parameters():
            yield param

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        """(name, parameter) pairs with dotted-path names."""
        for name, param in self._parameters.items():
            yield (f"{prefix}{name}", param)
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{name}.")

    def modules(self) -> Iterator["Module"]:
        """This module and all submodules, depth-first."""
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def children(self) -> Iterator["Module"]:
        """Immediate submodules."""
        yield from self._modules.values()

    # -- state --------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    def zero_grad(self) -> None:
        """Clear gradients of all parameters."""
        for param in self.parameters():
            param.zero_grad()

    def param_count(self) -> int:
        """Total number of scalar parameters (the paper's ``N_params``)."""
        return sum(p.size for p in self.parameters())

    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of all parameter arrays keyed by dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameter arrays produced by :meth:`state_dict`."""
        params = dict(self.named_parameters())
        missing = set(params) - set(state)
        unexpected = set(state) - set(params)
        if missing or unexpected:
            raise KeyError(
                f"state mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        for name, value in state.items():
            if params[name].data.shape != value.shape:
                raise ValueError(
                    f"shape mismatch for {name}: model "
                    f"{params[name].data.shape} vs state {value.shape}"
                )
            params[name].data = value.copy()

    # -- forward ------------------------------------------------------------

    def forward(self, *args, **kwargs) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args, **kwargs) -> Tensor:
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [
            f"  ({name}): {module!r}".replace("\n", "\n  ")
            for name, module in self._modules.items()
        ]
        header = self.extra_repr()
        if not child_lines:
            return f"{type(self).__name__}({header})"
        body = "\n".join(child_lines)
        return f"{type(self).__name__}(\n{body}\n)"

    def extra_repr(self) -> str:
        """One-line description used by ``__repr__``; override in layers."""
        return ""
