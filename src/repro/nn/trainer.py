"""Training loop with wall-clock and simulated-device timing.

The Table 4 experiment needs three times per model: wall-clock (host), and
the *simulated* per-step times on the GPU (TC on/off) and IPU models.  The
trainer therefore accepts ``step_time_models`` — callables mapping a batch
size to seconds-per-training-step on some device — and integrates them over
the steps actually executed, exactly like the paper integrates measured
layer times over its training run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.faults.checkpoint import CheckpointError, CheckpointManager
from repro.nn.data import DataLoader
from repro.nn.losses import accuracy, cross_entropy
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.nn.tensor import Tensor, no_grad
from repro.obs import get_logger, get_registry, get_tracer

__all__ = ["NumericsError", "TrainingHistory", "Trainer"]


class NumericsError(RuntimeError):
    """Training produced a non-finite loss or gradient.

    Raised by :meth:`Trainer.fit` the step the divergence is observed,
    with the context needed to reproduce or recover: ``epoch`` and
    ``step`` (global optimisation step) of the poisoned update, the
    ``loss`` value, the name of the first non-finite parameter gradient
    (``param``, ``None`` when the loss itself was non-finite), and —
    when the run was checkpointing — ``rolled_back_to_step``, the global
    step of the checkpoint the model/optimiser state was restored to
    before raising (``None`` if there was nothing to roll back to).
    """

    def __init__(
        self,
        message: str,
        *,
        epoch: int,
        step: int,
        loss: float,
        param: str | None = None,
        rolled_back_to_step: int | None = None,
    ) -> None:
        super().__init__(message)
        self.epoch = epoch
        self.step = step
        self.loss = loss
        self.param = param
        self.rolled_back_to_step = rolled_back_to_step


@dataclass
class TrainingHistory:
    """Per-epoch metrics plus integrated device times.

    ``train_time_s`` and ``val_time_s`` separate the optimisation loop
    from validation passes (the paper's Table 4 wall-clock protocol times
    training only); ``wall_time_s`` stays their sum for backward
    compatibility.
    """

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    wall_time_s: float = 0.0
    train_time_s: float = 0.0
    val_time_s: float = 0.0
    steps: int = 0
    #: Optimisation steps executed in each epoch (resumed epochs count
    #: their pre-kill steps too, so the list describes the epoch, not
    #: the process that ran it).
    steps_per_epoch: list[int] = field(default_factory=list)
    #: Global step of the checkpoint this run resumed from, if any.
    resumed_from_step: int | None = None
    device_time_s: dict[str, float] = field(default_factory=dict)

    @property
    def final_val_accuracy(self) -> float:
        """Validation accuracy after the last epoch (0.0 if no val set)."""
        return self.val_accuracy[-1] if self.val_accuracy else 0.0


class Trainer:
    """Minimal supervised-classification training driver."""

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Callable[[Tensor, np.ndarray], Tensor] = cross_entropy,
        step_time_models: dict[str, Callable[[int], float]] | None = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.step_time_models = step_time_models or {}

    def train_step(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """One optimisation step; returns (loss, accuracy) on the batch."""
        self.model.train()
        self.optimizer.zero_grad()
        logits = self.model(Tensor(x))
        loss = self.loss_fn(logits, y)
        loss.backward()
        self.optimizer.step()
        return loss.item(), accuracy(logits, y)

    def evaluate(self, loader: DataLoader) -> tuple[float, float]:
        """Mean loss and accuracy over *loader* without recording a graph."""
        self.model.eval()
        total_loss = 0.0
        correct = 0.0
        count = 0
        with no_grad():
            for x, y in loader:
                logits = self.model(Tensor(x))
                loss = self.loss_fn(logits, y)
                total_loss += loss.item() * len(y)
                correct += accuracy(logits, y) * len(y)
                count += len(y)
        if count == 0:
            return 0.0, 0.0
        return total_loss / count, correct / count

    def _nonfinite_gradient(self) -> str | None:
        """Name of the first parameter with a non-finite gradient, if any."""
        for name, param in self.model.named_parameters():
            grad = param.grad
            if grad is not None and not np.all(np.isfinite(grad)):
                return name
        return None

    def _handle_numerics_fault(
        self,
        *,
        epoch: int,
        step: int,
        loss: float,
        param: str | None,
        history: TrainingHistory,
        checkpoint: CheckpointManager | None,
        train_loader: DataLoader,
        val_loader: DataLoader | None,
        registry,
    ) -> None:
        """Roll back to the last checkpoint (if any) and raise.

        The model/optimiser/loader state left behind is the restored
        checkpoint's — never the poisoned weights — so a caller that
        catches :class:`NumericsError` can adjust hyper-parameters and
        call :meth:`fit` again from healthy state.
        """
        rolled_back: int | None = None
        if checkpoint is not None:
            latest = checkpoint.load_latest()
            if latest is not None:
                ckpt_step, arrays, meta = latest
                self._restore_checkpoint(
                    arrays, meta, history, train_loader, val_loader
                )
                rolled_back = ckpt_step
        if registry.enabled:
            registry.counter("trainer.numerics_errors").inc()
        log = get_logger()
        if log.enabled:
            log.error(
                "trainer.numerics_rollback",
                f"non-finite {'gradient' if param else 'loss'}",
                epoch=epoch,
                step=step,
                param=param,
                rolled_back_to_step=rolled_back,
            )
        what = (
            f"gradient of parameter {param!r} is non-finite"
            if param is not None
            else f"loss is non-finite ({loss!r})"
        )
        message = (
            f"numerics fault at epoch {epoch}, step {step}: {what}"
        )
        if rolled_back is not None:
            message += (
                f"; model and optimiser rolled back to the step-"
                f"{rolled_back} checkpoint"
            )
        elif checkpoint is not None:
            message += "; no checkpoint available to roll back to"
        raise NumericsError(
            message,
            epoch=epoch,
            step=step,
            loss=float(loss),
            param=param,
            rolled_back_to_step=rolled_back,
        )

    # -- checkpoint plumbing --------------------------------------------------

    def _checkpoint_payload(
        self,
        history: TrainingHistory,
        epoch: int,
        step_in_epoch: int,
        partial_losses: list[float],
        partial_accs: list[float],
        epoch_rng_state: dict,
        val_rng_state: dict | None,
    ) -> tuple[dict[str, np.ndarray], dict]:
        """Flatten model + optimiser + cursor state into (arrays, meta)."""
        arrays: dict[str, np.ndarray] = {}
        for name, arr in self.model.state_dict().items():
            arrays[f"model/{name}"] = arr
        opt_state = self.optimizer.state_dict()
        slot_mask: dict[str, list[bool]] = {}
        for slot, buffers in opt_state["slots"].items():
            mask = []
            for i, buf in enumerate(buffers):
                mask.append(buf is not None)
                if buf is not None:
                    arrays[f"opt/{slot}/{i}"] = buf
            slot_mask[slot] = mask
        meta = {
            "epoch": epoch,
            "step_in_epoch": step_in_epoch,
            "steps": history.steps,
            "history": {
                "train_loss": list(history.train_loss),
                "train_accuracy": list(history.train_accuracy),
                "val_loss": list(history.val_loss),
                "val_accuracy": list(history.val_accuracy),
                "steps_per_epoch": list(history.steps_per_epoch),
                "train_time_s": history.train_time_s,
                "val_time_s": history.val_time_s,
                "device_time_s": dict(history.device_time_s),
            },
            "partial": {
                "losses": list(partial_losses),
                "accs": list(partial_accs),
            },
            "rng": {
                "train_epoch_start": epoch_rng_state,
                "val": val_rng_state,
            },
            "optimizer": {
                "scalars": opt_state["scalars"],
                "slot_mask": slot_mask,
            },
        }
        return arrays, meta

    def _restore_checkpoint(
        self,
        arrays: dict[str, np.ndarray],
        meta: dict,
        history: TrainingHistory,
        train_loader: DataLoader,
        val_loader: DataLoader | None,
    ) -> None:
        """Load a checkpoint payload back into model/optimiser/loaders."""
        model_state = {
            name[len("model/") :]: arr
            for name, arr in arrays.items()
            if name.startswith("model/")
        }
        self.model.load_state_dict(model_state)
        opt_meta = meta["optimizer"]
        slots = {
            slot: [
                arrays[f"opt/{slot}/{i}"] if present else None
                for i, present in enumerate(mask)
            ]
            for slot, mask in opt_meta["slot_mask"].items()
        }
        self.optimizer.load_state_dict(
            {"scalars": opt_meta["scalars"], "slots": slots}
        )
        h = meta["history"]
        history.train_loss[:] = [float(v) for v in h["train_loss"]]
        history.train_accuracy[:] = [float(v) for v in h["train_accuracy"]]
        history.val_loss[:] = [float(v) for v in h["val_loss"]]
        history.val_accuracy[:] = [float(v) for v in h["val_accuracy"]]
        history.steps_per_epoch[:] = [int(v) for v in h["steps_per_epoch"]]
        history.train_time_s = float(h["train_time_s"])
        history.val_time_s = float(h["val_time_s"])
        history.device_time_s = {
            k: float(v) for k, v in h["device_time_s"].items()
        }
        history.steps = int(meta["steps"])
        train_loader.set_rng_state(meta["rng"]["train_epoch_start"])
        if val_loader is not None and meta["rng"]["val"] is not None:
            val_loader.set_rng_state(meta["rng"]["val"])

    def fit(
        self,
        train_loader: DataLoader,
        val_loader: DataLoader | None = None,
        epochs: int = 1,
        verbose: bool = False,
        checkpoint: CheckpointManager | None = None,
        checkpoint_every: int = 0,
        resume: bool = True,
        numerics_check: bool = True,
    ) -> TrainingHistory:
        """Train for *epochs* and return the collected history.

        With a :class:`~repro.faults.checkpoint.CheckpointManager` the
        trainer writes an atomic checkpoint after every epoch (and every
        ``checkpoint_every`` optimisation steps, if nonzero) and — when
        *resume* is true and the manager holds a readable checkpoint —
        restores model, optimiser, metric history and the data loaders'
        RNG streams before training, continuing mid-epoch at the exact
        batch cursor.  The resumed run's losses, accuracies and final
        parameters are bit-identical to an uninterrupted run; only the
        host wall-clock fields differ.

        With *numerics_check* (the default), every step's loss and
        parameter gradients are checked for NaN/inf; a divergence raises
        :class:`NumericsError` at the offending step instead of training
        on through poisoned weights.  When a checkpoint manager is
        present, model and optimiser state are first rolled back to the
        last checkpoint (the exception records which one), so the caller
        can lower the learning rate and resume from healthy state.
        """
        if checkpoint_every < 0:
            raise ValueError(
                f"checkpoint_every must be >= 0, got {checkpoint_every}"
            )
        if checkpoint_every and checkpoint is None:
            raise ValueError(
                "checkpoint_every requires a CheckpointManager"
            )
        history = TrainingHistory()
        start_epoch = 0
        skip = 0
        partial_losses: list[float] = []
        partial_accs: list[float] = []
        if checkpoint is not None and resume:
            latest = checkpoint.load_latest()
            if latest is not None:
                ckpt_step, arrays, meta = latest
                self._restore_checkpoint(
                    arrays, meta, history, train_loader, val_loader
                )
                start_epoch = int(meta["epoch"])
                skip = int(meta["step_in_epoch"])
                partial_losses = [
                    float(v) for v in meta["partial"]["losses"]
                ]
                partial_accs = [float(v) for v in meta["partial"]["accs"]]
                history.resumed_from_step = ckpt_step
        tracer = get_tracer()
        registry = get_registry()
        with tracer.span(
            "trainer.fit", category="train", epochs=epochs
        ) as fit_span:
            for epoch in range(start_epoch, epochs):
                epoch_rng = train_loader.rng_state()
                losses = partial_losses
                accs = partial_accs
                partial_losses, partial_accs = [], []
                consumed = 0
                t0 = time.perf_counter()
                with tracer.span(
                    "epoch", category="train", epoch=epoch
                ):
                    for x, y in train_loader:
                        consumed += 1
                        if consumed <= skip:
                            continue
                        if registry.enabled:
                            t_step = time.perf_counter()
                        if tracer.enabled:
                            with tracer.span("train_step", category="train"):
                                loss, acc = self.train_step(x, y)
                            tracer.counter(
                                "train", {"loss": loss, "accuracy": acc}
                            )
                        else:
                            loss, acc = self.train_step(x, y)
                        if registry.enabled:
                            registry.histogram("trainer.step_s").observe(
                                time.perf_counter() - t_step
                            )
                            registry.counter("trainer.steps").inc()
                            registry.gauge("trainer.loss").set(loss)
                            registry.gauge("trainer.accuracy").set(acc)
                        if numerics_check:
                            bad_param = None
                            if np.isfinite(loss):
                                bad_param = self._nonfinite_gradient()
                            if not np.isfinite(loss) or bad_param:
                                self._handle_numerics_fault(
                                    epoch=epoch,
                                    step=history.steps + 1,
                                    loss=loss,
                                    param=bad_param,
                                    history=history,
                                    checkpoint=checkpoint,
                                    train_loader=train_loader,
                                    val_loader=val_loader,
                                    registry=registry,
                                )
                        losses.append(loss)
                        accs.append(acc)
                        history.steps += 1
                        for name, model in self.step_time_models.items():
                            history.device_time_s[name] = (
                                history.device_time_s.get(name, 0.0)
                                + model(len(y))
                            )
                        if (
                            checkpoint is not None
                            and checkpoint_every
                            and history.steps % checkpoint_every == 0
                        ):
                            with tracer.span(
                                "checkpoint.save",
                                category="train",
                                step=history.steps,
                            ):
                                checkpoint.save(
                                    history.steps,
                                    *self._checkpoint_payload(
                                        history,
                                        epoch,
                                        consumed,
                                        losses,
                                        accs,
                                        epoch_rng,
                                        val_loader.rng_state()
                                        if val_loader is not None
                                        else None,
                                    ),
                                )
                            registry.counter(
                                "trainer.checkpoint_writes"
                            ).inc()
                if consumed == 0:
                    raise ValueError(
                        "train_loader is exhausted: it yielded no batches "
                        f"in epoch {epoch} (dataset of "
                        f"{len(train_loader.dataset)} samples, batch_size="
                        f"{train_loader.batch_size}, drop_last="
                        f"{train_loader.drop_last})"
                    )
                if consumed < skip:
                    raise CheckpointError(
                        f"checkpoint cursor {skip} exceeds the "
                        f"{consumed} batches the train loader yields per "
                        "epoch; the checkpoint does not match this loader"
                    )
                skip = 0
                history.train_time_s += time.perf_counter() - t0
                history.steps_per_epoch.append(len(losses))
                history.train_loss.append(
                    float(np.mean(losses)) if losses else 0.0
                )
                history.train_accuracy.append(
                    float(np.mean(accs)) if accs else 0.0
                )
                if val_loader is not None:
                    t0 = time.perf_counter()
                    with tracer.span(
                        "validate", category="eval", epoch=epoch
                    ):
                        vl, va = self.evaluate(val_loader)
                    history.val_time_s += time.perf_counter() - t0
                    history.val_loss.append(vl)
                    history.val_accuracy.append(va)
                    if tracer.enabled:
                        tracer.counter(
                            "val", {"loss": vl, "accuracy": va}
                        )
                    if registry.enabled:
                        registry.gauge("trainer.val_loss").set(vl)
                        registry.gauge("trainer.val_accuracy").set(va)
                if checkpoint is not None:
                    with tracer.span(
                        "checkpoint.save",
                        category="train",
                        step=history.steps,
                        epoch_end=True,
                    ):
                        checkpoint.save(
                            history.steps,
                            *self._checkpoint_payload(
                                history,
                                epoch + 1,
                                0,
                                [],
                                [],
                                train_loader.rng_state(),
                                val_loader.rng_state()
                                if val_loader is not None
                                else None,
                            ),
                        )
                    registry.counter("trainer.checkpoint_writes").inc()
                    log = get_logger()
                    if log.enabled:
                        log.info(
                            "trainer.checkpoint",
                            epoch=epoch + 1,
                            step=history.steps,
                        )
                if registry.enabled:
                    registry.counter("trainer.epochs").inc()
                log = get_logger()
                if log.enabled:
                    log.info(
                        "trainer.epoch",
                        epoch=epoch + 1,
                        epochs=epochs,
                        loss=history.train_loss[-1],
                        accuracy=history.train_accuracy[-1],
                    )
                if verbose:
                    msg = (
                        f"epoch {epoch + 1}/{epochs} "
                        f"loss={history.train_loss[-1]:.4f} "
                        f"acc={history.train_accuracy[-1]:.3f}"
                    )
                    if val_loader is not None:
                        msg += (
                            f" val_loss={history.val_loss[-1]:.4f} "
                            f"val_acc={history.val_accuracy[-1]:.3f}"
                        )
                    print(msg)  # noqa: T201
            history.wall_time_s = history.train_time_s + history.val_time_s
            if tracer.enabled:
                fit_span.attributes.update(
                    steps=history.steps,
                    train_time_s=history.train_time_s,
                    val_time_s=history.val_time_s,
                )
        return history
