"""Training loop with wall-clock and simulated-device timing.

The Table 4 experiment needs three times per model: wall-clock (host), and
the *simulated* per-step times on the GPU (TC on/off) and IPU models.  The
trainer therefore accepts ``step_time_models`` — callables mapping a batch
size to seconds-per-training-step on some device — and integrates them over
the steps actually executed, exactly like the paper integrates measured
layer times over its training run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.nn.data import DataLoader
from repro.nn.losses import accuracy, cross_entropy
from repro.nn.module import Module
from repro.nn.optim import Optimizer
from repro.nn.tensor import Tensor, no_grad
from repro.obs import get_tracer

__all__ = ["TrainingHistory", "Trainer"]


@dataclass
class TrainingHistory:
    """Per-epoch metrics plus integrated device times.

    ``train_time_s`` and ``val_time_s`` separate the optimisation loop
    from validation passes (the paper's Table 4 wall-clock protocol times
    training only); ``wall_time_s`` stays their sum for backward
    compatibility.
    """

    train_loss: list[float] = field(default_factory=list)
    train_accuracy: list[float] = field(default_factory=list)
    val_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    wall_time_s: float = 0.0
    train_time_s: float = 0.0
    val_time_s: float = 0.0
    steps: int = 0
    device_time_s: dict[str, float] = field(default_factory=dict)

    @property
    def final_val_accuracy(self) -> float:
        """Validation accuracy after the last epoch (0.0 if no val set)."""
        return self.val_accuracy[-1] if self.val_accuracy else 0.0


class Trainer:
    """Minimal supervised-classification training driver."""

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn: Callable[[Tensor, np.ndarray], Tensor] = cross_entropy,
        step_time_models: dict[str, Callable[[int], float]] | None = None,
    ) -> None:
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.step_time_models = step_time_models or {}

    def train_step(self, x: np.ndarray, y: np.ndarray) -> tuple[float, float]:
        """One optimisation step; returns (loss, accuracy) on the batch."""
        self.model.train()
        self.optimizer.zero_grad()
        logits = self.model(Tensor(x))
        loss = self.loss_fn(logits, y)
        loss.backward()
        self.optimizer.step()
        return loss.item(), accuracy(logits, y)

    def evaluate(self, loader: DataLoader) -> tuple[float, float]:
        """Mean loss and accuracy over *loader* without recording a graph."""
        self.model.eval()
        total_loss = 0.0
        correct = 0.0
        count = 0
        with no_grad():
            for x, y in loader:
                logits = self.model(Tensor(x))
                loss = self.loss_fn(logits, y)
                total_loss += loss.item() * len(y)
                correct += accuracy(logits, y) * len(y)
                count += len(y)
        if count == 0:
            return 0.0, 0.0
        return total_loss / count, correct / count

    def fit(
        self,
        train_loader: DataLoader,
        val_loader: DataLoader | None = None,
        epochs: int = 1,
        verbose: bool = False,
    ) -> TrainingHistory:
        """Train for *epochs* and return the collected history."""
        history = TrainingHistory()
        tracer = get_tracer()
        with tracer.span(
            "trainer.fit", category="train", epochs=epochs
        ) as fit_span:
            for epoch in range(epochs):
                losses: list[float] = []
                accs: list[float] = []
                t0 = time.perf_counter()
                with tracer.span(
                    "epoch", category="train", epoch=epoch
                ):
                    for x, y in train_loader:
                        if tracer.enabled:
                            with tracer.span("train_step", category="train"):
                                loss, acc = self.train_step(x, y)
                            tracer.counter(
                                "train", {"loss": loss, "accuracy": acc}
                            )
                        else:
                            loss, acc = self.train_step(x, y)
                        losses.append(loss)
                        accs.append(acc)
                        history.steps += 1
                        for name, model in self.step_time_models.items():
                            history.device_time_s[name] = (
                                history.device_time_s.get(name, 0.0)
                                + model(len(y))
                            )
                history.train_time_s += time.perf_counter() - t0
                history.train_loss.append(
                    float(np.mean(losses)) if losses else 0.0
                )
                history.train_accuracy.append(
                    float(np.mean(accs)) if accs else 0.0
                )
                if val_loader is not None:
                    t0 = time.perf_counter()
                    with tracer.span(
                        "validate", category="eval", epoch=epoch
                    ):
                        vl, va = self.evaluate(val_loader)
                    history.val_time_s += time.perf_counter() - t0
                    history.val_loss.append(vl)
                    history.val_accuracy.append(va)
                    if tracer.enabled:
                        tracer.counter(
                            "val", {"loss": vl, "accuracy": va}
                        )
                if verbose:
                    msg = (
                        f"epoch {epoch + 1}/{epochs} "
                        f"loss={history.train_loss[-1]:.4f} "
                        f"acc={history.train_accuracy[-1]:.3f}"
                    )
                    if val_loader is not None:
                        msg += (
                            f" val_loss={history.val_loss[-1]:.4f} "
                            f"val_acc={history.val_accuracy[-1]:.3f}"
                        )
                    print(msg)
            history.wall_time_s = history.train_time_s + history.val_time_s
            if tracer.enabled:
                fit_span.attributes.update(
                    steps=history.steps,
                    train_time_s=history.train_time_s,
                    val_time_s=history.val_time_s,
                )
        return history
