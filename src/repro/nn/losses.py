"""Loss functions and classification metrics.

Cross-entropy (the paper's Table 3 loss) is built from the stable
log-softmax primitive plus target gathering, so its gradient flows through
the recorded graph with no bespoke backward code.
"""

from __future__ import annotations

import numpy as np

from repro.nn import functional as F
from repro.nn.tensor import Tensor

__all__ = ["cross_entropy", "mse_loss", "accuracy"]


def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean cross-entropy between *logits* ``(B, C)`` and int *targets* ``(B,)``."""
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError(f"logits must be (batch, classes), got {logits.shape}")
    if targets.shape != (logits.shape[0],):
        raise ValueError(
            f"targets must be ({logits.shape[0]},), got {targets.shape}"
        )
    if not np.issubdtype(targets.dtype, np.integer):
        raise TypeError(f"targets must be integer class ids, got {targets.dtype}")
    log_probs = F.log_softmax(logits, axis=-1)
    picked = F.getitem(log_probs, (np.arange(len(targets)), targets))
    return -F.mean(picked)


def mse_loss(pred: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    if isinstance(target, Tensor):
        diff = pred - target
    else:
        diff = pred - np.asarray(target)
    return F.mean(diff * diff)


def accuracy(logits: Tensor | np.ndarray, targets: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    data = logits.data if isinstance(logits, Tensor) else np.asarray(logits)
    targets = np.asarray(targets)
    if len(data) == 0:
        return 0.0
    return float((data.argmax(axis=-1) == targets).mean())
