"""Minimal PyTorch-like deep-learning framework on numpy.

Provides exactly the subset the paper's experiments need: a reverse-mode
autograd :class:`Tensor`, ``Module``/``Linear``/``Sequential`` building
blocks, SGD with momentum, cross-entropy, a data pipeline and a trainer —
plus the structured layers (:mod:`repro.nn.structured`) that replace dense
``Linear`` weights with butterfly/pixelfly/fastfood/circulant/low-rank
factorizations.
"""

from repro.nn.tensor import Tensor, Parameter, no_grad, is_grad_enabled
from repro.nn import functional
from repro.nn.module import Module
from repro.nn.layers import (
    Linear,
    ReLU,
    Tanh,
    Sigmoid,
    Identity,
    Flatten,
    Dropout,
    Sequential,
    BatchNorm1d,
    LayerNorm,
)
from repro.nn.optim import (
    Optimizer,
    SGD,
    Adam,
    clip_grad_norm,
    LRScheduler,
    StepLR,
    CosineAnnealingLR,
)
from repro.nn.losses import cross_entropy, mse_loss, accuracy
from repro.nn.data import ArrayDataset, DataLoader, train_val_split
from repro.nn.trainer import NumericsError, Trainer, TrainingHistory
from repro.nn.structured import (
    ButterflyLinear,
    PixelflyLinear,
    FastfoodLinear,
    CirculantLinear,
    LowRankLinear,
)

__all__ = [
    "Tensor",
    "Parameter",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "Module",
    "Linear",
    "ReLU",
    "Tanh",
    "Sigmoid",
    "Identity",
    "Flatten",
    "Dropout",
    "Sequential",
    "BatchNorm1d",
    "LayerNorm",
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
    "cross_entropy",
    "mse_loss",
    "accuracy",
    "ArrayDataset",
    "DataLoader",
    "train_val_split",
    "NumericsError",
    "Trainer",
    "TrainingHistory",
    "ButterflyLinear",
    "PixelflyLinear",
    "FastfoodLinear",
    "CirculantLinear",
    "LowRankLinear",
]
