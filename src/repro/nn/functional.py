"""Differentiable operations (the Function zoo) and the functional API.

Every op is a :class:`Function` subclass: ``forward`` computes on raw numpy
arrays, ``backward`` returns one gradient per *positional argument* (None
for non-differentiable ones); :meth:`Function.apply` handles Tensor
unwrapping, graph recording, and routing gradients to the tensor arguments.

At import time this module installs operator methods (``__add__``,
``__matmul__``, ``.relu()``, …) onto :class:`repro.nn.tensor.Tensor`.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, is_grad_enabled

__all__ = [
    "Function",
    "unbroadcast",
    "add",
    "sub",
    "mul",
    "div",
    "neg",
    "pow_",
    "matmul",
    "relu",
    "exp",
    "log",
    "tanh",
    "sigmoid",
    "abs_",
    "sqrt",
    "sum_",
    "mean",
    "max_",
    "reshape",
    "transpose",
    "getitem",
    "pad_last",
    "concat",
    "log_softmax",
    "softmax",
    "dropout",
]


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce *grad* back to *shape* by summing numpy-broadcast axes."""
    if grad.shape == shape:
        return grad
    # Sum leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were size-1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Function:
    """Base class for differentiable operations.

    Subclasses implement ``forward(self, *raw_args, **kwargs)`` returning a
    numpy array, and ``backward(self, grad)`` returning a tuple with one
    entry per positional argument of forward (``None`` where no gradient
    flows).  State needed by backward is stashed on ``self``.
    """

    def forward(self, *args, **kwargs) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad: np.ndarray):
        raise NotImplementedError

    @classmethod
    def apply(cls, *args, **kwargs) -> Tensor:
        fn = cls()
        raw = [a.data if isinstance(a, Tensor) else a for a in args]
        out_data = fn.forward(*raw, **kwargs)
        parents = tuple(a for a in args if isinstance(a, Tensor))
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(out_data, requires_grad=requires)
        if requires:
            fn._positions = [
                i for i, a in enumerate(args) if isinstance(a, Tensor)
            ]
            out._ctx = fn
            out._parents = parents
        return out

    def parent_grads(self, grad: np.ndarray) -> tuple:
        """Gradients for the Tensor arguments only (engine entry point)."""
        all_grads = self.backward(grad)
        if not isinstance(all_grads, tuple):
            all_grads = (all_grads,)
        return tuple(all_grads[i] for i in self._positions)


# ---------------------------------------------------------------------------
# Elementwise arithmetic
# ---------------------------------------------------------------------------


class Add(Function):
    def forward(self, a, b):
        self.a_shape, self.b_shape = np.shape(a), np.shape(b)
        return a + b

    def backward(self, grad):
        return unbroadcast(grad, self.a_shape), unbroadcast(grad, self.b_shape)


class Sub(Function):
    def forward(self, a, b):
        self.a_shape, self.b_shape = np.shape(a), np.shape(b)
        return a - b

    def backward(self, grad):
        return unbroadcast(grad, self.a_shape), unbroadcast(-grad, self.b_shape)


class Mul(Function):
    def forward(self, a, b):
        self.a, self.b = a, b
        return a * b

    def backward(self, grad):
        return (
            unbroadcast(grad * self.b, np.shape(self.a)),
            unbroadcast(grad * self.a, np.shape(self.b)),
        )


class Div(Function):
    def forward(self, a, b):
        self.a, self.b = a, b
        return a / b

    def backward(self, grad):
        return (
            unbroadcast(grad / self.b, np.shape(self.a)),
            unbroadcast(-grad * self.a / (self.b * self.b), np.shape(self.b)),
        )


class Neg(Function):
    def forward(self, a):
        return -a

    def backward(self, grad):
        return (-grad,)


class Pow(Function):
    """Elementwise power with a constant (non-tensor) exponent."""

    def forward(self, a, exponent):
        self.a, self.exponent = a, exponent
        return a**exponent

    def backward(self, grad):
        return (grad * self.exponent * self.a ** (self.exponent - 1), None)


class Exp(Function):
    def forward(self, a):
        self.out = np.exp(a)
        return self.out

    def backward(self, grad):
        return (grad * self.out,)


class Log(Function):
    def forward(self, a):
        self.a = a
        return np.log(a)

    def backward(self, grad):
        return (grad / self.a,)


class Sqrt(Function):
    def forward(self, a):
        self.out = np.sqrt(a)
        return self.out

    def backward(self, grad):
        return (grad / (2 * self.out),)


class Abs(Function):
    def forward(self, a):
        self.sign = np.sign(a)
        return np.abs(a)

    def backward(self, grad):
        return (grad * self.sign,)


class ReLU(Function):
    def forward(self, a):
        self.mask = a > 0
        return np.where(self.mask, a, 0)

    def backward(self, grad):
        return (grad * self.mask,)


class Tanh(Function):
    def forward(self, a):
        self.out = np.tanh(a)
        return self.out

    def backward(self, grad):
        return (grad * (1 - self.out * self.out),)


class Sigmoid(Function):
    def forward(self, a):
        self.out = 1.0 / (1.0 + np.exp(-a))
        return self.out

    def backward(self, grad):
        return (grad * self.out * (1 - self.out),)


# ---------------------------------------------------------------------------
# Linear algebra
# ---------------------------------------------------------------------------


class MatMul(Function):
    """Matrix product supporting 1-D/2-D and batched (>2-D) operands."""

    def forward(self, a, b):
        self.a, self.b = a, b
        return a @ b

    def backward(self, grad):
        a, b = self.a, self.b
        if a.ndim == 1 and b.ndim == 1:
            return grad * b, grad * a
        if a.ndim == 1:  # (k,) @ (k, n) -> (n,)
            return grad @ np.swapaxes(b, -1, -2), np.outer(a, grad)
        if b.ndim == 1:  # (m, k) @ (k,) -> (m,)
            return np.outer(grad, b), np.swapaxes(a, -1, -2) @ grad
        grad_a = grad @ np.swapaxes(b, -1, -2)
        grad_b = np.swapaxes(a, -1, -2) @ grad
        return unbroadcast(grad_a, a.shape), unbroadcast(grad_b, b.shape)


# ---------------------------------------------------------------------------
# Reductions
# ---------------------------------------------------------------------------


def _normalize_axis(axis, ndim):
    if axis is None:
        return None
    if isinstance(axis, int):
        axis = (axis,)
    return tuple(a % ndim for a in axis)


class Sum(Function):
    def forward(self, a, axis=None, keepdims=False):
        self.shape = a.shape
        self.axis = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        return a.sum(axis=self.axis, keepdims=keepdims)

    def backward(self, grad):
        if self.axis is not None and not self.keepdims:
            grad = np.expand_dims(grad, self.axis)
        return (np.broadcast_to(grad, self.shape).copy(), None, None)


class Mean(Function):
    def forward(self, a, axis=None, keepdims=False):
        self.shape = a.shape
        self.axis = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        if self.axis is None:
            self.count = a.size
        else:
            self.count = int(np.prod([a.shape[i] for i in self.axis]))
        return a.mean(axis=self.axis, keepdims=keepdims)

    def backward(self, grad):
        if self.axis is not None and not self.keepdims:
            grad = np.expand_dims(grad, self.axis)
        return (
            np.broadcast_to(grad, self.shape).copy() / self.count,
            None,
            None,
        )


class Max(Function):
    """Reduction max; gradient splits evenly among tied maxima."""

    def forward(self, a, axis=None, keepdims=False):
        self.a = a
        self.axis = _normalize_axis(axis, a.ndim)
        self.keepdims = keepdims
        self.out = a.max(axis=self.axis, keepdims=True)
        return self.out if keepdims else np.squeeze(
            self.out, axis=self.axis if self.axis is not None else None
        )

    def backward(self, grad):
        mask = (self.a == self.out).astype(grad.dtype)
        counts = mask.sum(axis=self.axis, keepdims=True)
        if self.axis is not None and not self.keepdims:
            grad = np.expand_dims(grad, self.axis)
        elif self.axis is None and not self.keepdims:
            grad = np.reshape(grad, (1,) * self.a.ndim)
        return (mask / counts * grad, None, None)


# ---------------------------------------------------------------------------
# Shape manipulation & indexing
# ---------------------------------------------------------------------------


class Reshape(Function):
    def forward(self, a, shape):
        self.orig = a.shape
        return a.reshape(shape)

    def backward(self, grad):
        return (grad.reshape(self.orig), None)


class Transpose(Function):
    def forward(self, a, axes=None):
        self.axes = axes
        return np.transpose(a, axes)

    def backward(self, grad):
        if self.axes is None:
            return (np.transpose(grad), None)
        return (np.transpose(grad, np.argsort(self.axes)), None)


class GetItem(Function):
    """Indexing/slicing; backward scatter-adds into a zero array."""

    def forward(self, a, key):
        self.shape = a.shape
        self.dtype = a.dtype
        self.key = key
        return a[key]

    def backward(self, grad):
        out = np.zeros(self.shape, dtype=grad.dtype)
        np.add.at(out, self.key, grad)
        return (out, None)


class PadLast(Function):
    """Zero-pad the last axis on the right to a target length."""

    def forward(self, a, target):
        self.orig = a.shape[-1]
        if target < self.orig:
            raise ValueError(
                f"target {target} smaller than current size {self.orig}"
            )
        pad = [(0, 0)] * (a.ndim - 1) + [(0, target - self.orig)]
        return np.pad(a, pad)

    def backward(self, grad):
        return (grad[..., : self.orig], None)


class Concat(Function):
    def forward(self, *arrays, axis=0):
        self.axis = axis
        self.sizes = [a.shape[axis] for a in arrays]
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad):
        splits = np.cumsum(self.sizes)[:-1]
        return tuple(np.split(grad, splits, axis=self.axis))


# ---------------------------------------------------------------------------
# Softmax family
# ---------------------------------------------------------------------------


class LogSoftmax(Function):
    """Numerically stable log-softmax along *axis*."""

    def forward(self, a, axis=-1):
        self.axis = axis
        shifted = a - a.max(axis=axis, keepdims=True)
        logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
        self.out = shifted - logsumexp
        return self.out

    def backward(self, grad):
        softmax = np.exp(self.out)
        return (
            grad - softmax * grad.sum(axis=self.axis, keepdims=True),
            None,
        )


class Dropout(Function):
    """Inverted dropout; identity when not training."""

    def forward(self, a, p, rng, training):
        if not training or p <= 0:
            self.mask = None
            return a
        keep = 1.0 - p
        self.mask = (rng.random(a.shape) < keep) / keep
        return a * self.mask

    def backward(self, grad):
        if self.mask is None:
            return (grad, None, None, None)
        return (grad * self.mask, None, None, None)


# ---------------------------------------------------------------------------
# Functional API
# ---------------------------------------------------------------------------


def add(a, b) -> Tensor:
    return Add.apply(a, b)


def sub(a, b) -> Tensor:
    return Sub.apply(a, b)


def mul(a, b) -> Tensor:
    return Mul.apply(a, b)


def div(a, b) -> Tensor:
    return Div.apply(a, b)


def neg(a) -> Tensor:
    return Neg.apply(a)


def pow_(a, exponent: float) -> Tensor:
    return Pow.apply(a, exponent)


def matmul(a, b) -> Tensor:
    return MatMul.apply(a, b)


def relu(a) -> Tensor:
    return ReLU.apply(a)


def exp(a) -> Tensor:
    return Exp.apply(a)


def log(a) -> Tensor:
    return Log.apply(a)


def sqrt(a) -> Tensor:
    return Sqrt.apply(a)


def abs_(a) -> Tensor:
    return Abs.apply(a)


def tanh(a) -> Tensor:
    return Tanh.apply(a)


def sigmoid(a) -> Tensor:
    return Sigmoid.apply(a)


def sum_(a, axis=None, keepdims=False) -> Tensor:
    return Sum.apply(a, axis, keepdims)


def mean(a, axis=None, keepdims=False) -> Tensor:
    return Mean.apply(a, axis, keepdims)


def max_(a, axis=None, keepdims=False) -> Tensor:
    return Max.apply(a, axis, keepdims)


def reshape(a, shape) -> Tensor:
    return Reshape.apply(a, shape)


def transpose(a, axes=None) -> Tensor:
    return Transpose.apply(a, axes)


def getitem(a, key) -> Tensor:
    return GetItem.apply(a, key)


def pad_last(a, target: int) -> Tensor:
    return PadLast.apply(a, target)


def concat(tensors, axis=0) -> Tensor:
    return Concat.apply(*tensors, axis=axis)


def log_softmax(a, axis=-1) -> Tensor:
    return LogSoftmax.apply(a, axis)


def softmax(a, axis=-1) -> Tensor:
    return exp(log_softmax(a, axis=axis))


def dropout(a, p: float, rng: np.random.Generator, training: bool) -> Tensor:
    return Dropout.apply(a, p, rng, training)


# ---------------------------------------------------------------------------
# Install operator sugar on Tensor
# ---------------------------------------------------------------------------


def _install_tensor_methods() -> None:
    Tensor.__add__ = lambda self, other: add(self, other)
    Tensor.__radd__ = lambda self, other: add(other, self)
    Tensor.__sub__ = lambda self, other: sub(self, other)
    Tensor.__rsub__ = lambda self, other: sub(other, self)
    Tensor.__mul__ = lambda self, other: mul(self, other)
    Tensor.__rmul__ = lambda self, other: mul(other, self)
    Tensor.__truediv__ = lambda self, other: div(self, other)
    Tensor.__rtruediv__ = lambda self, other: div(other, self)
    Tensor.__neg__ = lambda self: neg(self)
    Tensor.__pow__ = lambda self, e: pow_(self, e)
    Tensor.__matmul__ = lambda self, other: matmul(self, other)
    Tensor.__getitem__ = lambda self, key: getitem(self, key)
    Tensor.relu = lambda self: relu(self)
    Tensor.exp = lambda self: exp(self)
    Tensor.log = lambda self: log(self)
    Tensor.sqrt = lambda self: sqrt(self)
    Tensor.abs = lambda self: abs_(self)
    Tensor.tanh = lambda self: tanh(self)
    Tensor.sigmoid = lambda self: sigmoid(self)
    Tensor.sum = lambda self, axis=None, keepdims=False: sum_(
        self, axis, keepdims
    )
    Tensor.mean = lambda self, axis=None, keepdims=False: mean(
        self, axis, keepdims
    )
    Tensor.max = lambda self, axis=None, keepdims=False: max_(
        self, axis, keepdims
    )
    Tensor.reshape = lambda self, *shape: reshape(
        self, shape[0] if len(shape) == 1 and isinstance(shape[0], tuple) else shape
    )
    Tensor.transpose = lambda self, axes=None: transpose(self, axes)
    Tensor.T = property(lambda self: transpose(self))


_install_tensor_methods()
