"""Optimisers.

The paper trains everything with SGD + momentum 0.9 (Table 3); Adam is
provided for the extension experiments.  Updates are in-place on the
parameter arrays (no reallocations in the training loop, per the HPC
guides' in-place-op advice).
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Parameter

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "clip_grad_norm",
    "LRScheduler",
    "StepLR",
    "CosineAnnealingLR",
]


class Optimizer:
    """Base optimiser: holds the parameter list and clears gradients."""

    def __init__(self, params) -> None:
        self.params: list[Parameter] = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")

    def zero_grad(self) -> None:
        """Reset gradients of all managed parameters."""
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError

    # -- checkpointing -------------------------------------------------------

    def state_dict(self) -> dict:
        """Serialisable snapshot of the optimiser's mutable state.

        Returns ``{"scalars": {...}, "slots": {name: [array|None, ...]}}``
        — one slot list per per-parameter buffer, aligned with
        ``self.params``.  Subclasses override :meth:`_slots` and
        :meth:`_scalars` rather than this method.
        """
        return {
            "scalars": self._scalars(),
            "slots": {
                name: [None if b is None else b.copy() for b in buffers]
                for name, buffers in self._slots().items()
            },
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a snapshot produced by :meth:`state_dict`."""
        slots = self._slots()
        saved = state.get("slots", {})
        if set(saved) != set(slots):
            raise KeyError(
                f"optimizer state mismatch: expected slots {sorted(slots)}, "
                f"got {sorted(saved)}"
            )
        for name, buffers in saved.items():
            if len(buffers) != len(self.params):
                raise ValueError(
                    f"slot {name!r} has {len(buffers)} buffers for "
                    f"{len(self.params)} parameters"
                )
            slots[name][:] = [
                None if b is None else np.asarray(b).copy() for b in buffers
            ]
        self._load_scalars(state.get("scalars", {}))

    def _slots(self) -> dict[str, list]:
        """Per-parameter buffer lists (live references); default: none."""
        return {}

    def _scalars(self) -> dict:
        """Scalar state (step counters etc.); default: none."""
        return {}

    def _load_scalars(self, scalars: dict) -> None:
        return None


def _nesterov_direction(
    grad: np.ndarray, momentum: float, velocity: np.ndarray
) -> np.ndarray:
    """PyTorch nesterov look-ahead: ``g + mu * v`` with the freshly
    updated buffer — not ``(1 + mu) * v``.  Module-level so the fuzzer's
    planted-bug hook (:mod:`repro.verify.hooks`) can swap in the
    historical wrong formula and prove the optimizer oracle catches it.
    """
    return grad + momentum * velocity


class SGD(Optimizer):
    """Stochastic gradient descent with classical momentum.

    Matches PyTorch semantics: ``v = mu * v + g`` then ``p -= lr * v``
    (momentum buffer initialised to the first gradient), with optional
    decoupled-from-nothing L2 weight decay folded into the gradient.
    """

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov
        self._velocity: list[np.ndarray | None] = [None] * len(self.params)

    def step(self) -> None:
        """Apply one update using the gradients currently on the params."""
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self.momentum:
                grad = g
                if self._velocity[i] is None:
                    self._velocity[i] = g.copy()
                else:
                    self._velocity[i] *= self.momentum
                    self._velocity[i] += g
                if self.nesterov:
                    g = _nesterov_direction(
                        grad, self.momentum, self._velocity[i]
                    )
                else:
                    g = self._velocity[i]
            p.data -= self.lr * g

    def _slots(self) -> dict[str, list]:
        return {"velocity": self._velocity}


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba 2015)."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params)
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        b1, b2 = betas
        if not (0.0 <= b1 < 1.0 and 0.0 <= b2 < 1.0):
            raise ValueError(f"betas must be in [0, 1), got {betas}")
        self.lr = lr
        self.betas = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: list[np.ndarray | None] = [None] * len(self.params)
        self._v: list[np.ndarray | None] = [None] * len(self.params)
        self._t = 0

    def step(self) -> None:
        """Apply one Adam update."""
        self._t += 1
        b1, b2 = self.betas
        for i, p in enumerate(self.params):
            if p.grad is None:
                continue
            g = p.grad
            if self.weight_decay:
                g = g + self.weight_decay * p.data
            if self._m[i] is None:
                self._m[i] = np.zeros_like(p.data)
                self._v[i] = np.zeros_like(p.data)
            self._m[i] *= b1
            self._m[i] += (1 - b1) * g
            self._v[i] *= b2
            self._v[i] += (1 - b2) * g * g
            m_hat = self._m[i] / (1 - b1**self._t)
            v_hat = self._v[i] / (1 - b2**self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def _slots(self) -> dict[str, list]:
        return {"m": self._m, "v": self._v}

    def _scalars(self) -> dict:
        return {"t": self._t}

    def _load_scalars(self, scalars: dict) -> None:
        self._t = int(scalars.get("t", 0))


def clip_grad_norm(params, max_norm: float) -> float:
    """Clip gradients in place to a global L2 norm; returns the pre-clip norm.

    Matches ``torch.nn.utils.clip_grad_norm_`` semantics: the total norm is
    computed over all parameter gradients jointly; if it exceeds *max_norm*
    every gradient is scaled by ``max_norm / total``.
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    grads = [p.grad for p in params if p.grad is not None]
    if not grads:
        return 0.0
    total = float(np.sqrt(sum(float((g * g).sum()) for g in grads)))
    if total > max_norm:
        scale = max_norm / (total + 1e-12)
        for g in grads:
            g *= scale
    return total


class LRScheduler:
    """Base learning-rate scheduler over an optimiser's ``lr``."""

    def __init__(self, optimizer: Optimizer) -> None:
        if not hasattr(optimizer, "lr"):
            raise TypeError("optimizer must expose an `lr` attribute")
        self.optimizer = optimizer
        self.base_lr = optimizer.lr
        self.epoch = 0

    def get_lr(self) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one epoch and apply the new rate; returns it."""
        self.epoch += 1
        self.optimizer.lr = self.get_lr()
        return self.optimizer.lr


class StepLR(LRScheduler):
    """Decay the rate by *gamma* every *step_size* epochs."""

    def __init__(
        self, optimizer: Optimizer, step_size: int, gamma: float = 0.1
    ) -> None:
        super().__init__(optimizer)
        if step_size <= 0:
            raise ValueError(f"step_size must be positive, got {step_size}")
        if not 0 < gamma <= 1:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.step_size = step_size
        self.gamma = gamma

    def get_lr(self) -> float:
        return self.base_lr * self.gamma ** (self.epoch // self.step_size)


class CosineAnnealingLR(LRScheduler):
    """Cosine decay from the base rate to *eta_min* over *t_max* epochs."""

    def __init__(
        self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0
    ) -> None:
        super().__init__(optimizer)
        if t_max <= 0:
            raise ValueError(f"t_max must be positive, got {t_max}")
        self.t_max = t_max
        self.eta_min = eta_min

    def get_lr(self) -> float:
        progress = min(self.epoch, self.t_max) / self.t_max
        return self.eta_min + 0.5 * (self.base_lr - self.eta_min) * (
            1 + np.cos(np.pi * progress)
        )
