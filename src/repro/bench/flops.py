"""FLOP-rate helpers shared by the Table 2 / Fig 4 benches."""

from __future__ import annotations

__all__ = ["gflops", "dense_equivalent"]


def gflops(flops: float, time_s: float) -> float:
    """Achieved GFLOP/s."""
    if time_s <= 0:
        raise ValueError(f"time must be positive, got {time_s}")
    return flops / time_s / 1e9


def dense_equivalent(m: int, n: int, k: int, time_s: float) -> float:
    """Dense-equivalent GFLOP/s for a sparse multiply (Table 2 convention).

    The paper reports sparse columns as if the multiply had been dense —
    hence starred entries exceeding the device peak.
    """
    return gflops(2.0 * m * n * k, time_s)
