"""Wall-clock timing harness for the numeric kernels.

The paper stabilises measurements by iterating 1000 times and averaging;
:func:`time_callable` implements the same protocol with warmup and
adaptively fewer repeats for slow callables, and reports mean/std so benches
can flag noisy measurements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["TimingResult", "time_callable"]


@dataclass(frozen=True)
class TimingResult:
    """Summary statistics of repeated timed calls."""

    mean_s: float
    std_s: float
    min_s: float
    repeats: int

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean)."""
        return self.std_s / self.mean_s if self.mean_s > 0 else 0.0


def time_callable(
    fn: Callable[[], object],
    repeats: int = 10,
    warmup: int = 2,
    max_total_s: float = 5.0,
) -> TimingResult:
    """Time ``fn()`` with warmup, capping total wall time.

    The repeat count shrinks automatically when a single call would blow
    the ``max_total_s`` budget (the profiling guides' ~10s sweet spot).
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    for _ in range(warmup):
        fn()
    t0 = time.perf_counter()
    fn()
    first = time.perf_counter() - t0
    if first > 0:
        repeats = max(1, min(repeats, int(max_total_s / first)))
    samples = [first]
    for _ in range(repeats - 1):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    arr = np.asarray(samples)
    return TimingResult(
        mean_s=float(arr.mean()),
        std_s=float(arr.std()),
        min_s=float(arr.min()),
        repeats=len(samples),
    )
