"""Wall-clock timing harness for the numeric kernels.

The paper stabilises measurements by iterating 1000 times and averaging;
:func:`time_callable` implements the same protocol with warmup and
adaptively fewer repeats for slow callables, and reports mean/std so benches
can flag noisy measurements.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.obs import get_tracer

__all__ = ["TimingResult", "time_callable"]


@dataclass(frozen=True)
class TimingResult:
    """Summary statistics of repeated timed calls.

    ``repeats`` is the number of samples actually taken; when the
    ``max_total_s`` budget collapses it below ``requested_repeats`` the
    spread statistics are based on fewer calls than the caller asked for
    — with a single sample they are meaningless, so :attr:`cv` reports
    NaN rather than a deceptively perfect ``0.0``.
    """

    mean_s: float
    std_s: float
    min_s: float
    repeats: int
    requested_repeats: int | None = None

    @property
    def capped(self) -> bool:
        """True when the time budget cut the repeat count."""
        return (
            self.requested_repeats is not None
            and self.repeats < self.requested_repeats
        )

    @property
    def cv(self) -> float:
        """Coefficient of variation (std / mean); NaN below 2 samples."""
        if self.repeats < 2:
            return float("nan")
        return self.std_s / self.mean_s if self.mean_s > 0 else 0.0


def time_callable(
    fn: Callable[[], object],
    repeats: int = 10,
    warmup: int = 2,
    max_total_s: float = 5.0,
    sample_hook: Callable[[int, float], None] | None = None,
) -> TimingResult:
    """Time ``fn()`` with warmup, capping total wall time.

    The repeat count shrinks automatically when a single call would blow
    the ``max_total_s`` budget (the profiling guides' ~10s sweet spot);
    the result records both the requested and effective repeat counts.

    ``sample_hook(index, seconds)`` is called after each timed sample —
    the extension point the chaos/robustness benchmarks use to observe
    per-repeat behaviour (e.g. retry-time spikes under fault injection)
    without re-implementing the measurement protocol.  Hook time is not
    counted against the samples.
    """
    if repeats <= 0:
        raise ValueError(f"repeats must be positive, got {repeats}")
    requested = repeats
    tracer = get_tracer()
    with tracer.span(
        "time_callable", category="bench", requested_repeats=requested
    ) as span:
        for _ in range(warmup):
            fn()
        t0 = time.perf_counter()
        fn()
        first = time.perf_counter() - t0
        if sample_hook is not None:
            sample_hook(0, first)
        if first > 0:
            repeats = max(1, min(repeats, int(max_total_s / first)))
        samples = [first]
        for i in range(repeats - 1):
            t0 = time.perf_counter()
            fn()
            samples.append(time.perf_counter() - t0)
            if sample_hook is not None:
                sample_hook(i + 1, samples[-1])
        arr = np.asarray(samples)
        result = TimingResult(
            mean_s=float(arr.mean()),
            std_s=float(arr.std()),
            min_s=float(arr.min()),
            repeats=len(samples),
            requested_repeats=requested,
        )
        if tracer.enabled:
            span.attributes.update(
                repeats=result.repeats,
                mean_s=result.mean_s,
                std_s=result.std_s,
                min_s=result.min_s,
                cv=None if math.isnan(result.cv) else result.cv,
            )
            tracer.counter(
                "time_callable",
                {"mean_s": result.mean_s, "min_s": result.min_s},
            )
    return result
