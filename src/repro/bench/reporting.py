"""Plain-text table rendering for benchmark output.

Every experiment driver prints through this so the regenerated tables and
figure-series share one format (column alignment, float formatting, and a
title/caption line referencing the paper artefact being reproduced).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "format_table"]


def _fmt(value, precision: int = 3) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 10.0 ** (-max(precision, 1)):
            return f"{value:.3g}"
        out = f"{value:,.{precision}f}"
        if "." in out:
            out = out.rstrip("0").rstrip(".")
        return out or "0"
    return str(value)


@dataclass
class Table:
    """A titled table accumulated row by row."""

    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    precision: int = 3

    def add_row(self, *values) -> None:
        """Append one row; must match the column count."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        """Render as aligned monospaced text."""
        return format_table(
            self.title, self.columns, self.rows, precision=self.precision
        )

    def __str__(self) -> str:
        return self.render()


def format_table(
    title: str,
    columns: list[str],
    rows: list[list],
    precision: int = 3,
) -> str:
    """Format rows as an aligned text table with a title rule."""
    cells = [[_fmt(v, precision) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in cells)) if cells else len(col)
        for i, col in enumerate(columns)
    ]
    header = "  ".join(col.rjust(w) for col, w in zip(columns, widths))
    rule = "-" * len(header)
    body = [
        "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
        for row in cells
    ]
    return "\n".join([title, rule, header, rule, *body, rule])
