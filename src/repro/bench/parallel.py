"""Deterministic parallel experiment runner.

Grid experiments (fig5/fig6/fig7/table2/table5) are embarrassingly
parallel: each configuration compiles and times its graphs independently
of every other.  :func:`run_grid` fans a top-level worker function out
over a process pool while keeping every result bitwise identical to a
serial run:

* **Seeding** — each configuration gets its own child of
  ``numpy.random.SeedSequence(seed)`` (spawned in config order), so the
  stream a config sees does not depend on which worker ran it or in what
  order.  A serial run (``jobs=1``) walks the *same* spawned sequences.
* **Ordering** — results come back in submission (config) order
  regardless of completion order, and worker metric/cache statistics are
  merged into the parent in that same order.
* **Crash surfacing** — an exception inside a worker is returned as a
  pickled traceback string and re-raised in the parent as
  :class:`WorkerError`; a worker process dying outright
  (``BrokenProcessPool``) is wrapped the same way instead of surfacing
  as an opaque pool error.  Every outcome is collected before raising:
  the exception names *all* failing configs and carries the completed
  results (``exc.failures`` / ``exc.results``), so one bad cell no
  longer discards its siblings' work.
* **Supervision** — passing a :class:`~repro.guard.GuardPolicy` via
  ``guard=`` swaps the shared pool for :mod:`repro.guard`'s supervised
  process-per-cell runner: per-cell deadlines, seeded retry/backoff for
  transient failures, quarantine of poisoned configs, and a resumable
  completion journal.  Under guard, failed cells yield ``None`` in the
  result list (or, with ``strict=True``, a :class:`WorkerError` after
  the grid has been driven to completion).
* **Caching** — workers open the same on-disk
  :class:`~repro.cache.CompilationCache` directory (safe: entry writes
  are atomic per-process temp files + rename), so one worker's compile
  is every other worker's hit.  Their hit/miss counters merge into the
  parent cache's stats.

Worker functions must be defined at module top level (the pool uses the
``spawn`` start method — fork is unsafe with threaded BLAS — and spawn
pickles by reference).  They receive ``(config, seed_seq)`` and return
any picklable value.
"""

from __future__ import annotations

import traceback
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.cache import CompilationCache, caching, get_cache
from repro.guard.policy import GuardPolicy
from repro.guard.supervisor import run_supervised_grid
from repro.obs.context import derive_run_id, worker_track
from repro.obs.log import get_logger
from repro.obs.metrics import MetricRegistry, collecting, get_registry
from repro.obs.propagate import obs_spec, worker_observability
from repro.obs.tracer import get_tracer

__all__ = ["WorkerError", "run_grid"]


class WorkerError(RuntimeError):
    """One or more worker processes failed.

    ``config``/``detail`` describe the *first* failure (in config
    order); ``failures`` lists every ``(config, detail)`` pair and
    ``results`` holds the grid's completed results in config order with
    ``None`` for the cells that failed — a single bad cell no longer
    costs the caller every finished sibling.
    """

    def __init__(
        self,
        config: Any,
        detail: str,
        *,
        failures: list[tuple[Any, str]] | None = None,
        results: list[Any] | None = None,
    ) -> None:
        self.config = config
        self.detail = detail
        self.failures = failures if failures is not None else [(config, detail)]
        self.results = results if results is not None else []
        message = f"worker failed for config {config!r}:\n{detail}"
        if len(self.failures) > 1:
            others = ", ".join(repr(c) for c, _ in self.failures[1:])
            message += (
                f"\n(+ {len(self.failures) - 1} more failed "
                f"config(s): {others})"
            )
        super().__init__(message)


def _run_in_worker(
    worker: Callable,
    config: Any,
    seed_seq: np.random.SeedSequence,
    cache_dir: str | None,
    spec: dict | None = None,
) -> tuple[str, Any, list[dict], dict, dict, list[dict]]:
    """Top-level trampoline executed inside a pool process.

    Installs a fresh metric registry, (when a cache directory is
    shared) a disk-backed compilation cache, and whatever observability
    *spec* requests (see :func:`repro.obs.propagate.obs_spec`), runs
    *worker*, and ships back ``("ok", result, metrics_snapshot,
    cache_stats, trace_snapshot, log_snapshot)``.  Exceptions become
    ``("error", traceback_text, ...)`` so the parent can re-raise with
    full remote context — with the trace/log buffers the worker flushed
    before dying still attached, so a failed cell is not a blind spot.
    """
    cache = (
        CompilationCache(path=cache_dir)
        if cache_dir is not None
        else CompilationCache()
    )
    tracer, runlog = None, None
    try:
        with collecting() as registry, caching(cache), \
                worker_observability(spec) as (tracer, runlog):
            result = worker(config, seed_seq)
        return (
            "ok",
            result,
            registry.snapshot(),
            cache.stats.as_dict(),
            tracer.snapshot(),
            runlog.snapshot(),
        )
    except Exception:
        return (
            "error",
            traceback.format_exc(),
            [],
            cache.stats.as_dict(),
            tracer.snapshot() if tracer is not None else {},
            runlog.snapshot() if runlog is not None else [],
        )


def run_grid(
    worker: Callable,
    configs: Sequence[Any],
    *,
    jobs: int = 1,
    seed: int = 0,
    cache_dir: str | Path | None = None,
    registry: MetricRegistry | None = None,
    guard: GuardPolicy | None = None,
    name: str | None = None,
) -> list[Any]:
    """Run ``worker(config, seed_seq)`` for every config; ordered results.

    ``jobs=1`` runs serially in-process (same seed spawning, current
    global cache/registry — zero pickling), so parallel and serial runs
    of the same grid are interchangeable.  ``jobs>1`` fans out over a
    spawn-context process pool; *worker* must then be picklable (module
    top level) and *cache_dir* points every worker at one shared on-disk
    cache — defaulting to the ambient global cache's directory, so
    ``python -m repro fig5 --jobs 4`` shares its cache with the workers
    without any experiment-level plumbing.

    Worker metric snapshots merge into *registry* (default: the global
    one) and worker cache stats merge into the parent's global cache, in
    config order.

    With *guard* set, execution is delegated to
    :func:`repro.guard.run_supervised_grid` (even at ``jobs=1`` — the
    watchdog and journal need a subprocess): cells that fail permanently
    or exhaust their retries come back as ``None``, unless
    ``guard.strict`` is set, in which case a :class:`WorkerError` naming
    every failed cell is raised after the grid completes.  *name* labels
    the resulting :class:`~repro.guard.GridReport`.

    Without *guard*, an error in any worker raises :class:`WorkerError`
    — but only after every outcome has been collected, so the exception
    carries all failures and the completed results (see
    :class:`WorkerError`).
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    configs = list(configs)

    if guard is not None:
        results, report = run_supervised_grid(
            worker,
            configs,
            policy=guard,
            jobs=jobs,
            seed=seed,
            cache_dir=cache_dir,
            registry=registry,
            name=name,
        )
        if guard.strict and not report.ok:
            failures = [
                (configs[cell.index], cell.error or cell.status)
                for cell in report.failed_cells()
            ]
            raise WorkerError(
                failures[0][0],
                failures[0][1],
                failures=failures,
                results=results,
            )
        return results

    seed_seqs = np.random.SeedSequence(seed).spawn(len(configs))
    grid_name = name or getattr(worker, "__qualname__", "grid")
    run_id = derive_run_id(grid_name, seed, len(configs))
    specs = [obs_spec(run_id, grid_name, i) for i in range(len(configs))]
    parent_tracer = get_tracer()
    parent_log = get_logger()

    if jobs == 1:
        if not any(specs):
            # Observability off: the historical zero-overhead path,
            # byte-identical to every run before tracing existed.
            return [
                worker(config, seed_seq)
                for config, seed_seq in zip(configs, seed_seqs)
            ]
        # Each cell gets the same fresh per-cell instruments a spawned
        # worker would, merged back under the same cell{i}/... tracks —
        # so a serial grid's merged timeline is identical to a parallel
        # one.  A worker exception still propagates (as always on this
        # path), but only after the cell's partial buffers are merged.
        results = []
        for index, (config, seed_seq) in enumerate(zip(configs, seed_seqs)):
            with worker_observability(specs[index]) as (tracer, runlog):
                try:
                    results.append(worker(config, seed_seq))
                finally:
                    parent_tracer.merge_snapshot(
                        tracer.snapshot(), prefix=worker_track(index)
                    )
                    parent_log.merge_snapshot(
                        runlog.snapshot(), worker=index
                    )
        return results

    registry = registry if registry is not None else get_registry()
    parent_cache = get_cache()
    if cache_dir is None and parent_cache.enabled:
        cache_dir = parent_cache.path
    cache_dir = str(cache_dir) if cache_dir is not None else None
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(configs)) or 1,
        mp_context=get_context("spawn"),
    ) as pool:
        futures = [
            pool.submit(
                _run_in_worker, worker, config, seed_seq, cache_dir, spec
            )
            for config, seed_seq, spec in zip(configs, seed_seqs, specs)
        ]
        # Collect every outcome before judging any: a broken pool fails
        # the still-pending futures, not the ones that already finished.
        outcomes = []
        for future in futures:
            try:
                outcomes.append(future.result())
            except BrokenProcessPool as exc:
                outcomes.append(
                    (
                        "error",
                        f"a worker process died abruptly ({exc})",
                        [],
                        {},
                        {},
                        [],
                    )
                )

    results: list[Any] = []
    failures: list[tuple[Any, str]] = []
    for index, (config, outcome) in enumerate(zip(configs, outcomes)):
        status, payload, metrics, cache_stats, trace_snap, log_snap = outcome
        # Merge observability for failed cells too: whatever the worker
        # flushed before the exception is part of the record.
        parent_tracer.merge_snapshot(trace_snap, prefix=worker_track(index))
        parent_log.merge_snapshot(log_snap, worker=index)
        if status == "error":
            failures.append((config, payload))
            results.append(None)
            continue
        registry.merge_snapshot(metrics)
        if parent_cache.enabled:  # never mutate the NULL_CACHE singleton
            parent_cache.stats.merge(cache_stats)
        results.append(payload)
    if failures:
        raise WorkerError(
            failures[0][0],
            failures[0][1],
            failures=failures,
            results=results,
        )
    return results
