"""Benchmark support: timing harness, FLOP accounting, table rendering,
and the deterministic parallel experiment runner."""

from repro.bench.harness import time_callable, TimingResult
from repro.bench.parallel import WorkerError, run_grid
from repro.bench.reporting import Table, format_table
from repro.bench.flops import gflops, dense_equivalent

__all__ = [
    "time_callable",
    "TimingResult",
    "WorkerError",
    "run_grid",
    "Table",
    "format_table",
    "gflops",
    "dense_equivalent",
]
