"""Benchmark support: timing harness, FLOP accounting, table rendering."""

from repro.bench.harness import time_callable, TimingResult
from repro.bench.reporting import Table, format_table
from repro.bench.flops import gflops, dense_equivalent

__all__ = [
    "time_callable",
    "TimingResult",
    "Table",
    "format_table",
    "gflops",
    "dense_equivalent",
]
