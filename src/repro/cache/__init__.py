"""Content-addressed compilation cache (see docs/CACHING.md).

Keys are canonical hashes of *what was compiled* — the lowered graph's
provenance or structural fingerprint, every field of the
:class:`~repro.ipu.machine.IPUSpec`, and the excluded-tile set — so a
hit is guaranteed to return artefacts byte-identical to a cold compile.
Two tiers: an in-process LRU and an optional shared on-disk directory
(atomic writes, corrupt entries fall back to recompilation).

Usage::

    from repro import cache

    with cache.caching(path="benchmarks/cache"):
        compile_graph(graph, GC200)   # miss: compiles + stores
        compile_graph(graph, GC200)   # hit: returns cached report

``python -m repro <artefact>`` enables this automatically (opt out with
``--no-cache``); hit/miss/store counters surface in ``repro.run/1``
manifests and ``python -m repro report`` output.
"""

from repro.cache.store import (
    CACHE_SCHEMA,
    NULL_CACHE,
    CacheRecord,
    CacheStats,
    CompilationCache,
    NullCache,
    caching,
    canonical_key,
    dataclass_key,
    get_cache,
    set_cache,
)

__all__ = [
    "CACHE_SCHEMA",
    "NULL_CACHE",
    "CacheRecord",
    "CacheStats",
    "CompilationCache",
    "NullCache",
    "caching",
    "canonical_key",
    "dataclass_key",
    "get_cache",
    "set_cache",
]
