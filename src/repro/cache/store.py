"""Content-addressed compilation cache: in-memory LRU + on-disk tier.

Graph compilation (memory accounting over every variable, vertex, edge
and compute set) is a pure function of the lowered graph and the
:class:`~repro.ipu.machine.IPUSpec` — on real hardware Poplar graph
compilation dominates iteration time, and here it dominates the fig5/fig7
sweeps.  This module stores compilation artefacts under a *canonical
content hash* so an identical (graph, spec, excluded-tiles) triple is
compiled exactly once per cache, process or machine:

* the **memory tier** is a small LRU of decoded records (same process);
* the **disk tier** is one ``.npz`` file per key, written with the
  atomic write-temp/fsync/rename discipline of
  :mod:`repro.faults.checkpoint` (versioned entries, corrupt or
  truncated files fall back to a recompile, never an error).

The module is a pure storage/key layer: it knows nothing about graphs
or compilers.  :mod:`repro.ipu.compiler` converts ``CompiledGraph`` to
and from :class:`CacheRecord` and computes keys; experiment workers in
different processes share a cache by pointing at the same directory.

Like the tracer and metric registry, a process-global cache is installed
with :func:`set_cache`/:func:`caching` and defaults to a disabled
:data:`NULL_CACHE`, so the uncached path costs one attribute check.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, fields as dataclass_fields
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.faults.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)
from repro.obs import get_logger, get_registry, get_tracer

__all__ = [
    "CACHE_SCHEMA",
    "CacheRecord",
    "CacheStats",
    "CompilationCache",
    "NullCache",
    "NULL_CACHE",
    "caching",
    "canonical_key",
    "dataclass_key",
    "get_cache",
    "set_cache",
]

#: Entry format version; part of every key, so a layout change cannot
#: resurrect stale entries — it simply misses and recompiles.
CACHE_SCHEMA = "repro.cache/1"

#: Default memory-tier capacity (decoded records, LRU-evicted).
DEFAULT_MEMORY_ENTRIES = 128


def canonical_key(*parts) -> str:
    """Hex digest of a canonical nested-tuple key.

    Parts must be built from scalars, strings and (nested) tuples whose
    ``repr`` is deterministic — no sets, dicts or object identities.
    The schema version is always mixed in.
    """
    blob = repr((CACHE_SCHEMA,) + tuple(parts)).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def dataclass_key(obj) -> tuple:
    """A dataclass instance as a canonical ``(field, value)`` tuple.

    Used to fold *every* field of an :class:`~repro.ipu.machine.IPUSpec`
    into the cache key, so changing any compiler-visible constant (tile
    count, per-edge code bytes, reserved memory, ...) changes the key.
    """
    return (type(obj).__name__,) + tuple(
        (f.name, getattr(obj, f.name)) for f in dataclass_fields(obj)
    )


@dataclass
class CacheStats:
    """Hit/miss/store/evict/corrupt counters for one cache instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    corrupt: int = 0

    @property
    def hits(self) -> int:
        """Total hits regardless of tier (the gateable aggregate)."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def as_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "stores": self.stores,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
        }

    def merge(self, other: "CacheStats | dict") -> None:
        """Add another instance's counters (worker-process roll-up)."""
        values = other if isinstance(other, dict) else other.as_dict()
        for field in (
            "memory_hits",
            "disk_hits",
            "misses",
            "stores",
            "evictions",
            "corrupt",
        ):
            setattr(self, field, getattr(self, field) + int(values[field]))


@dataclass(frozen=True)
class CacheRecord:
    """One cached compilation artefact: named arrays + JSON-able metadata.

    The cache never inspects the contents; the compiler owns the
    encoding (see ``repro.ipu.compiler._record_from``).
    """

    arrays: dict[str, np.ndarray]
    meta: dict


class CompilationCache:
    """Two-tier content-addressed store for compilation records.

    ``path=None`` keeps the cache memory-only.  With a directory, every
    store also lands on disk (atomically), and lookups fall through the
    LRU to disk — which is how parallel experiment workers share work:
    they all point at one directory, and a key compiled by any worker is
    a disk hit for the rest.
    """

    enabled = True

    def __init__(
        self,
        path: str | Path | None = None,
        memory_entries: int = DEFAULT_MEMORY_ENTRIES,
    ) -> None:
        if memory_entries < 0:
            raise ValueError(
                f"memory_entries must be >= 0, got {memory_entries}"
            )
        self.path = Path(path) if path is not None else None
        self.memory_entries = memory_entries
        self.stats = CacheStats()
        self._memory: OrderedDict[str, CacheRecord] = OrderedDict()

    # -- tiers ---------------------------------------------------------------

    def _disk_path(self, key: str) -> Path:
        assert self.path is not None
        return self.path / f"{key}.npz"

    def _memory_put(self, key: str, record: CacheRecord) -> None:
        if self.memory_entries == 0:
            return
        self._memory[key] = record
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)
            self.stats.evictions += 1
            get_registry().counter("cache.evictions").inc()

    def _disk_get(self, key: str) -> CacheRecord | None:
        if self.path is None:
            return None
        path = self._disk_path(key)
        if not path.exists():
            return None
        try:
            arrays, meta = load_checkpoint(path)
        except CheckpointError:
            # Truncated/corrupt entry: treat as a miss; the store after
            # the recompile atomically replaces the damaged file.
            self.stats.corrupt += 1
            get_registry().counter("cache.corrupt").inc()
            self._log_corrupt(key, "unreadable entry")
            return None
        if meta.pop("cache_schema", None) != CACHE_SCHEMA or meta.pop(
            "cache_key", None
        ) != key:
            self.stats.corrupt += 1
            get_registry().counter("cache.corrupt").inc()
            self._log_corrupt(key, "schema or key mismatch")
            return None
        return CacheRecord(arrays=arrays, meta=meta)

    @staticmethod
    def _log_corrupt(key: str, reason: str) -> None:
        log = get_logger()
        if log.enabled:
            log.warning("cache.corrupt", reason, key=key[:12])

    # -- public API ----------------------------------------------------------

    def lookup(self, key: str) -> CacheRecord | None:
        """The record stored under *key*, or ``None`` (counted as a miss)."""
        tracer = get_tracer()
        registry = get_registry()
        with tracer.span(
            "cache.lookup", category="cache", key=key[:12]
        ) as span:
            record = self._memory.get(key)
            if record is not None:
                self._memory.move_to_end(key)
                self.stats.memory_hits += 1
                tier = "memory"
            else:
                record = self._disk_get(key)
                if record is not None:
                    self._memory_put(key, record)
                    self.stats.disk_hits += 1
                    tier = "disk"
                else:
                    self.stats.misses += 1
                    tier = "miss"
            if tracer.enabled:
                span.attributes["result"] = tier
            if registry.enabled:
                if tier == "miss":
                    registry.counter("cache.misses").inc()
                else:
                    registry.counter("cache.hits").inc()
            if tier == "miss":
                log = get_logger()
                if log.enabled:
                    log.info("cache.miss", key=key[:12])
        return record

    def store(self, key: str, record: CacheRecord) -> None:
        """Insert *record* under *key* in both tiers."""
        tracer = get_tracer()
        with tracer.span("cache.store", category="cache", key=key[:12]):
            self._memory_put(key, record)
            if self.path is not None:
                meta = {
                    "cache_schema": CACHE_SCHEMA,
                    "cache_key": key,
                    **record.meta,
                }
                save_checkpoint(self._disk_path(key), record.arrays, meta)
            self.stats.stores += 1
            get_registry().counter("cache.stores").inc()

    def __len__(self) -> int:
        return len(self._memory)

    def __repr__(self) -> str:
        where = str(self.path) if self.path is not None else "memory-only"
        s = self.stats
        return (
            f"CompilationCache({where}: {len(self._memory)} in memory, "
            f"{s.hits} hits / {s.misses} misses)"
        )


class NullCache(CompilationCache):
    """Disabled cache: lookups always miss silently, stores are dropped.

    Mirrors ``NullTracer``/``NullRegistry``: callers guard on
    :attr:`enabled`, so the uncached path records no counters at all.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(path=None, memory_entries=0)

    def lookup(self, key: str) -> CacheRecord | None:  # type: ignore[override]
        return None

    def store(self, key: str, record: CacheRecord) -> None:  # type: ignore[override]
        return None


#: The module-level singleton installed when caching is off.
NULL_CACHE = NullCache()

_current: CompilationCache = NULL_CACHE


def get_cache() -> CompilationCache:
    """The currently installed cache (the null cache by default)."""
    return _current


def set_cache(cache: CompilationCache | None) -> CompilationCache:
    """Install *cache* globally (``None`` restores the null cache)."""
    global _current
    previous = _current
    _current = cache if cache is not None else NULL_CACHE
    return previous


@contextmanager
def caching(
    cache: CompilationCache | None = None,
    path: str | Path | None = None,
) -> Iterator[CompilationCache]:
    """Install a compilation cache for the duration of a ``with`` block.

    Creates a fresh (memory-only, unless *path* is given)
    :class:`CompilationCache` when none is supplied; restores the
    previously installed cache on exit, mirroring
    :func:`repro.obs.tracing` / :func:`repro.obs.collecting`.
    """
    cache = cache if cache is not None else CompilationCache(path=path)
    previous = set_cache(cache)
    try:
        yield cache
    finally:
        set_cache(previous)
