"""Synthetic MNIST stand-in (784 = 28 x 28 pixels).

MNIST's feature count is *not* a power of two — which is precisely why the
paper could not run pixelfly on it ("the requirements of the matrix sizes
being a power of two").  The generator therefore uses a random orthogonal
mixing transform instead of a butterfly, and the MNIST experiments exercise
the rectangular/padding paths of the structured layers.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import SyntheticSpec, make_classification
from repro.nn.data import ArrayDataset
from repro.utils import as_rng

__all__ = ["MNIST_DIM", "MNIST_CLASSES", "mnist_spec", "load_mnist"]

MNIST_DIM = 784  # 28 x 28 — deliberately not a power of two
MNIST_CLASSES = 10


def mnist_spec(noise: float = 0.3) -> SyntheticSpec:
    """The synthetic-MNIST generative spec (easier task than CIFAR)."""
    return SyntheticSpec(
        dim=MNIST_DIM,
        n_classes=MNIST_CLASSES,
        support_size=40,
        signal=1.2,
        noise=noise,
        butterfly_mixing=False,  # 784 is not a power of two
    )


def load_mnist(
    n_train: int = 6000,
    n_test: int = 2000,
    seed: int | np.random.Generator = 0,
    noise: float = 0.3,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Deterministic (train, test) synthetic MNIST splits."""
    rng = as_rng(seed)
    spec = mnist_spec(noise=noise)
    parent_entropy = int(rng.integers(0, 2**31))
    train = make_classification(
        n_train, spec, seed=np.random.default_rng(parent_entropy), split=0
    )
    test = make_classification(
        n_test, spec, seed=np.random.default_rng(parent_entropy), split=1
    )
    return train, test
