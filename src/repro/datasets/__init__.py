"""Synthetic dataset substitutes for the paper's CIFAR-10 and MNIST tasks.

See :mod:`repro.datasets.synthetic` for the generative model and the
argument for why it preserves the Table 4 accuracy ordering.
"""

from repro.datasets.synthetic import (
    SyntheticSpec,
    make_classification,
    planted_transform,
)
from repro.datasets.cifar10 import (
    CIFAR10_DIM,
    CIFAR10_CLASSES,
    cifar10_spec,
    load_cifar10,
)
from repro.datasets.mnist import MNIST_DIM, MNIST_CLASSES, mnist_spec, load_mnist

__all__ = [
    "SyntheticSpec",
    "make_classification",
    "planted_transform",
    "CIFAR10_DIM",
    "CIFAR10_CLASSES",
    "cifar10_spec",
    "load_cifar10",
    "MNIST_DIM",
    "MNIST_CLASSES",
    "mnist_spec",
    "load_mnist",
]
