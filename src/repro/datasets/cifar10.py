"""Synthetic CIFAR-10 stand-in (grayscale, 1024 = 32 x 32 pixels).

The paper's SHL benchmark (following Thomas et al. 2018 / Dao et al. 2019)
uses *grayscale* CIFAR-10, i.e. 1024-dimensional inputs — that is how the
baseline's ``N_params = 1 059 850`` decodes exactly (see DESIGN.md §5).
This module provides train/test splits of the synthetic generative model at
those dimensions.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.synthetic import SyntheticSpec, make_classification
from repro.nn.data import ArrayDataset
from repro.utils import as_rng

__all__ = ["CIFAR10_DIM", "CIFAR10_CLASSES", "cifar10_spec", "load_cifar10"]

CIFAR10_DIM = 1024  # 32 x 32 grayscale
CIFAR10_CLASSES = 10


def cifar10_spec(noise: float = 0.35) -> SyntheticSpec:
    """The synthetic-CIFAR generative spec used by the Table 4 experiment."""
    return SyntheticSpec(
        dim=CIFAR10_DIM,
        n_classes=CIFAR10_CLASSES,
        support_size=48,
        signal=1.0,
        noise=noise,
        butterfly_mixing=True,
    )


def load_cifar10(
    n_train: int = 6000,
    n_test: int = 2000,
    seed: int | np.random.Generator = 0,
    noise: float = 0.35,
) -> tuple[ArrayDataset, ArrayDataset]:
    """Deterministic (train, test) synthetic CIFAR-10 splits.

    Train and test are drawn from the same generative model with the same
    planted transform but independent sample streams.
    """
    rng = as_rng(seed)
    spec = cifar10_spec(noise=noise)
    # Both splits see identical parent generator state, so they share the
    # planted transform and class supports; the split index separates the
    # sample streams.
    parent_entropy = int(rng.integers(0, 2**31))
    train = make_classification(
        n_train, spec, seed=np.random.default_rng(parent_entropy), split=0
    )
    test = make_classification(
        n_test, spec, seed=np.random.default_rng(parent_entropy), split=1
    )
    return train, test
