"""Synthetic image-classification generator (CIFAR-10 / MNIST stand-in).

The real datasets are unavailable offline, so Table 4's training runs use a
generative model engineered to exercise the *same mechanism* that separates
the structured methods on real data: the expressivity of the hidden
transform.

Generative model
----------------
* A **planted orthogonal butterfly** ``D`` (random 2x2 rotations) plays the
  role of the unknown "right transform" for the data.
* Each class ``c`` owns a sparse **support set** ``S_c`` of ``k`` latent
  coordinates.  A sample of class ``c`` is ``x = D z + noise`` where ``z``
  has *random signs* on ``S_c`` (class means are therefore ~zero: a linear
  model on raw pixels is near chance) plus background noise everywhere.
* Detecting the class requires (i) rotating back by ``~D^T`` and (ii)
  rectifying — exactly what ``ReLU(W x)`` with a learned ``W`` provides.

Consequences, by construction rather than by fiat:

* **Dense baseline** and **butterfly** (same family as ``D``) can represent
  the un-mixing transform → high accuracy.
* **Pixelfly** approximates it via block-sparse + low-rank → close behind.
* **Fastfood** adapts only three diagonals around fixed Hadamards →
  partial recovery.
* **Circulant** is confined to convolutions, which cannot represent a
  generic butterfly rotation → weak.
* **Rank-1** collapses the input to one scalar → near the class prior.

This reproduces Table 4's accuracy *ordering* with the paper's own causal
story (structured-matrix expressivity), which is what the substitution must
preserve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.butterfly import butterfly_multiply, orthogonal_twiddle
from repro.nn.data import ArrayDataset
from repro.utils import as_rng, check_power_of_two, derive_rng

__all__ = ["SyntheticSpec", "make_classification", "planted_transform"]


@dataclass(frozen=True)
class SyntheticSpec:
    """Parameters of the synthetic classification task."""

    dim: int
    n_classes: int = 10
    support_size: int = 48
    signal: float = 1.0
    noise: float = 0.35
    #: If True the planted mixing transform is an orthogonal butterfly
    #: (power-of-two dims only); otherwise a random orthogonal matrix.
    butterfly_mixing: bool = True


def planted_transform(
    spec: SyntheticSpec, seed: int | np.random.Generator = 0
) -> np.ndarray:
    """The dense mixing matrix ``D`` used by the generator."""
    rng = as_rng(seed)
    mix_rng = derive_rng(rng, "mix")  # first child stream, see below
    if spec.butterfly_mixing:
        check_power_of_two(spec.dim, "dim (butterfly mixing)")
        from repro.core.butterfly import butterfly_to_dense

        return butterfly_to_dense(orthogonal_twiddle(spec.dim, seed=mix_rng))
    # Random orthogonal via QR.
    a = mix_rng.standard_normal((spec.dim, spec.dim))
    q, r = np.linalg.qr(a)
    return q * np.sign(np.diag(r))


def make_classification(
    n_samples: int,
    spec: SyntheticSpec,
    seed: int | np.random.Generator = 0,
    split: int = 0,
) -> ArrayDataset:
    """Sample a dataset from the planted-support generative model.

    Returns float32 inputs of shape ``(n_samples, dim)`` and int64 labels.
    Deterministic for a given (seed, spec, n_samples, split).  Two calls
    with the same seed but different *split* values share the planted
    transform and class supports (the same "world") while drawing
    independent samples — how train/test splits are generated.
    """
    if n_samples <= 0:
        raise ValueError(f"n_samples must be positive, got {n_samples}")
    if spec.support_size <= 0 or spec.support_size > spec.dim:
        raise ValueError(
            f"support_size must be in [1, dim], got {spec.support_size}"
        )
    rng = as_rng(seed)
    # Derivation order matters for determinism: "mix" must be the first
    # child stream so it matches planted_transform() on the same seed.
    mix_rng = derive_rng(rng, "mix")
    class_rng = derive_rng(rng, "supports")
    sample_rng = derive_rng(rng, "samples", split)

    # Disjoint-ish class supports: sample without replacement per class from
    # a shuffled pool so classes remain distinguishable.
    supports = np.empty((spec.n_classes, spec.support_size), dtype=np.int64)
    pool = class_rng.permutation(spec.dim)
    per = spec.dim // spec.n_classes
    for c in range(spec.n_classes):
        if spec.support_size <= per:
            supports[c] = pool[c * per : c * per + spec.support_size]
        else:
            # Overlapping supports when k exceeds the disjoint budget.
            supports[c] = class_rng.choice(
                spec.dim, size=spec.support_size, replace=False
            )

    labels = sample_rng.integers(0, spec.n_classes, size=n_samples)
    z = sample_rng.standard_normal((n_samples, spec.dim)) * spec.noise
    signs = sample_rng.choice([-1.0, 1.0], size=(n_samples, spec.support_size))
    magnitudes = spec.signal * (
        0.75 + 0.5 * sample_rng.random((n_samples, spec.support_size))
    )
    rows = np.arange(n_samples)[:, None]
    z[rows, supports[labels]] += signs * magnitudes

    if spec.butterfly_mixing:
        twiddle = orthogonal_twiddle(spec.dim, seed=mix_rng)
        x = butterfly_multiply(twiddle, z)
    else:
        a = mix_rng.standard_normal((spec.dim, spec.dim))
        q, r = np.linalg.qr(a)
        d = q * np.sign(np.diag(r))
        x = z @ d.T
    return ArrayDataset(
        x=x.astype(np.float32), y=labels.astype(np.int64)
    )
