"""Structured run logs: the JSONL event stream (schema ``repro.log/1``).

The tracer answers "when did what happen", metrics answer "how much in
total"; this module answers "what *notable things* occurred" — retries,
quarantines, cache misses, numerics rollbacks, OOMs — as typed events a
machine can filter, not prose on stdout.  A :class:`RunLog` records
:class:`LogEvent` records into a **bounded** buffer; every event carries
the correlation fields of the Dapper model:

* ``run_id`` / ``worker`` — copied from the ambient
  :class:`~repro.obs.context.TraceContext`, so a merged multi-process
  grid log attributes every event to its run and its grid cell;
* ``span`` — the name of the innermost open host span at record time
  (:meth:`~repro.obs.tracer.Tracer.current_span`), correlating log
  lines with the trace timeline.

The API mirrors the tracer exactly: a process-global instance via
:func:`get_logger`/:func:`set_logger`, a :func:`logging` context
manager, a zero-cost :class:`NullLogger` default (hot paths guard on
``log.enabled``; the disabled path is byte-identical and audited by the
same null-contract test that covers ``NullTracer``), and
``snapshot()``/``merge_snapshot()`` cross-process buffers that ride the
same pipe/journal protocol as the tracer's.

On disk, a log is JSON Lines: one header line
``{"schema": "repro.log/1", ...}`` then one event object per line
(:func:`write_jsonl` / :func:`read_jsonl`) — the format
``python -m repro timeline`` joins with a trace.
"""

from __future__ import annotations

import json
import pathlib
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.obs.context import get_context
from repro.obs.tracer import get_tracer, jsonable

__all__ = [
    "LOG_SCHEMA",
    "LEVELS",
    "LogEvent",
    "RunLog",
    "NullLogger",
    "NULL_LOG",
    "get_logger",
    "set_logger",
    "logging",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
]

#: The on-disk log schema this module writes and understands.
LOG_SCHEMA = "repro.log/1"

#: Recognised severity levels, least to most severe.
LEVELS = ("debug", "info", "warning", "error")


@dataclass
class LogEvent:
    """One structured event: a typed name, correlation ids, and fields.

    ``seq`` is the event's position in the log that *recorded* it (a
    worker's own counter survives the merge, so per-worker order is
    always reconstructible); ``time_s`` is seconds since that log's
    creation.
    """

    seq: int
    time_s: float
    level: str
    event: str
    message: str = ""
    run_id: str = ""
    span: str = ""
    worker: int | None = None
    fields: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "seq": int(self.seq),
            "time_s": float(self.time_s),
            "level": self.level,
            "event": self.event,
            "message": self.message,
            "run_id": self.run_id,
            "span": self.span,
            "worker": self.worker,
            "fields": jsonable(self.fields),
        }

    @classmethod
    def from_dict(cls, data: dict) -> LogEvent:
        return cls(
            seq=int(data.get("seq", 0)),
            time_s=float(data.get("time_s", 0.0)),
            level=data.get("level", "info"),
            event=data.get("event", ""),
            message=data.get("message", ""),
            run_id=data.get("run_id", ""),
            span=data.get("span", ""),
            worker=data.get("worker"),
            fields=dict(data.get("fields", {})),
        )


class RunLog:
    """Records structured events; cheap enough to thread everywhere.

    The buffer is bounded (``max_events``): once full, further events
    are counted in :attr:`dropped` instead of growing memory without
    limit inside a long worker — the cap is always visible in the
    manifest ``logs`` section, never silent.
    """

    enabled = True

    def __init__(self, max_events: int = 10_000) -> None:
        self.events: list[LogEvent] = []
        self.dropped = 0
        self.max_events = max_events
        self._origin = time.perf_counter()
        self._seq = 0

    def now(self) -> float:
        """Seconds since this log was created."""
        return time.perf_counter() - self._origin

    # -- recording -------------------------------------------------------------

    def log(
        self,
        event: str,
        message: str = "",
        level: str = "info",
        **fields: object,
    ) -> LogEvent | None:
        """Record one event; returns it, or ``None`` when dropped.

        Correlation fields are stamped from the ambient trace context
        and the ambient tracer's open span at call time.
        """
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return None
        ctx = get_context()
        span = get_tracer().current_span()
        record = LogEvent(
            seq=self._seq,
            time_s=self.now(),
            level=level,
            event=event,
            message=message,
            run_id=ctx.run_id,
            span=span.name if span is not None else "",
            worker=ctx.worker,
            fields=dict(fields),
        )
        self._seq += 1
        self.events.append(record)
        return record

    def debug(self, event: str, message: str = "", **fields) -> LogEvent | None:
        return self.log(event, message, level="debug", **fields)

    def info(self, event: str, message: str = "", **fields) -> LogEvent | None:
        return self.log(event, message, level="info", **fields)

    def warning(self, event: str, message: str = "", **fields) -> LogEvent | None:
        return self.log(event, message, level="warning", **fields)

    def error(self, event: str, message: str = "", **fields) -> LogEvent | None:
        return self.log(event, message, level="error", **fields)

    # -- cross-process buffers -------------------------------------------------

    def snapshot(self) -> list[dict]:
        """Every event as a JSON-ready dict (the cross-process buffer)."""
        return [event.as_dict() for event in self.events]

    def merge_snapshot(
        self, events: list[dict], worker: int | None = None
    ) -> None:
        """Fold another log's :meth:`snapshot` into this one.

        Events keep their own ``seq``/``time_s`` (the recording log's
        clock); *worker* back-fills the worker field on events that
        lack one, so buffers merged by the grid runners are always
        attributable to their cell even if the child had no context.
        """
        for data in events:
            record = LogEvent.from_dict(data)
            if worker is not None and record.worker is None:
                record.worker = worker
            self.events.append(record)

    # -- introspection ---------------------------------------------------------

    def by_event(self) -> dict[str, int]:
        """Event-name -> occurrence count (sorted by name)."""
        counts: dict[str, int] = {}
        for record in self.events:
            counts[record.event] = counts.get(record.event, 0) + 1
        return dict(sorted(counts.items()))

    def by_level(self) -> dict[str, int]:
        """Severity -> occurrence count (sorted by severity order)."""
        counts: dict[str, int] = {}
        for record in self.events:
            counts[record.level] = counts.get(record.level, 0) + 1
        known = [lvl for lvl in LEVELS if lvl in counts]
        other = sorted(set(counts) - set(LEVELS))
        return {lvl: counts[lvl] for lvl in known + other}


class NullLogger(RunLog):
    """Disabled log: records nothing, every call is O(1) and tiny.

    Hot loops additionally guard on :attr:`enabled`; every public
    :class:`RunLog` method has an explicit no-op override (enforced by
    the null-contract audit), so instrumented code never branches on
    the logger's type.
    """

    enabled = False

    def __init__(self) -> None:  # avoid perf_counter at import
        self.events = []
        self.dropped = 0
        self.max_events = 0
        self._origin = 0.0
        self._seq = 0

    def now(self) -> float:
        return 0.0

    def log(self, event, message="", level="info", **fields):
        return None

    def debug(self, event, message="", **fields):
        return None

    def info(self, event, message="", **fields):
        return None

    def warning(self, event, message="", **fields):
        return None

    def error(self, event, message="", **fields):
        return None

    def snapshot(self) -> list[dict]:
        return []

    def merge_snapshot(self, events, worker=None) -> None:
        return None

    def by_event(self) -> dict[str, int]:
        return {}

    def by_level(self) -> dict[str, int]:
        return {}


#: The module-level singleton installed when structured logging is off.
NULL_LOG = NullLogger()

_current: RunLog = NULL_LOG


def get_logger() -> RunLog:
    """The currently installed run log (the null logger by default)."""
    return _current


def set_logger(log: RunLog | None) -> RunLog:
    """Install *log* globally (``None`` restores the null logger)."""
    global _current
    previous = _current
    _current = log if log is not None else NULL_LOG
    return previous


@contextmanager
def logging(log: RunLog | None = None) -> Iterator[RunLog]:
    """Install a run log for the duration of a ``with`` block.

    Creates a fresh :class:`RunLog` unless one is supplied; restores
    the previously installed log on exit (exception-safe), mirroring
    :func:`repro.obs.tracer.tracing`.
    """
    log = log if log is not None else RunLog()
    previous = set_logger(log)
    try:
        yield log
    finally:
        set_logger(previous)


# -- JSONL round trip ----------------------------------------------------------


def to_jsonl(log: RunLog) -> str:
    """Render *log* as JSON Lines: one header line, one line per event."""
    header = {
        "schema": LOG_SCHEMA,
        "events": len(log.events),
        "dropped": log.dropped,
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps(event.as_dict(), sort_keys=True) for event in log.events
    )
    return "\n".join(lines) + "\n"


def write_jsonl(log: RunLog, path: str | pathlib.Path) -> pathlib.Path:
    """Write the JSONL log to *path* and return it."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(to_jsonl(log))
    return path


def read_jsonl(path: str | pathlib.Path) -> tuple[dict, list[LogEvent]]:
    """Read a ``repro.log/1`` JSONL file back as ``(header, events)``.

    Raises :class:`ValueError` on a missing/foreign header so a stray
    file is never silently misread as a log.
    """
    path = pathlib.Path(path)
    lines = [
        line for line in path.read_text().splitlines() if line.strip()
    ]
    if not lines:
        raise ValueError(f"log file {path} is empty")
    header = json.loads(lines[0])
    if not isinstance(header, dict) or header.get("schema") != LOG_SCHEMA:
        raise ValueError(
            f"log file {path} has no {LOG_SCHEMA!r} header line"
        )
    return header, [LogEvent.from_dict(json.loads(line)) for line in lines[1:]]
