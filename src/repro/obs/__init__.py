"""Structured tracing and metrics (the PopVision-analyzer stand-in).

The simulators compute per-step compute/exchange/sync splits, per-kernel
times and per-tile memory maps, then historically threw them away after
rendering a text table.  This package keeps them: a :class:`Tracer`
records nested spans (wall-clock on the host track, simulated time on
virtual device tracks) and counters, and the exporters turn a trace into
a Chrome ``trace_event`` JSON (loadable in ``chrome://tracing`` /
Perfetto) or a text flame summary.

Tracing is **off by default** and zero-cost when disabled: the module
installs a :data:`NULL_TRACER` whose every method is a no-op, so the
instrumented code paths change neither behavior nor timing-model output.
Enable it around a region with::

    from repro import obs

    with obs.tracing() as tracer:
        run_experiment()
    obs.write_chrome_trace(tracer, "trace.json")
    print(obs.flame_summary(tracer))

or from the command line with ``python -m repro trace <artefact>``.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    CounterRecord,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)
from repro.obs.export import (
    flame_summary,
    to_chrome_trace,
    write_chrome_trace,
)

__all__ = [
    "NULL_TRACER",
    "CounterRecord",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "tracing",
    "flame_summary",
    "to_chrome_trace",
    "write_chrome_trace",
]
