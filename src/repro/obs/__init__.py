"""Structured tracing and metrics (the PopVision-analyzer stand-in).

The simulators compute per-step compute/exchange/sync splits, per-kernel
times and per-tile memory maps, then historically threw them away after
rendering a text table.  This package keeps them:

* a :class:`Tracer` records nested spans (wall-clock on the host track,
  simulated time on virtual device tracks) and counters; exporters turn
  a trace into a Chrome ``trace_event`` JSON (loadable in
  ``chrome://tracing`` / Perfetto) or a text flame summary;
* a :class:`MetricRegistry` records labelled counters, gauges and
  log-bucketed histograms — the totals a perf gate can diff;
* :mod:`repro.obs.report` joins both (plus compiler memory/liveness
  data) into a versioned ``repro.run/1`` JSON manifest, and
  :mod:`repro.obs.regress` diffs two manifests with per-metric
  tolerances (``python -m repro report`` / ``python -m repro regress``).

Both tracing and metrics are **off by default** and zero-cost when
disabled: the module installs :data:`NULL_TRACER` / :data:`NULL_REGISTRY`
singletons whose every method is a no-op, so the instrumented code paths
change neither behavior nor timing-model output.  Enable them around a
region with::

    from repro import obs

    with obs.tracing() as tracer, obs.collecting() as registry:
        run_experiment()
    obs.write_chrome_trace(tracer, "trace.json")
    manifest = obs.build_manifest("my-run", registry=registry,
                                  tracer=tracer)

or from the command line with ``python -m repro trace <artefact>``.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    CounterRecord,
    NullTracer,
    SpanRecord,
    Tracer,
    get_tracer,
    jsonable,
    set_tracer,
    tracing,
)
from repro.obs.context import (
    ROOT_CONTEXT,
    TraceContext,
    context,
    derive_run_id,
    get_context,
    set_context,
    worker_track,
)
from repro.obs.log import (
    LOG_SCHEMA,
    NULL_LOG,
    LogEvent,
    NullLogger,
    RunLog,
    get_logger,
    logging,
    read_jsonl,
    set_logger,
    to_jsonl,
    write_jsonl,
)
from repro.obs.export import (
    flame_summary,
    to_chrome_trace,
    write_chrome_trace,
)
from repro.obs.timeline import (
    render_timeline_html,
    spans_from_chrome_trace,
    spans_from_manifest,
    write_timeline_html,
)
from repro.obs.metrics import (
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    NullRegistry,
    collecting,
    get_registry,
    log_bucket_edges,
    set_registry,
)
from repro.obs.report import (
    ManifestError,
    build_manifest,
    cache_section,
    logs_section,
    read_manifest,
    render_report,
    serve_section,
    smoke_manifest,
    verify_section,
    write_manifest,
)
from repro.obs.regress import Tolerance, regress

__all__ = [
    "NULL_TRACER",
    "CounterRecord",
    "NullTracer",
    "SpanRecord",
    "Tracer",
    "get_tracer",
    "jsonable",
    "set_tracer",
    "tracing",
    "ROOT_CONTEXT",
    "TraceContext",
    "context",
    "derive_run_id",
    "get_context",
    "set_context",
    "worker_track",
    "LOG_SCHEMA",
    "NULL_LOG",
    "LogEvent",
    "NullLogger",
    "RunLog",
    "get_logger",
    "logging",
    "read_jsonl",
    "set_logger",
    "to_jsonl",
    "write_jsonl",
    "flame_summary",
    "to_chrome_trace",
    "write_chrome_trace",
    "render_timeline_html",
    "spans_from_chrome_trace",
    "spans_from_manifest",
    "write_timeline_html",
    "NULL_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullRegistry",
    "collecting",
    "get_registry",
    "log_bucket_edges",
    "set_registry",
    "ManifestError",
    "build_manifest",
    "cache_section",
    "logs_section",
    "read_manifest",
    "render_report",
    "serve_section",
    "smoke_manifest",
    "verify_section",
    "write_manifest",
    "Tolerance",
    "regress",
]
