"""The unified timeline report: one self-contained HTML file per run.

``python -m repro timeline <trace.json|manifest.json>`` joins the three
observability streams — the merged multi-track span timeline, metric
snapshots, and structured log events — on one time axis in a single
HTML document with **no network dependencies**: inline CSS, no
JavaScript, no fonts or CDN links, so the artifact a CI job uploads
renders identically offline and years later.

Two input shapes are understood:

* a Chrome ``trace_event`` JSON written by
  :func:`repro.obs.export.write_chrome_trace` —
  :func:`spans_from_chrome_trace` rebuilds the span/counter records
  (recovering nesting depth per track by interval containment), and the
  timeline shows every track, with grid-cell tracks (``cell3/host``,
  ``cell3/ipu``) grouped under their cell;
* a ``repro.run/1`` manifest — no raw spans survive in a manifest, so
  the ``hot_spans`` aggregates are rendered as sequential per-track
  bars plus the metric and log-summary tables.

A sibling ``repro.log/1`` JSONL (``--log``, or auto-detected next to
the input) contributes the log lane: one tick per event on the time
axis plus the event table with run/span/worker correlation fields.

Times are *relative* seconds on each recorder's own clock (worker span
buffers are merged without re-basing — see
:meth:`~repro.obs.tracer.Tracer.merge_snapshot`), so tracks from
different processes share a scale but not a wall-clock origin; the
header says so rather than implying false precision.
"""

from __future__ import annotations

import hashlib
import html
import pathlib

from repro.obs.tracer import CounterRecord, SpanRecord
from repro.utils import format_seconds

__all__ = [
    "spans_from_chrome_trace",
    "spans_from_manifest",
    "render_timeline_html",
    "write_timeline_html",
]

#: Per-track span cap in the rendered HTML (longest-first; the cut is
#: announced in the track header — never silent).
MAX_SPANS_PER_TRACK = 1500

#: Log-event table cap (earliest-first; the cut is announced).
MAX_LOG_ROWS = 500

_ROW_PX = 16  # height of one nesting level in a track lane


def spans_from_chrome_trace(doc: dict) -> tuple[list[SpanRecord], list[CounterRecord]]:
    """Rebuild span/counter records from a Chrome ``trace_event`` dict.

    The inverse of :func:`repro.obs.export.to_chrome_trace`: ``M``
    metadata events name the tracks, ``X`` events become spans, ``C``
    events become counters.  Nesting depth is not stored in the Chrome
    format, so it is recovered per track by interval containment —
    spans sorted by (start, -duration), a span's depth is the number of
    still-open enclosing intervals.
    """
    tracks: dict[int, str] = {}
    for event in doc.get("traceEvents", ()):
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            tracks[event.get("tid", 0)] = event.get("args", {}).get(
                "name", f"tid{event.get('tid', 0)}"
            )
    spans: list[SpanRecord] = []
    counters: list[CounterRecord] = []
    for event in doc.get("traceEvents", ()):
        ph = event.get("ph")
        track = tracks.get(event.get("tid", 0), f"tid{event.get('tid', 0)}")
        if ph == "X":
            spans.append(
                SpanRecord(
                    name=event.get("name", ""),
                    category=event.get("cat", ""),
                    track=track,
                    start_s=float(event.get("ts", 0.0)) / 1e6,
                    duration_s=float(event.get("dur", 0.0)) / 1e6,
                    attributes=dict(event.get("args", {})),
                )
            )
        elif ph == "C":
            counters.append(
                CounterRecord(
                    name=event.get("name", ""),
                    track=track,
                    time_s=float(event.get("ts", 0.0)) / 1e6,
                    values=dict(event.get("args", {})),
                )
            )
    _recover_depths(spans)
    return spans, counters


def _recover_depths(spans: list[SpanRecord]) -> None:
    """Assign nesting depths per track by interval containment."""
    by_track: dict[str, list[SpanRecord]] = {}
    for span in spans:
        by_track.setdefault(span.track, []).append(span)
    for members in by_track.values():
        members.sort(key=lambda s: (s.start_s, -s.duration_s))
        open_ends: list[float] = []  # end time per open nesting level
        for span in members:
            # A tiny tolerance absorbs float noise from the us round trip.
            eps = 1e-9 + 1e-6 * span.duration_s
            while open_ends and open_ends[-1] <= span.start_s + eps:
                open_ends.pop()
            span.depth = len(open_ends)
            open_ends.append(span.end_s)


def spans_from_manifest(manifest: dict) -> list[SpanRecord]:
    """Aggregate bars from a manifest's ``hot_spans`` section.

    Manifests carry only (track, name, total, calls) aggregates, so the
    bars are laid end-to-end per track in ranking order — a span-length
    comparison, not a replay of real timing.
    """
    cursors: dict[str, float] = {}
    spans = []
    for entry in manifest.get("hot_spans", ()):
        track = entry.get("track", "host")
        start = cursors.get(track, 0.0)
        spans.append(
            SpanRecord(
                name=entry.get("name", ""),
                category="aggregate",
                track=track,
                start_s=start,
                duration_s=float(entry.get("total_s", 0.0)),
                attributes={"calls": entry.get("calls", 0)},
            )
        )
        cursors[track] = start + float(entry.get("total_s", 0.0))
    return spans


# -- rendering -----------------------------------------------------------------

_CSS = """
body { font: 13px/1.45 system-ui, sans-serif; margin: 1.5em; color: #222; }
h1 { font-size: 1.3em; margin-bottom: 0.2em; }
h2 { font-size: 1.05em; margin: 1.4em 0 0.4em; }
.meta { color: #666; margin-bottom: 1em; }
.axis { position: relative; height: 18px; border-bottom: 1px solid #bbb;
        margin: 0.6em 0 0.2em; }
.axis span { position: absolute; transform: translateX(-50%);
             color: #666; font-size: 11px; }
.track { margin: 0.35em 0; }
.track .label { color: #444; font-size: 12px; margin-bottom: 1px; }
.track .note { color: #a40; font-size: 11px; }
.lane { position: relative; background: #f7f7f7; border-radius: 2px; }
.span { position: absolute; height: 14px; border-radius: 2px;
        overflow: hidden; white-space: nowrap; font-size: 10px;
        color: #fff; padding: 0 2px; box-sizing: border-box; }
.tick { position: absolute; width: 2px; height: 14px; top: 0; }
table { border-collapse: collapse; margin: 0.4em 0; }
th, td { text-align: left; padding: 2px 10px 2px 0; font-size: 12px;
         border-bottom: 1px solid #eee; vertical-align: top; }
th { color: #555; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.lvl-debug { background: #8a8a8a; } .lvl-info { background: #2a7ae2; }
.lvl-warning { background: #e2a52a; } .lvl-error { background: #d43f3f; }
.trunc { color: #a40; font-size: 11px; }
"""


def _category_color(category: str) -> str:
    """A stable, readable color per span category (hash -> HSL hue)."""
    digest = hashlib.blake2b(
        (category or "default").encode(), digest_size=2
    ).hexdigest()
    hue = int(digest, 16) % 360
    return f"hsl({hue}, 55%, 45%)"


def _esc(value: object) -> str:
    return html.escape(str(value), quote=True)


def _axis(t0: float, t1: float) -> str:
    """Five evenly spaced time labels across the shared axis."""
    marks = []
    for i in range(6):
        t = t0 + (t1 - t0) * i / 5
        left = i / 5 * 100
        marks.append(
            f'<span style="left:{left:.2f}%">{_esc(format_seconds(t))}</span>'
        )
    return f'<div class="axis">{"".join(marks)}</div>'


def _track_order(spans, counters, events) -> list[str]:
    """Host first, then first appearance — matches ``Tracer.tracks()``."""
    seen: dict[str, None] = {}
    for span in spans:
        seen.setdefault(span.track, None)
    for counter in counters:
        seen.setdefault(counter.track, None)
    ordered = list(seen)
    if "host" in ordered:
        ordered.remove("host")
        ordered.insert(0, "host")
    return ordered


def _render_track(track, spans, t0, span_s, max_spans) -> list[str]:
    out = []
    shown = spans
    note = ""
    if len(spans) > max_spans:
        shown = sorted(spans, key=lambda s: -s.duration_s)[:max_spans]
        shown.sort(key=lambda s: (s.start_s, -s.duration_s))
        note = (
            f' <span class="note">(showing the {max_spans} longest of '
            f"{len(spans)} spans)</span>"
        )
    depth = max((s.depth for s in shown), default=0)
    total = sum(s.duration_s for s in shown if s.depth == 0)
    out.append('<div class="track">')
    out.append(
        f'<div class="label">{_esc(track)} — {len(spans)} spans, '
        f"{_esc(format_seconds(total))} top-level{note}</div>"
    )
    out.append(
        f'<div class="lane" style="height:{(depth + 1) * _ROW_PX}px">'
    )
    for span in shown:
        left = (span.start_s - t0) / span_s * 100
        width = max(span.duration_s / span_s * 100, 0.08)
        attrs = ", ".join(f"{k}={v}" for k, v in span.attributes.items())
        tip = (
            f"{span.name} — {format_seconds(span.duration_s)} "
            f"[{span.category or 'default'}] @ {format_seconds(span.start_s)}"
            + (f" | {attrs}" if attrs else "")
        )
        out.append(
            f'<div class="span" title="{_esc(tip)}" '
            f'style="left:{left:.3f}%;width:{width:.3f}%;'
            f"top:{span.depth * _ROW_PX}px;"
            f'background:{_category_color(span.category)}">'
            f"{_esc(span.name)}</div>"
        )
    out.append("</div></div>")
    return out


def _render_log_lane(events, t0, span_s) -> list[str]:
    out = ['<div class="track">']
    out.append(
        f'<div class="label">log events — {len(events)} on this axis</div>'
    )
    out.append(f'<div class="lane" style="height:{_ROW_PX}px">')
    for event in events:
        left = (event.time_s - t0) / span_s * 100
        tip = (
            f"[{event.level}] {event.event} @ "
            f"{format_seconds(event.time_s)}"
            + (f" — {event.message}" if event.message else "")
            + (f" | span={event.span}" if event.span else "")
            + (f" | worker={event.worker}" if event.worker is not None else "")
        )
        out.append(
            f'<div class="tick lvl-{_esc(event.level)}" '
            f'title="{_esc(tip)}" style="left:{left:.3f}%"></div>'
        )
    out.append("</div></div>")
    return out


def _render_log_table(events, max_rows) -> list[str]:
    out = ["<h2>Log events</h2>"]
    shown = events[:max_rows]
    out.append("<table><tr><th>time</th><th>level</th><th>event</th>")
    out.append("<th>message</th><th>span</th><th>worker</th>")
    out.append("<th>run</th><th>fields</th></tr>")
    for event in shown:
        fields = ", ".join(f"{k}={v}" for k, v in event.fields.items())
        out.append(
            "<tr>"
            f'<td class="num">{_esc(format_seconds(event.time_s))}</td>'
            f"<td>{_esc(event.level)}</td><td>{_esc(event.event)}</td>"
            f"<td>{_esc(event.message)}</td><td>{_esc(event.span)}</td>"
            f'<td class="num">'
            f"{'' if event.worker is None else event.worker}</td>"
            f"<td>{_esc(event.run_id)}</td><td>{_esc(fields)}</td></tr>"
        )
    out.append("</table>")
    if len(events) > max_rows:
        out.append(
            f'<p class="trunc">… and {len(events) - max_rows} more events '
            f"(of {len(events)}; see the JSONL log for all)</p>"
        )
    return out


def _render_metrics(metrics) -> list[str]:
    out = ["<h2>Metrics</h2>"]
    out.append("<table><tr><th>metric</th><th>type</th><th>value</th></tr>")
    for entry in metrics:
        labels = entry.get("labels") or {}
        name = entry.get("name", "?") + (
            "{" + ",".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"
            if labels
            else ""
        )
        if entry.get("type") == "histogram":
            value = f"count={entry.get('count', 0)} sum={entry.get('sum', 0):.6g}"
        else:
            value = f"{entry.get('value', 0):.6g}"
        out.append(
            f"<tr><td>{_esc(name)}</td><td>{_esc(entry.get('type', '?'))}</td>"
            f'<td class="num">{_esc(value)}</td></tr>'
        )
    out.append("</table>")
    return out


def render_timeline_html(
    spans: list[SpanRecord],
    counters: list[CounterRecord] = (),
    events: list = (),
    metrics: list | None = None,
    title: str = "repro timeline",
    subtitle: str = "",
    max_spans_per_track: int = MAX_SPANS_PER_TRACK,
    max_log_rows: int = MAX_LOG_ROWS,
) -> str:
    """Render the unified timeline as one self-contained HTML document.

    *events* are :class:`~repro.obs.log.LogEvent` records (the log
    lane + table); *metrics* a manifest-style snapshot list.  Per-track
    spans beyond *max_spans_per_track* keep only the longest (the track
    header says how many were cut); the log table is capped likewise.
    """
    times = (
        [s.start_s for s in spans]
        + [s.end_s for s in spans]
        + [c.time_s for c in counters]
        + [e.time_s for e in events]
    )
    t0 = min(times, default=0.0)
    t1 = max(times, default=1.0)
    span_s = (t1 - t0) or 1.0

    out = [
        "<!DOCTYPE html>",
        '<html><head><meta charset="utf-8">',
        f"<title>{_esc(title)}</title>",
        f"<style>{_CSS}</style></head><body>",
        f"<h1>{_esc(title)}</h1>",
        '<p class="meta">'
        + (f"{_esc(subtitle)} · " if subtitle else "")
        + f"{len(spans)} spans · {len(counters)} counters · "
        + f"{len(events)} log events · axis "
        + f"{_esc(format_seconds(t0))} – {_esc(format_seconds(t1))} "
        + "(relative seconds on each recorder's clock; cross-process "
        + "tracks are not wall-clock aligned)</p>",
        "<h2>Timeline</h2>",
        _axis(t0, t1),
    ]
    by_track: dict[str, list[SpanRecord]] = {}
    for span in spans:
        by_track.setdefault(span.track, []).append(span)
    for track in _track_order(spans, counters, events):
        out.extend(
            _render_track(
                track,
                by_track.get(track, []),
                t0,
                span_s,
                max_spans_per_track,
            )
        )
    if events:
        out.extend(_render_log_lane(events, t0, span_s))
        out.extend(_render_log_table(events, max_log_rows))
    if metrics:
        out.extend(_render_metrics(metrics))
    out.append("</body></html>")
    return "\n".join(out) + "\n"


def write_timeline_html(
    html_text: str, path: str | pathlib.Path
) -> pathlib.Path:
    """Write the rendered timeline to *path* and return it."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(html_text)
    return path
