"""Trace exporters: Chrome ``trace_event`` JSON and a text flame summary.

The Chrome format is the one PopVision/Perfetto-class tools speak: a flat
``traceEvents`` list of complete (``ph: "X"``) events with microsecond
timestamps, counter (``ph: "C"``) events, and metadata naming the tracks.
Load the written file in ``chrome://tracing`` or https://ui.perfetto.dev.
"""

from __future__ import annotations

import fnmatch
import json
import pathlib

from repro.obs.tracer import Tracer, jsonable as _jsonable

__all__ = ["to_chrome_trace", "write_chrome_trace", "flame_summary"]

_PID = 1


def to_chrome_trace(tracer: Tracer) -> dict:
    """Render *tracer* as a Chrome ``trace_event`` document (a dict)."""
    tids = {track: i for i, track in enumerate(tracer.tracks())}
    events: list[dict] = [
        {
            "ph": "M",
            "name": "process_name",
            "pid": _PID,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
    for span in tracer.spans:
        events.append(
            {
                "ph": "X",
                "name": span.name,
                "cat": span.category or "default",
                "ts": span.start_s * 1e6,
                "dur": span.duration_s * 1e6,
                "pid": _PID,
                "tid": tids[span.track],
                "args": _jsonable(span.attributes),
            }
        )
    for counter in tracer.counters:
        events.append(
            {
                "ph": "C",
                "name": counter.name,
                "ts": counter.time_s * 1e6,
                "pid": _PID,
                "tid": tids[counter.track],
                "args": _jsonable(counter.values),
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    tracer: Tracer, path: str | pathlib.Path
) -> pathlib.Path:
    """Write the Chrome trace JSON to *path* and return it."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(to_chrome_trace(tracer), indent=1) + "\n")
    return path


def _format_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3f} ms"
    if seconds >= 1e-6:
        return f"{seconds * 1e6:.3f} us"
    return f"{seconds * 1e9:.1f} ns"


def flame_summary(
    tracer: Tracer, max_rows: int = 40, track: str | None = None
) -> str:
    """Aggregate spans by name per track, heaviest first.

    The text analogue of a flame graph's top table: for each track, every
    span name with its call count, total/mean time and share of the
    track's top-level time.  *track* restricts the summary to tracks
    matching a glob pattern (``cell3/*``, ``*/ipu``) — the way to keep a
    merged multi-worker grid trace readable; rows carry their track name
    so filtered and merged views stay self-describing.
    """
    lines: list[str] = []
    selected = [
        name
        for name in tracer.tracks()
        if track is None or fnmatch.fnmatchcase(name, track)
    ]
    for name in selected:
        spans = tracer.spans_on(name)
        if not spans:
            continue
        track_label = name
        top_level_total = sum(
            s.duration_s for s in spans if s.depth == 0
        ) or sum(s.duration_s for s in spans)
        totals: dict[str, list[float]] = {}
        for span in spans:
            bucket = totals.setdefault(span.name, [0.0, 0.0])
            bucket[0] += span.duration_s
            bucket[1] += 1
        ranked = sorted(totals.items(), key=lambda kv: -kv[1][0])
        lines.append(f"[{track_label}] total {_format_s(top_level_total)}")
        header = f"  {'span':<40s} {'calls':>6s} {'total':>12s} " \
                 f"{'mean':>12s} {'share':>7s}  track"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for span_name, (total, calls) in ranked[:max_rows]:
            share = total / top_level_total if top_level_total > 0 else 0.0
            lines.append(
                f"  {span_name[:40]:<40s} {int(calls):>6d} "
                f"{_format_s(total):>12s} "
                f"{_format_s(total / calls):>12s} {share:>6.1%}"
                f"  {track_label}"
            )
        if len(ranked) > max_rows:
            # No-silent-caps: capped output must say it is capped.
            lines.append(
                f"  … and {len(ranked) - max_rows} more rows "
                f"(of {len(ranked)}; raise max_rows to see all)"
            )
        lines.append("")
    if not lines and track is not None:
        return f"(no tracks match {track!r})"
    return "\n".join(lines).rstrip("\n") or "(empty trace)"
