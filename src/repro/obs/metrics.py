"""Labelled metrics: counters, gauges and log-bucketed histograms.

The tracer (:mod:`repro.obs.tracer`) answers "when did what happen"; this
module answers "how much, in total" — the quantities a perf-regression
gate can diff between two runs.  A :class:`MetricRegistry` holds named,
labelled instruments:

* :class:`Counter` — monotonically increasing totals (simulated seconds
  per execution phase, bytes exchanged, faults recovered);
* :class:`Gauge` — last-written values (graph structure counts, peak
  tile bytes, final loss/accuracy);
* :class:`Histogram` — value distributions over **fixed log-spaced
  buckets**, so two runs' histograms are always bucket-compatible.

Mirroring ``get_tracer()``/``set_tracer()``, a process-global default
registry is installed via :func:`get_registry`/:func:`set_registry`; the
default is a zero-cost :data:`NULL_REGISTRY` whose instruments discard
every observation, so instrumented code costs one attribute check when
metrics are off.  Snapshots order deterministically by (name, sorted
labels), which keeps run manifests diffable (:mod:`repro.obs.regress`).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NullRegistry",
    "NULL_REGISTRY",
    "log_bucket_edges",
    "get_registry",
    "set_registry",
    "collecting",
]


def log_bucket_edges(
    lo: float, hi: float, per_decade: int = 3
) -> tuple[float, ...]:
    """Fixed log-spaced bucket edges covering ``[lo, hi]``.

    Edges are ``10**(k / per_decade)`` for every k whose edge lies in
    ``[lo, hi]`` (inclusive, to float tolerance), so any two histograms
    built from the same (lo, hi, per_decade) triple share exact edges.
    """
    if not (lo > 0 and hi > lo):
        raise ValueError(f"need 0 < lo < hi, got lo={lo}, hi={hi}")
    if per_decade <= 0:
        raise ValueError(f"per_decade must be positive, got {per_decade}")
    k_lo = math.ceil(round(math.log10(lo) * per_decade, 9))
    k_hi = math.floor(round(math.log10(hi) * per_decade, 9))
    return tuple(10.0 ** (k / per_decade) for k in range(k_lo, k_hi + 1))


#: Default histogram edges: 1 us .. 100 s, 3 buckets per decade
#: (the span of every simulated/wall duration the simulators produce).
DEFAULT_SECONDS_EDGES = log_bucket_edges(1e-6, 1e2, per_decade=3)

#: Byte-scale edges: 64 B .. 1 GiB in powers of four (exact floats, so
#: bucket assignment is platform-independent for integer byte counts).
DEFAULT_BYTES_EDGES = tuple(float(64 * 4**k) for k in range(13))


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        self.value += amount

    def snapshot_value(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A last-written value."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot_value(self) -> dict:
        return {"value": self.value}


class Histogram:
    """A distribution over fixed bucket edges.

    Bucket semantics: value ``v`` lands in the first bucket whose upper
    edge satisfies ``v <= edge``; a value exactly on an edge therefore
    belongs to the bucket that edge closes.  Values below ``edges[0]``
    (zero and negatives included) land in bucket 0; values above
    ``edges[-1]`` (``inf`` included) land in the overflow bucket, so
    ``len(bucket_counts) == len(edges) + 1`` and no observation is ever
    dropped.
    """

    __slots__ = ("edges", "bucket_counts", "count", "sum", "min", "max")
    kind = "histogram"

    def __init__(self, edges: tuple[float, ...] | None = None) -> None:
        edges = tuple(edges) if edges is not None else DEFAULT_SECONDS_EDGES
        if len(edges) < 1 or any(
            a >= b for a, b in zip(edges, edges[1:])
        ):
            raise ValueError("edges must be strictly increasing, non-empty")
        self.edges = edges
        self.bucket_counts = [0] * (len(edges) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def _bucket_index(self, value: float) -> int:
        # First edge >= value closes this value's bucket (v <= edge).
        lo, hi = 0, len(self.edges)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.edges[mid] < value:
                lo = mid + 1
            else:
                hi = mid
        return lo

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[self._bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values) -> None:
        """Observe an iterable (or numpy array) of values."""
        for value in values:
            self.observe(value)

    def snapshot_value(self) -> dict:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "edges": list(self.edges),
            "bucket_counts": list(self.bucket_counts),
        }


class _NullInstrument:
    """Shared no-op instrument: accepts every call, records nothing."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None

    def observe_many(self, values) -> None:
        return None


_NULL_INSTRUMENT = _NullInstrument()


def _label_key(labels: dict) -> tuple[tuple[str, str], ...]:
    """Canonical (sorted, stringified) identity of a label set."""
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class MetricRegistry:
    """Holds labelled instruments; snapshot order is deterministic.

    Instruments are created on first use and identified by
    ``(name, sorted labels)``, so ``registry.counter("x", kind="a")``
    always returns the same :class:`Counter` regardless of keyword
    order.  Requesting an existing name with a different instrument
    type raises — one name, one type, any number of label sets.
    """

    enabled = True

    def __init__(self) -> None:
        self._metrics: dict[tuple, object] = {}
        self._types: dict[str, type] = {}

    def _get(self, cls: type, name: str, labels: dict, *args):
        known = self._types.get(name)
        if known is not None and known is not cls:
            raise TypeError(
                f"metric {name!r} is a {known.kind}, not a {cls.kind}"
            )
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(*args)
            self._metrics[key] = metric
            self._types[name] = cls
        return metric

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(
        self,
        name: str,
        edges: tuple[float, ...] | None = None,
        **labels,
    ) -> Histogram:
        return self._get(Histogram, name, labels, edges)

    def snapshot(self) -> list[dict]:
        """All instruments as JSON-ready dicts, deterministically ordered.

        Sorted by (name, sorted label items); each entry carries
        ``name``, ``type``, ``labels`` and the instrument's value fields
        (``value`` for counters/gauges; count/sum/min/max/edges/
        bucket_counts for histograms).
        """
        entries = []
        for (name, label_key), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            entry = {
                "name": name,
                "type": metric.kind,
                "labels": dict(label_key),
            }
            entry.update(metric.snapshot_value())
            entries.append(entry)
        return entries

    def merge_snapshot(self, entries: list[dict]) -> None:
        """Fold a :meth:`snapshot` from another registry into this one.

        The parallel experiment runner (:mod:`repro.bench.parallel`) uses
        this to aggregate worker-process metrics: counters add, gauges
        take the incoming value (workers are merged in deterministic
        config order, so "last write" is well-defined), histograms add
        bucket counts — which requires identical edges, guaranteed for
        snapshots produced by the same instrumented code.
        """
        if not self.enabled:
            return
        for entry in entries:
            labels = dict(entry.get("labels", {}))
            kind = entry["type"]
            if kind == "counter":
                self.counter(entry["name"], **labels).inc(entry["value"])
            elif kind == "gauge":
                self.gauge(entry["name"], **labels).set(entry["value"])
            elif kind == "histogram":
                edges = tuple(entry["edges"])
                hist = self.histogram(entry["name"], edges=edges, **labels)
                if hist.edges != edges:
                    raise ValueError(
                        f"histogram {entry['name']!r} edge mismatch: "
                        f"cannot merge {edges} into {hist.edges}"
                    )
                for i, n in enumerate(entry["bucket_counts"]):
                    hist.bucket_counts[i] += n
                hist.count += entry["count"]
                hist.sum += entry["sum"]
                if entry["count"]:
                    hist.min = min(hist.min, entry["min"])
                    hist.max = max(hist.max, entry["max"])
            else:
                raise ValueError(f"unknown metric type {kind!r}")


class NullRegistry(MetricRegistry):
    """Disabled registry: every instrument is the shared no-op.

    Mirrors :class:`~repro.obs.tracer.NullTracer`: instrumented code
    additionally guards hot loops on :attr:`enabled`, so the disabled
    path costs a single attribute check.
    """

    enabled = False

    def counter(self, name, **labels):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def gauge(self, name, **labels):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def histogram(self, name, edges=None, **labels):  # type: ignore[override]
        return _NULL_INSTRUMENT

    def snapshot(self) -> list[dict]:
        return []

    def merge_snapshot(self, entries: list[dict]) -> None:
        return None


#: The module-level singleton installed when metrics are off.
NULL_REGISTRY = NullRegistry()

_current: MetricRegistry = NULL_REGISTRY


def get_registry() -> MetricRegistry:
    """The currently installed registry (the null registry by default)."""
    return _current


def set_registry(registry: MetricRegistry | None) -> MetricRegistry:
    """Install *registry* globally (``None`` restores the null registry)."""
    global _current
    previous = _current
    _current = registry if registry is not None else NULL_REGISTRY
    return previous


@contextmanager
def collecting(
    registry: MetricRegistry | None = None,
) -> Iterator[MetricRegistry]:
    """Install a metric registry for the duration of a ``with`` block.

    Creates a fresh :class:`MetricRegistry` unless one is supplied;
    restores the previously installed registry on exit (exception-safe),
    mirroring :func:`repro.obs.tracer.tracing`.
    """
    registry = registry if registry is not None else MetricRegistry()
    previous = set_registry(registry)
    try:
        yield registry
    finally:
        set_registry(previous)
