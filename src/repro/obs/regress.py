"""Perf-regression gate: diff two ``repro.run/1`` manifests.

The gate flattens each manifest's ``metrics`` section into scalar keys
(``name{label=value,...}`` for counters/gauges; ``....count`` /
``....sum`` for histograms), pairs them up, and checks every pair
against a **relative tolerance** resolved per metric:

1. user rules (``--tol PATTERN=REL``, first match wins; ``REL=none``
   ignores the metric),
2. built-in default rules (host wall-clock metrics are not gated — they
   are inherently noisy),
3. the default tolerance with a direction inferred from the name:
   seconds/bytes/loss/retries fail on *increase*, accuracy fails on
   *decrease*, structural counts fail on any change.

A metric present in the baseline but missing from the candidate is a
regression (silent metric loss must not pass CI); a metric only in the
candidate is informational.  A manifest diffed against itself is always
clean.  Exit-code semantics (``python -m repro regress A B``): 0 pass,
1 regression, 2 usage/manifest error.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fnmatch import fnmatchcase

__all__ = [
    "Tolerance",
    "MetricDiff",
    "RegressionResult",
    "DEFAULT_TOLERANCE",
    "DEFAULT_RULES",
    "flatten_metrics",
    "parse_tolerance",
    "default_direction",
    "regress",
]

#: Relative tolerance applied when no rule matches a metric.
DEFAULT_TOLERANCE = 0.05

#: Direction sentinel: resolve from the metric name at comparison time.
AUTO = "auto"


@dataclass(frozen=True)
class Tolerance:
    """One tolerance rule: a glob over flattened keys.

    ``rel=None`` excludes matching metrics from the gate entirely;
    ``direction`` is ``"increase"`` (fail when the candidate exceeds
    baseline by more than ``rel``), ``"decrease"``, ``"both"``, or
    ``"auto"`` (infer from the metric name).
    """

    pattern: str
    rel: float | None
    direction: str = AUTO


#: Built-in rules, consulted after user rules.  Host wall-clock metrics
#: vary run-to-run by scheduler noise, so they are reported but not
#: gated unless a user rule opts them in.
DEFAULT_RULES = (
    Tolerance("trainer.step_s{*", None),
    Tolerance("trainer.epoch_s{*", None),
    Tolerance("trainer.step_s.*", None),
    Tolerance("trainer.epoch_s.*", None),
)


@dataclass(frozen=True)
class MetricDiff:
    """Outcome of comparing one flattened metric."""

    key: str
    baseline: float | None
    candidate: float | None
    rel_change: float | None
    tol: float | None
    direction: str
    #: "ok" | "regressed" | "ignored" | "missing" | "added"
    status: str


@dataclass
class RegressionResult:
    """All metric diffs of one gate run."""

    candidate_name: str
    baseline_name: str
    diffs: list[MetricDiff]

    @property
    def failures(self) -> list[MetricDiff]:
        return [
            d for d in self.diffs if d.status in ("regressed", "missing")
        ]

    @property
    def ok(self) -> bool:
        return not self.failures

    def counts(self) -> dict[str, int]:
        counts = {
            "ok": 0, "regressed": 0, "ignored": 0, "missing": 0, "added": 0
        }
        for d in self.diffs:
            counts[d.status] += 1
        return counts

    def render(self, show_all: bool = False) -> str:
        lines = [
            f"regress: {self.candidate_name} vs baseline "
            f"{self.baseline_name}"
        ]
        shown = self.diffs if show_all else self.failures
        for d in shown:
            if d.status == "missing":
                lines.append(
                    f"  MISSING   {d.key}  (baseline {d.baseline:g}, "
                    "absent from candidate)"
                )
                continue
            if d.status == "added":
                lines.append(
                    f"  added     {d.key} = {d.candidate:g} "
                    "(not in baseline)"
                )
                continue
            change = (
                f"{d.rel_change:+.2%}" if d.rel_change is not None else "?"
            )
            tol = f"{d.tol:.2%} {d.direction}" if d.tol is not None else "-"
            tag = {
                "regressed": "REGRESSED", "ok": "ok", "ignored": "ignored"
            }[d.status]
            lines.append(
                f"  {tag:<9s} {d.key}  {d.baseline:g} -> "
                f"{d.candidate:g}  ({change}, tol {tol})"
            )
        c = self.counts()
        lines.append(
            f"  {len(self.diffs)} metrics: {c['ok']} ok, "
            f"{c['regressed']} regressed, {c['missing']} missing, "
            f"{c['ignored']} ignored, {c['added']} added"
        )
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"  => {verdict}")
        return "\n".join(lines)


def _flat_key(entry: dict) -> str:
    labels = entry.get("labels") or {}
    if labels:
        inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
        return f"{entry['name']}{{{inner}}}"
    return entry["name"]


def flatten_metrics(manifest: dict) -> dict[str, float]:
    """Flatten a manifest's metrics section into scalar key/value pairs."""
    flat: dict[str, float] = {}
    for entry in manifest.get("metrics", []):
        key = _flat_key(entry)
        if entry["type"] in ("counter", "gauge"):
            flat[key] = float(entry["value"])
        elif entry["type"] == "histogram":
            flat[f"{key}.count"] = float(entry["count"])
            flat[f"{key}.sum"] = float(entry["sum"])
    return flat


def parse_tolerance(spec: str) -> Tolerance:
    """Parse a ``PATTERN=REL`` CLI spec (``REL`` may be ``none``)."""
    pattern, sep, rel = spec.partition("=")
    if not sep or not pattern:
        raise ValueError(
            f"tolerance spec {spec!r} is not of the form PATTERN=REL"
        )
    if rel.lower() in ("none", "skip", "ignore"):
        return Tolerance(pattern, None)
    try:
        value = float(rel)
    except ValueError:
        raise ValueError(
            f"tolerance {rel!r} in {spec!r} is not a number or 'none'"
        ) from None
    if value < 0:
        raise ValueError(f"tolerance must be >= 0, got {value}")
    return Tolerance(pattern, value)


def default_direction(key: str) -> str:
    """Failure direction inferred from a flattened metric key."""
    name = key.split("{", 1)[0]
    if key.endswith(".count"):
        return "both"  # structural counts: any drift is suspicious
    if "accuracy" in name:
        return "decrease"
    if (
        name.endswith(("_s", "_bytes"))
        or "loss" in name
        or "retries" in name
        or "fatal" in name
    ):
        return "increase"
    return "both"


def _resolve(
    key: str,
    rules: tuple[Tolerance, ...],
    default_tol: float,
) -> tuple[float | None, str]:
    """(tolerance, direction) for *key*: first matching rule wins."""
    for rule in rules:
        if fnmatchcase(key, rule.pattern):
            direction = (
                default_direction(key)
                if rule.direction == AUTO
                else rule.direction
            )
            return rule.rel, direction
    return default_tol, default_direction(key)


def _rel_change(baseline: float, candidate: float) -> float:
    if baseline == candidate:
        return 0.0
    if baseline == 0:
        return math.copysign(math.inf, candidate - baseline)
    return (candidate - baseline) / abs(baseline)


def _violates(rel_change: float, tol: float, direction: str) -> bool:
    if direction == "increase":
        return rel_change > tol
    if direction == "decrease":
        return rel_change < -tol
    return abs(rel_change) > tol


def regress(
    candidate: dict,
    baseline: dict,
    rules: "tuple[Tolerance, ...] | list[Tolerance]" = (),
    default_tol: float = DEFAULT_TOLERANCE,
) -> RegressionResult:
    """Gate *candidate* against *baseline*; both are manifest dicts.

    *rules* (user rules) are consulted before :data:`DEFAULT_RULES`;
    unmatched metrics get *default_tol* with an auto direction.
    """
    all_rules = tuple(rules) + DEFAULT_RULES
    base_flat = flatten_metrics(baseline)
    cand_flat = flatten_metrics(candidate)
    diffs: list[MetricDiff] = []
    for key in sorted(base_flat):
        base_value = base_flat[key]
        tol, direction = _resolve(key, all_rules, default_tol)
        if key not in cand_flat:
            diffs.append(
                MetricDiff(key, base_value, None, None, tol, direction,
                           "ignored" if tol is None else "missing")
            )
            continue
        cand_value = cand_flat[key]
        rel = _rel_change(base_value, cand_value)
        if tol is None:
            status = "ignored"
        elif _violates(rel, tol, direction):
            status = "regressed"
        else:
            status = "ok"
        diffs.append(
            MetricDiff(
                key, base_value, cand_value, rel, tol, direction, status
            )
        )
    for key in sorted(set(cand_flat) - set(base_flat)):
        diffs.append(
            MetricDiff(key, None, cand_flat[key], None, None, "both",
                       "added")
        )
    return RegressionResult(
        candidate_name=candidate.get("name", "candidate"),
        baseline_name=baseline.get("name", "baseline"),
        diffs=diffs,
    )
