"""Cross-process observability propagation for the grid runners.

The parent side of a grid (:func:`repro.bench.parallel.run_grid`,
:func:`repro.guard.run_supervised_grid`) cannot ship its live tracer or
log into a ``spawn`` worker — neither pickles, and sharing one buffer
across processes would serialize the grid.  What crosses the boundary
instead is:

* **down**: an :func:`obs_spec` — a small picklable dict saying which
  instruments the parent has enabled plus the cell's trace context
  (deterministic run id, parent span name, cell index).  ``None`` when
  everything is disabled, so the disabled path ships nothing and
  installs nothing (byte-identical to an uninstrumented run).
* **up**: the worker's ``tracer.snapshot()`` / ``runlog.snapshot()``
  buffers, appended to the existing pipe message tuples; the parent
  merges them onto ``cell{i}/...`` tracks
  (:meth:`~repro.obs.tracer.Tracer.merge_snapshot`).

:func:`worker_observability` is the worker-side half: installed around
the cell body in pool workers, supervised children *and* the serial
in-process path, so ``--jobs 1`` and ``--jobs 4`` runs build their
merged timelines through the identical mechanism.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.obs.context import TraceContext, context
from repro.obs.log import NULL_LOG, RunLog, get_logger, logging
from repro.obs.tracer import NULL_TRACER, Tracer, get_tracer, tracing

__all__ = ["obs_spec", "worker_observability"]


def obs_spec(
    run_id: str, parent_span: str, worker: int
) -> dict | None:
    """The picklable observability request for one grid cell.

    Reads the *ambient* tracer/log: the spec asks the worker to enable
    exactly the instruments the parent has on.  Returns ``None`` when
    both are off — the sentinel every runner checks to keep the
    disabled path free of child tracers, context installs and buffer
    shipping.
    """
    tracer = get_tracer()
    log = get_logger()
    if not tracer.enabled and not log.enabled:
        return None
    return {
        "run_id": run_id,
        "parent_span": parent_span,
        "worker": int(worker),
        "trace": bool(tracer.enabled),
        "log": bool(log.enabled),
    }


@contextmanager
def worker_observability(
    spec: dict | None,
) -> Iterator[tuple[Tracer, RunLog]]:
    """Install the instruments *spec* asks for; yield ``(tracer, log)``.

    With a spec, fresh buffers and the cell's :class:`TraceContext` are
    installed for the block (null instruments for whichever side is
    off, so a worker never inherits a parent buffer in-process).  With
    ``None``, the ambient state is left completely untouched — in the
    serial runner that preserves today's zero-overhead path exactly.

    The yielded objects outlive the block: snapshot them *after* (or
    in an ``except`` around) the cell body — spans closed by an
    unwinding exception are already flushed into the buffer.
    """
    if spec is None:
        yield NULL_TRACER, NULL_LOG
        return
    tracer = Tracer() if spec.get("trace") else NULL_TRACER
    runlog = RunLog() if spec.get("log") else NULL_LOG
    ctx = TraceContext(
        run_id=spec.get("run_id", ""),
        parent_span=spec.get("parent_span", ""),
        worker=spec.get("worker"),
    )
    with tracing(tracer), logging(runlog), context(ctx):
        yield tracer, runlog
