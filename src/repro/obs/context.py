"""Ambient trace context: the correlation ids that cross process lines.

Distributed tracing needs every span, log event and metric produced
anywhere in a run to be attributable to (a) the run it belongs to and
(b) the place in the parent's span tree that spawned the work — the
Dapper model, with the Chrome ``trace_event`` format as interchange.
This module carries exactly that state:

* :class:`TraceContext` is a frozen triple ``(run_id, parent_span,
  worker)``.  The grid runners (:mod:`repro.bench.parallel`,
  :mod:`repro.guard.supervisor`) derive one context per grid cell and
  install it inside the worker process; :mod:`repro.obs.log` stamps the
  fields onto every event it records.
* ``run_id`` is **deterministic** — a content hash of the grid's
  identity (:func:`derive_run_id`), not a UUID — so ``--jobs 4`` and
  ``--jobs 1`` runs of the same grid produce identical correlation ids
  and the merged-timeline determinism tests can compare them verbatim.
* :func:`worker_track` names the per-cell trace track a worker's span
  buffer is merged onto (``cell3/host``, ``cell3/ipu``, ...).  Tracks
  are keyed by **cell index**, never by pool-worker identity: which OS
  process ran a cell is scheduling noise, the cell index is not.

Mirrors the tracer/registry ambient API (:func:`get_context` /
:func:`set_context` / :func:`context`); the default
:data:`ROOT_CONTEXT` has empty ids, costs nothing, and is what every
non-grid (single-process) run sees.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "TraceContext",
    "ROOT_CONTEXT",
    "get_context",
    "set_context",
    "context",
    "derive_run_id",
    "worker_track",
]


@dataclass(frozen=True)
class TraceContext:
    """Correlation ids for the current unit of work.

    ``run_id``
        Deterministic id of the enclosing (grid) run; empty outside one.
    ``parent_span``
        Name of the parent-side span this work nests under (e.g.
        ``"fig6.cell3"``); empty at the root.
    ``worker``
        The grid-cell index this process/section is executing, or
        ``None`` in the parent (and outside grids).
    """

    run_id: str = ""
    parent_span: str = ""
    worker: int | None = None

    def as_dict(self) -> dict:
        return {
            "run_id": self.run_id,
            "parent_span": self.parent_span,
            "worker": self.worker,
        }


#: The default context: no run, no parent, no worker.
ROOT_CONTEXT = TraceContext()

_current: TraceContext = ROOT_CONTEXT


def get_context() -> TraceContext:
    """The currently installed trace context (root by default)."""
    return _current


def set_context(ctx: TraceContext | None) -> TraceContext:
    """Install *ctx* globally (``None`` restores the root context)."""
    global _current
    previous = _current
    _current = ctx if ctx is not None else ROOT_CONTEXT
    return previous


@contextmanager
def context(ctx: TraceContext) -> Iterator[TraceContext]:
    """Install a trace context for the duration of a ``with`` block."""
    previous = set_context(ctx)
    try:
        yield ctx
    finally:
        set_context(previous)


def derive_run_id(*parts: object) -> str:
    """A deterministic 12-hex-digit run id from *parts*.

    Content-derived (blake2b over the parts' reprs), so two runs of the
    same grid — serial or parallel, live or resumed — share a run id,
    which is what lets the determinism tests compare correlation fields
    exactly.  Distinct grids (different worker, seed or size) differ.
    """
    h = hashlib.blake2b(digest_size=6)
    for part in parts:
        h.update(repr(part).encode())
        h.update(b"\x00")
    return h.hexdigest()


def worker_track(index: int) -> str:
    """Track-name prefix for grid cell *index*'s merged span buffer.

    A worker span recorded on track ``t`` lands on ``cell{index}/t`` in
    the merged parent trace; keyed by cell index so serial, pooled and
    supervised runs of one grid agree on track names.
    """
    return f"cell{index}"
