"""PopVision-style run reports: the versioned ``repro.run/1`` manifest.

A *run manifest* is one JSON document describing one run: host info,
seed, config, the metric registry's snapshot, a per-tile memory section
built from the compiler's :class:`~repro.ipu.compiler.MemoryReport`
(totals match it exactly), an optional liveness summary, and the top-k
hottest trace spans.  Manifests are what the perf trajectory is made of:
every benchmark run writes one next to its ``.txt`` artefact, and
:mod:`repro.obs.regress` diffs two of them with per-metric tolerances.

Schema ``repro.run/1`` — field table in docs/OBSERVABILITY.md.  The CLI
entry points are ``python -m repro report <manifest>`` (render) and
``python -m repro report --smoke`` (run a small deterministic workload
and write its manifest, the CI baseline generator).
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys

from repro.obs.metrics import (
    DEFAULT_BYTES_EDGES,
    Histogram,
    MetricRegistry,
    get_registry,
)
from repro.obs.tracer import Tracer, get_tracer
from repro.utils import format_bytes, format_seconds

__all__ = [
    "SCHEMA",
    "ManifestError",
    "build_manifest",
    "cache_section",
    "guard_section",
    "memory_section",
    "liveness_section",
    "logs_section",
    "serve_section",
    "verify_section",
    "hot_spans",
    "write_manifest",
    "read_manifest",
    "render_report",
    "smoke_manifest",
]

#: The manifest schema this module writes and understands.
SCHEMA = "repro.run/1"


class ManifestError(ValueError):
    """A manifest file is missing, malformed, or of an unknown schema."""


def _host_info() -> dict:
    import numpy

    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "argv0": pathlib.Path(sys.argv[0]).name if sys.argv else "",
    }


def memory_section(memory) -> dict:
    """The per-tile memory section of a manifest.

    *memory* is an :class:`~repro.ipu.compiler.MemoryReport` (duck-typed
    to avoid importing :mod:`repro.ipu` here).  Totals are copied
    verbatim — ``total_bytes``/``peak_tile_bytes``/``free_bytes`` equal
    the compiler's report exactly — and the per-tile byte distribution
    is folded into fixed log-spaced buckets so manifests stay small and
    comparable at any tile count.
    """
    hist = Histogram(edges=DEFAULT_BYTES_EDGES)
    hist.observe_many(float(b) for b in memory.per_tile_bytes)
    b = memory.breakdown
    section = {
        "n_tiles": int(len(memory.per_tile_bytes)),
        "usable_tile_bytes": float(memory.spec.usable_tile_memory),
        "total_bytes": float(memory.total_bytes),
        "peak_tile_bytes": float(memory.peak_tile_bytes),
        "free_bytes": float(memory.free_bytes),
        "fits": bool(memory.fits),
        "breakdown": {
            "variables": float(b.variables),
            "vertex_state": float(b.vertex_state),
            "edge_code": float(b.edge_code),
            "control_code": float(b.control_code),
            "codelet_code": float(b.codelet_code),
            "exchange_buffers": float(b.exchange_buffers),
        },
        "per_tile_histogram": hist.snapshot_value(),
    }
    if getattr(memory, "planned", False):
        # Planned compiles carry the no-reuse comparison so the
        # reclaimed headroom is readable straight off the manifest.
        section["planned"] = True
        section["peak_planned_bytes"] = float(memory.peak_planned_bytes)
        section["no_reuse_peak_tile_bytes"] = float(
            memory.no_reuse_peak_tile_bytes
        )
        section["plan_saving_bytes"] = float(memory.plan_saving_bytes)
        section["plan_saving_fraction"] = float(
            memory.plan_saving_fraction
        )
    return section


def cache_section(cache) -> dict:
    """The compilation-cache section of a manifest.

    *cache* is a :class:`~repro.cache.CompilationCache` (duck-typed to
    avoid importing :mod:`repro.cache` here).  Deliberately excludes the
    on-disk path and the memory/disk hit split: a ``--jobs 4`` run and a
    ``--jobs 1`` run of the same grid then produce identical sections
    (workers hit the shared disk tier where a serial run hits its own
    memory tier), which the determinism test relies on.
    """
    stats = cache.stats
    return {
        "enabled": bool(cache.enabled),
        "hits": int(stats.hits),
        "misses": int(stats.misses),
        "stores": int(stats.stores),
        "evictions": int(stats.evictions),
        "corrupt": int(stats.corrupt),
    }


def guard_section(reports) -> dict:
    """The supervised-grid section of a manifest.

    *reports* is a list of :class:`~repro.guard.GridReport` (duck-typed
    to avoid importing :mod:`repro.guard` here), one per supervised grid
    executed during the run.  Per-cell entries are included only for
    cells that did *not* complete clean on the first attempt, so a
    healthy run's section stays a handful of zeros.
    """
    grids = []
    for report in reports:
        grids.append(
            {
                "name": report.name,
                "cells": int(report.n_cells),
                "ok": int(report.n_ok),
                "retried": int(report.n_retried),
                "quarantined": int(report.n_quarantined),
                "timed_out": int(report.n_timed_out),
                "retries": int(report.total_retries),
                "timeouts": int(report.total_timeouts),
                "crashes": int(report.total_crashes),
                "pool_rebuilds": int(report.pool_rebuilds),
                "serial_fallback": bool(report.serial_fallback),
                "journal_hits": int(report.journal_hits),
                "events": [
                    cell.as_dict()
                    for cell in report.cells
                    if cell.status != "ok" or cell.retries
                ],
            }
        )
    return {
        "grids": grids,
        "ok": all(r.ok for r in reports),
    }


def liveness_section(liveness) -> dict:
    """Summary of a :class:`~repro.ipu.liveness.LivenessReport`."""
    return {
        "n_steps": int(liveness.n_steps),
        "peak_bytes": float(liveness.peak_bytes),
        "peak_step": int(liveness.peak_step),
        "total_bytes": float(liveness.total_bytes),
        "always_live_bytes": float(liveness.always_live_bytes),
        "reuse_saving": float(liveness.reuse_saving),
    }


def logs_section(log) -> dict:
    """The structured-log section of a manifest.

    *log* is a :class:`~repro.obs.log.RunLog` (duck-typed to keep the
    import graph flat).  Counts only — event timestamps are wall clock,
    so including them would break the ``--jobs 4`` vs ``--jobs 1``
    manifest bit-identity the determinism tests assert; the full event
    stream lives in the sibling ``repro.log/1`` JSONL file.
    """
    from repro.obs.log import LOG_SCHEMA

    return {
        "schema": LOG_SCHEMA,
        "events": len(log.events),
        "dropped": int(log.dropped),
        "by_level": log.by_level(),
        "by_event": log.by_event(),
    }


def verify_section(report) -> dict:
    """The differential-fuzzer section of a manifest.

    *report* is a :class:`~repro.verify.runner.FuzzReport` (duck-typed
    to keep :mod:`repro.verify` out of this module's import graph).
    Per-failure entries carry the ``(seed, index)`` coordinates, so any
    failure in a stored manifest regenerates bit-identically with
    ``python -m repro fuzz --seed S --cases 1`` from that index.
    """
    failures = []
    for failure in report.failures:
        entry = {
            "index": int(failure.index),
            "oracle": failure.oracle,
            "detail": failure.detail,
            "shrink_steps": int(failure.shrink_steps),
        }
        if failure.corpus_path:
            entry["reproducer"] = failure.corpus_path
        failures.append(entry)
    section = {
        "schema": "repro.verify/1",
        "seed": int(report.seed),
        "cases": int(report.n_cases),
        "ok": bool(report.ok),
        "oracles_run": {
            name: int(runs) for name, runs in report.oracles_run.items()
        },
        "failures": failures,
        "shrink_steps": int(report.shrink_steps),
    }
    if report.plant:
        section["plant"] = report.plant
    return section


def serve_section(results) -> dict:
    """The inference-serving section of a manifest.

    *results* is a list of per-method result dicts from
    :meth:`~repro.serve.server.ServeResult.as_dict`; the section itself
    is built by :func:`repro.serve.report.serve_section` (duck-typed
    passthrough here to keep :mod:`repro.serve` out of this module's
    import graph).  Everything in it is simulated-clock output, so it
    participates in the byte-identity guarantees like any other section.
    """
    from repro.serve.report import serve_section as build

    return build(results)


def hot_spans(tracer: Tracer, top_k: int = 20) -> list[dict]:
    """The *top_k* heaviest (track, span-name) aggregates of a trace."""
    totals: dict[tuple[str, str], list[float]] = {}
    for span in tracer.spans:
        bucket = totals.setdefault((span.track, span.name), [0.0, 0])
        bucket[0] += span.duration_s
        bucket[1] += 1
    ranked = sorted(
        totals.items(), key=lambda kv: (-kv[1][0], kv[0])
    )
    return [
        {
            "track": track,
            "name": name,
            "total_s": total,
            "calls": int(calls),
        }
        for (track, name), (total, calls) in ranked[:top_k]
    ]


def build_manifest(
    name: str,
    registry: MetricRegistry | None = None,
    tracer: Tracer | None = None,
    memory=None,
    liveness=None,
    cache=None,
    config: dict | None = None,
    seed: int | None = None,
    top_k: int = 20,
    guard=None,
    log=None,
    verify=None,
    serve=None,
) -> dict:
    """Join metrics, trace and compiler data into one ``repro.run/1`` dict.

    *registry*/*tracer* default to the process-global instances; the
    memory and liveness sections appear only when their reports are
    supplied.  *cache* defaults to the process-global compilation cache
    and contributes a ``cache`` section whenever that cache is enabled.
    *guard* is a list of :class:`~repro.guard.GridReport` (typically
    from ``guard.reporting()``); a non-empty list contributes a
    ``guard`` section.  *log* is a :class:`~repro.obs.log.RunLog`; an
    enabled one contributes a ``logs`` section (absent when logging is
    off, so disabled-path manifests are byte-identical to before).
    *verify* is a :class:`~repro.verify.runner.FuzzReport` and
    contributes a ``repro.verify/1`` ``verify`` section.  *serve* is an
    already-built ``repro.serve/1`` section dict (see
    :func:`repro.serve.report.serve_section`) and is carried verbatim.
    """
    registry = registry if registry is not None else get_registry()
    tracer = tracer if tracer is not None else get_tracer()
    if cache is None:
        from repro.cache import get_cache

        cache = get_cache()
    manifest = {
        "schema": SCHEMA,
        "name": name,
        "host": _host_info(),
        "seed": seed,
        "config": dict(config) if config else {},
        "metrics": registry.snapshot(),
        "hot_spans": hot_spans(tracer, top_k=top_k),
        "trace": {
            "n_spans": len(tracer.spans),
            "n_counters": len(tracer.counters),
            "tracks": tracer.tracks(),
        },
    }
    if memory is not None:
        manifest["memory"] = memory_section(memory)
    if liveness is not None:
        manifest["liveness"] = liveness_section(liveness)
    if cache.enabled:
        manifest["cache"] = cache_section(cache)
    if guard:
        manifest["guard"] = guard_section(guard)
    if log is not None and log.enabled:
        manifest["logs"] = logs_section(log)
    if verify is not None:
        manifest["verify"] = verify_section(verify)
    if serve is not None:
        manifest["serve"] = dict(serve)
    return manifest


def write_manifest(manifest: dict, path: str | pathlib.Path) -> pathlib.Path:
    """Write *manifest* as sorted-key JSON to *path* and return it."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(manifest, indent=2, sort_keys=True, allow_nan=False)
        + "\n"
    )
    return path


def read_manifest(path: str | pathlib.Path) -> dict:
    """Read and validate a manifest; raises :class:`ManifestError`."""
    path = pathlib.Path(path)
    try:
        manifest = json.loads(path.read_text())
    except FileNotFoundError:
        raise ManifestError(f"manifest not found: {path}") from None
    except json.JSONDecodeError as exc:
        raise ManifestError(f"manifest {path} is not JSON: {exc}") from None
    if not isinstance(manifest, dict) or "schema" not in manifest:
        raise ManifestError(f"manifest {path} has no 'schema' field")
    if manifest["schema"] != SCHEMA:
        raise ManifestError(
            f"manifest {path} has schema {manifest['schema']!r}; "
            f"this build understands {SCHEMA!r}"
        )
    return manifest


# -- rendering -----------------------------------------------------------------


def _format_metric_value(entry: dict) -> str:
    name = entry["name"]
    value = entry.get("value", 0.0)
    if name.endswith("_bytes"):
        return format_bytes(value)
    if name.endswith("_s"):
        return format_seconds(value)
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.6g}"


def _render_labels(labels: dict) -> str:
    if not labels:
        return ""
    inner = ",".join(f"{k}={v}" for k, v in sorted(labels.items()))
    return "{" + inner + "}"


def render_report(manifest: dict) -> str:
    """Render a manifest as the terminal run report."""
    lines: list[str] = []
    host = manifest.get("host", {})
    lines.append(f"run report: {manifest.get('name', '?')}  [{SCHEMA}]")
    lines.append(
        f"  host: {host.get('platform', '?')}  "
        f"python {host.get('python', '?')}  numpy {host.get('numpy', '?')}"
    )
    if manifest.get("seed") is not None:
        lines.append(f"  seed: {manifest['seed']}")
    if manifest.get("config"):
        cfg = ", ".join(
            f"{k}={v}" for k, v in sorted(manifest["config"].items())
        )
        lines.append(f"  config: {cfg}")
    lines.append("")

    metrics = manifest.get("metrics", [])
    scalars = [m for m in metrics if m["type"] in ("counter", "gauge")]
    histograms = [m for m in metrics if m["type"] == "histogram"]
    if scalars:
        lines.append(f"metrics ({len(scalars)} scalar)")
        for m in scalars:
            label = f"{m['name']}{_render_labels(m['labels'])}"
            lines.append(
                f"  {label:<52s} {m['type']:<7s} "
                f"{_format_metric_value(m):>14s}"
            )
        lines.append("")
    if histograms:
        lines.append(f"histograms ({len(histograms)})")
        for m in histograms:
            label = f"{m['name']}{_render_labels(m['labels'])}"
            mean = m["sum"] / m["count"] if m["count"] else 0.0
            lines.append(
                f"  {label:<52s} count={m['count']:<7d} "
                f"sum={m['sum']:.6g} mean={mean:.6g}"
            )
        lines.append("")

    mem = manifest.get("memory")
    if mem is not None:
        lines.append("per-tile memory")
        lines.append(
            f"  tiles: {mem['n_tiles']}  "
            f"usable/tile: {format_bytes(mem['usable_tile_bytes'])}  "
            f"fits: {'yes' if mem['fits'] else 'NO'}"
        )
        lines.append(
            f"  total: {format_bytes(mem['total_bytes'])}  "
            f"peak tile: {format_bytes(mem['peak_tile_bytes'])}  "
            f"free: {format_bytes(mem['free_bytes'])}"
        )
        if mem.get("planned"):
            lines.append(
                f"  planned peak: "
                f"{format_bytes(mem['peak_planned_bytes'])}  "
                f"no-reuse peak: "
                f"{format_bytes(mem['no_reuse_peak_tile_bytes'])}  "
                f"reclaimed: {mem['plan_saving_fraction']:.0%}"
            )
        for key, nbytes in mem["breakdown"].items():
            lines.append(f"    {key:<18s} {format_bytes(nbytes):>12s}")
        hist = mem["per_tile_histogram"]
        occupied = [
            (edge, count)
            for edge, count in zip(
                list(hist["edges"]) + [float("inf")],
                hist["bucket_counts"],
            )
            if count
        ]
        lines.append("  per-tile byte distribution (bucket <= edge):")
        for edge, count in occupied:
            edge_s = (
                "inf" if edge == float("inf") else format_bytes(edge)
            )
            lines.append(f"    <= {edge_s:>10s}  {count:>6d} tiles")
        lines.append("")

    cache = manifest.get("cache")
    if cache is not None:
        lines.append("compilation cache")
        lines.append(
            f"  hits: {cache['hits']}  misses: {cache['misses']}  "
            f"stores: {cache['stores']}  evictions: {cache['evictions']}  "
            f"corrupt: {cache['corrupt']}"
        )
        lines.append("")

    guard = manifest.get("guard")
    if guard is not None:
        lines.append("supervised grids")
        for grid in guard.get("grids", []):
            lines.append(
                f"  {grid['name']}: {grid['cells']} cells — "
                f"{grid['ok']} ok, {grid['retried']} retried, "
                f"{grid['quarantined']} quarantined, "
                f"{grid['timed_out']} timed out"
            )
            lines.append(
                f"    retries: {grid['retries']}  "
                f"deadline kills: {grid['timeouts']}  "
                f"crashes: {grid['crashes']}  "
                f"pool rebuilds: {grid['pool_rebuilds']}  "
                f"journal hits: {grid['journal_hits']}"
                + ("  [serial fallback]" if grid["serial_fallback"] else "")
            )
            for event in grid.get("events", []):
                lines.append(
                    f"    cell {event['index']} [{event['config']}]: "
                    f"{event['status']} (attempts={event['attempts']})"
                )
        lines.append("")

    logs = manifest.get("logs")
    if logs is not None:
        levels = "  ".join(
            f"{lvl}: {n}" for lvl, n in logs.get("by_level", {}).items()
        )
        lines.append(
            f"structured log [{logs.get('schema', '?')}]  "
            f"{logs.get('events', 0)} events"
            + (f"  (dropped {logs['dropped']})" if logs.get("dropped") else "")
        )
        if levels:
            lines.append(f"  {levels}")
        for event, count in logs.get("by_event", {}).items():
            lines.append(f"    {event:<38s} x{count}")
        lines.append("")

    verify = manifest.get("verify")
    if verify is not None:
        lines.append(
            f"verify [{verify.get('schema', '?')}]  "
            f"seed={verify.get('seed')} cases={verify.get('cases')}  "
            + (
                "all oracles agree"
                if verify.get("ok")
                else f"{len(verify.get('failures', []))} FAILURES"
            )
            + (
                f"  (plant={verify['plant']})"
                if verify.get("plant")
                else ""
            )
        )
        for name, runs in verify.get("oracles_run", {}).items():
            lines.append(f"  {name:<38s} x{runs}")
        for failure in verify.get("failures", []):
            lines.append(
                f"  FAIL case {failure['index']} "
                f"[{failure['oracle']}]: {failure['detail']}"
            )
            if failure.get("reproducer"):
                lines.append(f"    reproducer: {failure['reproducer']}")
        lines.append("")

    serve = manifest.get("serve")
    if serve is not None:
        lines.append(f"serving [{serve.get('schema', '?')}]")
        for m in serve.get("methods", []):
            shed = sum(m.get("shed", {}).values())
            lat = m.get("latency_s", {})
            lines.append(
                f"  {m['method']:<10s} {m['n_replicas']:>3d} replicas x "
                f"{format_bytes(m['replica_bytes'])} "
                f"(budget {format_bytes(m['budget_bytes'])})"
            )
            lines.append(
                f"    goodput: {m['goodput_rps']:,.0f} rps "
                f"(offered {m['offered_rps']:,.0f})  "
                f"on-time: {m['on_time']}/{m['requests']}  "
                f"shed: {shed}  failed: {m['failed']}"
            )
            lines.append(
                f"    latency p50/p95/p99: "
                f"{format_seconds(lat.get('p50', 0.0))} / "
                f"{format_seconds(lat.get('p95', 0.0))} / "
                f"{format_seconds(lat.get('p99', 0.0))}  "
                f"occupancy: {m['occupancy']:.0%}  "
                f"deaths: {m['deaths']}  retries: {m['retries']}"
            )
        lines.append("")

    live = manifest.get("liveness")
    if live is not None:
        lines.append("liveness")
        lines.append(
            f"  peak: {format_bytes(live['peak_bytes'])} at step "
            f"{live['peak_step']}/{live['n_steps']}  "
            f"no-reuse total: {format_bytes(live['total_bytes'])}  "
            f"saving: {live['reuse_saving']:.0%}"
        )
        lines.append("")

    spans = manifest.get("hot_spans", [])
    if spans:
        lines.append(f"hot spans (top {len(spans)})")
        for s in spans:
            lines.append(
                f"  [{s['track']}] {s['name']:<38s} "
                f"{format_seconds(s['total_s']):>12s} "
                f"x{s['calls']}"
            )
    return "\n".join(lines).rstrip("\n")


# -- the smoke workload --------------------------------------------------------


def smoke_manifest(size: int = 256, seed: int = 0) -> dict:
    """Run a small, fully deterministic workload and build its manifest.

    Compiles a poplin matmul graph twice under a fresh in-memory
    compilation cache (the second compile is a guaranteed cache hit, so
    the manifest's ``cache`` section always shows ``hits >= 1`` — CI
    asserts this), compiles a small MLP forward graph with the memory
    planner (so the baseline carries ``compile.peak_planned_bytes`` and
    a nonzero ``compile.plan_reuse_fraction`` — CI gates the planned
    peak against increases), runs liveness analysis and a BSP time
    estimate under a fresh tracer + registry.  Every gateable metric is
    simulated (cost-model) output, so two runs on any machine produce
    identical ``metrics`` sections — this is what CI diffs against
    ``benchmarks/baselines/smoke.json``.
    """
    from repro import nn
    from repro.cache import caching
    from repro.ipu.compiler import compile_graph
    from repro.ipu.executor import Executor
    from repro.ipu.liveness import compute_liveness
    from repro.ipu.machine import GC200
    from repro.ipu.poplin import build_matmul_graph
    from repro.ipu.poptorch import IPUModule
    from repro.obs.metrics import collecting
    from repro.obs.tracer import tracing

    with tracing() as tracer, collecting() as registry, caching() as cache:
        graph, _ = build_matmul_graph(GC200, size, size, size)
        compiled = compile_graph(graph, GC200, check_fit=False)
        compile_graph(graph, GC200, check_fit=False)  # cache hit
        liveness = compute_liveness(graph)
        Executor(compiled).estimate()
        mlp = nn.Sequential(
            *[
                m
                for i in range(4)
                for m in (
                    nn.Linear(size // 2, size // 2, seed=i),
                    nn.ReLU(),
                )
            ]
        )
        module = IPUModule(mlp, size // 2, size // 2, spec=GC200)
        planned = compile_graph(
            module.graph, GC200, check_fit=False, plan_memory=True
        )
    return build_manifest(
        "smoke",
        registry=registry,
        tracer=tracer,
        memory=planned.memory,
        liveness=liveness,
        cache=cache,
        config={"size": size, "spec": GC200.name},
        seed=seed,
    )
