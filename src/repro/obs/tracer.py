"""The tracer: nested spans and counters on host and virtual timelines.

Two kinds of track coexist in one trace:

* the **host** track records wall-clock intervals, measured with
  :func:`time.perf_counter` by the :meth:`Tracer.span` context manager
  (compilation phases, training epochs/steps, timing-harness runs);
* **virtual** tracks record *simulated* time: the IPU executor and the
  GPU kernel models place spans with explicit durations from their cost
  models via :meth:`Tracer.add_span`, each track keeping its own cursor
  so successive program steps abut exactly.

All timestamps are seconds relative to the tracer's creation (host) or
to zero (virtual), which keeps the exported Chrome trace timeline dense.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "SpanRecord",
    "CounterRecord",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "get_tracer",
    "set_tracer",
    "tracing",
    "jsonable",
]

#: The track name used for wall-clock spans.
HOST_TRACK = "host"


def jsonable(value: object) -> object:
    """Coerce a value (numpy scalars included) to plain JSON types.

    Span attributes, counter samples and log-event fields cross process
    and file boundaries (pipe messages, journal entries, JSONL logs), so
    they are normalised to JSON scalars/lists/dicts at snapshot time.
    """
    if isinstance(value, (str, bool, int, float)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    for caster in (int, float):
        try:
            cast = caster(value)  # numpy integer / floating
        except (TypeError, ValueError):
            continue
        if cast == value:
            return cast
    return str(value)


@dataclass
class SpanRecord:
    """One completed span: a named interval on one track."""

    name: str
    category: str
    track: str
    start_s: float
    duration_s: float
    depth: int = 0
    attributes: dict = field(default_factory=dict)

    @property
    def end_s(self) -> float:
        return self.start_s + self.duration_s

    def as_dict(self) -> dict:
        """JSON-ready form (the unit of the cross-process span buffer)."""
        return {
            "name": self.name,
            "category": self.category,
            "track": self.track,
            "start_s": float(self.start_s),
            "duration_s": float(self.duration_s),
            "depth": int(self.depth),
            "attributes": jsonable(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: dict) -> SpanRecord:
        return cls(
            name=data["name"],
            category=data.get("category", ""),
            track=data.get("track", HOST_TRACK),
            start_s=float(data.get("start_s", 0.0)),
            duration_s=float(data.get("duration_s", 0.0)),
            depth=int(data.get("depth", 0)),
            attributes=dict(data.get("attributes", {})),
        )


@dataclass(frozen=True)
class CounterRecord:
    """A named sample of one or more numeric series at a point in time."""

    name: str
    track: str
    time_s: float
    values: dict

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "track": self.track,
            "time_s": float(self.time_s),
            "values": jsonable(self.values),
        }

    @classmethod
    def from_dict(cls, data: dict) -> CounterRecord:
        return cls(
            name=data["name"],
            track=data.get("track", HOST_TRACK),
            time_s=float(data.get("time_s", 0.0)),
            values=dict(data.get("values", {})),
        )


class Tracer:
    """Records spans and counters; cheap enough to thread everywhere."""

    enabled = True

    def __init__(self) -> None:
        self.spans: list[SpanRecord] = []
        self.counters: list[CounterRecord] = []
        self._origin = time.perf_counter()
        self._host_stack: list[SpanRecord] = []
        self._cursors: dict[str, float] = {}

    # -- wall-clock spans ------------------------------------------------------

    def now(self) -> float:
        """Seconds since this tracer was created."""
        return time.perf_counter() - self._origin

    @contextmanager
    def span(
        self, name: str, category: str = "host", **attributes: object
    ) -> Iterator[SpanRecord]:
        """Measure a wall-clock interval on the host track.

        Yields the (mutable) record so callers can attach attributes
        discovered during the span.  Nesting depth follows the dynamic
        call structure.
        """
        record = SpanRecord(
            name=name,
            category=category,
            track=HOST_TRACK,
            start_s=self.now(),
            duration_s=0.0,
            depth=len(self._host_stack),
            attributes=dict(attributes),
        )
        self._host_stack.append(record)
        try:
            yield record
        finally:
            record.duration_s = self.now() - record.start_s
            self._host_stack.pop()
            self.spans.append(record)

    # -- virtual (simulated-time) spans ---------------------------------------

    def cursor(self, track: str) -> float:
        """Current end-of-timeline position of a virtual track."""
        return self._cursors.get(track, 0.0)

    def add_span(
        self,
        name: str,
        duration_s: float,
        track: str,
        category: str = "sim",
        start_s: float | None = None,
        depth: int = 0,
        **attributes: object,
    ) -> SpanRecord:
        """Place a span with an explicit duration on a virtual track.

        Without ``start_s`` the span is appended at the track cursor; the
        cursor only advances for top-level (``depth == 0``) spans, so
        nested phase spans can be placed inside their parent's interval.
        """
        start = self.cursor(track) if start_s is None else start_s
        record = SpanRecord(
            name=name,
            category=category,
            track=track,
            start_s=start,
            duration_s=duration_s,
            depth=depth,
            attributes=dict(attributes),
        )
        self.spans.append(record)
        if depth == 0:
            self._cursors[track] = max(
                self.cursor(track), start + duration_s
            )
        return record

    # -- counters --------------------------------------------------------------

    def counter(
        self,
        name: str,
        values: dict | float,
        track: str = HOST_TRACK,
        time_s: float | None = None,
    ) -> None:
        """Sample one or more numeric series.

        A bare float is recorded as series ``{"value": x}``.  The sample
        time defaults to "now": wall clock on the host track, the track
        cursor on virtual tracks.
        """
        if not isinstance(values, dict):
            values = {"value": float(values)}
        if time_s is None:
            time_s = self.now() if track == HOST_TRACK else self.cursor(track)
        self.counters.append(
            CounterRecord(name=name, track=track, time_s=time_s, values=values)
        )

    # -- cross-process buffers -------------------------------------------------

    def current_span(self) -> SpanRecord | None:
        """The innermost still-open host span, or ``None``.

        The structured log (:mod:`repro.obs.log`) stamps this span's
        name onto events so log lines correlate with the span tree.
        """
        return self._host_stack[-1] if self._host_stack else None

    def snapshot(self) -> dict:
        """The whole trace as one JSON-/pickle-ready buffer.

        This is what a grid worker ships back over its result pipe (and
        what the guard journal persists per cell): every span and
        counter as plain dicts.  :meth:`merge_snapshot` is the inverse.
        """
        return {
            "spans": [span.as_dict() for span in self.spans],
            "counters": [c.as_dict() for c in self.counters],
        }

    def merge_snapshot(self, snapshot: dict, prefix: str | None = None) -> None:
        """Fold another tracer's :meth:`snapshot` into this one.

        With *prefix*, every merged record's track is remapped to
        ``{prefix}/{track}`` — the grid runners use the cell's
        :func:`~repro.obs.context.worker_track` so each cell's spans
        land on their own track group in the merged timeline.  Merged
        span times keep the **worker's** clock origin (they are not
        re-based onto the parent's wall clock), which is what makes a
        ``--resume`` replay of journalled buffers bit-identical to the
        live run that produced them.  Track cursors advance past the
        merged spans so later virtual spans never overlap them.
        """
        if not snapshot:
            return
        for data in snapshot.get("spans", ()):
            record = SpanRecord.from_dict(data)
            if prefix:
                record.track = f"{prefix}/{record.track}"
            self.spans.append(record)
            if record.depth == 0:
                self._cursors[record.track] = max(
                    self.cursor(record.track), record.end_s
                )
        for data in snapshot.get("counters", ()):
            counter = CounterRecord.from_dict(data)
            if prefix:
                counter = CounterRecord(
                    name=counter.name,
                    track=f"{prefix}/{counter.track}",
                    time_s=counter.time_s,
                    values=counter.values,
                )
            self.counters.append(counter)

    # -- introspection ---------------------------------------------------------

    def tracks(self) -> list[str]:
        """All track names, host first, in order of first appearance."""
        seen: dict[str, None] = {HOST_TRACK: None}
        for record in self.spans:
            seen.setdefault(record.track, None)
        for record in self.counters:
            seen.setdefault(record.track, None)
        return list(seen)

    def spans_on(self, track: str) -> list[SpanRecord]:
        return [s for s in self.spans if s.track == track]


class _NullSpanContext:
    """Reusable no-op context manager; yields a throwaway record."""

    __slots__ = ()

    def __enter__(self) -> SpanRecord:
        return SpanRecord(
            name="", category="", track="", start_s=0.0, duration_s=0.0
        )

    def __exit__(self, *exc: object) -> None:
        return None


_NULL_SPAN_CONTEXT = _NullSpanContext()


class NullTracer(Tracer):
    """Disabled tracer: records nothing, every call is O(1) and tiny.

    Hot loops additionally guard on :attr:`enabled` so the disabled path
    costs a single attribute check per iteration.  Every public
    :class:`Tracer` method has an explicit no-op override here (enforced
    by a contract test), so instrumented code never needs to branch on
    the tracer's type.
    """

    enabled = False

    def __init__(self) -> None:  # avoid perf_counter at import
        self.spans = []
        self.counters = []
        self._origin = 0.0
        self._host_stack = []
        self._cursors = {}

    def now(self) -> float:
        return 0.0

    def span(self, name, category="host", **attributes):  # type: ignore[override]
        return _NULL_SPAN_CONTEXT

    def cursor(self, track: str) -> float:
        return 0.0

    def add_span(self, name, duration_s, track, **kwargs):  # type: ignore[override]
        return _NULL_SPAN_CONTEXT.__enter__()

    def counter(self, name, values, track=HOST_TRACK, time_s=None):
        return None

    def current_span(self) -> SpanRecord | None:
        return None

    def snapshot(self) -> dict:
        return {"spans": [], "counters": []}

    def merge_snapshot(self, snapshot, prefix=None) -> None:
        return None

    def tracks(self) -> list[str]:
        return [HOST_TRACK]

    def spans_on(self, track: str) -> list[SpanRecord]:
        return []


#: The module-level singleton installed when tracing is off.
NULL_TRACER = NullTracer()

_current: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The currently installed tracer (the null tracer by default)."""
    return _current


def set_tracer(tracer: Tracer | None) -> Tracer:
    """Install *tracer* globally (``None`` restores the null tracer)."""
    global _current
    previous = _current
    _current = tracer if tracer is not None else NULL_TRACER
    return previous


@contextmanager
def tracing(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install a tracer for the duration of a ``with`` block.

    Creates a fresh :class:`Tracer` unless one is supplied; restores the
    previously installed tracer on exit (exception-safe), so traced
    regions can nest.
    """
    tracer = tracer if tracer is not None else Tracer()
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
