"""cuSPARSE-style sparse x dense matmul cost model.

CSR SpMM on a GPU is gather-bound: per nonzero the kernel reads an index
pair and a segment of the dense operand, with limited cache reuse.  The
model caps throughput at ``cusparse_flops_per_byte x effective_bandwidth``
(empirically ~1 FLOP per DRAM byte for CSR SpMM) and at a small fraction of
FP32 peak; COO pays an extra efficiency penalty (second index array +
atomic accumulation), reproducing the paper's Note 2 (CSR > COO on both
devices).
"""

from __future__ import annotations

from repro.gpu.kernels import KernelCost
from repro.gpu.machine import GPUSpec

__all__ = ["csr_spmm_cost", "coo_spmm_cost", "dense_equivalent_gflops"]


def csr_spmm_cost(
    spec: GPUSpec, m: int, k: int, n: int, nnz: int
) -> KernelCost:
    """Cost of ``C (m x n) = A_csr (m x k, nnz) @ B (k x n)``."""
    if nnz < 0:
        raise ValueError(f"nnz must be >= 0, got {nnz}")
    flops = 2 * nnz * n
    # Traffic: values+indices once, a (cached) row of B per nonzero, C once.
    nbytes = nnz * 8 + nnz * 4 * min(n, 32) + 4 * m * n
    rate = min(
        spec.cusparse_flops_per_byte * spec.effective_bandwidth,
        0.25 * spec.peak_flops_fp32,
    )
    time_s = spec.kernel_launch_s + max(
        flops / rate if rate > 0 else 0.0,
        nbytes / spec.effective_bandwidth,
    )
    return KernelCost("cusparse_csr", time_s, flops, nbytes)


def coo_spmm_cost(
    spec: GPUSpec, m: int, k: int, n: int, nnz: int
) -> KernelCost:
    """COO variant: extra index traffic and atomic scatter-adds."""
    base = csr_spmm_cost(spec, m, k, n, nnz)
    launch = spec.kernel_launch_s
    return KernelCost(
        "cusparse_coo",
        launch + (base.time_s - launch) / spec.coo_efficiency,
        base.flops,
        base.bytes_moved + nnz * 4,
    )


def dense_equivalent_gflops(
    m: int, k: int, n: int, time_s: float
) -> float:
    """GFLOP/s as if the multiply had been dense (the paper's Table 2
    convention — which is how sparse columns can "surpass the peak")."""
    if time_s <= 0:
        return 0.0
    return 2.0 * m * k * n / time_s / 1e9
