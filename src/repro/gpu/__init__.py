"""GPU cost-model simulator (NVIDIA A30 stand-in).

Substitutes for the paper's comparison device: kernel cost models for
naive/shared-memory/cuBLAS (FP32 and TF32 tensor-core) GEMMs
(:mod:`repro.gpu.kernels`), cuSPARSE-style SpMM (:mod:`repro.gpu.cusparse`),
a device façade with memory checking (:mod:`repro.gpu.simulator`), and a
PyTorch-style bridge for :mod:`repro.nn` models (:mod:`repro.gpu.torchsim`).
"""

from repro.gpu.machine import GPUSpec, A30
from repro.gpu.kernels import (
    KernelCost,
    tile_quantisation,
    occupancy,
    naive_matmul_cost,
    shmem_matmul_cost,
    cublas_fp32_cost,
    cublas_tf32_cost,
    pytorch_matmul_cost,
    stream_cost,
)
from repro.gpu.cusparse import (
    csr_spmm_cost,
    coo_spmm_cost,
    dense_equivalent_gflops,
)
from repro.gpu.simulator import GPUDevice, GPUOutOfMemoryError, MATMUL_IMPLS
from repro.gpu.torchsim import GPUModule, lower_model_gpu

__all__ = [
    "GPUSpec",
    "A30",
    "KernelCost",
    "tile_quantisation",
    "occupancy",
    "naive_matmul_cost",
    "shmem_matmul_cost",
    "cublas_fp32_cost",
    "cublas_tf32_cost",
    "pytorch_matmul_cost",
    "stream_cost",
    "csr_spmm_cost",
    "coo_spmm_cost",
    "dense_equivalent_gflops",
    "GPUDevice",
    "GPUOutOfMemoryError",
    "MATMUL_IMPLS",
    "GPUModule",
    "lower_model_gpu",
]
