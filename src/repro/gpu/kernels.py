"""GPU kernel cost models (naive, shared-memory, cuBLAS FP32/TF32).

Every kernel time is assembled from first principles:

    ``t = launch + max(flops / (peak * efficiency * quant * occupancy),
                       bytes / effective_bandwidth)``

* *quantisation* — CTA tiles pad ``m`` and ``n`` up to the kernel's tile
  shape; highly skewed shapes waste most of each tile, which is exactly the
  Fig 4 GPU collapse (and why the TF32 path, with its coarser tiles,
  degrades faster — paper Section 3.4).
* *occupancy* — small grids cannot fill all SMs; throughput ramps with the
  number of CTAs until ``ctas_per_sm_for_peak`` waves are resident.
* *bandwidth floor* — even a perfect GEMM must move its operands once.

Kernels also execute numerically (numpy) so the simulator's outputs are
checkable; ``blocked``'s Python tiling lives in :mod:`repro.linalg.blocked`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.gpu.machine import GPUSpec
from repro.linalg.dense import matmul_bytes, matmul_flops

__all__ = [
    "KernelCost",
    "tile_quantisation",
    "occupancy",
    "naive_matmul_cost",
    "shmem_matmul_cost",
    "cublas_fp32_cost",
    "cublas_tf32_cost",
    "pytorch_matmul_cost",
    "stream_cost",
    "run_matmul",
]


@dataclass(frozen=True)
class KernelCost:
    """Cost of one kernel invocation."""

    name: str
    time_s: float
    flops: int
    bytes_moved: int

    @property
    def gflops(self) -> float:
        """Achieved GFLOP/s."""
        return self.flops / self.time_s / 1e9 if self.time_s > 0 else 0.0


def tile_quantisation(m: int, n: int, tile: tuple[int, int]) -> float:
    """Useful fraction of the padded CTA grid (1.0 = perfectly aligned)."""
    tm, tn = tile
    padded = math.ceil(m / tm) * tm * math.ceil(n / tn) * tn
    return (m * n) / padded


def occupancy(m: int, n: int, tile: tuple[int, int], spec: GPUSpec) -> float:
    """Throughput fraction from grid size (SM fill ramp).

    cuBLAS recovers some occupancy on small output grids by splitting the
    k dimension across extra CTAs (up to ``max_split_k``); the ramp is
    therefore over ``ctas * split_k``.
    """
    tm, tn = tile
    ctas = math.ceil(m / tm) * math.ceil(n / tn)
    needed = spec.sm_count * spec.ctas_per_sm_for_peak
    if ctas < needed:
        split = min(spec.max_split_k, math.ceil(needed / ctas))
        ctas *= split
    return min(1.0, ctas / needed)


def _gemm_cost(
    name: str,
    spec: GPUSpec,
    m: int,
    n: int,
    k: int,
    peak: float,
    efficiency: float,
    tile: tuple[int, int],
    extra_overhead_s: float = 0.0,
) -> KernelCost:
    flops = matmul_flops(m, n, k)
    nbytes = matmul_bytes(m, n, k)
    quant = tile_quantisation(m, n, tile)
    occ = occupancy(m, n, tile, spec)
    rate = peak * efficiency * quant * occ
    compute_s = flops / rate
    memory_s = nbytes / spec.effective_bandwidth
    time_s = spec.kernel_launch_s + extra_overhead_s + max(
        compute_s, memory_s
    )
    return KernelCost(name=name, time_s=time_s, flops=flops, bytes_moved=nbytes)


def naive_matmul_cost(spec: GPUSpec, m: int, n: int, k: int) -> KernelCost:
    """One-thread-per-output-element kernel: DRAM-traffic bound.

    Each output needs a k-length row and column walk; caches recover a
    ``naive_reuse`` factor of the ``2 m n k`` element reads.
    """
    flops = matmul_flops(m, n, k)
    nbytes = int(4 * (2 * m * n * k / spec.naive_reuse + m * n))
    time_s = spec.kernel_launch_s + nbytes / spec.effective_bandwidth
    return KernelCost("naive", time_s, flops, nbytes)


def shmem_matmul_cost(spec: GPUSpec, m: int, n: int, k: int) -> KernelCost:
    """Shared-memory tiled kernel: compute-bound at modest efficiency."""
    return _gemm_cost(
        "shmem", spec, m, n, k,
        peak=spec.peak_flops_fp32,
        efficiency=spec.shmem_efficiency,
        tile=(32, 32),
    )


def cublas_fp32_cost(spec: GPUSpec, m: int, n: int, k: int) -> KernelCost:
    """cuBLAS SGEMM: near-peak with FP32 CTA-tile quantisation."""
    return _gemm_cost(
        "cublas_fp32", spec, m, n, k,
        peak=spec.peak_flops_fp32,
        efficiency=spec.cublas_fp32_efficiency,
        tile=spec.fp32_tile,
    )


def cublas_tf32_cost(spec: GPUSpec, m: int, n: int, k: int) -> KernelCost:
    """cuBLAS TF32 tensor-core GEMM: higher peak, coarser tiles.

    The k dimension additionally quantises to the MMA depth (8), so thin-k
    shapes lose tensor-core efficiency — part of the structural
    prerequisites the paper's Section 3.4 discusses.
    """
    k_quant = k / (math.ceil(k / 8) * 8)
    cost = _gemm_cost(
        "cublas_tf32", spec, m, n, k,
        peak=spec.peak_flops_tf32,
        efficiency=spec.cublas_tf32_efficiency * k_quant,
        tile=spec.tf32_tile,
    )
    return cost


def pytorch_matmul_cost(
    spec: GPUSpec, m: int, n: int, k: int, tensor_cores: bool
) -> KernelCost:
    """torch.mm through the framework: cuBLAS plus dispatch overhead."""
    base = (
        cublas_tf32_cost(spec, m, n, k)
        if tensor_cores
        else cublas_fp32_cost(spec, m, n, k)
    )
    return KernelCost(
        name=f"pytorch_{'tf32' if tensor_cores else 'fp32'}",
        time_s=base.time_s + spec.framework_overhead_s,
        flops=base.flops,
        bytes_moved=base.bytes_moved,
    )


def stream_cost(
    spec: GPUSpec, nbytes: int, name: str = "stream", flops: int = 0,
    passes: float = 1.0,
) -> KernelCost:
    """A bandwidth-bound elementwise/copy kernel over *nbytes* (x passes)."""
    time_s = spec.kernel_launch_s + passes * nbytes / spec.effective_bandwidth
    return KernelCost(name, time_s, flops, int(passes * nbytes))


def run_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Numeric execution shared by every GEMM kernel model."""
    return np.asarray(a) @ np.asarray(b)
