"""GPU machine model (NVIDIA A30, the paper's comparison device).

Constants trace to the paper's Table 1 / the A30 datasheet.  Efficiency and
overhead parameters are explicit fields (documented provenance) so the
ablation benchmarks can sweep them; none of the Table 2 / Fig 4 / Fig 6
outputs are hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.utils import GiB

__all__ = ["GPUSpec", "A30"]


@dataclass(frozen=True)
class GPUSpec:
    """Architecture description of a data-centre GPU."""

    name: str
    #: Streaming multiprocessors.
    sm_count: int
    #: Boost clock, Hz.
    clock_hz: float
    #: Peak FP32 FLOP/s (CUDA cores).
    peak_flops_fp32: float
    #: Peak TF32 FLOP/s (tensor cores, dense).
    peak_flops_tf32: float
    #: Off-chip (HBM) bandwidth, bytes/s.
    dram_bandwidth: float
    #: Device memory, bytes.
    memory_bytes: int
    #: Kernel-launch + driver overhead per kernel, seconds.
    kernel_launch_s: float
    #: Extra per-op framework overhead when driven from PyTorch, seconds.
    framework_overhead_s: float
    #: cuBLAS sustained efficiency for large square FP32 GEMM.
    cublas_fp32_efficiency: float
    #: cuBLAS/TC sustained efficiency for large square TF32 GEMM.
    cublas_tf32_efficiency: float
    #: CTA tile of the FP32 GEMM kernel (rows x cols) — quantisation
    #: granularity for skewed shapes.
    fp32_tile: tuple[int, int] = (128, 64)
    #: CTA tile of the TF32 tensor-core GEMM kernel: coarser, so TC
    #: "performance degrades faster than GPU performance without TC for
    #: skewed matrices" (paper Section 3.4).
    tf32_tile: tuple[int, int] = (256, 128)
    #: Effective DRAM reuse factor of the naive one-thread-per-output
    #: matmul kernel (L1/L2 catches some of the k-loop traffic).
    naive_reuse: float = 4.7
    #: Sustained efficiency of the shared-memory tiled kernel.
    shmem_efficiency: float = 0.20
    #: Achievable fraction of DRAM bandwidth for streaming kernels.
    stream_efficiency: float = 0.85
    #: Effective FLOPs per DRAM byte for cuSPARSE CSR SpMM (gather-bound).
    cusparse_flops_per_byte: float = 1.0
    #: COO penalty vs CSR (extra index traffic + atomics).
    coo_efficiency: float = 0.6
    #: Sustained efficiency of batched-small/gather GEMMs (the pure-torch
    #: pixelfly block einsum) relative to FP32 peak.
    batched_gather_efficiency: float = 0.08
    #: Occupancy ramp: CTAs needed per SM for full throughput.
    ctas_per_sm_for_peak: float = 2.0
    #: Maximum split-k factor cuBLAS uses to recover occupancy on small
    #: grids (keeps small-m GEMMs off the worst of the occupancy cliff).
    max_split_k: int = 8
    #: Host-side training-loop overhead per step (dataloader, Python
    #: dispatch, loss/metrics) — common to every method in Table 4.
    train_step_overhead_s: float = 300e-6

    @property
    def peak_flops(self) -> float:
        """Alias for the FP32 peak."""
        return self.peak_flops_fp32

    @property
    def effective_bandwidth(self) -> float:
        """Sustained streaming bandwidth."""
        return self.dram_bandwidth * self.stream_efficiency


#: NVIDIA A30 (Table 1 column 1).
A30 = GPUSpec(
    name="A30",
    sm_count=56,
    clock_hz=1.44e9,
    peak_flops_fp32=10.3e12,
    peak_flops_tf32=82e12,
    dram_bandwidth=933e9,
    memory_bytes=24 * GiB,
    kernel_launch_s=5e-6,
    framework_overhead_s=8e-6,
    cublas_fp32_efficiency=0.944,
    cublas_tf32_efficiency=0.72,
)
