"""GPU device façade: dispatch matmuls/SpMMs to kernel models, check memory.

``GPUDevice`` is the high-level entry point the benchmarks use: it owns the
spec, validates that operands fit device memory (the Fig 6 effect where
``torch.nn.Linear`` "reaches its limit earlier" than the factorizations),
and runs numerics alongside cost accounting.
"""

from __future__ import annotations

import numpy as np

from repro.gpu import kernels
from repro.gpu.cusparse import coo_spmm_cost, csr_spmm_cost
from repro.gpu.kernels import KernelCost
from repro.gpu.machine import A30, GPUSpec
from repro.linalg.sparse import COOMatrix, CSRMatrix
from repro.obs import get_tracer
from repro.utils import format_bytes

__all__ = ["GPUOutOfMemoryError", "GPUDevice", "MATMUL_IMPLS"]


class GPUOutOfMemoryError(RuntimeError):
    """Raised when a workload does not fit in device memory."""


MATMUL_IMPLS = {
    "naive": kernels.naive_matmul_cost,
    "shmem": kernels.shmem_matmul_cost,
    "cublas_fp32": kernels.cublas_fp32_cost,
    "cublas_tf32": kernels.cublas_tf32_cost,
}


class GPUDevice:
    """A cost-model GPU with numpy-backed numerics."""

    def __init__(self, spec: GPUSpec = A30) -> None:
        self.spec = spec

    #: Virtual tracer track the simulated GPU kernel timeline lives on.
    TRACE_TRACK = "gpu"

    def _trace_kernel(self, cost: KernelCost) -> None:
        """Record one executed kernel on the simulated-GPU timeline."""
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add_span(
                cost.name,
                cost.time_s,
                self.TRACE_TRACK,
                category="kernel",
                flops=cost.flops,
                bytes_moved=cost.bytes_moved,
            )

    # -- memory ----------------------------------------------------------------

    def check_fit(self, nbytes: int, what: str = "workload") -> None:
        """Raise :class:`GPUOutOfMemoryError` if *nbytes* exceeds memory."""
        if nbytes > self.spec.memory_bytes:
            raise GPUOutOfMemoryError(
                f"{what} needs {format_bytes(nbytes)}, device has "
                f"{format_bytes(self.spec.memory_bytes)}"
            )

    def matmul_workspace_bytes(self, m: int, n: int, k: int) -> int:
        """Operands + output + cuBLAS workspace for one GEMM."""
        return 4 * (m * k + k * n + m * n) + 32 * 1024 * 1024

    # -- dense matmul ------------------------------------------------------------

    def matmul_cost(
        self, m: int, n: int, k: int, impl: str = "cublas_fp32"
    ) -> KernelCost:
        """Cost of one GEMM under the chosen implementation.

        ``impl`` is one of ``naive | shmem | cublas_fp32 | cublas_tf32 |
        pytorch_fp32 | pytorch_tf32``.
        """
        self.check_fit(self.matmul_workspace_bytes(m, n, k), f"matmul {impl}")
        if impl in MATMUL_IMPLS:
            return MATMUL_IMPLS[impl](self.spec, m, n, k)
        if impl == "pytorch_fp32":
            return kernels.pytorch_matmul_cost(
                self.spec, m, n, k, tensor_cores=False
            )
        if impl == "pytorch_tf32":
            return kernels.pytorch_matmul_cost(
                self.spec, m, n, k, tensor_cores=True
            )
        raise ValueError(f"unknown matmul impl {impl!r}")

    def matmul(
        self, a: np.ndarray, b: np.ndarray, impl: str = "cublas_fp32"
    ) -> tuple[np.ndarray, KernelCost]:
        """Execute a GEMM numerically and return (result, cost)."""
        m, k = a.shape
        k2, n = b.shape
        if k != k2:
            raise ValueError(f"dimension mismatch: {a.shape} @ {b.shape}")
        cost = self.matmul_cost(m, n, k, impl)
        self._trace_kernel(cost)
        return kernels.run_matmul(a, b), cost

    # -- sparse matmul ------------------------------------------------------------

    def spmm_cost(
        self, a: CSRMatrix | COOMatrix, n_cols: int
    ) -> KernelCost:
        """Cost of ``A_sparse @ B`` with B having *n_cols* columns."""
        m, k = a.shape
        # The device kernel stores fp32 values with int32 indices
        # (cuSPARSE's CsrMatDescr default), not the host's
        # float64/int64 arrays — pass the modelled widths explicitly.
        footprint = a.storage_bytes(value_bytes=4, index_bytes=4) + 4 * (
            k * n_cols + m * n_cols
        )
        self.check_fit(footprint, "spmm")
        if isinstance(a, CSRMatrix):
            return csr_spmm_cost(self.spec, m, k, n_cols, a.nnz)
        return coo_spmm_cost(self.spec, m, k, n_cols, a.nnz)

    def spmm(
        self, a: CSRMatrix | COOMatrix, b: np.ndarray
    ) -> tuple[np.ndarray, KernelCost]:
        """Execute a SpMM numerically and return (result, cost)."""
        cost = self.spmm_cost(a, b.shape[1])
        self._trace_kernel(cost)
        return a.matmul(b), cost

    # -- elementwise / streaming -------------------------------------------------

    def stream_cost(
        self, nbytes: int, name: str = "elementwise", passes: float = 1.0
    ) -> KernelCost:
        """Bandwidth-bound kernel cost (activations, bias adds, copies)."""
        return kernels.stream_cost(self.spec, nbytes, name=name, passes=passes)
