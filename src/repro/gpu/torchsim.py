"""PyTorch-on-GPU bridge: lower :mod:`repro.nn` models to kernel sequences.

The GPU-side counterpart of :mod:`repro.ipu.poptorch`.  Each layer type maps
to the kernel sequence its PyTorch implementation actually launches:

* ``Linear`` — one cuBLAS GEMM (FP32 or TF32 depending on ``tensor_cores``)
  plus a fused bias/epilogue stream.
* ``ButterflyLinear`` — ``log2 n`` levels, each several small elementwise /
  permute kernels (Dao's pure-PyTorch butterfly step): launch-bound at
  small N, bandwidth-bound at large N.  Tensor cores never engage — the
  structural reason the GPU needs N ≳ 2^11 before butterfly wins (Fig 6).
* ``PixelflyLinear`` — gather, batched block einsum (poor efficiency: tiny
  batched GEMMs through the pure-torch fallback), scatter-add, two low-rank
  cuBLAS GEMMs, adds.
* ``FastfoodLinear`` — two per-stage FWHT pyramids (launch-heavy) plus
  diagonal scales and a permutation gather.
* ``CirculantLinear`` — three cuFFT-class kernels (library-fused).

``GPUModule.training_step_time`` models fwd + bwd (2x fwd device work) +
optimiser kernels + the per-step framework overhead common to all methods.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.kernels import KernelCost, stream_cost
from repro.gpu.machine import A30, GPUSpec
from repro.gpu.simulator import GPUDevice
from repro.nn.layers import (
    BatchNorm1d,
    Dropout,
    Flatten,
    Identity,
    LayerNorm,
    Linear,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.module import Module
from repro.nn.structured import (
    ButterflyLinear,
    CirculantLinear,
    FastfoodLinear,
    LowRankLinear,
    PixelflyLinear,
)
from repro.obs import get_tracer
from repro.utils import log2_int

__all__ = ["GPUModule", "lower_model_gpu"]

#: Kernels PyTorch launches per butterfly level (view + twiddle multiply +
#: pairwise combine + re-interleave in Dao's implementation).
KERNELS_PER_BUTTERFLY_LEVEL = 3

#: Memory passes over the activation per butterfly level across those
#: kernels (reads + writes of materialised intermediates).
PASSES_PER_BUTTERFLY_LEVEL = 6.0


def _matmul_impl(tensor_cores: bool) -> str:
    return "pytorch_tf32" if tensor_cores else "pytorch_fp32"


@dataclass
class _GPULowering:
    device: GPUDevice
    batch: int
    tensor_cores: bool
    kernels: list[KernelCost] = field(default_factory=list)
    param_bytes: int = 0

    @property
    def spec(self) -> GPUSpec:
        return self.device.spec

    def add(self, cost: KernelCost) -> None:
        self.kernels.append(cost)

    def add_stream(self, name: str, nbytes: int, passes: float = 2.0) -> None:
        """An elementwise kernel reading+writing *nbytes* of activation."""
        self.add(stream_cost(self.spec, nbytes, name=name, passes=passes))

    def matmul(self, m: int, n: int, k: int, name: str) -> None:
        cost = self.device.matmul_cost(
            m, n, k, impl=_matmul_impl(self.tensor_cores)
        )
        self.add(
            KernelCost(
                name=name,
                time_s=cost.time_s,
                flops=cost.flops,
                bytes_moved=cost.bytes_moved,
            )
        )


def _lower_linear_gpu(low: _GPULowering, layer: Linear) -> int:
    low.param_bytes += 4 * layer.weight.size
    low.matmul(low.batch, layer.out_features, layer.in_features, "linear/mm")
    if layer.bias is not None:
        low.param_bytes += 4 * layer.bias.size
        low.add_stream("linear/bias", 4 * low.batch * layer.out_features)
    return layer.out_features


def _lower_butterfly_gpu(low: _GPULowering, layer: ButterflyLinear) -> int:
    n = layer.n
    levels = log2_int(n) * getattr(layer, "nblocks", 1)
    low.param_bytes += 4 * sum(
        getattr(layer, name).size for name in layer._twiddle_names
    )
    act_bytes = 4 * low.batch * n
    per_kernel_passes = PASSES_PER_BUTTERFLY_LEVEL / KERNELS_PER_BUTTERFLY_LEVEL
    for level in range(levels):
        for kern in range(KERNELS_PER_BUTTERFLY_LEVEL):
            low.add_stream(
                f"butterfly/l{level}k{kern}",
                act_bytes,
                passes=per_kernel_passes,
            )
    if layer.bias is not None:
        low.param_bytes += 4 * layer.bias.size
        low.add_stream("butterfly/bias", 4 * low.batch * layer.out_features)
    return layer.out_features


def _lower_pixelfly_gpu(low: _GPULowering, layer: PixelflyLinear) -> int:
    pattern = layer.pattern
    n = layer.features
    bs = pattern.block_size
    low.param_bytes += 4 * layer.blocks.size
    act_bytes = 4 * low.batch * n
    gathered_bytes = 4 * pattern.n_blocks * bs * low.batch
    # Gather input block-columns into einsum layout.
    low.add_stream("pixelfly/gather", gathered_bytes)
    # Batched block einsum: tiny per-block GEMMs fall back to the
    # gather-einsum path — far from cuBLAS efficiency, never tensor cores.
    flops = 2 * pattern.n_blocks * bs * bs * low.batch
    rate = low.spec.peak_flops_fp32 * low.spec.batched_gather_efficiency
    time_s = low.spec.kernel_launch_s + max(
        flops / rate, gathered_bytes * 2 / low.spec.effective_bandwidth
    )
    low.add(
        KernelCost("pixelfly/block_einsum", time_s, flops, gathered_bytes * 2)
    )
    # Scatter-add back to row blocks.
    low.add_stream("pixelfly/scatter", gathered_bytes)
    if layer.u is not None:
        r = pattern.rank
        low.param_bytes += 4 * (layer.u.size + layer.v.size)
        low.matmul(low.batch, r, n, "pixelfly/lowrank_v")
        low.matmul(low.batch, n, r, "pixelfly/lowrank_u")
        low.add_stream("pixelfly/add_lowrank", act_bytes)
    if layer.residual:
        low.add_stream("pixelfly/residual", act_bytes)
    if layer.bias is not None:
        low.param_bytes += 4 * layer.bias.size
        low.add_stream("pixelfly/bias", act_bytes)
    return n


def _lower_fastfood_gpu(low: _GPULowering, layer: FastfoodLinear) -> int:
    n = layer.features
    levels = log2_int(n)
    low.param_bytes += 4 * (layer.b.size + layer.g.size + layer.s.size)
    act_bytes = 4 * low.batch * n
    low.add_stream("fastfood/B", act_bytes)
    for level in range(levels):
        low.add_stream(f"fastfood/H1_l{level}", act_bytes)
    low.add_stream("fastfood/permute", act_bytes)
    low.add_stream("fastfood/G", act_bytes)
    for level in range(levels):
        low.add_stream(f"fastfood/H2_l{level}", act_bytes)
    low.add_stream("fastfood/S", act_bytes)
    if layer.bias is not None:
        low.param_bytes += 4 * layer.bias.size
        low.add_stream("fastfood/bias", act_bytes)
    return n


def _lower_circulant_gpu(low: _GPULowering, layer: CirculantLinear) -> int:
    n = layer.features
    low.param_bytes += 4 * layer.c.size
    act_bytes = 4 * low.batch * n
    # cuFFT batched transforms: library-fused, ~5 passes worth of traffic.
    low.add_stream("circulant/rfft", act_bytes, passes=5.0)
    low.add_stream("circulant/spectrum_mul", act_bytes)
    low.add_stream("circulant/irfft", act_bytes, passes=5.0)
    if layer.bias is not None:
        low.param_bytes += 4 * layer.bias.size
        low.add_stream("circulant/bias", act_bytes)
    return n


def _lower_lowrank_gpu(low: _GPULowering, layer: LowRankLinear) -> int:
    low.param_bytes += 4 * (layer.u.size + layer.v.size)
    low.matmul(low.batch, layer.rank, layer.in_features, "lowrank/v")
    low.matmul(low.batch, layer.out_features, layer.rank, "lowrank/u")
    if layer.bias is not None:
        low.param_bytes += 4 * layer.bias.size
        low.add_stream("lowrank/bias", 4 * low.batch * layer.out_features)
    return layer.out_features


def lower_model_gpu(
    model: Module,
    device: GPUDevice,
    batch: int,
    in_features: int,
    tensor_cores: bool = False,
) -> _GPULowering:
    """Lower *model*'s forward pass to a GPU kernel sequence."""
    if batch <= 0 or in_features <= 0:
        raise ValueError("batch and in_features must be positive")
    low = _GPULowering(device=device, batch=batch, tensor_cores=tensor_cores)
    features = in_features

    def lower(module: Module, features: int) -> int:
        if isinstance(module, Sequential):
            for child in module:
                features = lower(child, features)
            return features
        if isinstance(module, Linear):
            return _lower_linear_gpu(low, module)
        if isinstance(module, ButterflyLinear):
            return _lower_butterfly_gpu(low, module)
        if isinstance(module, PixelflyLinear):
            return _lower_pixelfly_gpu(low, module)
        if isinstance(module, FastfoodLinear):
            return _lower_fastfood_gpu(low, module)
        if isinstance(module, CirculantLinear):
            return _lower_circulant_gpu(low, module)
        if isinstance(module, LowRankLinear):
            return _lower_lowrank_gpu(low, module)
        if isinstance(module, (ReLU, Tanh, Sigmoid)):
            low.add_stream("activation", 4 * batch * features)
            return features
        if isinstance(module, (BatchNorm1d, LayerNorm)):
            low.param_bytes += 4 * 2 * features  # gamma + beta
            low.add_stream("norm/stats", 4 * batch * features)
            low.add_stream("norm/apply", 4 * batch * features)
            return features
        if isinstance(module, (Identity, Flatten, Dropout)):
            return features
        raise TypeError(
            f"GPU lowering does not support {type(module).__name__}"
        )

    lower(model, features)
    return low


@dataclass
class GPUModule:
    """A model lowered onto the GPU cost model (PyTorch stand-in)."""

    model: Module
    in_features: int
    batch: int
    tensor_cores: bool = False
    spec: GPUSpec = A30

    def __post_init__(self) -> None:
        self.device = GPUDevice(self.spec)
        self._lowering = lower_model_gpu(
            self.model,
            self.device,
            self.batch,
            self.in_features,
            tensor_cores=self.tensor_cores,
        )

    @property
    def kernels(self) -> list[KernelCost]:
        """The forward-pass kernel sequence."""
        return self._lowering.kernels

    @property
    def param_bytes(self) -> int:
        return self._lowering.param_bytes

    #: Virtual tracer track the simulated GPU kernel timeline lives on.
    TRACE_TRACK = "gpu"

    def _trace_kernels(self) -> None:
        """Emit the forward kernel sequence as spans on the GPU track."""
        tracer = get_tracer()
        if not tracer.enabled:
            return
        for kernel in self.kernels:
            tracer.add_span(
                kernel.name,
                kernel.time_s,
                self.TRACE_TRACK,
                category="kernel",
                flops=kernel.flops,
                bytes_moved=kernel.bytes_moved,
            )

    def forward_time(self) -> float:
        """Seconds for one forward pass."""
        self._trace_kernels()
        return sum(k.time_s for k in self.kernels)

    def training_step_time(self) -> float:
        """Seconds per training step: overhead + fwd + bwd + optimiser.

        Backward launches roughly the forward sequence twice over
        (grad-input and grad-weight kernels); SGD-with-momentum touches
        each parameter tensor with ~5 memory passes.
        """
        fwd = self.forward_time()
        n_tensors = sum(1 for _ in self.model.parameters())
        opt = n_tensors * self.spec.kernel_launch_s + (
            5.0 * self.param_bytes / self.spec.effective_bandwidth
        )
        step_s = self.spec.train_step_overhead_s + 3.0 * fwd + opt
        tracer = get_tracer()
        if tracer.enabled:
            tracer.add_span(
                "backward+optimizer",
                step_s - fwd,
                self.TRACE_TRACK,
                category="kernel",
                forward_s=fwd,
                optimizer_s=opt,
                overhead_s=self.spec.train_step_overhead_s,
            )
        return step_s
