"""Command-line entry point: artefacts, tracing, chaos, reports, gates.

Usage::

    python -m repro --help               # all subcommands + artefacts
    python -m repro list                 # available artefacts
    python -m repro table1 fig3 ...      # regenerate specific artefacts
    python -m repro all [--full]         # everything (opt. paper-scale)
    python -m repro fig5 --jobs 4 --cell-timeout 60 --retries 2 --resume
                                         # supervised grid (repro.guard)
    python -m repro trace fig6 --jobs 2  # tracer + log + HTML timeline
    python -m repro timeline fig6.trace.json   # re-render the timeline
    python -m repro chaos --seed 0       # fault-injection suite
    python -m repro fuzz --cases 50      # differential fuzzer + oracles
    python -m repro fuzz --cases 25 --shrink   # + minimised reproducers
    python -m repro report run.json      # render a repro.run/1 manifest
    python -m repro report --smoke       # deterministic smoke manifest
    python -m repro regress NEW BASE     # perf-regression gate (CI)

Subcommands live in the :data:`SUBCOMMANDS` registry — each entry owns
its argparse parser — and any leading argument that is *not* a
registered subcommand is treated as an artefact name (the historical
``python -m repro table1 fig3`` form).  See docs/OBSERVABILITY.md for
``trace``/``report``/``regress`` and docs/RESILIENCE.md for ``chaos``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import dataclasses
from dataclasses import dataclass, field
from typing import Callable

from repro import guard as guardmod
from repro import obs
from repro.cache import NULL_CACHE, CompilationCache, caching
from repro.guard import GuardPolicy
from repro.experiments import (
    ablation,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    generations,
    table1,
    table2,
    table4,
    table5,
)


@dataclass(frozen=True)
class RunOptions:
    """How an artefact run was requested: budget, parallelism, supervision.

    ``guard`` is ``None`` unless any supervision flag
    (``--cell-timeout``/``--retries``/``--resume``/``--strict``) was
    passed; grid-backed renderers forward it to ``run_grid``.
    """

    full: bool = False
    jobs: int = 1
    guard: GuardPolicy | None = None


@dataclass(frozen=True)
class Artefact:
    """One regenerable artefact: its renderer and catalogue entry.

    ``render`` receives a :class:`RunOptions`; renderers that have no
    full-scale variant or no grid to parallelise simply ignore the
    corresponding field.
    """

    render: Callable[[RunOptions], str]
    desc: str
    slow: bool = field(default=False)


def _render_table2(o: RunOptions) -> str:
    if o.full:
        return table2.render(jobs=o.jobs, guard=o.guard)
    return table2.render(sizes=[1024], jobs=o.jobs, guard=o.guard)


def _render_fig6(o: RunOptions) -> str:
    if o.full:
        return fig6.render(jobs=o.jobs, guard=o.guard)
    return fig6.render(sizes=[128, 512, 2048], jobs=o.jobs, guard=o.guard)


def _render_fig7(o: RunOptions) -> str:
    if o.full:
        return fig7.render(jobs=o.jobs, guard=o.guard)
    return fig7.render(sizes=[128, 512, 2048], jobs=o.jobs, guard=o.guard)


def _render_table4(o: RunOptions) -> str:
    if o.full:
        return table4.render()
    return table4.render(table4.run(epochs=2, n_train=800, n_test=400))


def _render_table5(o: RunOptions) -> str:
    if o.full:
        return table5.render(jobs=o.jobs, guard=o.guard)
    return table5.render(
        table5.run(
            grid=[(2, 8, 2), (2, 8, 64), (16, 8, 2), (16, 32, 2)],
            epochs=1,
            n_train=400,
            n_test=200,
            jobs=o.jobs,
            guard=o.guard,
        )
    )


#: The artefact catalogue: name -> :class:`Artefact`.
ARTEFACTS: dict[str, Artefact] = {
    "table1": Artefact(
        lambda o: table1.render(),
        "device spec comparison (GC200 vs A30)",
    ),
    "fig3": Artefact(
        lambda o: fig3.render(),
        "exchange latency/bandwidth vs tile distance",
    ),
    "table2": Artefact(
        _render_table2, "dense/sparse matmul GFLOP/s matrix"
    ),
    "fig4": Artefact(
        lambda o: fig4.render() if o.full else fig4.render(base=1024),
        "skewed matmul, GPU vs IPU",
    ),
    "fig5": Artefact(
        lambda o: fig5.render(jobs=o.jobs, guard=o.guard),
        "IPU graph/memory growth with problem size",
    ),
    "fig6": Artefact(
        _render_fig6, "linear vs butterfly vs pixelfly layer times"
    ),
    "fig7": Artefact(
        _render_fig7, "compute sets & memory per factorization"
    ),
    "table4": Artefact(
        _render_table4,
        "SHL on synthetic CIFAR-10 (trains a model per method!)",
        slow=True,
    ),
    "table5": Artefact(
        _render_table5, "pixelfly hyper-parameter sweep", slow=True
    ),
    "ablations": Artefact(
        lambda o: ablation.render(),
        "cost-model ablations (streaming, AMP butterfly, sync)",
    ),
    "generations": Artefact(
        lambda o: generations.render(),
        "GC2 vs GC200 generational comparison",
    ),
}

#: Excluded from `all` without --full (they train models for minutes).
SLOW = {name for name, a in ARTEFACTS.items() if a.slow}


def _default_output_dir() -> pathlib.Path:
    """``benchmarks/output`` in a source checkout, else the working dir."""
    repo_root = pathlib.Path(__file__).resolve().parents[2]
    candidate = repo_root / "benchmarks" / "output"
    if candidate.parent.is_dir():
        return candidate
    return pathlib.Path("benchmarks/output")


def _default_cache_dir() -> pathlib.Path:
    """``benchmarks/cache`` in a source checkout, else the working dir."""
    repo_root = pathlib.Path(__file__).resolve().parents[2]
    candidate = repo_root / "benchmarks" / "cache"
    if candidate.parent.is_dir():
        return candidate
    return pathlib.Path("benchmarks/cache")


def _add_cache_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for grid experiments (default 1: serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the compilation cache for this run",
    )
    parser.add_argument(
        "--cache-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="on-disk compilation cache directory "
        "(default: benchmarks/cache)",
    )


def _make_cache(args: argparse.Namespace) -> CompilationCache:
    """The run's compilation cache, honouring --no-cache/--cache-dir."""
    if args.no_cache:
        return NULL_CACHE
    cache_dir = (
        args.cache_dir if args.cache_dir is not None else _default_cache_dir()
    )
    return CompilationCache(path=cache_dir)


def _default_journal_dir() -> pathlib.Path:
    """``benchmarks/journal`` in a source checkout, else the working dir."""
    repo_root = pathlib.Path(__file__).resolve().parents[2]
    candidate = repo_root / "benchmarks" / "journal"
    if candidate.parent.is_dir():
        return candidate
    return pathlib.Path("benchmarks/journal")


def _add_guard_flags(parser: argparse.ArgumentParser) -> None:
    group = parser.add_argument_group(
        "supervised execution",
        "passing any of these wraps grid experiments in repro.guard: "
        "per-cell deadlines, seeded retries, quarantine and a resumable "
        "completion journal (docs/RESILIENCE.md, 'Supervised grids')",
    )
    group.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock budget per grid cell attempt; hung workers are "
        "killed and retried",
    )
    group.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="K",
        help="transient-failure retries per cell before quarantine "
        "(default 2 when supervision is active)",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already present in the journal (bit-identical "
        "to an uninterrupted run)",
    )
    group.add_argument(
        "--strict",
        action="store_true",
        help="raise after the grid completes if any cell failed, "
        "instead of quarantining",
    )
    group.add_argument(
        "--journal",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="completion-journal directory "
        "(default: benchmarks/journal when supervision is active)",
    )


def _make_guard(args: argparse.Namespace) -> GuardPolicy | None:
    """A :class:`GuardPolicy` when any supervision flag was passed."""
    active = (
        args.cell_timeout is not None
        or args.retries is not None
        or args.resume
        or args.strict
        or args.journal is not None
    )
    if not active:
        return None
    journal_dir = (
        args.journal if args.journal is not None else _default_journal_dir()
    )
    return GuardPolicy(
        cell_timeout_s=args.cell_timeout,
        retries=args.retries if args.retries is not None else 2,
        strict=args.strict,
        journal_dir=journal_dir,
        resume=args.resume,
    )


# -- subcommands ---------------------------------------------------------------


def run_main(argv: list[str]) -> int:
    """``python -m repro [run] <artefact>...``: regenerate artefacts."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate paper artefacts (the default subcommand).",
    )
    parser.add_argument(
        "artefacts",
        nargs="+",
        help="artefact names, 'all', or 'list'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale budgets (slow: full training runs)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="also write NAME.txt and a repro.run/1 NAME.json manifest",
    )
    _add_cache_flags(parser)
    _add_guard_flags(parser)
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    try:
        guard = _make_guard(args)
    except ValueError as exc:
        parser.error(str(exc))

    if args.artefacts == ["list"]:
        return list_main([])

    names = list(ARTEFACTS) if args.artefacts == ["all"] else args.artefacts
    if args.artefacts == ["all"] and not args.full:
        names = [n for n in names if n not in SLOW]

    unknown = [n for n in names if n not in ARTEFACTS]
    if unknown:
        parser.error(
            f"unknown artefact(s) {unknown}; try 'python -m repro list'"
        )

    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
    opts = RunOptions(full=args.full, jobs=args.jobs, guard=guard)
    exit_code = 0
    for name in names:
        # A fresh cache per artefact (sharing one disk directory) keeps
        # each manifest's cache section scoped to that artefact's run.
        cache = _make_cache(args)
        if args.out:
            with obs.tracing() as tracer, obs.collecting() as registry, \
                    obs.logging() as runlog, caching(cache), \
                    guardmod.reporting() as reports:
                text = ARTEFACTS[name].render(opts)
            manifest = obs.build_manifest(
                name,
                registry=registry,
                tracer=tracer,
                cache=cache,
                config={
                    "artefact": name,
                    "full": args.full,
                    "jobs": args.jobs,
                },
                guard=reports,
                log=runlog,
            )
            obs.write_manifest(manifest, args.out / f"{name}.json")
            # The manifest carries event *counts* only (so parallel runs
            # stay bit-identical); the full stream lives alongside it.
            obs.write_jsonl(runlog, args.out / f"{name}.log.jsonl")
        else:
            with caching(cache), guardmod.reporting() as reports:
                text = ARTEFACTS[name].render(opts)
        print(text)
        print()
        for report in reports:
            if report.journal_hits or not report.ok or report.pool_rebuilds:
                print(report.render())
                print()
            if not report.ok:
                exit_code = 1
        if args.out:
            (args.out / f"{name}.txt").write_text(text + "\n")
    return exit_code


def list_main(argv: list[str]) -> int:
    """``python -m repro list``: print the artefact table."""
    argparse.ArgumentParser(
        prog="python -m repro list",
        description="List available artefacts.",
    ).parse_args(argv)
    for name, artefact in ARTEFACTS.items():
        slow = " [slow]" if artefact.slow else ""
        print(f"{name:12s} {artefact.desc}{slow}")
    return 0


def trace_main(argv: list[str]) -> int:
    """``python -m repro trace <artefact>``: one run, full observability."""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run one artefact with tracing and structured logging "
        "enabled; write a Chrome trace-event JSON, a flame summary, a "
        "repro.log/1 JSONL and a self-contained HTML timeline next to "
        "the benchmark outputs.  With --jobs N (and optionally the "
        "supervision flags) worker-side spans and log events are merged "
        "into the same trace on cellN/... tracks.",
    )
    parser.add_argument(
        "artefact", help="artefact name; see 'python -m repro list'"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale budgets (slow: full training runs)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="output directory (default: benchmarks/output)",
    )
    parser.add_argument(
        "--track",
        default=None,
        metavar="GLOB",
        help="restrict the flame summary to tracks matching GLOB "
        "(e.g. 'cell*/ipu'); trace, log and timeline keep every track",
    )
    _add_cache_flags(parser)
    _add_guard_flags(parser)
    args = parser.parse_args(argv)
    if args.artefact not in ARTEFACTS:
        parser.error(
            f"unknown artefact {args.artefact!r}; "
            "try 'python -m repro list'"
        )
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    try:
        guard = _make_guard(args)
    except ValueError as exc:
        parser.error(str(exc))
    cache = _make_cache(args)
    out_dir = args.out if args.out is not None else _default_output_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    opts = RunOptions(full=args.full, jobs=args.jobs, guard=guard)
    with obs.tracing() as tracer, obs.logging() as runlog, \
            caching(cache), guardmod.reporting() as reports:
        text = ARTEFACTS[args.artefact].render(opts)
    print(text)
    print()
    exit_code = 0
    for report in reports:
        if report.journal_hits or not report.ok or report.pool_rebuilds:
            print(report.render())
            print()
        if not report.ok:
            exit_code = 1
    trace_path = obs.write_chrome_trace(
        tracer, out_dir / f"{args.artefact}.trace.json"
    )
    summary = obs.flame_summary(tracer, track=args.track)
    summary_path = out_dir / f"{args.artefact}.flame.txt"
    summary_path.write_text(summary + "\n")
    print(summary)
    log_path = obs.write_jsonl(
        runlog, out_dir / f"{args.artefact}.log.jsonl"
    )
    # Round-trip through the interchange format so this timeline is
    # exactly what `python -m repro timeline <trace.json>` would render.
    spans, counters = obs.spans_from_chrome_trace(
        obs.to_chrome_trace(tracer)
    )
    subtitle = f"jobs={args.jobs}" + (", supervised" if guard else "")
    timeline_path = obs.write_timeline_html(
        obs.render_timeline_html(
            spans,
            counters,
            events=list(runlog.events),
            title=f"repro trace: {args.artefact}",
            subtitle=subtitle,
        ),
        out_dir / f"{args.artefact}.timeline.html",
    )
    print(
        f"\n[trace: {trace_path} ({len(tracer.spans)} spans, "
        f"{len(tracer.counters)} counter samples); "
        f"flame summary: {summary_path};\n"
        f" log: {log_path} ({len(runlog.events)} events); "
        f"timeline: {timeline_path}]"
    )
    return exit_code


def timeline_main(argv: list[str]) -> int:
    """``python -m repro timeline``: render the unified HTML timeline."""
    parser = argparse.ArgumentParser(
        prog="python -m repro timeline",
        description="Combine a Chrome trace-event JSON (or a repro.run/1 "
        "manifest) with an optional repro.log/1 JSONL into one "
        "self-contained HTML timeline — no scripts, fonts or network "
        "dependencies, openable from a CI artefact store.",
    )
    parser.add_argument(
        "input",
        type=pathlib.Path,
        help="a NAME.trace.json Chrome trace, or a repro.run/1 manifest "
        "(hot spans render as per-track aggregate bars)",
    )
    parser.add_argument(
        "--log",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="repro.log/1 JSONL to overlay as a log lane + table "
        "(default: a sibling NAME.log.jsonl when present)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="output HTML path (default: NAME.timeline.html next to "
        "the input)",
    )
    args = parser.parse_args(argv)
    try:
        doc = json.loads(args.input.read_text())
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.input}: {exc}", file=sys.stderr)
        return 2

    counters: list = []
    metrics = None
    if isinstance(doc, dict) and "traceEvents" in doc:
        spans, counters = obs.spans_from_chrome_trace(doc)
        source = "chrome trace"
    else:
        try:
            manifest = obs.read_manifest(args.input)
        except obs.ManifestError as exc:
            print(
                f"error: {args.input} is neither a Chrome trace "
                f"(no 'traceEvents') nor a repro.run/1 manifest: {exc}",
                file=sys.stderr,
            )
            return 2
        spans = obs.spans_from_manifest(manifest)
        metrics = manifest.get("metrics") or None
        source = "repro.run/1 manifest"

    # NAME.trace.json and NAME.json both pair with NAME.log.jsonl.
    base = args.input.name
    for suffix in (".trace.json", ".json"):
        if base.endswith(suffix):
            base = base[: -len(suffix)]
            break
    log_path = args.log
    if log_path is None:
        sibling = args.input.with_name(f"{base}.log.jsonl")
        if sibling.is_file():
            log_path = sibling
    events: list = []
    if log_path is not None:
        try:
            _header, events = obs.read_jsonl(log_path)
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {log_path}: {exc}", file=sys.stderr)
            return 2

    out = (
        args.out
        if args.out is not None
        else args.input.with_name(f"{base}.timeline.html")
    )
    path = obs.write_timeline_html(
        obs.render_timeline_html(
            spans,
            counters,
            events=events,
            metrics=metrics,
            title=f"repro timeline: {base}",
            subtitle=f"from {args.input.name} ({source})"
            + (f" + {log_path.name}" if log_path is not None else ""),
        ),
        out,
    )
    print(
        f"[timeline: {path} ({len(spans)} spans, {len(counters)} counter "
        f"samples, {len(events)} log events)]"
    )
    return 0


def chaos_main(argv: list[str]) -> int:
    """``python -m repro chaos``: run the fault-injection suite."""
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Inject seeded faults into the simulator and trainer, "
        "verify recovery, replay determinism, bit-identical kill/resume "
        "and the degraded-tile sweep.  Exits 1 on any failure.",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (default 0)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small models and budgets (CI-sized, a few seconds)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="also write DIR/chaos.txt",
    )
    parser.add_argument(
        "--only",
        default=None,
        metavar="SCENARIO",
        help="run one scenario only: executor, kill-resume, guard, "
        "or tile-sweep (default: all)",
    )
    args = parser.parse_args(argv)
    # Imported lazily: the chaos harness pulls in the experiment configs.
    from repro.faults.chaos import SCENARIOS, run_chaos

    if args.only is not None and args.only not in SCENARIOS:
        parser.error(
            f"unknown scenario {args.only!r}; choose from "
            f"{', '.join(SCENARIOS)}"
        )
    text, ok = run_chaos(seed=args.seed, smoke=args.smoke, only=args.only)
    print(text)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "chaos.txt").write_text(text + "\n")
    return 0 if ok else 1


def fuzz_main(argv: list[str]) -> int:
    """``python -m repro fuzz``: the seeded differential fuzzer."""
    parser = argparse.ArgumentParser(
        prog="python -m repro fuzz",
        description="Generate seeded random workloads and check that "
        "every independent pipeline path agrees: factored vs dense "
        "layers, planned vs unplanned memory, cached vs cold compiles, "
        "serial vs guarded-parallel grids, recovered vs clean chaos "
        "runs.  Failures are delta-debugged (--shrink) to minimal "
        "reproducers.  Exits 1 on any disagreement — see "
        "docs/VERIFICATION.md.",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="base seed (default 0)"
    )
    parser.add_argument(
        "--cases",
        type=int,
        default=50,
        metavar="K",
        help="number of generated cases (default 50)",
    )
    parser.add_argument(
        "--start",
        type=int,
        default=0,
        metavar="I",
        help="first case index (cases are pure in (seed, index))",
    )
    parser.add_argument(
        "--oracle",
        action="append",
        default=None,
        metavar="NAME",
        help="run only the named oracle (repeatable; default: all "
        "applicable per case)",
    )
    parser.add_argument(
        "--shrink",
        action="store_true",
        help="delta-debug each failure to a minimal reproducer",
    )
    parser.add_argument(
        "--corpus",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="where --shrink writes reproducer JSONs "
        "(default: benchmarks/output/corpus)",
    )
    parser.add_argument(
        "--plant",
        default=None,
        metavar="BUG",
        help="activate a known-bad mutation for the whole run "
        "(fuzzer self-test; see repro.verify.hooks.PLANTS)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="also write DIR/fuzz.txt and a repro.run/1 DIR/fuzz.json "
        "manifest with a verify section",
    )
    args = parser.parse_args(argv)
    # Imported lazily: the fuzzer pulls in every pipeline subsystem.
    from repro.verify import ORACLES, run_fuzz
    from repro.verify.hooks import PLANTS

    if args.cases < 1:
        parser.error(f"--cases must be >= 1, got {args.cases}")
    unknown = [o for o in (args.oracle or []) if o not in ORACLES]
    if unknown:
        parser.error(
            f"unknown oracle(s) {unknown}; choose from "
            f"{', '.join(ORACLES)}"
        )
    if args.plant is not None and args.plant not in PLANTS:
        parser.error(
            f"unknown plant {args.plant!r}; choose from "
            f"{', '.join(PLANTS)}"
        )
    corpus_dir = args.corpus
    if args.shrink and corpus_dir is None:
        corpus_dir = _default_output_dir() / "corpus"
    with obs.tracing() as tracer, obs.collecting() as registry:
        report = run_fuzz(
            seed=args.seed,
            cases=args.cases,
            oracles=args.oracle,
            shrink=args.shrink,
            corpus_dir=corpus_dir if args.shrink else None,
            plant=args.plant,
            start=args.start,
        )
    print(report.render())
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "fuzz.txt").write_text(report.render() + "\n")
        manifest = obs.build_manifest(
            "fuzz",
            registry=registry,
            tracer=tracer,
            config={
                "cases": args.cases,
                "start": args.start,
                "shrink": args.shrink,
                "oracles": sorted(args.oracle) if args.oracle else "all",
                **({"plant": args.plant} if args.plant else {}),
            },
            seed=args.seed,
            verify=report,
        )
        path = obs.write_manifest(manifest, args.out / "fuzz.json")
        print(f"\n[manifest: {path}]")
    return 0 if report.ok else 1


def report_main(argv: list[str]) -> int:
    """``python -m repro report``: render (or produce) a run manifest."""
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="Render a repro.run/1 manifest as a terminal report, "
        "or (--smoke) run the deterministic smoke workload, write its "
        "manifest and render it — the CI baseline generator.",
    )
    parser.add_argument(
        "manifest",
        nargs="?",
        type=pathlib.Path,
        help="path to a repro.run/1 JSON manifest",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run the smoke workload instead of reading a manifest",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="where --smoke writes its manifest "
        "(default: benchmarks/output/smoke.json)",
    )
    args = parser.parse_args(argv)
    if args.smoke == (args.manifest is not None):
        parser.error("pass exactly one of: a manifest path, or --smoke")
    if args.smoke:
        manifest = obs.smoke_manifest()
        out = (
            args.out
            if args.out is not None
            else _default_output_dir() / "smoke.json"
        )
        path = obs.write_manifest(manifest, out)
        print(obs.render_report(manifest))
        print(f"\n[manifest: {path}]")
        return 0
    try:
        manifest = obs.read_manifest(args.manifest)
    except obs.ManifestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(obs.render_report(manifest))
    return 0


def regress_main(argv: list[str]) -> int:
    """``python -m repro regress``: gate a manifest against a baseline."""
    from repro.obs.regress import (
        DEFAULT_TOLERANCE,
        parse_tolerance,
        regress,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro regress",
        description="Diff two repro.run/1 manifests with per-metric "
        "relative tolerances.  Exits 0 when the candidate is within "
        "tolerance of the baseline, 1 on any regression, 2 on bad "
        "input — see docs/OBSERVABILITY.md.",
    )
    parser.add_argument(
        "candidate", type=pathlib.Path, help="the new run's manifest"
    )
    parser.add_argument(
        "baseline",
        type=pathlib.Path,
        help="the baseline manifest (e.g. benchmarks/baselines/smoke.json)",
    )
    parser.add_argument(
        "--tol",
        action="append",
        default=[],
        metavar="PATTERN=REL",
        help="per-metric tolerance (glob over flattened metric keys; "
        "REL is a relative fraction or 'none' to skip); repeatable, "
        "first match wins",
    )
    parser.add_argument(
        "--default-tol",
        type=float,
        default=DEFAULT_TOLERANCE,
        help=f"tolerance for unmatched metrics (default "
        f"{DEFAULT_TOLERANCE})",
    )
    parser.add_argument(
        "--all",
        action="store_true",
        help="show every metric comparison, not only failures",
    )
    args = parser.parse_args(argv)
    try:
        rules = tuple(parse_tolerance(spec) for spec in args.tol)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        candidate = obs.read_manifest(args.candidate)
        baseline = obs.read_manifest(args.baseline)
    except obs.ManifestError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = regress(
        candidate, baseline, rules=rules, default_tol=args.default_tol
    )
    print(result.render(show_all=args.all))
    return 0 if result.ok else 1


def serve_main(argv: list[str]) -> int:
    """``python -m repro serve``: the inference-serving simulation."""
    from repro.bench.parallel import run_grid
    from repro.cache import NullCache
    from repro.serve import (
        SERVE_METHODS,
        ServeScenario,
        record_metrics,
        record_spans,
        serve_section,
        serve_worker,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Simulate serving an open-loop request stream with "
        "dense vs butterfly vs pixelfly replicas under one IPU memory "
        "budget; writes a repro.run/1 manifest with a repro.serve/1 "
        "section, a Chrome trace and an HTML timeline (one track per "
        "replica).  Fully deterministic: same seed, byte-identical "
        "manifest, at any --jobs — see docs/SERVING.md.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="pin the canonical baseline scenario (ignores the workload "
        "flags below) — what CI runs and regress gates against",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="workload/fault seed"
    )
    parser.add_argument(
        "--methods",
        default=",".join(SERVE_METHODS),
        help=f"comma-separated subset of {SERVE_METHODS} "
        "(default: all three)",
    )
    parser.add_argument(
        "--dim", type=int, default=512, help="model width (default 512)"
    )
    parser.add_argument(
        "--budget-mb",
        type=float,
        default=32.0,
        help="IPU memory budget per method, MiB (default 32)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=400,
        help="requests in the stream (default 400)",
    )
    parser.add_argument(
        "--rate",
        type=float,
        default=400000.0,
        help="offered load, requests/s (default 400000)",
    )
    parser.add_argument(
        "--arrival",
        choices=("poisson", "burst"),
        default="poisson",
        help="arrival process (default poisson)",
    )
    parser.add_argument(
        "--slo-ms",
        type=float,
        default=0.5,
        help="per-request deadline, ms after arrival (default 0.5)",
    )
    parser.add_argument(
        "--deaths",
        type=int,
        default=1,
        help="replicas killed mid-run per method (default 1)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="output directory (default: benchmarks/output)",
    )
    _add_cache_flags(parser)
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error(f"--jobs must be >= 1, got {args.jobs}")
    methods = [m for m in args.methods.split(",") if m]
    unknown = [m for m in methods if m not in SERVE_METHODS]
    if unknown:
        parser.error(
            f"unknown methods {unknown}; expected a subset of "
            f"{SERVE_METHODS}"
        )
    if args.smoke:
        # The canonical scenario: every flag but --seed/--jobs/--out
        # pinned, so two smoke runs anywhere are byte-comparable.
        scenario = ServeScenario(method="dense", seed=args.seed)
        methods = list(SERVE_METHODS)
    else:
        scenario = ServeScenario(
            method="dense",
            dim=args.dim,
            budget_bytes=args.budget_mb * 2**20,
            n_requests=args.requests,
            rate_rps=args.rate,
            arrival=args.arrival,
            slo_ms=args.slo_ms,
            n_deaths=args.deaths,
            seed=args.seed,
        )
    configs = [
        dataclasses.replace(scenario, method=method).as_config()
        for method in methods
    ]

    cache = _make_cache(args)
    out_dir = args.out if args.out is not None else _default_output_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    with caching(cache):
        results = run_grid(
            serve_worker,
            configs,
            jobs=args.jobs,
            seed=args.seed,
            name="serve",
        )

    # Presentation is rebuilt from the workers' plain dicts in method
    # order, under fresh (non-ambient) instruments, and the manifest
    # carries no cache/wall-clock sections and no --jobs in its config —
    # which is why a --jobs 2 manifest is byte-identical to --jobs 1.
    registry = obs.MetricRegistry()
    tracer = obs.Tracer()
    record_metrics(results, registry)
    record_spans(results, tracer)
    config = {
        key: value
        for key, value in configs[0].items()
        if key != "method"
    }
    config["methods"] = ",".join(methods)
    manifest = obs.build_manifest(
        "serve",
        registry=registry,
        tracer=tracer,
        cache=NullCache(),
        config=config,
        seed=args.seed,
        serve=serve_section(results),
    )
    manifest_path = obs.write_manifest(manifest, out_dir / "serve.json")
    text = obs.render_report(manifest)
    (out_dir / "serve.txt").write_text(text + "\n")
    print(text)

    trace_path = obs.write_chrome_trace(
        tracer, out_dir / "serve.trace.json"
    )
    spans, counters = obs.spans_from_chrome_trace(
        obs.to_chrome_trace(tracer)
    )
    timeline_path = obs.write_timeline_html(
        obs.render_timeline_html(
            spans,
            counters,
            title="repro serve",
            subtitle=f"seed={args.seed}, methods={','.join(methods)}",
        ),
        out_dir / "serve.timeline.html",
    )
    print(
        f"\n[manifest: {manifest_path}; trace: {trace_path}; "
        f"timeline: {timeline_path}]"
    )
    return 0


# -- dispatch ------------------------------------------------------------------


@dataclass(frozen=True)
class Subcommand:
    """One registered subcommand: its entry point and help line."""

    main: Callable[[list[str]], int]
    help: str


#: The subcommand registry; ``main`` dispatches by first argument and
#: falls back to :func:`run_main` (artefact names) for anything else.
SUBCOMMANDS: dict[str, Subcommand] = {
    "run": Subcommand(run_main, "regenerate artefacts (the default)"),
    "list": Subcommand(list_main, "list available artefacts"),
    "trace": Subcommand(
        trace_main,
        "run one artefact under tracer+log (Chrome JSON, JSONL, HTML)",
    ),
    "timeline": Subcommand(
        timeline_main, "render a trace/manifest (+log) as an HTML timeline"
    ),
    "chaos": Subcommand(
        chaos_main, "fault-injection & recovery suite (RESILIENCE.md)"
    ),
    "fuzz": Subcommand(
        fuzz_main,
        "seeded differential fuzzer + oracles (VERIFICATION.md)",
    ),
    "serve": Subcommand(
        serve_main,
        "inference-serving simulation: replicas-per-budget & goodput "
        "(SERVING.md)",
    ),
    "report": Subcommand(
        report_main, "render a repro.run/1 manifest (or --smoke)"
    ),
    "regress": Subcommand(
        regress_main, "perf-regression gate between two manifests"
    ),
}


def _top_help() -> str:
    lines = [
        "usage: python -m repro <subcommand|artefact...> [options]",
        "",
        "subcommands:",
    ]
    for name, spec in SUBCOMMANDS.items():
        lines.append(f"  {name:<10s} {spec.help}")
    lines.append("")
    lines.append("artefacts (python -m repro <name>... / run <name>...):")
    for name, artefact in ARTEFACTS.items():
        slow = " [slow]" if artefact.slow else ""
        lines.append(f"  {name:<12s} {artefact.desc}{slow}")
    lines.append("")
    lines.append(
        "use 'python -m repro <subcommand> --help' for per-subcommand "
        "options"
    )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if not argv or argv[0] in ("-h", "--help"):
        print(_top_help())
        return 0
    spec = SUBCOMMANDS.get(argv[0])
    if spec is not None:
        return spec.main(argv[1:])
    # Not a subcommand: historical artefact invocation.
    return run_main(argv)


if __name__ == "__main__":
    sys.exit(main())
