"""Command-line entry point: regenerate paper artefacts.

Usage::

    python -m repro list                 # available artefacts
    python -m repro table1 fig3 ...      # regenerate specific ones
    python -m repro all                  # everything except the slow ones
    python -m repro all --full           # everything, paper-scale budgets
    python -m repro trace fig6           # run one artefact under the tracer
    python -m repro chaos --seed 0       # fault-injection suite (RESILIENCE.md)

Each artefact prints to stdout; pass ``--out DIR`` to also write
``DIR/<name>.txt`` files.  ``trace`` runs a single artefact with the
:mod:`repro.obs` tracer enabled and writes a Chrome ``trace_event`` JSON
(open in ``chrome://tracing`` / Perfetto) next to the benchmark outputs,
plus a flame summary to stdout — see docs/OBSERVABILITY.md.  ``chaos``
runs the fault-injection/recovery suite (seeded faults, kill/resume,
degraded-tile sweep) and exits nonzero on any unrecovered fault or
replay/resume mismatch — see docs/RESILIENCE.md.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable

from repro import obs
from repro.experiments import (
    ablation,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    generations,
    table1,
    table2,
    table4,
    table5,
)

#: name -> (fast renderer, full renderer, description)
ARTEFACTS: dict[str, tuple[Callable[[], str], Callable[[], str], str]] = {
    "table1": (
        table1.render,
        table1.render,
        "device spec comparison (GC200 vs A30)",
    ),
    "fig3": (
        fig3.render,
        fig3.render,
        "exchange latency/bandwidth vs tile distance",
    ),
    "table2": (
        lambda: table2.render(sizes=[1024]),
        lambda: table2.render(),
        "dense/sparse matmul GFLOP/s matrix",
    ),
    "fig4": (
        lambda: fig4.render(base=1024),
        lambda: fig4.render(),
        "skewed matmul, GPU vs IPU",
    ),
    "fig5": (
        fig5.render,
        fig5.render,
        "IPU graph/memory growth with problem size",
    ),
    "fig6": (
        lambda: fig6.render(sizes=[128, 512, 2048]),
        lambda: fig6.render(),
        "linear vs butterfly vs pixelfly layer times",
    ),
    "fig7": (
        lambda: fig7.render(sizes=[128, 512, 2048]),
        lambda: fig7.render(),
        "compute sets & memory per factorization",
    ),
    "table4": (
        lambda: table4.render(
            table4.run(epochs=2, n_train=800, n_test=400)
        ),
        lambda: table4.render(),
        "SHL on synthetic CIFAR-10 (trains a model per method!)",
    ),
    "table5": (
        lambda: table5.render(
            table5.run(
                grid=[(2, 8, 2), (2, 8, 64), (16, 8, 2), (16, 32, 2)],
                epochs=1,
                n_train=400,
                n_test=200,
            )
        ),
        lambda: table5.render(),
        "pixelfly hyper-parameter sweep",
    ),
    "ablations": (
        ablation.render,
        ablation.render,
        "cost-model ablations (streaming, AMP butterfly, sync)",
    ),
    "generations": (
        generations.render,
        generations.render,
        "GC2 vs GC200 generational comparison",
    ),
}

#: Excluded from `all` without --full (they train models for minutes).
SLOW = {"table4", "table5"}


def _default_trace_dir() -> pathlib.Path:
    """``benchmarks/output`` in a source checkout, else the working dir."""
    repo_root = pathlib.Path(__file__).resolve().parents[2]
    candidate = repo_root / "benchmarks" / "output"
    if candidate.parent.is_dir():
        return candidate
    return pathlib.Path("benchmarks/output")


def trace_main(argv: list[str]) -> int:
    """``python -m repro trace <artefact>``: run one driver under a tracer."""
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description="Run one artefact with tracing enabled and write a "
        "Chrome trace-event JSON next to the benchmark outputs.",
    )
    parser.add_argument(
        "artefact", help="artefact name; see 'python -m repro list'"
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale budgets (slow: full training runs)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="output directory (default: benchmarks/output)",
    )
    args = parser.parse_args(argv)
    if args.artefact not in ARTEFACTS:
        parser.error(
            f"unknown artefact {args.artefact!r}; "
            "try 'python -m repro list'"
        )
    fast, full, _ = ARTEFACTS[args.artefact]
    out_dir = args.out if args.out is not None else _default_trace_dir()
    out_dir.mkdir(parents=True, exist_ok=True)
    with obs.tracing() as tracer:
        text = (full if args.full else fast)()
    print(text)
    print()
    trace_path = obs.write_chrome_trace(
        tracer, out_dir / f"{args.artefact}.trace.json"
    )
    summary = obs.flame_summary(tracer)
    summary_path = out_dir / f"{args.artefact}.flame.txt"
    summary_path.write_text(summary + "\n")
    print(summary)
    print(
        f"\n[trace: {trace_path} ({len(tracer.spans)} spans, "
        f"{len(tracer.counters)} counter samples); "
        f"flame summary: {summary_path}]"
    )
    return 0


def chaos_main(argv: list[str]) -> int:
    """``python -m repro chaos``: run the fault-injection suite."""
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Inject seeded faults into the simulator and trainer, "
        "verify recovery, replay determinism, bit-identical kill/resume "
        "and the degraded-tile sweep.  Exits 1 on any failure.",
    )
    parser.add_argument(
        "--seed", type=int, default=0, help="fault-plan seed (default 0)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small models and budgets (CI-sized, a few seconds)",
    )
    parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="also write DIR/chaos.txt",
    )
    args = parser.parse_args(argv)
    # Imported lazily: the chaos harness pulls in the experiment configs.
    from repro.faults.chaos import run_chaos

    text, ok = run_chaos(seed=args.seed, smoke=args.smoke)
    print(text)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / "chaos.txt").write_text(text + "\n")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro", description=__doc__
    )
    parser.add_argument(
        "artefacts",
        nargs="+",
        help="artefact names, 'all', 'list', 'trace <name>', or 'chaos'",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale budgets (slow: full training runs)",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None, help="also write files"
    )
    args = parser.parse_args(argv)

    if args.artefacts == ["list"]:
        for name, (_, _, desc) in ARTEFACTS.items():
            slow = " [slow]" if name in SLOW else ""
            print(f"{name:12s} {desc}{slow}")
        return 0

    names = list(ARTEFACTS) if args.artefacts == ["all"] else args.artefacts
    if args.artefacts == ["all"] and not args.full:
        names = [n for n in names if n not in SLOW]

    unknown = [n for n in names if n not in ARTEFACTS]
    if unknown:
        parser.error(
            f"unknown artefact(s) {unknown}; try 'python -m repro list'"
        )

    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)
    for name in names:
        fast, full, _ = ARTEFACTS[name]
        text = (full if args.full else fast)()
        print(text)
        print()
        if args.out:
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
