"""repro — reproduction of *Reducing Memory Requirements for the IPU using
Butterfly Factorizations* (SC 2023).

Subpackages
-----------
``repro.core``
    Butterfly/pixelfly/fastfood/circulant/low-rank factorization algebra.
``repro.nn``
    Numpy autograd deep-learning framework with structured layers.
``repro.ipu``
    Tile-level GC200 IPU simulator (graph, compiler, BSP executor,
    poplin/popsparse, PopTorch-style bridge).
``repro.gpu``
    A30 GPU cost-model simulator (cuBLAS/cuSPARSE/tensor-core models,
    PyTorch-style bridge).
``repro.linalg``
    From-scratch CSR/COO sparse formats, blocked and skewed matmul.
``repro.datasets``
    Synthetic CIFAR-10/MNIST with planted butterfly structure.
``repro.experiments``
    One driver per paper table/figure.
``repro.faults``
    Deterministic fault injection, atomic checkpoint/resume and the
    chaos-testing harness (``python -m repro chaos``).
``repro.bench``
    Timing harness and table rendering.

Quickstart
----------
>>> from repro import nn
>>> from repro.core import butterfly_param_count
>>> layer = nn.ButterflyLinear(1024, 1024)
>>> layer.param_count() - 1024  # twiddle parameters (minus bias)
20480
>>> butterfly_param_count(1024)
20480
"""

from repro import core, linalg, nn, utils

__version__ = "1.0.0"

__all__ = ["core", "linalg", "nn", "utils", "__version__"]
