"""Seeded workload generator for the differential fuzzer.

Every case is a pure function of ``(seed, index)`` via
``np.random.SeedSequence([seed, index])`` — no global state, no clock,
no platform-dependent draws — so a reproducer stored in the corpus
regenerates bit-identically on any machine (the seed-stability suite
asserts this across ``spawn``-ed processes).

A :class:`Case` bundles everything one fuzz iteration needs: a random
module graph (mixed dense/butterfly/pixelfly/low-rank/circulant/fastfood
layers with odd shapes and degenerate dims), a random
:class:`~repro.ipu.machine.IPUSpec` (tile counts, memory budgets near
the OOM boundary, excluded tiles) and a random run configuration (jobs,
cache on/off, memory planner on/off, fault plans).  Cases round-trip
through plain JSON dicts so the shrinker and the committed corpus can
serialise them.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field

import numpy as np

from repro.ipu.machine import GC200, IPUSpec
from repro.utils import KiB

__all__ = [
    "ACTIVATIONS",
    "DIMS",
    "LAYER_KINDS",
    "Case",
    "LayerSpec",
    "RunConfig",
    "build_model",
    "canonical_json",
    "case_from_dict",
    "case_to_dict",
    "generate_case",
    "generate_cases",
]

#: Linear-layer parameterisations the generator can draw.
LAYER_KINDS = (
    "dense",
    "butterfly",
    "lowrank",
    "circulant",
    "fastfood",
    "pixelfly",
)

#: Per-layer activations (``"none"`` keeps the map affine, which the
#: metamorphic-linearity oracle requires on at least some cases).
ACTIVATIONS = ("none", "relu", "tanh", "sigmoid")

#: The feature-size ladder: deliberately odd and degenerate (1, 3, 7…)
#: alongside the powers of two the structured kinds need.
DIMS = (1, 2, 3, 4, 6, 7, 8, 12, 16, 24, 32, 48, 64)

#: Tile-memory buckets (KiB): tiny budgets sit near the OOM boundary so
#: the cached-vs-cold oracle also exercises cached compile *failures*.
TILE_MEMORY_KIB = (32, 48, 64, 128, 624)


def _is_pow2(n: int) -> bool:
    return n >= 1 and (n & (n - 1)) == 0


@dataclass(frozen=True)
class LayerSpec:
    """One generated layer: a linear kind plus its trailing activation."""

    kind: str
    out_features: int = 0
    rank: int = 1
    block_size: int = 4
    nblocks: int = 1
    increasing_stride: bool = True
    bias: bool = True
    activation: str = "none"
    seed: int = 0


@dataclass(frozen=True)
class RunConfig:
    """How a case is executed: parallelism, cache, planner, faults."""

    jobs: int = 1
    cache: bool = True
    plan_memory: bool = False
    fault_seed: int | None = None
    transient_rate: float = 0.0
    ecc_rate: float = 0.0
    stall_rate: float = 0.0

    @property
    def faulted(self) -> bool:
        return self.fault_seed is not None and (
            self.transient_rate > 0
            or self.ecc_rate > 0
            or self.stall_rate > 0
        )


@dataclass(frozen=True)
class Case:
    """One fuzz iteration: model, device spec and run configuration."""

    seed: int
    index: int
    batch: int
    in_features: int
    layers: tuple[LayerSpec, ...]
    n_tiles: int
    tile_memory_kib: int
    reserved_tile_kib: int
    excluded_tiles: tuple[int, ...] = ()
    run: RunConfig = field(default_factory=RunConfig)

    def spec(self) -> IPUSpec:
        """The case's device, derived from GC200 by field replacement."""
        return dataclasses.replace(
            GC200,
            name=f"fuzz-{self.seed}-{self.index}",
            n_tiles=self.n_tiles,
            tile_memory_bytes=self.tile_memory_kib * KiB,
            reserved_tile_bytes=self.reserved_tile_kib * KiB,
        )

    @property
    def n_layers(self) -> int:
        return len(self.layers)


# -- model construction --------------------------------------------------------


def _make_linear(spec: LayerSpec, in_features: int):
    """Instantiate one linear layer; returns ``(module, out_features)``."""
    from repro import nn

    if spec.kind == "dense":
        return (
            nn.Linear(
                in_features, spec.out_features, bias=spec.bias,
                seed=spec.seed,
            ),
            spec.out_features,
        )
    if spec.kind == "butterfly":
        return (
            nn.ButterflyLinear(
                in_features,
                spec.out_features,
                bias=spec.bias,
                increasing_stride=spec.increasing_stride,
                nblocks=spec.nblocks,
                seed=spec.seed,
            ),
            spec.out_features,
        )
    if spec.kind == "lowrank":
        return (
            nn.LowRankLinear(
                in_features,
                spec.out_features,
                rank=spec.rank,
                bias=spec.bias,
                seed=spec.seed,
            ),
            spec.out_features,
        )
    if spec.kind == "circulant":
        return (
            nn.CirculantLinear(in_features, bias=spec.bias, seed=spec.seed),
            in_features,
        )
    if spec.kind == "fastfood":
        return (
            nn.FastfoodLinear(in_features, bias=spec.bias, seed=spec.seed),
            in_features,
        )
    if spec.kind == "pixelfly":
        return (
            nn.PixelflyLinear(
                in_features,
                block_size=spec.block_size,
                rank=spec.rank,
                bias=spec.bias,
                seed=spec.seed,
            ),
            in_features,
        )
    raise ValueError(f"unknown layer kind {spec.kind!r}")


def _make_activation(name: str):
    from repro import nn

    return {
        "none": None,
        "relu": nn.ReLU(),
        "tanh": nn.Tanh(),
        "sigmoid": nn.Sigmoid(),
    }[name]


def build_model(case: Case):
    """Materialise the case's :class:`~repro.nn.Sequential` model.

    Raises (``ValueError`` from a layer constructor) when the case is
    structurally invalid — the shrinker uses that as its validity probe.
    """
    from repro import nn

    modules = []
    features = case.in_features
    for spec in case.layers:
        layer, features = _make_linear(spec, features)
        modules.append(layer)
        activation = _make_activation(spec.activation)
        if activation is not None:
            modules.append(activation)
    return nn.Sequential(*modules)


def out_features(case: Case) -> int:
    """The model's output width without building it."""
    features = case.in_features
    for spec in case.layers:
        if spec.kind in ("dense", "butterfly", "lowrank"):
            features = spec.out_features
    return features


# -- generation ----------------------------------------------------------------


def _draw_layer(rng: np.random.Generator, in_features: int) -> LayerSpec:
    kinds = ["dense", "butterfly", "lowrank", "circulant"]
    if _is_pow2(in_features) and in_features >= 4:
        kinds.append("fastfood")
    if _is_pow2(in_features) and in_features >= 16:
        kinds.append("pixelfly")
    kind = kinds[int(rng.integers(len(kinds)))]
    out = int(DIMS[int(rng.integers(len(DIMS)))])
    rank = 1
    if kind == "lowrank":
        rank = int(rng.integers(1, 1 + min(4, in_features, out)))
    if kind == "pixelfly":
        rank = int(rng.integers(1, 3))
    return LayerSpec(
        kind=kind,
        out_features=out if kind in ("dense", "butterfly", "lowrank") else 0,
        rank=rank,
        block_size=int(rng.choice([4, 8])) if kind == "pixelfly" else 4,
        nblocks=int(rng.integers(1, 3)) if kind == "butterfly" else 1,
        increasing_stride=bool(rng.integers(2)),
        bias=bool(rng.random() < 0.8),
        activation=str(
            rng.choice(ACTIVATIONS, p=[0.45, 0.2, 0.2, 0.15])
        ),
        seed=int(rng.integers(0, 2**16)),
    )


def generate_case(seed: int, index: int) -> Case:
    """The pure generator: ``(seed, index)`` -> :class:`Case`.

    Deterministic across processes and platforms; the committed corpus
    relies on this (see ``tests/verify/test_seed_stability.py``).
    """
    rng = np.random.default_rng(
        np.random.SeedSequence([int(seed), int(index)])
    )
    batch = int(rng.choice([1, 2, 3, 4, 5, 8, 16]))
    in_features = int(DIMS[int(rng.integers(len(DIMS)))])
    layers = []
    features = in_features
    for _ in range(int(rng.integers(1, 5))):
        layer = _draw_layer(rng, features)
        layers.append(layer)
        if layer.kind in ("dense", "butterfly", "lowrank"):
            features = layer.out_features

    n_tiles = int(rng.integers(4, 65))
    tile_memory_kib = int(rng.choice(TILE_MEMORY_KIB))
    reserved_tile_kib = 16 if tile_memory_kib >= 64 else 4
    excluded: tuple[int, ...] = ()
    if rng.random() < 0.3 and n_tiles >= 6:
        k = int(rng.integers(1, 1 + n_tiles // 3))
        excluded = tuple(
            sorted(int(t) for t in rng.choice(n_tiles, size=k, replace=False))
        )

    fault_seed = None
    transient = ecc = stall = 0.0
    if rng.random() < 0.35:
        fault_seed = int(rng.integers(0, 2**31))
        transient = float(rng.choice([0.0, 0.05, 0.1]))
        ecc = float(rng.choice([0.0, 0.05, 0.1]))
        stall = float(rng.choice([0.0, 0.05]))
    run = RunConfig(
        jobs=2 if rng.random() < 0.12 else 1,
        cache=bool(rng.random() < 0.8),
        plan_memory=bool(rng.random() < 0.5),
        fault_seed=fault_seed,
        transient_rate=transient,
        ecc_rate=ecc,
        stall_rate=stall,
    )
    return Case(
        seed=int(seed),
        index=int(index),
        batch=batch,
        in_features=in_features,
        layers=tuple(layers),
        n_tiles=n_tiles,
        tile_memory_kib=tile_memory_kib,
        reserved_tile_kib=reserved_tile_kib,
        excluded_tiles=excluded,
        run=run,
    )


def generate_cases(seed: int, n: int, start: int = 0) -> list[Case]:
    """Cases ``start .. start+n-1`` of stream *seed*."""
    return [generate_case(seed, index) for index in range(start, start + n)]


# -- serialisation -------------------------------------------------------------


def case_to_dict(case: Case) -> dict:
    """Plain-JSON form of a case (tuples become lists)."""
    d = dataclasses.asdict(case)
    d["layers"] = [dataclasses.asdict(layer) for layer in case.layers]
    d["excluded_tiles"] = list(case.excluded_tiles)
    d["run"] = dataclasses.asdict(case.run)
    return d


def case_from_dict(d: dict) -> Case:
    """Inverse of :func:`case_to_dict`."""
    return Case(
        seed=int(d["seed"]),
        index=int(d["index"]),
        batch=int(d["batch"]),
        in_features=int(d["in_features"]),
        layers=tuple(LayerSpec(**layer) for layer in d["layers"]),
        n_tiles=int(d["n_tiles"]),
        tile_memory_kib=int(d["tile_memory_kib"]),
        reserved_tile_kib=int(d["reserved_tile_kib"]),
        excluded_tiles=tuple(int(t) for t in d["excluded_tiles"]),
        run=RunConfig(**d["run"]),
    )


def canonical_json(case: Case) -> str:
    """Byte-stable JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(
        case_to_dict(case), sort_keys=True, separators=(",", ":")
    )
