"""The fuzz loop: generate cases, run oracles, shrink failures.

:func:`run_fuzz` drives the whole subsystem: for each ``(seed, index)``
it generates a case, runs every applicable oracle under a ``verify.case``
trace span, counts ``verify.{cases,failures,shrink_steps}`` metrics, and
— when shrinking is enabled — minimises each failure and stores it in
the corpus.  The resulting :class:`FuzzReport` renders as text for the
CLI and contributes the ``verify`` section of ``repro.run/1`` manifests
(:func:`repro.obs.report.verify_section`).
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

from repro.obs import get_registry, get_tracer
from repro.verify import shrink as shrinkmod
from repro.verify.gen import Case, generate_case
from repro.verify.hooks import plant as make_plant
from repro.verify.oracles import ORACLES, OracleFailure, check_case

__all__ = ["FuzzFailure", "FuzzReport", "run_fuzz"]


@dataclass(frozen=True)
class FuzzFailure:
    """One oracle disagreement, possibly with its shrunken reproducer."""

    index: int
    oracle: str
    detail: str
    case: Case
    shrunk: Case | None = None
    shrink_steps: int = 0
    corpus_path: str | None = None


@dataclass
class FuzzReport:
    """Outcome of one fuzz run (rendered by the CLI and the manifest)."""

    seed: int
    n_cases: int
    oracles_run: dict[str, int] = field(default_factory=dict)
    failures: list[FuzzFailure] = field(default_factory=list)
    plant: str | None = None

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def shrink_steps(self) -> int:
        return sum(f.shrink_steps for f in self.failures)

    def render(self) -> str:
        lines = [
            f"fuzz: seed={self.seed} cases={self.n_cases} "
            f"failures={len(self.failures)}"
            + (f" plant={self.plant}" if self.plant else "")
        ]
        lines.append("oracle runs:")
        for name in ORACLES:
            runs = self.oracles_run.get(name, 0)
            lines.append(f"  {name:<22s} x{runs}")
        for failure in self.failures:
            lines.append("")
            lines.append(
                f"FAIL case {failure.index} [{failure.oracle}]: "
                f"{failure.detail}"
            )
            if failure.shrunk is not None:
                lines.append(
                    f"  shrunk in {failure.shrink_steps} steps to: "
                    f"{shrinkmod.describe(failure.shrunk)}"
                )
            if failure.corpus_path:
                lines.append(f"  reproducer: {failure.corpus_path}")
        if self.ok:
            lines.append("all oracles agree")
        return "\n".join(lines)


def _check_one(case: Case, oracles: list[str] | None):
    """Run the oracles on one case; returns ``(ran, failure_or_None)``."""
    try:
        ran = check_case(case, oracles=oracles)
        return ran, None
    except OracleFailure as exc:
        return [], (exc.oracle, exc.detail)
    except Exception as exc:  # noqa: BLE001 — a crash is a finding too
        return [], ("crash", f"{type(exc).__name__}: {exc}")


def run_fuzz(
    seed: int = 0,
    cases: int = 50,
    oracles: list[str] | None = None,
    shrink: bool = False,
    corpus_dir=None,
    plant: str | None = None,
    start: int = 0,
) -> FuzzReport:
    """Fuzz ``cases`` generated workloads; returns a :class:`FuzzReport`.

    *oracles* restricts the run to the named oracles (default: all
    applicable ones per case).  With *shrink* set, each failure is
    delta-debugged to a minimal reproducer; with *corpus_dir* also set,
    the reproducer is written there.  *plant* activates a named bug from
    :mod:`repro.verify.hooks` for the whole run (fuzzer self-tests and
    the acceptance gate).
    """
    if oracles is not None:
        unknown = [name for name in oracles if name not in ORACLES]
        if unknown:
            raise ValueError(
                f"unknown oracle(s) {unknown}; choose from "
                f"{', '.join(ORACLES)}"
            )
    tracer = get_tracer()
    registry = get_registry()
    report = FuzzReport(seed=seed, n_cases=cases, plant=plant)
    planted = make_plant(plant) if plant else contextlib.nullcontext()
    with planted:
        for index in range(start, start + cases):
            case = generate_case(seed, index)
            with tracer.span(
                "verify.case",
                category="verify",
                index=index,
                layers=case.n_layers,
                batch=case.batch,
            ) as span:
                ran, failed = _check_one(case, oracles)
                span.attributes["oracles"] = len(ran)
                registry.counter("verify.cases").inc()
                for name in ran:
                    report.oracles_run[name] = (
                        report.oracles_run.get(name, 0) + 1
                    )
                if failed is None:
                    continue
                span.attributes["failed"] = failed[0]
                registry.counter("verify.failures").inc()
                oracle_name, detail = failed
                shrunk = None
                steps = 0
                corpus_path = None
                if shrink and oracle_name in ORACLES:
                    predicate = shrinkmod.make_predicate(oracle_name)
                    shrunk, steps, detail = shrinkmod.shrink(
                        case, predicate
                    )
                    registry.counter("verify.shrink_steps").inc(steps)
                    if corpus_dir is not None:
                        corpus_path = str(
                            shrinkmod.write_reproducer(
                                corpus_dir,
                                shrunk,
                                oracle_name,
                                detail,
                                steps,
                                plant=plant,
                            )
                        )
                report.failures.append(
                    FuzzFailure(
                        index=index,
                        oracle=oracle_name,
                        detail=detail,
                        case=case,
                        shrunk=shrunk,
                        shrink_steps=steps,
                        corpus_path=corpus_path,
                    )
                )
    return report
