"""Planted bugs for exercising the fuzzer itself.

The acceptance test for a differential fuzzer is that it *finds things*:
each hook here re-introduces a known-wrong behavior behind a context
manager, so tests (and ``python -m repro fuzz --plant NAME``) can assert
the oracles catch it and the shrinker reduces the trigger to a tiny
reproducer.  Nothing in this module runs in production paths — the
patches live only inside the ``with`` block.
"""

from __future__ import annotations

import contextlib

import numpy as np

__all__ = ["PLANTS", "plant"]


@contextlib.contextmanager
def _plant_nesterov():
    """Re-introduce the pre-PR-6 nesterov update ``(1 + mu) * v``.

    Wrong from the second step on (the formulas coincide while
    ``v == g``); caught by the ``optimizer_reference`` oracle.
    """
    from repro.nn import optim

    original = optim._nesterov_direction

    def buggy(grad, momentum, velocity):
        return (1.0 + momentum) * velocity

    optim._nesterov_direction = buggy
    try:
        yield
    finally:
        optim._nesterov_direction = original


@contextlib.contextmanager
def _plant_butterfly_scale():
    """Mis-scale ``ButterflyLinear.weight_dense`` by one part in 1e4.

    The factored forward path is untouched, so the materialised weight
    no longer describes the layer — caught by ``forward_dense`` /
    ``metamorphic_probe`` on any case containing a butterfly layer.
    """
    from repro.nn.structured.butterfly import ButterflyLinear

    original = ButterflyLinear.weight_dense

    def skewed(self) -> np.ndarray:
        return original(self) * (1.0 + 1e-4)

    ButterflyLinear.weight_dense = skewed
    try:
        yield
    finally:
        ButterflyLinear.weight_dense = original


#: Registered plants: name -> context-manager factory.
PLANTS = {
    "nesterov": _plant_nesterov,
    "butterfly-scale": _plant_butterfly_scale,
}


def plant(name: str):
    """The named planted-bug context manager."""
    try:
        return PLANTS[name]()
    except KeyError:
        raise ValueError(
            f"unknown plant {name!r}; choose from {', '.join(PLANTS)}"
        ) from None
