"""Seeded differential fuzzer + conformance oracles (docs/VERIFICATION.md).

The pipeline grown in PRs 1–8 has five independently-correct-looking
paths: dense vs factored layers, planned vs unplanned memory, cached vs
fresh compiles, serial vs guarded-parallel grids, and faulted-recovered
vs clean executions.  This package manufactures random workloads
(:mod:`repro.verify.gen`), asserts all paths agree
(:mod:`repro.verify.oracles`), and delta-debugs any disagreement down to
a minimal committed reproducer (:mod:`repro.verify.shrink`).

Entry points::

    python -m repro fuzz --cases 50 --seed 0           # the CLI loop
    python -m repro fuzz --cases 25 --shrink           # + minimisation

    from repro.verify import run_fuzz
    report = run_fuzz(seed=0, cases=50)
    assert report.ok

Every case is a pure function of ``(seed, index)``, so any failure —
local, in CI, or replayed from ``tests/corpus/`` — regenerates
bit-identically.
"""

from repro.verify.gen import (
    Case,
    LayerSpec,
    RunConfig,
    build_model,
    canonical_json,
    case_from_dict,
    case_to_dict,
    generate_case,
    generate_cases,
)
from repro.verify.oracles import ORACLES, Oracle, OracleFailure, check_case
from repro.verify.runner import FuzzFailure, FuzzReport, run_fuzz
from repro.verify.shrink import (
    CORPUS_SCHEMA,
    load_corpus,
    make_predicate,
    shrink,
    write_reproducer,
)

__all__ = [
    "CORPUS_SCHEMA",
    "Case",
    "FuzzFailure",
    "FuzzReport",
    "LayerSpec",
    "ORACLES",
    "Oracle",
    "OracleFailure",
    "RunConfig",
    "build_model",
    "canonical_json",
    "case_from_dict",
    "case_to_dict",
    "check_case",
    "generate_case",
    "generate_cases",
    "load_corpus",
    "make_predicate",
    "run_fuzz",
    "shrink",
    "write_reproducer",
]
