"""Differential and metamorphic oracles over generated cases.

Each oracle runs one generated :class:`~repro.verify.gen.Case` through a
*pair* of pipelines that must agree — the CSmith move, applied to this
repo's five independently-correct-looking paths:

``forward_dense`` / ``backward_dense``
    the factored model vs a dense twin built from each layer's
    ``weight_dense()`` materialisation (the paper's equivalence claim);
``metamorphic_linear`` / ``metamorphic_probe``
    superposition of activation-free models, and the identity-matrix
    probe ``layer(I) == W_dense.T`` per structured layer;
``optimizer_reference``
    SGD + nesterov momentum vs an inline reference update (catches the
    pre-PR-6 nesterov formula when re-planted via
    :mod:`repro.verify.hooks`);
``planned_unplanned``
    slot-aliased execution vs private buffers, bit-identical surviving
    variables, plus a from-scratch re-validation of the memory plan
    against the liveness report;
``cached_cold``
    cold compile vs in-memory hit vs fresh-process disk hit — identical
    memory reports, identical OOM outcomes;
``grid_manifest``
    ``jobs=1`` in-process vs ``jobs=2`` guarded-grid execution of the
    same cells — identical results and metric snapshots;
``chaos_recovery``
    seeded-fault execution vs clean execution — bit-identical state,
    full recovery, deterministic replay.

An oracle signals disagreement by raising :class:`OracleFailure`; the
shrinker minimises whatever case triggered it.
"""

from __future__ import annotations

import contextlib
import dataclasses
import tempfile
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.verify.gen import Case, build_model, case_from_dict, case_to_dict

__all__ = [
    "ORACLES",
    "Oracle",
    "OracleFailure",
    "check_case",
    "check_plan_sound",
    "codelet_doubles",
    "dense_twin",
    "external_inputs",
]


class OracleFailure(AssertionError):
    """Two pipelines that must agree, disagreed."""

    def __init__(self, oracle: str, detail: str) -> None:
        super().__init__(f"[{oracle}] {detail}")
        self.oracle = oracle
        self.detail = detail


# -- shared machinery ----------------------------------------------------------


ESTIMATE_ONLY = (
    "ButterflyStage",
    "BlockSparseMatMul",
    "FWHTStage",
    "FFTStage",
)


def _double_execute(vertex, state):
    """Deterministic stand-in: outputs are a function of all inputs."""
    acc = 0.0
    for edge in vertex.inputs:
        acc += float(np.sum(state[edge.var]))
    for edge in vertex.outputs:
        out = state[edge.var]
        out[...] = np.tanh(acc / (1.0 + out.size)) + 1e-3 * vertex.tile


@contextlib.contextmanager
def codelet_doubles():
    """Temporarily make the estimate-only codelets executable.

    The doubles write input-dependent values over the whole output
    variable, so unsound buffer aliasing or an unrecovered fault shows
    up as divergence rather than silence.
    """
    from repro.ipu.vertices import CODELETS, Codelet, register_codelet

    originals = {name: CODELETS[name] for name in ESTIMATE_ONLY}
    try:
        for name, codelet in originals.items():
            register_codelet(Codelet(name, codelet.cycles, _double_execute))
        yield
    finally:
        for codelet in originals.values():
            register_codelet(codelet)


def external_inputs(graph, seed: int) -> dict:
    """Seeded values for every variable the program never writes."""
    written = {e.var for v in graph.vertices for e in v.outputs}
    for step in graph.program:
        if step.kind == "copy":
            written.add(step.ref[1])
        elif step.kind == "host_write":
            written.add(step.ref)
    rng = np.random.default_rng(seed)
    return {
        name: rng.standard_normal(var.shape)
        for name, var in graph.variables.items()
        if name not in written
    }


def dense_twin(model):
    """The model with every factored layer replaced by its dense twin.

    Twin weights come from ``weight_dense()``; biases are shared values
    (copied), activations are re-instantiated.  By the algebraic
    contract of :mod:`repro.nn.structured`, the twin computes the same
    function — the forward/backward oracles assert exactly that.
    """
    from repro import nn

    modules = []
    for child in model:
        if hasattr(child, "weight_dense"):
            w = child.weight_dense()
            out_f, in_f = w.shape
            lin = nn.Linear(in_f, out_f, bias=child.bias is not None, seed=0)
            lin.weight.data[...] = w
            if child.bias is not None:
                lin.bias.data[...] = child.bias.data
            modules.append(lin)
        elif isinstance(child, nn.Linear):
            out_f, in_f = child.weight.data.shape
            lin = nn.Linear(in_f, out_f, bias=child.bias is not None, seed=0)
            lin.weight.data[...] = child.weight.data
            if child.bias is not None:
                lin.bias.data[...] = child.bias.data
            modules.append(lin)
        else:
            modules.append(type(child)())
    return nn.Sequential(*modules)


def _case_input(case: Case, salt: int) -> np.ndarray:
    rng = np.random.default_rng(
        np.random.SeedSequence([case.seed, case.index, salt])
    )
    return rng.standard_normal((case.batch, case.in_features))


def _lowered(case: Case):
    """The case's model lowered onto its generated spec."""
    from repro.ipu.poptorch import IPUModule

    model = build_model(case)
    spec = case.spec()
    module = IPUModule(model, case.in_features, case.batch, spec=spec)
    return model, spec, module.graph


def _agree(oracle: str, got, want, what: str, rtol=1e-6, atol=1e-7) -> None:
    try:
        np.testing.assert_allclose(got, want, rtol=rtol, atol=atol)
    except AssertionError as exc:
        raise OracleFailure(
            oracle, f"{what} disagrees: {str(exc).strip().splitlines()[0]}"
        ) from None


# -- dense-equivalence oracles -------------------------------------------------


def forward_dense(case: Case) -> None:
    """Factored forward == dense-twin forward (the paper's claim)."""
    from repro.nn.tensor import Tensor

    model = build_model(case)
    twin = dense_twin(model)
    x = _case_input(case, 1)
    got = model(Tensor(x)).data
    want = twin(Tensor(x)).data
    _agree("forward_dense", got, want, "forward output")


def backward_dense(case: Case) -> None:
    """Input gradients of the factored model match the dense twin's."""
    from repro.nn.tensor import Tensor

    model = build_model(case)
    twin = dense_twin(model)
    x = _case_input(case, 2)
    grads = []
    for m in (model, twin):
        xt = Tensor(x.copy(), requires_grad=True)
        out = m(xt)
        weights = Tensor(
            np.random.default_rng(
                np.random.SeedSequence([case.seed, case.index, 4])
            ).standard_normal(out.data.shape)
        )
        (out * weights).sum().backward()
        grads.append(xt.grad)
    _agree("backward_dense", grads[0], grads[1], "input gradient")


def batched_forward(case: Case) -> None:
    """A batch forward is *bit-identical* to per-request forwards.

    The serving micro-batcher packs independent requests into one
    compiled batch and pads the remainder
    (:mod:`repro.serve.batcher`), which is only sound if
    :meth:`IPUModule.forward` gives every row the same bytes it would
    get alone.  Padding to the fixed compiled batch keeps the BLAS call
    shapes identical on both paths, so the comparison is exact equality
    — not allclose.
    """
    from repro.ipu.poptorch import IPUModule

    model = build_model(case)
    module = IPUModule(
        model, case.in_features, case.batch, spec=case.spec()
    )
    x = _case_input(case, 7)
    batched = module.forward(x)
    rows = [module.forward(x[i : i + 1]) for i in range(case.batch)]
    sequential = np.vstack(rows)
    if not np.array_equal(batched, sequential):
        worst = float(np.max(np.abs(batched - sequential)))
        raise OracleFailure(
            "batched_forward",
            f"batched forward differs from concatenated single-request "
            f"forwards (max |delta| = {worst:.3e})",
        )


def metamorphic_linear(case: Case) -> None:
    """Superposition: activation-free models are affine maps."""
    from repro.nn.tensor import Tensor

    model = build_model(case)
    x = _case_input(case, 5)
    y = _case_input(case, 6)
    alpha, beta = 0.75, -1.25

    def f(arr):
        return model(Tensor(arr)).data

    f0 = f(np.zeros_like(x))
    lhs = f(alpha * x + beta * y) - f0
    rhs = alpha * (f(x) - f0) + beta * (f(y) - f0)
    _agree("metamorphic_linear", lhs, rhs, "superposition", atol=1e-8)


def metamorphic_probe(case: Case) -> None:
    """Identity probe: ``layer(I) - bias == weight_dense().T`` per layer."""
    from repro.nn.tensor import Tensor

    model = build_model(case)
    for child in model:
        if not hasattr(child, "weight_dense"):
            continue
        w = child.weight_dense()
        in_f = w.shape[1]
        got = child(Tensor(np.eye(in_f))).data
        if child.bias is not None:
            got = got - child.bias.data
        _agree(
            "metamorphic_probe",
            got,
            w.T,
            f"{type(child).__name__} identity probe",
        )


# -- optimizer oracle ----------------------------------------------------------


def optimizer_reference(case: Case) -> None:
    """Three nesterov-SGD steps vs an inline reference update.

    The reference recomputes ``v = mu*v + g`` and ``d = g + mu*v`` from
    the captured gradients; the two parameter trajectories must agree to
    float round-off.  The formulas coincide on the first step (where
    ``v == g``), so a wrong look-ahead — e.g. the pre-PR-6
    ``(1 + mu) * v`` — only diverges from step two onward; hence three
    steps.
    """
    from repro import nn
    from repro.nn.tensor import Tensor

    lr, mu = 0.05, 0.9
    model = build_model(case)
    params = list(model.parameters())
    if not params:
        return
    opt = nn.SGD(params, lr=lr, momentum=mu, nesterov=True)
    shadow = [p.data.copy() for p in params]
    velocity: list[np.ndarray | None] = [None] * len(params)
    for step in range(3):
        x = Tensor(_case_input(case, 40 + step))
        out = model(x)
        weights = Tensor(
            np.random.default_rng(
                np.random.SeedSequence([case.seed, case.index, 50 + step])
            ).standard_normal(out.data.shape)
        )
        opt.zero_grad()
        (out * weights).sum().backward()
        grads = [None if p.grad is None else p.grad.copy() for p in params]
        opt.step()
        for i, g in enumerate(grads):
            if g is None:
                continue
            if velocity[i] is None:
                velocity[i] = g.copy()
            else:
                velocity[i] *= mu
                velocity[i] += g
            shadow[i] -= lr * (g + mu * velocity[i])
        for i, p in enumerate(params):
            if grads[i] is None:
                continue
            if not np.allclose(shadow[i], p.data, rtol=1e-12, atol=1e-12):
                raise OracleFailure(
                    "optimizer_reference",
                    f"nesterov trajectory diverged from the reference "
                    f"update at step {step + 1}, parameter {i} "
                    f"(max |Δ| = "
                    f"{float(np.max(np.abs(shadow[i] - p.data))):.3g})",
                )


# -- compile/plan/execute oracles ----------------------------------------------


def check_plan_sound(graph, plan) -> None:
    """Re-validate a memory plan against a fresh liveness analysis.

    Independent of the planner's own bookkeeping: recomputes liveness
    and checks every shared slot's members have disjoint, ordered live
    ranges, that no non-founding member is upward-exposed, partially
    defined or used before its definition, and that every member fits
    its slot.
    """
    from repro.ipu.liveness import compute_liveness

    report = compute_liveness(graph)
    intervals = {
        iv.var: iv for iv in (*report.intervals, *report.always_live)
    }
    for slot in plan.slots:
        prev = None
        for position, name in enumerate(slot.members):
            iv = intervals.get(name)
            if iv is None:
                raise OracleFailure(
                    "planned_unplanned",
                    f"slot {slot.index} member {name!r} has no live "
                    "interval",
                )
            if iv.nbytes > slot.nbytes:
                raise OracleFailure(
                    "planned_unplanned",
                    f"{name!r} ({iv.nbytes} B) exceeds slot {slot.index} "
                    f"({slot.nbytes} B)",
                )
            if position > 0:
                if iv.upward_exposed:
                    raise OracleFailure(
                        "planned_unplanned",
                        f"upward-exposed {name!r} reuses slot {slot.index}",
                    )
                if not iv.fully_defined or not iv.def_before_use:
                    raise OracleFailure(
                        "planned_unplanned",
                        f"{name!r} reuses slot {slot.index} without a "
                        "dominating full definition",
                    )
                if prev is not None and iv.start <= prev.end:
                    raise OracleFailure(
                        "planned_unplanned",
                        f"live ranges of {prev.var!r} [{prev.start},"
                        f"{prev.end}] and {name!r} [{iv.start},{iv.end}] "
                        f"overlap in slot {slot.index}",
                    )
            prev = iv


def planned_unplanned(case: Case) -> None:
    """Slot-aliased execution is bit-identical to private buffers."""
    from repro.ipu.compiler import compile_graph
    from repro.ipu.executor import Executor

    _model, spec, graph = _lowered(case)
    exclude = case.excluded_tiles or None
    planned = compile_graph(
        graph, spec, check_fit=False, exclude_tiles=exclude,
        plan_memory=True,
    )
    unplanned = compile_graph(
        graph, spec, check_fit=False, exclude_tiles=exclude
    )
    inputs = external_inputs(graph, seed=case.seed * 1_000_003 + case.index)
    with codelet_doubles():
        out, _ = Executor(planned).run(inputs, check_aliasing=True)
        ref, _ = Executor(unplanned).run(inputs)
    plan = planned.memory_plan()
    for name in sorted(plan.surviving_variables()):
        if not np.array_equal(out[name], ref[name]):
            raise OracleFailure(
                "planned_unplanned",
                f"surviving variable {name!r} differs between planned "
                "and unplanned execution",
            )
    check_plan_sound(graph, plan)


def cached_cold(case: Case) -> None:
    """Cold compile, memory hit and disk hit return identical artefacts.

    Includes failure parity: a compile that OOMs cold must OOM
    identically when served from the cache.
    """
    from repro.cache import CompilationCache
    from repro.ipu.compiler import compile_graph

    def outcome(cache):
        try:
            compiled = compile_graph(
                graph,
                spec,
                check_fit=True,
                exclude_tiles=case.excluded_tiles or None,
                cache=cache,
                plan_memory=case.run.plan_memory,
            )
        except Exception as exc:  # noqa: BLE001 — outcome parity check
            return ("error", type(exc).__name__, str(exc))
        mem = compiled.memory
        return (
            "ok",
            tuple(float(b) for b in mem.per_tile_bytes),
            float(mem.total_bytes),
            bool(mem.fits),
        )

    _model, spec, graph = _lowered(case)
    with tempfile.TemporaryDirectory() as tmp:
        cache = CompilationCache(path=tmp)
        cold = outcome(cache)
        hit = outcome(cache)
        if cache.stats.hits < 1:
            raise OracleFailure(
                "cached_cold",
                f"second compile did not hit the cache: {cache.stats}",
            )
        fresh = CompilationCache(path=tmp)
        disk = outcome(fresh)
        if fresh.stats.hits < 1:
            raise OracleFailure(
                "cached_cold",
                f"fresh cache instance missed the disk tier: "
                f"{fresh.stats}",
            )
    if hit != cold:
        raise OracleFailure(
            "cached_cold", f"memory hit differs from cold: {hit} != {cold}"
        )
    if disk != cold:
        raise OracleFailure(
            "cached_cold", f"disk hit differs from cold: {disk} != {cold}"
        )


# -- parallel-grid oracle ------------------------------------------------------


def _grid_worker(config: dict, seed_seq) -> tuple:
    """Picklable cell: compile + estimate one case variant."""
    from repro.ipu.compiler import compile_graph
    from repro.ipu.executor import Executor
    from repro.ipu.poptorch import IPUModule
    from repro.obs import get_registry

    case = case_from_dict(config)
    model = build_model(case)
    spec = case.spec()
    module = IPUModule(model, case.in_features, case.batch, spec=spec)
    compiled = compile_graph(
        module.graph, spec, check_fit=False,
        plan_memory=case.run.plan_memory,
    )
    report = Executor(compiled).estimate()
    get_registry().counter("verify.grid.cells").inc()
    return (
        float(compiled.memory.total_bytes),
        float(compiled.memory.peak_tile_bytes),
        float(report.total_s),
    )


def _grid_counters(registry) -> set:
    """Deterministic counter view of a grid leg's metric snapshot.

    Mirrors ``tests/integration/test_parallel_determinism.py``: histogram
    ``sum`` fields differ in the last ulp between in-process accumulation
    and worker-snapshot merging, and subprocess workers carry ambient
    ``cache.*`` counters the in-process leg lacks, so the comparable
    surface is the non-cache counters.
    """
    return {
        (
            entry["name"],
            tuple(sorted(entry.get("labels", {}).items())),
            entry["value"],
        )
        for entry in registry.snapshot()
        if entry["type"] == "counter"
        and not entry["name"].startswith("cache.")
    }


def grid_manifest(case: Case) -> None:
    """``jobs=1`` vs guarded ``jobs=2``: same results, same metrics."""
    from repro.bench.parallel import run_grid
    from repro.guard import GuardPolicy
    from repro.obs import MetricRegistry, collecting

    configs = [
        case_to_dict(dataclasses.replace(case, batch=b))
        for b in sorted({1, min(case.batch, 2)})
    ]
    serial_reg = MetricRegistry()
    # jobs=1 runs cells in-process against the *global* registry, so the
    # serial leg installs its private one for the duration.
    with collecting(serial_reg):
        serial = run_grid(
            _grid_worker, configs, jobs=1, seed=case.seed,
            registry=serial_reg, name="verify.grid",
        )
    parallel_reg = MetricRegistry()
    parallel = run_grid(
        _grid_worker, configs, jobs=2, seed=case.seed,
        registry=parallel_reg, guard=GuardPolicy(), name="verify.grid",
    )
    if serial != parallel:
        raise OracleFailure(
            "grid_manifest",
            f"jobs=1 and jobs=2 grid results differ: "
            f"{serial} != {parallel}",
        )
    serial_counters = _grid_counters(serial_reg)
    parallel_counters = _grid_counters(parallel_reg)
    if serial_counters != parallel_counters:
        raise OracleFailure(
            "grid_manifest",
            f"jobs=1 and jobs=2 counter snapshots differ: "
            f"{sorted(serial_counters ^ parallel_counters)}",
        )


# -- chaos oracle --------------------------------------------------------------


def chaos_recovery(case: Case) -> None:
    """Recovered faulted execution is bit-identical to a clean one."""
    from repro.faults.injector import FaultInjector
    from repro.faults.plan import FaultPlan
    from repro.ipu.compiler import compile_graph
    from repro.ipu.executor import Executor

    _model, spec, graph = _lowered(case)
    compiled = compile_graph(
        graph, spec, check_fit=False, plan_memory=case.run.plan_memory
    )
    inputs = external_inputs(graph, seed=case.seed * 7_777_777 + case.index)
    plan = FaultPlan.from_rates(
        case.run.fault_seed,
        transient_compute=case.run.transient_rate,
        exchange_corruption=case.run.ecc_rate,
        host_stall=case.run.stall_rate,
    )

    def faulted_run():
        injector = FaultInjector(plan)
        state, timing = Executor(compiled, injector=injector).run(inputs)
        return state, timing, injector.report()

    with codelet_doubles():
        clean, _ = Executor(compiled).run(inputs)
        state1, timing1, report1 = faulted_run()
        state2, timing2, report2 = faulted_run()

    if report1.n_injected and not report1.all_recovered:
        raise OracleFailure(
            "chaos_recovery",
            f"unrecovered faults: {report1.n_injected} injected, "
            f"{report1.n_recovered} recovered",
        )
    for name in sorted(clean):
        if not np.array_equal(clean[name], state1[name]):
            raise OracleFailure(
                "chaos_recovery",
                f"recovered state diverged from clean run at {name!r}",
            )
    for name in sorted(state1):
        if not np.array_equal(state1[name], state2[name]):
            raise OracleFailure(
                "chaos_recovery",
                f"faulted replay not deterministic at {name!r}",
            )
    if (report1.n_injected, report1.n_recovered) != (
        report2.n_injected,
        report2.n_recovered,
    ):
        raise OracleFailure(
            "chaos_recovery",
            f"fault ledger not deterministic across replays: "
            f"{report1.n_injected}/{report1.n_recovered} vs "
            f"{report2.n_injected}/{report2.n_recovered}",
        )
    if timing1.retry_s != timing2.retry_s:
        raise OracleFailure(
            "chaos_recovery",
            "recovery time not deterministic across replays",
        )


# -- registry ------------------------------------------------------------------


@dataclass(frozen=True)
class Oracle:
    """One differential check: when it applies and how to run it."""

    name: str
    desc: str
    check: Callable[[Case], None]
    applies: Callable[[Case], bool] = lambda case: True


def _all_affine(case: Case) -> bool:
    return all(layer.activation == "none" for layer in case.layers)


#: Every registered oracle, in execution order.
ORACLES: dict[str, Oracle] = {
    o.name: o
    for o in (
        Oracle(
            "forward_dense",
            "factored forward equals the dense-twin forward",
            forward_dense,
        ),
        Oracle(
            "backward_dense",
            "input gradients equal the dense twin's",
            backward_dense,
        ),
        Oracle(
            "batched_forward",
            "batched forward bit-identical to per-request forwards",
            batched_forward,
        ),
        Oracle(
            "metamorphic_linear",
            "superposition holds for activation-free models",
            metamorphic_linear,
            applies=_all_affine,
        ),
        Oracle(
            "metamorphic_probe",
            "identity probe recovers weight_dense per layer",
            metamorphic_probe,
        ),
        Oracle(
            "optimizer_reference",
            "nesterov SGD trajectory matches an inline reference",
            optimizer_reference,
        ),
        Oracle(
            "planned_unplanned",
            "slot-aliased execution bit-identical + plan soundness",
            planned_unplanned,
        ),
        Oracle(
            "cached_cold",
            "cold / memory-hit / disk-hit compiles are identical",
            cached_cold,
            applies=lambda case: case.run.cache,
        ),
        Oracle(
            "grid_manifest",
            "jobs=1 vs guarded jobs=2 grids agree",
            grid_manifest,
            applies=lambda case: case.run.jobs > 1,
        ),
        Oracle(
            "chaos_recovery",
            "recovered faulted run bit-identical to clean",
            chaos_recovery,
            applies=lambda case: case.run.faulted,
        ),
    )
}


def check_case(
    case: Case, oracles: list[str] | None = None
) -> list[str]:
    """Run every applicable oracle on *case*; returns the names run.

    Raises :class:`OracleFailure` on the first disagreement.
    """
    if oracles is not None:
        unknown = [name for name in oracles if name not in ORACLES]
        if unknown:
            raise ValueError(
                f"unknown oracle(s) {unknown}; choose from "
                f"{', '.join(ORACLES)}"
            )
    ran = []
    for oracle in ORACLES.values():
        if oracles is not None and oracle.name not in oracles:
            continue
        if not oracle.applies(case):
            continue
        oracle.check(case)
        ran.append(oracle.name)
    return ran
