"""Greedy delta-debugging: minimise a failing case to a tiny reproducer.

Classic ddmin adapted to :class:`~repro.verify.gen.Case` structure: a
fixed catalogue of simplifying edits (drop a layer, step a dimension
down the size ladder, shrink the batch, strip spec and run-config
fields back to defaults) is applied greedily — an edit is kept whenever
the oracle still fails on the edited case — until no edit preserves the
failure.  Structurally invalid candidates (a shrunken dim breaking a
power-of-two constraint, say) are detected by attempting to build the
model and skipped.

Minimal reproducers are written to the committed corpus under
``tests/corpus/`` as ``repro.verify/1`` JSON documents;
``tests/verify/test_corpus_replay.py`` re-runs every stored entry.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Callable, Iterator

from repro.verify.gen import (
    DIMS,
    Case,
    LayerSpec,
    RunConfig,
    build_model,
    case_from_dict,
    case_to_dict,
)
from repro.verify.oracles import OracleFailure, check_case

__all__ = [
    "CORPUS_SCHEMA",
    "load_corpus",
    "make_predicate",
    "shrink",
    "write_reproducer",
]

#: Schema tag of stored reproducers.
CORPUS_SCHEMA = "repro.verify/1"


def _ladder_down(value: int) -> int | None:
    """The largest ladder entry strictly below *value*, if any."""
    lower = [d for d in DIMS if d < value]
    return lower[-1] if lower else None


def _with_layer(case: Case, i: int, layer: LayerSpec) -> Case:
    layers = list(case.layers)
    layers[i] = layer
    return dataclasses.replace(case, layers=tuple(layers))


def _candidates(case: Case) -> Iterator[Case]:
    """Simplifying edits of *case*, most aggressive first."""
    # Drop whole layers (keep at least one).
    if len(case.layers) > 1:
        for i in range(len(case.layers)):
            layers = case.layers[:i] + case.layers[i + 1 :]
            yield dataclasses.replace(case, layers=layers)
    # Shrink the batch and the input width.
    if case.batch > 1:
        yield dataclasses.replace(case, batch=1)
    lower = _ladder_down(case.in_features)
    if lower is not None:
        yield dataclasses.replace(case, in_features=lower)
    # Per-layer simplifications.
    for i, layer in enumerate(case.layers):
        if layer.out_features:
            lower = _ladder_down(layer.out_features)
            if lower is not None:
                yield _with_layer(
                    case, i, dataclasses.replace(layer, out_features=lower)
                )
        if layer.activation != "none":
            yield _with_layer(
                case, i, dataclasses.replace(layer, activation="none")
            )
        if layer.nblocks != 1:
            yield _with_layer(
                case, i, dataclasses.replace(layer, nblocks=1)
            )
        if layer.rank != 1:
            yield _with_layer(case, i, dataclasses.replace(layer, rank=1))
        if not layer.increasing_stride:
            yield _with_layer(
                case, i, dataclasses.replace(layer, increasing_stride=True)
            )
    # Strip the run config back to the quiet defaults.
    run = case.run
    if run.faulted or run.fault_seed is not None:
        yield dataclasses.replace(
            case,
            run=dataclasses.replace(
                run,
                fault_seed=None,
                transient_rate=0.0,
                ecc_rate=0.0,
                stall_rate=0.0,
            ),
        )
    if run.jobs != 1:
        yield dataclasses.replace(
            case, run=dataclasses.replace(run, jobs=1)
        )
    if run.plan_memory:
        yield dataclasses.replace(
            case, run=dataclasses.replace(run, plan_memory=False)
        )
    if not run.cache:
        yield dataclasses.replace(
            case, run=dataclasses.replace(run, cache=True)
        )
    # Strip the device spec back to a small default.
    if case.excluded_tiles:
        yield dataclasses.replace(case, excluded_tiles=())
    if case.n_tiles != 8 and not case.excluded_tiles:
        yield dataclasses.replace(case, n_tiles=8)
    if case.tile_memory_kib != 624:
        yield dataclasses.replace(
            case, tile_memory_kib=624, reserved_tile_kib=16
        )


def _valid(case: Case) -> bool:
    """Structural validity probe: the model must be constructible."""
    if case.excluded_tiles and max(case.excluded_tiles) >= case.n_tiles:
        return False
    if len(case.excluded_tiles) >= case.n_tiles:
        return False
    try:
        build_model(case)
    except Exception:  # noqa: BLE001 — any constructor error means invalid
        return False
    return True


def make_predicate(oracle: str) -> Callable[[Case], str | None]:
    """A predicate returning the failure detail when *oracle* still fails."""

    def predicate(case: Case) -> str | None:
        try:
            check_case(case, oracles=[oracle])
        except OracleFailure as exc:
            return exc.detail
        except Exception as exc:  # noqa: BLE001 — crashes count as failures
            return f"crash: {type(exc).__name__}: {exc}"
        return None

    return predicate


def shrink(
    case: Case,
    predicate: Callable[[Case], str | None],
    max_evals: int = 400,
) -> tuple[Case, int, str]:
    """Greedily minimise *case* while *predicate* keeps failing.

    Returns ``(minimal_case, accepted_steps, final_detail)``.  The
    original case must fail the predicate.  *max_evals* bounds the total
    number of candidate evaluations, so shrinking always terminates
    quickly even on pathological cases.
    """
    detail = predicate(case)
    if detail is None:
        raise ValueError("shrink() requires a case that fails the predicate")
    # Only accept candidates that fail the same *way* — an oracle
    # disagreement must not drift into an unrelated crash (or vice
    # versa) mid-shrink, or the reproducer stops reproducing the
    # original finding.
    want_crash = detail.startswith("crash:")
    steps = 0
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for candidate in _candidates(case):
            evals += 1
            if evals > max_evals:
                break
            if not _valid(candidate):
                continue
            candidate_detail = predicate(candidate)
            if candidate_detail is None:
                continue
            if candidate_detail.startswith("crash:") != want_crash:
                continue
            case = candidate
            detail = candidate_detail
            steps += 1
            improved = True
            break
    return case, steps, detail


# -- the committed corpus ------------------------------------------------------


def write_reproducer(
    corpus_dir: str | pathlib.Path,
    case: Case,
    oracle: str,
    detail: str,
    shrink_steps: int,
    plant: str | None = None,
) -> pathlib.Path:
    """Store a minimal reproducer; returns the written path.

    ``plant`` records which planted bug (if any) produced the failure:
    the replay test asserts such entries *pass* on the clean tree and
    *fail* again with the plant active, pinning the oracle's power.
    """
    corpus_dir = pathlib.Path(corpus_dir)
    corpus_dir.mkdir(parents=True, exist_ok=True)
    entry = {
        "schema": CORPUS_SCHEMA,
        "oracle": oracle,
        "detail": detail,
        "seed": case.seed,
        "index": case.index,
        "shrink_steps": shrink_steps,
        "case": case_to_dict(case),
    }
    if plant is not None:
        entry["plant"] = plant
    path = corpus_dir / f"{oracle}-s{case.seed}-i{case.index}.json"
    path.write_text(
        json.dumps(entry, indent=2, sort_keys=True) + "\n"
    )
    return path


def load_corpus(
    corpus_dir: str | pathlib.Path,
) -> list[tuple[pathlib.Path, dict, Case]]:
    """Every stored reproducer as ``(path, entry, case)``, sorted by name."""
    corpus_dir = pathlib.Path(corpus_dir)
    loaded = []
    for path in sorted(corpus_dir.glob("*.json")):
        entry = json.loads(path.read_text())
        if entry.get("schema") != CORPUS_SCHEMA:
            raise ValueError(
                f"{path} has schema {entry.get('schema')!r}; expected "
                f"{CORPUS_SCHEMA!r}"
            )
        loaded.append((path, entry, case_from_dict(entry["case"])))
    return loaded


def _run_config_repr(run: RunConfig) -> str:
    parts = []
    if run.jobs != 1:
        parts.append(f"jobs={run.jobs}")
    if run.plan_memory:
        parts.append("planned")
    if not run.cache:
        parts.append("no-cache")
    if run.faulted:
        parts.append(f"faults(seed={run.fault_seed})")
    return ",".join(parts) or "quiet"


def describe(case: Case) -> str:
    """One-line human summary of a (typically shrunken) case."""
    layers = "+".join(
        layer.kind
        + (f"({layer.out_features})" if layer.out_features else "")
        for layer in case.layers
    )
    return (
        f"batch={case.batch} in={case.in_features} {layers} "
        f"tiles={case.n_tiles}@{case.tile_memory_kib}KiB "
        f"[{_run_config_repr(case.run)}]"
    )
