"""Parameter counting and compression-ratio accounting.

The paper's headline memory claim — "98.5 % compression" for the butterfly
SHL model — is a parameter-count statement: ``1 - N_params(method) /
N_params(baseline)``.  This module centralises that arithmetic so layers,
experiments and tests all report the same numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["compression_ratio", "CompressionReport"]


def compression_ratio(baseline_params: int, method_params: int) -> float:
    """Fraction of baseline parameters *removed* by the method (in [0, 1))."""
    if baseline_params <= 0:
        raise ValueError(
            f"baseline_params must be positive, got {baseline_params}"
        )
    if method_params < 0:
        raise ValueError(f"method_params must be >= 0, got {method_params}")
    return 1.0 - method_params / baseline_params


@dataclass(frozen=True)
class CompressionReport:
    """Parameter accounting for one model variant against a baseline."""

    method: str
    baseline_params: int
    method_params: int

    @property
    def ratio(self) -> float:
        """Compression ratio (fraction removed)."""
        return compression_ratio(self.baseline_params, self.method_params)

    @property
    def bytes_saved_fp32(self) -> int:
        """Bytes of FP32 weight memory removed."""
        return 4 * (self.baseline_params - self.method_params)

    def __str__(self) -> str:
        return (
            f"{self.method}: {self.method_params} params "
            f"({self.ratio:.1%} compression vs {self.baseline_params})"
        )
