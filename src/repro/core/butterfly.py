"""Butterfly factorization: factors, fast multiply, and dense expansion.

A butterfly matrix ``B`` of size ``n = 2**L`` is a product of ``L`` factors
(Eq. 3 of the paper), each factor a permuted block-diagonal matrix of 2x2
blocks.  Factor ``k`` (stride ``s``) mixes index pairs ``(j, j + s)`` inside
blocks of ``2 s`` entries: every pair has its own learnable 2x2 *twiddle*
block, giving ``2 n`` nonzeros per factor and ``2 n log2 n`` parameters in
total — versus ``n**2`` dense — while keeping an ``O(n log n)`` multiply.

Twiddle layout
--------------
We store all factors as one array ``twiddle`` of shape ``(L, n // 2, 2, 2)``.
Within level ``k`` the ``n // 2`` blocks are ordered by
``(block index, position within stride)``: with stride ``s``, the input is
viewed as ``(n // (2 s), 2, s)`` and ``twiddle[k]`` as ``(n // (2 s), s, 2, 2)``.
The multiply contracts each 2x2 block with its index pair; levels run with
strides ``1, 2, ..., n/2`` (``increasing_stride=True``, decimation-in-time)
or reversed.

The backward pass (needed by :mod:`repro.nn.structured.butterfly`) is
implemented here as well so it can be validated against finite differences
independently of the autograd engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils import as_rng, log2_int

__all__ = [
    "ButterflyFactorization",
    "random_twiddle",
    "identity_twiddle",
    "orthogonal_twiddle",
    "fft_twiddle",
    "butterfly_multiply",
    "butterfly_multiply_with_intermediates",
    "butterfly_multiply_backward",
    "butterfly_factor_dense",
    "butterfly_to_dense",
    "butterfly_param_count",
    "level_stride",
]


def butterfly_param_count(n: int) -> int:
    """Learnable parameters in a size-*n* butterfly: ``2 n log2 n``."""
    return 2 * n * log2_int(n)


def level_stride(level: int, log_n: int, increasing_stride: bool = True) -> int:
    """Pair stride used by *level* (0-based) of an ``n = 2**log_n`` butterfly."""
    if not 0 <= level < log_n:
        raise ValueError(f"level must be in [0, {log_n}), got {level}")
    return 1 << level if increasing_stride else 1 << (log_n - 1 - level)


def _check_twiddle(twiddle: np.ndarray) -> tuple[int, int]:
    """Validate twiddle shape ``(L, n/2, 2, 2)``; return ``(log_n, n)``."""
    if twiddle.ndim != 4 or twiddle.shape[2:] != (2, 2):
        raise ValueError(
            f"twiddle must have shape (log_n, n/2, 2, 2), got {twiddle.shape}"
        )
    log_n = twiddle.shape[0]
    n = 2 * twiddle.shape[1]
    if n != (1 << log_n):
        raise ValueError(
            f"twiddle implies n={n} but has {log_n} levels (need n = 2**levels)"
        )
    return log_n, n


# ---------------------------------------------------------------------------
# Twiddle constructors
# ---------------------------------------------------------------------------


def identity_twiddle(n: int, dtype: np.dtype = np.float64) -> np.ndarray:
    """Twiddle array whose butterfly is the identity matrix."""
    log_n = log2_int(n)
    twiddle = np.zeros((log_n, n // 2, 2, 2), dtype=dtype)
    twiddle[..., 0, 0] = 1
    twiddle[..., 1, 1] = 1
    return twiddle


def random_twiddle(
    n: int,
    seed: int | np.random.Generator | None = 0,
    scale: float | None = None,
    dtype: np.dtype = np.float64,
) -> np.ndarray:
    """Random Gaussian twiddles.

    The default *scale* keeps the expected squared singular values of the
    full product near 1 (each level multiplies variance by ``2 scale**2``),
    matching the initialisation used by learnable butterfly layers.
    """
    log_n = log2_int(n)
    rng = as_rng(seed)
    if scale is None:
        scale = float(np.sqrt(0.5))
    return (
        rng.standard_normal((log_n, n // 2, 2, 2)) * scale
    ).astype(dtype, copy=False)


def orthogonal_twiddle(
    n: int,
    seed: int | np.random.Generator | None = 0,
    dtype: np.dtype = np.float64,
) -> np.ndarray:
    """Twiddles of random 2x2 rotations — the butterfly is exactly orthogonal.

    Used by the synthetic dataset generator to plant an orthogonal mixing
    transform that a learnable butterfly layer can represent exactly.
    """
    log_n = log2_int(n)
    rng = as_rng(seed)
    theta = rng.uniform(0, 2 * np.pi, size=(log_n, n // 2))
    c, s = np.cos(theta), np.sin(theta)
    twiddle = np.empty((log_n, n // 2, 2, 2), dtype=dtype)
    twiddle[..., 0, 0] = c
    twiddle[..., 0, 1] = -s
    twiddle[..., 1, 0] = s
    twiddle[..., 1, 1] = c
    return twiddle


def fft_twiddle(n: int) -> np.ndarray:
    """Cooley–Tukey twiddles: butterfly(bit-reversed x) == DFT(x).

    Level with stride ``s`` combines two size-``s`` DFTs with the classic
    ``[[1, w**p], [1, -w**p]]`` blocks, ``w = exp(-2 pi i / (2 s))`` — the
    ``D`` blocks of Eq. 1.  Returns a complex twiddle array.
    """
    log_n = log2_int(n)
    twiddle = np.zeros((log_n, n // 2, 2, 2), dtype=np.complex128)
    for level in range(log_n):
        s = 1 << level
        w = np.exp(-2j * np.pi * np.arange(s) / (2 * s))  # shape (s,)
        # Blocks at this level: (n // (2 s)) groups, each with s positions.
        blocks = np.tile(w, n // (2 * s))  # (n/2,)
        twiddle[level, :, 0, 0] = 1
        twiddle[level, :, 0, 1] = blocks
        twiddle[level, :, 1, 0] = 1
        twiddle[level, :, 1, 1] = -blocks
    return twiddle


# ---------------------------------------------------------------------------
# Fast multiply and its backward
# ---------------------------------------------------------------------------


def _apply_level(
    twiddle_level: np.ndarray, x: np.ndarray, stride: int
) -> np.ndarray:
    """Apply one butterfly level to batched rows ``x`` of shape (B, n)."""
    batch, n = x.shape
    nblocks = n // (2 * stride)
    x4 = x.reshape(batch, nblocks, 2, stride)
    t4 = twiddle_level.reshape(nblocks, stride, 2, 2)
    # y[b, k, r, p] = sum_c t[k, p, r, c] * x[b, k, c, p]
    y4 = np.einsum("kprc,bkcp->bkrp", t4, x4, optimize=True)
    return y4.reshape(batch, n)


def butterfly_multiply(
    twiddle: np.ndarray, x: np.ndarray, increasing_stride: bool = True
) -> np.ndarray:
    """Apply the butterfly to rows of *x*: returns ``y`` with ``y_i = B x_i``.

    ``x`` may be 1-D (a single vector) or 2-D ``(batch, n)``.  Cost is
    ``O(batch * n log n)`` versus ``O(batch * n**2)`` for the dense matmul
    it replaces.
    """
    log_n, n = _check_twiddle(twiddle)
    x = np.asarray(x)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[None, :]
    if x.shape[1] != n:
        raise ValueError(f"x has {x.shape[1]} features, butterfly expects {n}")
    y = x
    for level in range(log_n):
        stride = level_stride(level, log_n, increasing_stride)
        y = _apply_level(twiddle[level], y, stride)
    return y[0] if squeeze else y


def butterfly_multiply_with_intermediates(
    twiddle: np.ndarray, x: np.ndarray, increasing_stride: bool = True
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Forward pass that also returns each level's *input* (for backward)."""
    log_n, n = _check_twiddle(twiddle)
    x = np.asarray(x)
    if x.ndim != 2 or x.shape[1] != n:
        raise ValueError(f"x must be (batch, {n}), got {x.shape}")
    inputs: list[np.ndarray] = []
    y = x
    for level in range(log_n):
        stride = level_stride(level, log_n, increasing_stride)
        inputs.append(y)
        y = _apply_level(twiddle[level], y, stride)
    return y, inputs


def butterfly_multiply_backward(
    twiddle: np.ndarray,
    inputs: list[np.ndarray],
    grad_out: np.ndarray,
    increasing_stride: bool = True,
) -> tuple[np.ndarray, np.ndarray]:
    """Backward of :func:`butterfly_multiply`.

    Parameters
    ----------
    twiddle, increasing_stride:
        As in the forward pass.
    inputs:
        The per-level inputs saved by
        :func:`butterfly_multiply_with_intermediates`.
    grad_out:
        Gradient w.r.t. the output, shape ``(batch, n)``.

    Returns
    -------
    (grad_twiddle, grad_x):
        Gradients w.r.t. the twiddle array and the input batch.
    """
    log_n, n = _check_twiddle(twiddle)
    grad_t = np.zeros_like(twiddle)
    g = np.asarray(grad_out)
    batch = g.shape[0]
    for level in reversed(range(log_n)):
        stride = level_stride(level, log_n, increasing_stride)
        nblocks = n // (2 * stride)
        x4 = inputs[level].reshape(batch, nblocks, 2, stride)
        g4 = g.reshape(batch, nblocks, 2, stride)
        t4 = twiddle[level].reshape(nblocks, stride, 2, 2)
        # dL/dt[k, p, r, c] = sum_b g[b, k, r, p] * x[b, k, c, p]
        gt = np.einsum("bkrp,bkcp->kprc", g4, x4, optimize=True)
        grad_t[level] = gt.reshape(n // 2, 2, 2)
        # dL/dx[b, k, c, p] = sum_r t[k, p, r, c] * g[b, k, r, p]
        g = np.einsum("kprc,bkrp->bkcp", t4, g4, optimize=True).reshape(
            batch, n
        )
    return grad_t, g


# ---------------------------------------------------------------------------
# Dense expansion
# ---------------------------------------------------------------------------


def butterfly_factor_dense(
    twiddle_level: np.ndarray, stride: int, dtype: np.dtype | None = None
) -> np.ndarray:
    """Dense ``(n, n)`` matrix of a single butterfly factor."""
    n = 2 * twiddle_level.shape[0]
    if stride <= 0 or (2 * stride) > n or n % (2 * stride):
        raise ValueError(f"invalid stride {stride} for n={n}")
    dtype = dtype or twiddle_level.dtype
    mat = np.zeros((n, n), dtype=dtype)
    t4 = twiddle_level.reshape(n // (2 * stride), stride, 2, 2)
    for k in range(n // (2 * stride)):
        base = k * 2 * stride
        for p in range(stride):
            i, j = base + p, base + p + stride
            mat[i, i] = t4[k, p, 0, 0]
            mat[i, j] = t4[k, p, 0, 1]
            mat[j, i] = t4[k, p, 1, 0]
            mat[j, j] = t4[k, p, 1, 1]
    return mat


def butterfly_to_dense(
    twiddle: np.ndarray, increasing_stride: bool = True
) -> np.ndarray:
    """Dense ``(n, n)`` matrix ``B`` with ``B @ v == butterfly_multiply(v)``.

    Implemented by pushing the identity through the fast multiply, so the
    expansion and the fast path can never drift apart.
    """
    _, n = _check_twiddle(twiddle)
    eye = np.eye(n, dtype=twiddle.dtype)
    # Rows of the result are B @ e_i, i.e. columns of B.
    return butterfly_multiply(twiddle, eye, increasing_stride).T


# ---------------------------------------------------------------------------
# Convenience container
# ---------------------------------------------------------------------------


@dataclass
class ButterflyFactorization:
    """A butterfly matrix ``B = B_L ... B_1`` held as its twiddle array.

    This is the ``T_N = B^(N) P^(N)`` object of Eq. 3: an optional input
    permutation (e.g. bit reversal) composed with the butterfly product.
    """

    twiddle: np.ndarray
    increasing_stride: bool = True
    input_permutation: np.ndarray | None = field(default=None)

    def __post_init__(self) -> None:
        self.log_n, self.n = _check_twiddle(self.twiddle)
        if self.input_permutation is not None and len(
            self.input_permutation
        ) != self.n:
            raise ValueError("input permutation length must equal n")

    @classmethod
    def random(
        cls,
        n: int,
        seed: int | np.random.Generator | None = 0,
        increasing_stride: bool = True,
    ) -> "ButterflyFactorization":
        """Random Gaussian butterfly of size *n*."""
        return cls(random_twiddle(n, seed), increasing_stride)

    @property
    def param_count(self) -> int:
        """Learnable parameter count (``2 n log2 n``)."""
        return int(self.twiddle.size)

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Apply ``T x`` (permutation first, then butterfly product)."""
        x = np.asarray(x)
        if self.input_permutation is not None:
            x = x[..., self.input_permutation]
        return butterfly_multiply(self.twiddle, x, self.increasing_stride)

    __call__ = multiply

    def to_dense(self) -> np.ndarray:
        """Dense ``(n, n)`` expansion of the full transform ``T``."""
        dense = butterfly_to_dense(self.twiddle, self.increasing_stride)
        if self.input_permutation is not None:
            perm_mat = np.zeros((self.n, self.n), dtype=dense.dtype)
            perm_mat[np.arange(self.n), self.input_permutation] = 1
            dense = dense @ perm_mat
        return dense

    def factors(self) -> list[np.ndarray]:
        """Dense expansion of each factor, in application order."""
        out = []
        for level in range(self.log_n):
            stride = level_stride(level, self.log_n, self.increasing_stride)
            out.append(butterfly_factor_dense(self.twiddle[level], stride))
        return out
