"""Butterfly factorizations — the paper's primary contribution.

This package contains the structured-matrix algebra the paper ports to the
IPU, as plain-numpy reference implementations:

* :mod:`repro.core.permutations` — bit-reversal and stride permutations used
  by the Cooley–Tukey recursion (Eq. 1/2 of the paper).
* :mod:`repro.core.butterfly` — butterfly factors, the ``O(N log N)``
  multiply, dense expansion, and FFT twiddles (Fig 1).
* :mod:`repro.core.pixelfly` — flat-block-butterfly masks and the pixelated
  butterfly decomposition (block-sparse + low-rank; Fig 2).
* :mod:`repro.core.fastfood`, :mod:`repro.core.circulant`,
  :mod:`repro.core.lowrank` — the baseline structured parameterisations of
  Table 4 (Fastfood, Circulant, Low-rank).
* :mod:`repro.core.compression` — parameter counting and compression ratios.

The differentiable layer wrappers live in :mod:`repro.nn.structured`; they
delegate their numerics to the functions here, so every layer is checkable
against an independent dense expansion.
"""

from repro.core.permutations import (
    bit_reversal_permutation,
    stride_permutation,
    permutation_matrix,
    invert_permutation,
)
from repro.core.butterfly import (
    ButterflyFactorization,
    random_twiddle,
    identity_twiddle,
    orthogonal_twiddle,
    fft_twiddle,
    butterfly_multiply,
    butterfly_factor_dense,
    butterfly_to_dense,
    butterfly_param_count,
)
from repro.core.pixelfly import (
    flat_butterfly_mask,
    block_butterfly_mask,
    PixelflyPattern,
    pixelfly_pattern,
    block_sparse_multiply,
    blocks_to_dense,
    pixelfly_param_count,
)
from repro.core.fastfood import (
    fwht,
    fwht_matrix,
    FastfoodTransform,
    fastfood_param_count,
)
from repro.core.circulant import (
    circulant_multiply,
    circulant_to_dense,
    circulant_param_count,
)
from repro.core.lowrank import lowrank_multiply, lowrank_to_dense, lowrank_param_count
from repro.core.compression import compression_ratio, CompressionReport

__all__ = [
    "bit_reversal_permutation",
    "stride_permutation",
    "permutation_matrix",
    "invert_permutation",
    "ButterflyFactorization",
    "random_twiddle",
    "identity_twiddle",
    "orthogonal_twiddle",
    "fft_twiddle",
    "butterfly_multiply",
    "butterfly_factor_dense",
    "butterfly_to_dense",
    "butterfly_param_count",
    "flat_butterfly_mask",
    "block_butterfly_mask",
    "PixelflyPattern",
    "pixelfly_pattern",
    "block_sparse_multiply",
    "blocks_to_dense",
    "pixelfly_param_count",
    "fwht",
    "fwht_matrix",
    "FastfoodTransform",
    "fastfood_param_count",
    "circulant_multiply",
    "circulant_to_dense",
    "circulant_param_count",
    "lowrank_multiply",
    "lowrank_to_dense",
    "lowrank_param_count",
    "compression_ratio",
    "CompressionReport",
]
