"""Low-rank weight parameterisation ``W = U V^T`` (Table 4 baseline).

With rank ``r`` the layer stores ``2 n r`` parameters and applies in
``O(n r)``.  The paper (following Thomas et al. 2018) uses ``r = 1`` to match
the parameter budgets of the other structured methods, which is also why its
accuracy collapses: a rank-1 hidden transform funnels the entire input
through a single scalar — exactly the failure mode our synthetic CIFAR-10
reproduces.
"""

from __future__ import annotations

import numpy as np

__all__ = ["lowrank_multiply", "lowrank_to_dense", "lowrank_param_count"]


def lowrank_param_count(n: int, rank: int, m: int | None = None) -> int:
    """Parameters of an ``(m x n)`` rank-*r* factorisation: ``(m + n) r``."""
    if rank < 0:
        raise ValueError(f"rank must be non-negative, got {rank}")
    m = n if m is None else m
    return (m + n) * rank


def lowrank_multiply(u: np.ndarray, v: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Compute rows ``y_i = U (V^T x_i)`` without forming ``U V^T``.

    ``u``: ``(m, r)``, ``v``: ``(n, r)``, ``x``: ``(..., n)``.
    Contracting through the rank dimension keeps cost ``O((m + n) r)`` per
    row — the whole point of the parameterisation.
    """
    u = np.asarray(u)
    v = np.asarray(v)
    x = np.asarray(x)
    if u.ndim != 2 or v.ndim != 2 or u.shape[1] != v.shape[1]:
        raise ValueError(
            f"u and v must be (m, r) and (n, r) with equal r, got "
            f"{u.shape} and {v.shape}"
        )
    if x.shape[-1] != v.shape[0]:
        raise ValueError(f"x has {x.shape[-1]} features, expected {v.shape[0]}")
    return (x @ v) @ u.T


def lowrank_to_dense(u: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Dense ``(m, n)`` expansion ``U V^T``."""
    return np.asarray(u) @ np.asarray(v).T
