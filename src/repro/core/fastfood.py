"""Fastfood transform: ``V = (1 / sqrt(n)) * S H G P H B``.

One of the Table 4 baselines (Le et al. 2013, as used by Thomas et al. 2018):
an ``n x n`` transform with only ``3 n`` learnable parameters — three
diagonal matrices ``S`` (scaling), ``G`` (Gaussian) and ``B`` (binary-ish) —
composed with two fixed Walsh–Hadamard transforms ``H`` and a fixed random
permutation ``P``.  The Hadamard transforms mix coordinates at FFT-like cost,
so applying ``V`` is ``O(n log n)``.

The fast Walsh–Hadamard transform (FWHT) here is fully vectorised over the
batch dimension (a reshape/stack butterfly identical in structure to
:func:`repro.core.butterfly.butterfly_multiply` with constant ±1 twiddles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import as_rng, check_power_of_two, log2_int

__all__ = [
    "fwht",
    "fwht_matrix",
    "FastfoodTransform",
    "fastfood_param_count",
]


def fastfood_param_count(n: int) -> int:
    """Learnable parameters of a fastfood transform: ``3 n`` diagonals."""
    check_power_of_two(n)
    return 3 * n


def fwht(x: np.ndarray, normalized: bool = False) -> np.ndarray:
    """Fast Walsh–Hadamard transform along the last axis.

    Unnormalised by default (``H @ H == n * I``); with ``normalized=True``
    the transform is orthonormal (an involution).  Accepts any leading batch
    shape; the last axis length must be a power of two.
    """
    x = np.asarray(x)
    n = x.shape[-1]
    log_n = log2_int(n)
    batch_shape = x.shape[:-1]
    y = x.reshape(-1, n).astype(np.result_type(x, np.float32), copy=True)
    h = 1
    for _ in range(log_n):
        y = y.reshape(-1, n // (2 * h), 2, h)
        a = y[:, :, 0, :].copy()
        b = y[:, :, 1, :].copy()
        y[:, :, 0, :] = a + b
        y[:, :, 1, :] = a - b
        y = y.reshape(-1, n)
        h *= 2
    if normalized:
        y = y / np.sqrt(n)
    return y.reshape(*batch_shape, n)


def fwht_matrix(n: int, normalized: bool = False) -> np.ndarray:
    """Dense Walsh–Hadamard matrix (natural / Hadamard ordering)."""
    check_power_of_two(n)
    return fwht(np.eye(n), normalized=normalized).T


@dataclass
class FastfoodTransform:
    """A fastfood-parameterised ``n x n`` linear map.

    Attributes
    ----------
    s, g, b:
        The three learnable diagonals (``S``, ``G``, ``B``), shape ``(n,)``.
    perm:
        Fixed random permutation applied between the two Hadamards.
    """

    s: np.ndarray
    g: np.ndarray
    b: np.ndarray
    perm: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.s)
        check_power_of_two(n)
        if not (len(self.g) == len(self.b) == len(self.perm) == n):
            raise ValueError("all fastfood components must have length n")
        self.n = n

    @classmethod
    def random(
        cls, n: int, seed: int | np.random.Generator | None = 0
    ) -> "FastfoodTransform":
        """Standard fastfood initialisation.

        ``B`` Rademacher (±1), ``G`` Gaussian, ``S`` chi-distributed scaling
        normalised by ``||G||`` (Le et al.'s recipe), ``P`` uniform.
        """
        check_power_of_two(n)
        rng = as_rng(seed)
        b = rng.choice([-1.0, 1.0], size=n)
        g = rng.standard_normal(n)
        # Chi(n)-distributed row norms relative to ||G||_F.
        s_raw = np.sqrt(rng.chisquare(df=n, size=n))
        s = s_raw / np.sqrt((g**2).sum())
        perm = rng.permutation(n)
        return cls(s=s, g=g, b=b, perm=perm)

    @property
    def param_count(self) -> int:
        """Learnable parameters (the three diagonals)."""
        return 3 * self.n

    def multiply(self, x: np.ndarray) -> np.ndarray:
        """Apply the transform to rows of *x* in ``O(n log n)``.

        ``y = (1/sqrt(n)) * S H G P H B x`` — diagonal scale, Hadamard,
        permute, diagonal, Hadamard, diagonal.
        """
        x = np.asarray(x)
        if x.shape[-1] != self.n:
            raise ValueError(f"x has {x.shape[-1]} features, expected {self.n}")
        y = x * self.b
        y = fwht(y, normalized=True)
        y = y[..., self.perm]
        y = y * self.g
        y = fwht(y, normalized=True)
        return y * self.s

    __call__ = multiply

    def to_dense(self) -> np.ndarray:
        """Dense ``(n, n)`` expansion (columns via basis vectors)."""
        return self.multiply(np.eye(self.n)).T
