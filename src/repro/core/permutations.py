"""Permutations underlying Cooley–Tukey and butterfly factorizations.

Equation 2 of the paper factors a structured transform as block-diagonal
mixing matrices times "some permutation"; for the FFT special case that
permutation is even/odd separation, whose recursive closure is the
bit-reversal permutation.  These routines construct and manipulate those
permutations as index vectors (``perm[i]`` = source index of output ``i``,
i.e. ``y = x[perm]``).
"""

from __future__ import annotations

import numpy as np

from repro.utils import check_power_of_two, log2_int

__all__ = [
    "bit_reversal_permutation",
    "stride_permutation",
    "permutation_matrix",
    "invert_permutation",
    "compose_permutations",
    "is_permutation",
]


def bit_reversal_permutation(n: int) -> np.ndarray:
    """Bit-reversal permutation of length *n* (power of two).

    ``perm[i]`` is ``i`` with its ``log2(n)`` bits reversed.  Applying it to
    the input of a decimation-in-time butterfly network yields the DFT
    (see :func:`repro.core.butterfly.fft_twiddle`).
    """
    log_n = log2_int(n)
    perm = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(log_n):
        rev = (rev << 1) | (perm & 1)
        perm >>= 1
    return rev


def stride_permutation(n: int, stride: int) -> np.ndarray:
    """Stride (perfect-shuffle) permutation ``L^n_s``.

    Reads the input as a ``(stride, n // stride)`` row-major matrix and emits
    it column-major — the even/odd separation of Eq. 1 is
    ``stride_permutation(n, 2)``.
    """
    check_power_of_two(n)
    if stride <= 0 or n % stride != 0:
        raise ValueError(f"stride must divide n, got n={n} stride={stride}")
    return (
        np.arange(n, dtype=np.int64)
        .reshape(n // stride, stride)
        .T.reshape(-1)
        .copy()
    )


def permutation_matrix(perm: np.ndarray, dtype: np.dtype = np.float64) -> np.ndarray:
    """Dense matrix ``P`` with ``P @ x == x[perm]``."""
    perm = np.asarray(perm)
    n = len(perm)
    mat = np.zeros((n, n), dtype=dtype)
    mat[np.arange(n), perm] = 1
    return mat


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse permutation: ``x[perm][inv] == x``."""
    perm = np.asarray(perm)
    inv = np.empty_like(perm)
    inv[perm] = np.arange(len(perm), dtype=perm.dtype)
    return inv


def compose_permutations(outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """Composition such that ``x[compose(p, q)] == x[q][p]``."""
    outer = np.asarray(outer)
    inner = np.asarray(inner)
    if len(outer) != len(inner):
        raise ValueError("permutations must have equal length")
    return inner[outer]


def is_permutation(perm: np.ndarray) -> bool:
    """True iff *perm* is a valid permutation of ``range(len(perm))``."""
    perm = np.asarray(perm)
    if perm.ndim != 1:
        return False
    n = len(perm)
    seen = np.zeros(n, dtype=bool)
    valid = (perm >= 0) & (perm < n)
    if not valid.all():
        return False
    seen[perm] = True
    return bool(seen.all())
