"""Pixelated butterfly (pixelfly): flat block butterfly + low-rank terms.

Chen et al. (2021) make the butterfly factorization GPU-friendly with two
changes the paper's Fig 2 illustrates:

* **Flat butterfly** — instead of *multiplying* the ``log n`` factors, take a
  first-order (residual) approximation: ``prod(I + E_k) ~= I + sum(E_k)``.
  The result is a *single* sparse matrix whose support is the union of the
  factor supports — index pairs differing by exactly one power-of-two stride.
* **Block butterfly** — apply the butterfly pattern to a grid of
  ``block_size x block_size`` dense blocks rather than scalars, aligning the
  nonzeros with GPU tile/tensor-core shapes.

A low-rank term ``U V^T`` is added to recover the expressiveness lost by
flattening.  The weight is therefore

    ``W = scatter(blocks, mask) + U @ V^T``

with ``mask`` the flat block-butterfly support over the block grid.

Hyper-parameters (swept in the paper's Table 5):

* ``butterfly_size`` — the size of the *virtual* butterfly whose factor
  supports are flattened; it controls how many stride-bands the mask has
  (``1 + log2(butterfly_size)`` bands including the diagonal).
* ``block_size`` — the dense block edge length.
* ``rank`` — columns of the low-rank factors ("low rank size").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils import check_power_of_two, log2_int

__all__ = [
    "flat_butterfly_mask",
    "block_butterfly_mask",
    "PixelflyPattern",
    "pixelfly_pattern",
    "block_sparse_multiply",
    "block_sparse_multiply_backward",
    "blocks_to_dense",
    "pixelfly_param_count",
]


def flat_butterfly_mask(n: int, n_levels: int | None = None) -> np.ndarray:
    """Boolean ``(n, n)`` support of a flattened butterfly.

    ``mask[i, j]`` is True iff ``i == j`` or ``i ^ j`` is a power of two
    among the first *n_levels* strides — exactly the union of the supports of
    the butterfly factors with strides ``1, 2, ..., 2**(n_levels-1)``.
    With ``n_levels = log2(n)`` (the default) this is the support of the sum
    of *all* factors.
    """
    check_power_of_two(n)
    log_n = log2_int(n)
    if n_levels is None:
        n_levels = log_n
    if not 0 <= n_levels <= log_n:
        raise ValueError(f"n_levels must be in [0, {log_n}], got {n_levels}")
    idx = np.arange(n)
    diff = idx[:, None] ^ idx[None, :]
    mask = diff == 0
    for level in range(n_levels):
        mask |= diff == (1 << level)
    return mask


def block_butterfly_mask(
    n: int, block_size: int, butterfly_size: int | None = None
) -> np.ndarray:
    """Boolean block-grid mask of shape ``(n // bs, n // bs)``.

    The flat-butterfly pattern of a virtual ``butterfly_size`` transform is
    laid over the ``(n // block_size)`` grid: stride bands above the grid size
    wrap modulo the grid (the virtual butterfly is larger than the physical
    block grid), so growing ``butterfly_size`` monotonically densifies the
    mask until it saturates.
    """
    check_power_of_two(n)
    check_power_of_two(block_size, "block_size")
    if block_size > n:
        raise ValueError(f"block_size {block_size} exceeds n {n}")
    nb = n // block_size
    if butterfly_size is None:
        butterfly_size = nb
    check_power_of_two(butterfly_size, "butterfly_size")
    levels = log2_int(butterfly_size)
    idx = np.arange(nb)
    diff = idx[:, None] ^ idx[None, :]
    mask = diff == 0
    for level in range(levels):
        stride = (1 << level) % nb
        if stride == 0:
            # Virtual stride wraps to the diagonal; already covered.
            continue
        mask |= diff == stride
    return mask


@dataclass(frozen=True)
class PixelflyPattern:
    """Materialised pixelfly sparsity pattern for an ``n x n`` weight.

    Attributes
    ----------
    n, block_size, butterfly_size, rank:
        Hyper-parameters (see module docstring).
    block_mask:
        Boolean ``(nb, nb)`` grid mask.
    block_rows, block_cols:
        Index arrays of the active blocks, in row-major mask order — the
        storage order of the packed block values.
    """

    n: int
    block_size: int
    butterfly_size: int
    rank: int
    block_mask: np.ndarray
    block_rows: np.ndarray
    block_cols: np.ndarray

    @property
    def n_blocks(self) -> int:
        """Number of active dense blocks."""
        return int(len(self.block_rows))

    @property
    def nnz(self) -> int:
        """Nonzeros contributed by the block-sparse term."""
        return self.n_blocks * self.block_size**2

    @property
    def density(self) -> float:
        """Block-sparse nnz as a fraction of the dense ``n * n``."""
        return self.nnz / (self.n * self.n)

    def sparse_params(self) -> int:
        """Learnable parameters in the block-sparse term."""
        return self.nnz

    def lowrank_params(self) -> int:
        """Learnable parameters in the ``U V^T`` term (``2 n rank``)."""
        return 2 * self.n * self.rank

    def total_params(self) -> int:
        """All learnable parameters of the pixelfly weight."""
        return self.sparse_params() + self.lowrank_params()


def pixelfly_pattern(
    n: int, block_size: int = 32, butterfly_size: int | None = None, rank: int = 1
) -> PixelflyPattern:
    """Build the :class:`PixelflyPattern` for the given hyper-parameters."""
    mask = block_butterfly_mask(n, block_size, butterfly_size)
    rows, cols = np.nonzero(mask)
    if butterfly_size is None:
        butterfly_size = n // block_size
    if rank < 0:
        raise ValueError(f"rank must be non-negative, got {rank}")
    return PixelflyPattern(
        n=n,
        block_size=block_size,
        butterfly_size=butterfly_size,
        rank=rank,
        block_mask=mask,
        block_rows=rows.astype(np.int64),
        block_cols=cols.astype(np.int64),
    )


def pixelfly_param_count(
    n: int, block_size: int = 32, butterfly_size: int | None = None, rank: int = 1
) -> int:
    """Parameter count of a pixelfly weight without materialising blocks."""
    return pixelfly_pattern(n, block_size, butterfly_size, rank).total_params()


# ---------------------------------------------------------------------------
# Block-sparse numerics
# ---------------------------------------------------------------------------


def block_sparse_multiply(
    blocks: np.ndarray, pattern: PixelflyPattern, x: np.ndarray
) -> np.ndarray:
    """Compute rows ``y_i = W_sparse @ x_i`` for the packed block values.

    ``blocks`` has shape ``(n_blocks, bs, bs)`` in the pattern's storage
    order; ``x`` is ``(batch, n)`` (or 1-D).  The product gathers the input
    block-columns, applies every dense block as a batched matmul, and
    scatter-adds into the output block-rows — the same dataflow the device
    simulators cost out.
    """
    bs = pattern.block_size
    if blocks.shape != (pattern.n_blocks, bs, bs):
        raise ValueError(
            f"blocks must have shape ({pattern.n_blocks}, {bs}, {bs}), "
            f"got {blocks.shape}"
        )
    x = np.asarray(x)
    squeeze = x.ndim == 1
    if squeeze:
        x = x[None, :]
    if x.shape[1] != pattern.n:
        raise ValueError(f"x has {x.shape[1]} features, expected {pattern.n}")
    batch = x.shape[0]
    nb = pattern.n // bs
    xb = x.reshape(batch, nb, bs)
    # Gather input blocks per active block, multiply, scatter-add to rows.
    gathered = xb[:, pattern.block_cols, :]  # (batch, n_blocks, bs)
    partial = np.einsum("kij,bkj->bki", blocks, gathered, optimize=True)
    out = np.zeros((batch, nb, bs), dtype=partial.dtype)
    np.add.at(out, (slice(None), pattern.block_rows), partial)
    out = out.reshape(batch, pattern.n)
    return out[0] if squeeze else out


def block_sparse_multiply_backward(
    blocks: np.ndarray,
    pattern: PixelflyPattern,
    x: np.ndarray,
    grad_out: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Backward of :func:`block_sparse_multiply`.

    Returns ``(grad_blocks, grad_x)`` for 2-D ``x`` and ``grad_out``.
    """
    bs = pattern.block_size
    batch = x.shape[0]
    nb = pattern.n // bs
    xb = x.reshape(batch, nb, bs)
    gb = grad_out.reshape(batch, nb, bs)
    g_rows = gb[:, pattern.block_rows, :]  # (batch, n_blocks, bs)
    x_cols = xb[:, pattern.block_cols, :]
    grad_blocks = np.einsum("bki,bkj->kij", g_rows, x_cols, optimize=True)
    partial = np.einsum("kij,bki->bkj", blocks, g_rows, optimize=True)
    grad_xb = np.zeros_like(xb)
    np.add.at(grad_xb, (slice(None), pattern.block_cols), partial)
    return grad_blocks, grad_xb.reshape(batch, pattern.n)


def blocks_to_dense(blocks: np.ndarray, pattern: PixelflyPattern) -> np.ndarray:
    """Expand packed block values to the dense ``(n, n)`` sparse term."""
    bs = pattern.block_size
    nb = pattern.n // bs
    dense = np.zeros((nb, bs, nb, bs), dtype=blocks.dtype)
    dense[pattern.block_rows, :, pattern.block_cols, :] = blocks
    return dense.transpose(0, 1, 2, 3).reshape(nb * bs, nb * bs)
