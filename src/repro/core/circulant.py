"""Circulant weight parameterisation: ``n`` parameters, FFT-fast multiply.

A circulant matrix ``C`` is fully determined by its first column ``c``:
``C[i, j] = c[(i - j) mod n]``, and ``C @ x`` is the circular convolution
``c * x`` computable in ``O(n log n)`` via the (real) FFT.  This is the
"Circulant" baseline of Table 4.

Both forward and backward passes are provided so the autograd layer can wrap
them; the backward is itself a circular correlation, also FFT-fast.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "circulant_multiply",
    "circulant_multiply_backward",
    "circulant_to_dense",
    "circulant_param_count",
]


def circulant_param_count(n: int) -> int:
    """Learnable parameters of a circulant matrix: its defining vector."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    return n


def circulant_multiply(c: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Compute ``C x`` (circular convolution of *c* with rows of *x*).

    ``c`` is the first column of the circulant; *x* may carry leading batch
    dimensions.  Uses the real FFT — exact for real inputs up to rounding.
    """
    c = np.asarray(c)
    x = np.asarray(x)
    n = c.shape[-1]
    if c.ndim != 1:
        raise ValueError(f"c must be 1-D, got shape {c.shape}")
    if x.shape[-1] != n:
        raise ValueError(f"x has {x.shape[-1]} features, expected {n}")
    return np.fft.irfft(np.fft.rfft(c) * np.fft.rfft(x, axis=-1), n=n, axis=-1)


def circulant_multiply_backward(
    c: np.ndarray, x: np.ndarray, grad_out: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Backward of :func:`circulant_multiply` for 2-D *x*.

    With ``y = c * x`` (circular convolution):

    * ``dL/dx = c (correlate) g`` — convolution with time-reversed ``c``;
    * ``dL/dc = sum_batch x (correlate) g``.

    Both are evaluated via conjugate spectra.
    """
    n = c.shape[-1]
    c_hat = np.fft.rfft(c)
    x_hat = np.fft.rfft(x, axis=-1)
    g_hat = np.fft.rfft(grad_out, axis=-1)
    grad_x = np.fft.irfft(np.conj(c_hat) * g_hat, n=n, axis=-1)
    grad_c = np.fft.irfft((np.conj(x_hat) * g_hat).sum(axis=0), n=n)
    return grad_c, grad_x


def circulant_to_dense(c: np.ndarray, dtype: np.dtype | None = None) -> np.ndarray:
    """Dense ``(n, n)`` circulant with first column *c*."""
    c = np.asarray(c)
    if c.ndim != 1:
        raise ValueError(f"c must be 1-D, got shape {c.shape}")
    n = len(c)
    i = np.arange(n)
    mat = c[(i[:, None] - i[None, :]) % n]
    return mat.astype(dtype) if dtype is not None else mat
