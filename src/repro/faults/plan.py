"""Seeded fault plans: what goes wrong, where, and when.

A :class:`FaultPlan` is the declarative description of a chaos run: a set
of explicitly scheduled :class:`FaultEvent`\\ s (by program step, tile id
and severity) plus optional per-step probabilities for each fault kind.
All randomness flows from one seed through :class:`numpy.random.SeedSequence`
keyed by ``(seed, step, kind)``, so probabilistic faults are a *pure
function* of the plan — every chaos run replays exactly, regardless of the
order in which the executor queries the injector.

Fault kinds (modelled after the failure modes the IPU literature treats as
first-class — tile parity errors, exchange ECC, host preemption, IPU-Link
drops):

* ``transient_compute`` — a tile's superstep fails a parity check; the
  compute set is retried with backoff.
* ``permanent_tile`` — a tile dies for the rest of the run; the graph must
  be recompiled onto the surviving tile set.
* ``exchange_corruption`` — an exchange packet fails ECC; the superstep's
  exchange phase is re-run after a scrub.
* ``host_stall`` — a host I/O step is preempted and stalls.
* ``link_drop`` — a multi-IPU IPU-Link direction drops; collectives retry
  over the surviving direction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "TRANSIENT_COMPUTE",
    "PERMANENT_TILE",
    "EXCHANGE_CORRUPTION",
    "HOST_STALL",
    "LINK_DROP",
    "FAULT_KINDS",
    "FaultEvent",
    "RecoveryPolicy",
    "FaultPlan",
]

TRANSIENT_COMPUTE = "transient_compute"
PERMANENT_TILE = "permanent_tile"
EXCHANGE_CORRUPTION = "exchange_corruption"
HOST_STALL = "host_stall"
LINK_DROP = "link_drop"

#: All fault kinds, in canonical order (the order used for seeded draws).
FAULT_KINDS = (
    TRANSIENT_COMPUTE,
    PERMANENT_TILE,
    EXCHANGE_CORRUPTION,
    HOST_STALL,
    LINK_DROP,
)

_KIND_INDEX = {kind: i for i, kind in enumerate(FAULT_KINDS)}


@dataclass(frozen=True)
class FaultEvent:
    """One fault occurrence: a kind pinned to a program step (and tile).

    ``severity`` scales the fault: for ``transient_compute`` it is the
    number of *failed* attempts before a retry succeeds; for
    ``host_stall`` it multiplies the stall duration; other kinds ignore
    it.
    """

    kind: str
    step: int
    tile: int | None = None
    severity: int = 1

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{FAULT_KINDS}"
            )
        if self.step < 0:
            raise ValueError(f"step must be >= 0, got {self.step}")
        if self.severity < 1:
            raise ValueError(f"severity must be >= 1, got {self.severity}")

    @property
    def key(self) -> tuple[str, int, int | None]:
        """Identity used to deduplicate re-observations of one fault."""
        return (self.kind, self.step, self.tile)


@dataclass(frozen=True)
class RecoveryPolicy:
    """Bounds and costs of the recovery machinery."""

    #: Maximum re-executions of a superstep before a transient fault is
    #: declared fatal.
    max_retries: int = 3
    #: Base exponential-backoff delay before retry attempt 1 (doubles per
    #: subsequent attempt) — models the poll-and-resync the host performs.
    backoff_base_s: float = 1e-6
    #: Host-link stall duration per ``host_stall`` severity unit.
    host_stall_s: float = 500e-6

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_base_s < 0 or self.host_stall_s < 0:
            raise ValueError("backoff_base_s and host_stall_s must be >= 0")

    def backoff_s(self, attempt: int) -> float:
        """Backoff delay before retry *attempt* (1-based, exponential)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt}")
        return self.backoff_base_s * 2.0 ** (attempt - 1)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic, seeded schedule of faults for one execution.

    ``events`` fire unconditionally at their step; ``rates`` maps fault
    kinds to a per-program-step probability of one drawn fault.  Drawn
    faults depend only on ``(seed, step, kind)``, never on query order.
    """

    seed: int = 0
    events: tuple[FaultEvent, ...] = ()
    rates: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "events", tuple(self.events))
        rates = tuple((str(k), float(p)) for k, p in dict(self.rates).items())
        for kind, p in rates:
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r} in rates")
            if not 0.0 <= p <= 1.0:
                raise ValueError(
                    f"rate for {kind!r} must be in [0, 1], got {p}"
                )
        object.__setattr__(self, "rates", rates)

    # -- constructors --------------------------------------------------------

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: no scheduled events, no probabilistic faults."""
        return cls()

    @classmethod
    def from_rates(
        cls, seed: int, **rates: float
    ) -> "FaultPlan":
        """Purely probabilistic plan (kind=probability keyword arguments)."""
        return cls(seed=seed, rates=tuple(rates.items()))

    # -- queries -------------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return not self.events and not any(p > 0 for _, p in self.rates)

    def scheduled_at(self, step: int) -> list[FaultEvent]:
        """Explicitly scheduled events firing at program step *step*."""
        return [e for e in self.events if e.step == step]

    def drawn_at(self, step: int, n_tiles: int) -> list[FaultEvent]:
        """Probabilistic events at *step*, deterministic in (seed, step).

        Each configured kind gets an independent substream keyed by
        ``(seed, step, kind)``; a hit draws the affected tile from the
        same substream.
        """
        drawn: list[FaultEvent] = []
        for kind, p in self.rates:
            if p <= 0.0:
                continue
            rng = np.random.default_rng(
                np.random.SeedSequence(
                    [int(self.seed), int(step), _KIND_INDEX[kind]]
                )
            )
            if rng.random() < p:
                tile = int(rng.integers(0, max(n_tiles, 1)))
                drawn.append(FaultEvent(kind=kind, step=step, tile=tile))
        return drawn

    def faults_at(self, step: int, n_tiles: int) -> list[FaultEvent]:
        """All events (scheduled then drawn) firing at *step*."""
        return self.scheduled_at(step) + self.drawn_at(step, n_tiles)
