"""Chaos harness: drive the simulator and trainer through injected faults.

This module glues the fault subsystem together into runnable
experiments (it imports the experiment configs and the trainer, which is
why it is *not* re-exported from the package root):

* :func:`chaos_execute` — run a compiled-graph estimate under a
  :class:`~repro.faults.plan.FaultPlan`, recovering permanent tile
  deaths by recompiling onto the surviving tile set
  (``compile_graph(..., exclude_tiles=...)``) and re-executing.
* :func:`kill_resume_check` — train, kill mid-epoch, resume from the
  checkpoint, and verify the result is bit-identical to an
  uninterrupted run.
* :func:`degraded_tile_sweep` — the headline robustness number: how many
  dead tiles each Table 4 parameterisation survives before the shrunk
  SRAM genuinely cannot hold it (compressed models survive far more).
* :func:`run_chaos` — the ``python -m repro chaos`` driver: all of the
  above plus a replay-determinism double-run (identical
  :class:`~repro.faults.injector.FaultReport`\\ s *and* identical
  simulated-IPU trace timelines for the same seed).
"""

from __future__ import annotations

import os
import pathlib
import shutil
import tempfile
import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.bench.parallel import run_grid
from repro.bench.reporting import Table
from repro.guard import GuardPolicy, TransientError, run_supervised_grid
from repro.experiments.config import shl_model
from repro.faults.checkpoint import CheckpointManager
from repro.faults.injector import (
    FaultInjector,
    FaultReport,
    PermanentTileFault,
    UnrecoveredFaultError,
)
from repro.faults.plan import (
    EXCHANGE_CORRUPTION,
    HOST_STALL,
    LINK_DROP,
    PERMANENT_TILE,
    TRANSIENT_COMPUTE,
    FaultEvent,
    FaultPlan,
    RecoveryPolicy,
)
from repro.ipu.compiler import IPUOutOfMemoryError, compile_graph
from repro.ipu.executor import ExecutionReport, Executor
from repro.ipu.machine import GC200, IPUSpec
from repro.ipu.multi import M2000, allreduce_time
from repro.ipu.poptorch import lower_model
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.optim import SGD
from repro.nn.trainer import Trainer
from repro.utils import format_seconds

__all__ = [
    "ChaosResult",
    "chaos_execute",
    "default_plan",
    "kill_resume_check",
    "guard_grid_check",
    "degraded_tile_sweep",
    "max_dead_tiles",
    "run_chaos",
    "SCENARIOS",
]


# -- executor chaos -----------------------------------------------------------


@dataclass
class ChaosResult:
    """Outcome of one fault-injected execution."""

    report: ExecutionReport | None
    faults: FaultReport
    excluded_tiles: frozenset[int]
    recompiles: int
    error: str | None

    @property
    def ok(self) -> bool:
        """Run completed and every injected fault was recovered."""
        return (
            self.error is None
            and self.report is not None
            and self.faults.n_fatal == 0
        )


def chaos_execute(
    graph,
    spec: IPUSpec,
    plan: FaultPlan,
    policy: RecoveryPolicy | None = None,
    max_recompiles: int = 16,
    injector: FaultInjector | None = None,
    plan_memory: bool = False,
) -> ChaosResult:
    """Estimate *graph* on *spec* while *plan*'s faults fire.

    Transient faults recover inside the executor (adding retry time to
    the step timings); a :class:`PermanentTileFault` aborts the
    execution, the graph is recompiled with the dead tile excluded, and
    the program re-executes from the top — the fault ledger deduplicates
    re-observed faults so the final report counts each injected fault
    once.  The run is declared failed (``error``) when the shrunk SRAM
    can no longer hold the graph, a transient fault exhausts its retry
    budget, or the recompile limit is hit.
    """
    if injector is None:
        injector = FaultInjector(plan, policy)
    excluded: frozenset[int] = frozenset()
    recompiles = 0
    report: ExecutionReport | None = None
    error: str | None = None
    pending: FaultEvent | None = None
    while True:
        try:
            # Each degraded recompile re-plans: the memory plan lives on
            # logical tiles and is re-folded onto the survivors.
            compiled = compile_graph(
                graph,
                spec,
                exclude_tiles=excluded or None,
                plan_memory=plan_memory,
            )
        except IPUOutOfMemoryError as exc:
            error = str(exc)
            break
        if pending is not None:
            # The recompile that excludes the dead tile IS the recovery.
            injector.record_recovered(pending, retries=1)
            pending = None
        executor = Executor(compiled, injector=injector)
        try:
            report = executor.estimate()
        except PermanentTileFault as fault:
            if recompiles >= max_recompiles:
                error = (
                    f"gave up after {max_recompiles} recompiles "
                    f"(last dead tile: {fault.tile})"
                )
                break
            excluded = excluded | {fault.tile}
            recompiles += 1
            pending = fault.event
            continue
        except UnrecoveredFaultError as exc:
            error = str(exc)
            break
        break
    return ChaosResult(
        report=report,
        faults=injector.report(),
        excluded_tiles=excluded,
        recompiles=recompiles,
        error=error,
    )


def default_plan(seed: int, program) -> FaultPlan:
    """A plan exercising every recoverable fault kind against *program*.

    Scheduled events pin one fault of each kind to a step of the right
    kind (so each fires deterministically); low probabilistic rates add
    seed-dependent extras on top.
    """
    compute_steps = [
        i for i, s in enumerate(program) if s.kind == "compute"
    ]
    host_steps = [
        i
        for i, s in enumerate(program)
        if s.kind in ("host_write", "host_read")
    ]
    if not compute_steps:
        raise ValueError("program has no compute steps to fault")
    events = [
        FaultEvent(
            TRANSIENT_COMPUTE, step=compute_steps[0], tile=3, severity=2
        ),
        FaultEvent(
            EXCHANGE_CORRUPTION,
            step=compute_steps[len(compute_steps) // 2],
            tile=5,
        ),
        FaultEvent(PERMANENT_TILE, step=compute_steps[-1], tile=11),
        FaultEvent(LINK_DROP, step=0),
    ]
    if host_steps:
        events.append(
            FaultEvent(HOST_STALL, step=host_steps[0], severity=2)
        )
    return FaultPlan(
        seed=seed,
        events=tuple(events),
        rates=(
            (TRANSIENT_COMPUTE, 0.02),
            (EXCHANGE_CORRUPTION, 0.02),
        ),
    )


def recover_link_drops(
    plan: FaultPlan,
    injector: FaultInjector,
    nbytes: int,
    machine=M2000,
    n_ipus: int | None = None,
) -> list[tuple[FaultEvent, float, float]]:
    """Recover the plan's ``link_drop`` events over the surviving link.

    For each scheduled link drop the ring all-reduce is retried as a
    chain over the surviving direction (see
    :func:`repro.ipu.multi.allreduce_time`); the extra time over the
    healthy collective is ledgered as that fault's recovery cost.
    Returns ``(event, healthy_s, degraded_s)`` triples.
    """
    out = []
    for event in plan.events:
        if event.kind != LINK_DROP:
            continue
        healthy = allreduce_time(machine, nbytes, n_ipus=n_ipus)
        degraded = allreduce_time(
            machine, nbytes, n_ipus=n_ipus, failed_links=1
        )
        injector.record_recovered(
            event, retries=1, retry_s=degraded - healthy
        )
        out.append((event, healthy, degraded))
    return out


# -- kill/resume --------------------------------------------------------------


class _Killed(Exception):
    """Simulated process death inside the training loop."""


def kill_resume_check(
    seed: int = 0,
    epochs: int = 3,
    kill_after_steps: int = 17,
    checkpoint_every: int = 5,
    dim: int = 64,
    n_samples: int = 240,
    directory: str | None = None,
) -> dict:
    """Train, kill after *kill_after_steps* steps, resume, compare.

    Returns a dict with ``bit_identical`` (losses, accuracies and final
    parameters all byte-equal to an uninterrupted same-seed run),
    ``resumed_from_step`` and the per-run histories.
    """
    rng = np.random.default_rng(np.random.SeedSequence([int(seed), 77]))
    x = rng.normal(size=(n_samples, dim)).astype(np.float64)
    y = rng.integers(0, 4, size=n_samples)
    dataset = ArrayDataset(x, y)

    def build():
        model = shl_model("Butterfly", dim=dim, n_classes=4, seed=seed)
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
        train = DataLoader(dataset, batch_size=16, seed=seed + 1)
        val = DataLoader(dataset, batch_size=16, seed=seed + 2)
        return Trainer(model, opt), train, val

    # Uninterrupted reference.
    ref_trainer, train, val = build()
    ref = ref_trainer.fit(train, val, epochs=epochs)

    tmp = directory or tempfile.mkdtemp(prefix="repro-chaos-ckpt-")
    try:
        manager = CheckpointManager(tmp, keep=3)
        killed_trainer, train, val = build()
        inner = killed_trainer.train_step
        count = [0]

        def dying_step(x, y):
            if count[0] == kill_after_steps:
                raise _Killed()
            count[0] += 1
            return inner(x, y)

        killed_trainer.train_step = dying_step
        killed = False
        try:
            killed_trainer.fit(
                train,
                val,
                epochs=epochs,
                checkpoint=manager,
                checkpoint_every=checkpoint_every,
            )
        except _Killed:
            killed = True

        resumed_trainer, train, val = build()
        resumed = resumed_trainer.fit(
            train,
            val,
            epochs=epochs,
            checkpoint=manager,
            checkpoint_every=checkpoint_every,
        )
    finally:
        if directory is None:
            shutil.rmtree(tmp, ignore_errors=True)

    ref_params = ref_trainer.model.state_dict()
    res_params = resumed_trainer.model.state_dict()
    params_equal = all(
        np.array_equal(ref_params[k], res_params[k]) for k in ref_params
    )
    bit_identical = (
        killed
        and resumed.resumed_from_step is not None
        and resumed.train_loss == ref.train_loss
        and resumed.train_accuracy == ref.train_accuracy
        and resumed.val_loss == ref.val_loss
        and resumed.val_accuracy == ref.val_accuracy
        and resumed.steps == ref.steps
        and resumed.steps_per_epoch == ref.steps_per_epoch
        and params_equal
    )
    return {
        "bit_identical": bit_identical,
        "killed": killed,
        "resumed_from_step": resumed.resumed_from_step,
        "steps": resumed.steps,
        "reference_train_loss": ref.train_loss,
        "resumed_train_loss": resumed.train_loss,
    }


# -- supervised-grid chaos ----------------------------------------------------


def _guard_cell_value(n: int, seed_seq) -> float:
    """The deterministic result of one chaos-grid cell.

    A pure function of ``(n, seed_seq)`` — the seeded draw proves the
    cell saw the same spawned stream no matter how many attempts, which
    worker, or whether it was replayed from the journal.
    """
    rng = np.random.default_rng(seed_seq)
    return float(n) * 10.0 + float(rng.random())


def _guard_clean_worker(config, seed_seq) -> float:
    """The healthy twin of :func:`_guard_grid_worker` (reference runs)."""
    return _guard_cell_value(config[0], seed_seq)


def _guard_grid_worker(config, seed_seq) -> float:
    """Chaos-grid worker: misbehave once, then compute the honest value.

    ``config`` is ``(n, behaviour, marker_dir)``.  Marker files carry
    the "already misbehaved" bit across attempts — each attempt runs in
    a fresh process, so module state cannot:

    * ``kill`` — first attempt dies with ``os._exit`` (no traceback, no
      exception: the supervisor sees only pipe EOF);
    * ``hang`` — first attempt sleeps far past any sane deadline;
    * ``transient`` — first attempt raises :class:`TransientError`;
    * ``poison`` — every attempt raises ``ValueError`` (permanent);
    * ``ok`` — never misbehaves.
    """
    n, behaviour, marker_dir = config
    if behaviour == "poison":
        raise ValueError(f"poisoned config {n}: fails deterministically")
    if behaviour != "ok":
        marker = pathlib.Path(marker_dir) / f"{behaviour}-{n}"
        if not marker.exists():
            marker.write_text("misbehaved\n")
            if behaviour == "kill":
                os._exit(3)
            if behaviour == "hang":
                time.sleep(600.0)
            if behaviour == "transient":
                raise TransientError(
                    f"transient blip for config {n} (attempt 1)"
                )
    return _guard_cell_value(n, seed_seq)


def guard_grid_check(
    seed: int = 0,
    cell_timeout_s: float = 5.0,
    directory: str | None = None,
    jobs: int = 4,
) -> dict:
    """Drive a fig5-shaped grid through worker pathologies and resume it.

    An 8-cell grid runs under supervision with one worker killed
    mid-cell (``os._exit``), one hung past the deadline, two transient
    faults and one permanently poisoned config.  Success requires:

    * the grid completes; every cell except the poisoned one produces a
      result **bit-identical** to a clean serial run of the same cells;
    * the poisoned cell is quarantined, the hang is a deadline kill, and
      the ``guard.*`` counters account for every retry/timeout/rebuild;
    * a second run with ``resume=True`` executes *only* the cell missing
      from the journal (the quarantined one) — everything else replays
      from the journal with identical results.
    """
    tmp = directory or tempfile.mkdtemp(prefix="repro-chaos-guard-")
    marker_dir = pathlib.Path(tmp) / "markers"
    journal_dir = pathlib.Path(tmp) / "journal"
    marker_dir.mkdir(parents=True, exist_ok=True)
    behaviours = [
        "ok", "kill", "transient", "ok", "hang", "transient", "poison", "ok",
    ]
    configs = [
        (n, behaviour, str(marker_dir))
        for n, behaviour in enumerate(behaviours)
    ]
    poison_index = behaviours.index("poison")
    policy = GuardPolicy(
        cell_timeout_s=cell_timeout_s,
        retries=2,
        backoff_base_s=0.01,
        backoff_max_s=0.05,
        seed=seed,
        journal_dir=journal_dir,
    )
    try:
        with obs.collecting() as registry:
            results, report = run_supervised_grid(
                _guard_grid_worker,
                configs,
                policy=policy,
                jobs=jobs,
                seed=seed,
                name="chaos.guard",
            )
        counters = {
            entry["name"]: entry["value"]
            for entry in registry.snapshot()
            if entry["name"].startswith("guard.")
        }
        reference = run_grid(
            _guard_clean_worker,
            [(n,) for n in range(len(behaviours))],
            jobs=1,
            seed=seed,
        )
        survivors_identical = all(
            results[i] == reference[i]
            for i in range(len(behaviours))
            if i != poison_index
        )
        accounted = (
            report.n_quarantined == 1
            and report.cells[poison_index].status == "quarantined"
            and report.total_crashes == 1
            and report.total_timeouts == 1
            and report.total_retries == 4  # kill + hang + 2 transients
            and counters.get("guard.retries") == 4
            and counters.get("guard.timeouts") == 1
            and counters.get("guard.quarantined") == 1
            and counters.get("guard.pool_rebuilds") == 2
        )

        # Resume: only the quarantined cell is missing from the journal.
        resumed, resumed_report = run_supervised_grid(
            _guard_grid_worker,
            configs,
            policy=GuardPolicy(
                retries=0, journal_dir=journal_dir, resume=True, seed=seed
            ),
            jobs=jobs,
            seed=seed,
            name="chaos.guard.resume",
        )
        executed = [c.index for c in resumed_report.cells if c.attempts]
        resume_ok = (
            resumed_report.journal_hits == len(behaviours) - 1
            and executed == [poison_index]
            and all(
                resumed[i] == results[i]
                for i in range(len(behaviours))
                if i != poison_index
            )
        )
    finally:
        if directory is None:
            shutil.rmtree(tmp, ignore_errors=True)
    return {
        "ok": survivors_identical and accounted and resume_ok,
        "survivors_identical": survivors_identical,
        "accounted": accounted,
        "resume_ok": resume_ok,
        "report": report,
        "resumed_report": resumed_report,
        "counters": counters,
    }


# -- degraded-tile sweep ------------------------------------------------------


def max_dead_tiles(
    graph,
    spec: IPUSpec = GC200,
    seed: int = 0,
    plan_memory: bool = False,
) -> int:
    """Largest number of dead tiles *graph* survives before genuine OOM.

    Tiles die in a seed-fixed shuffled order; the graph recompiles onto
    the survivors (round-robin fold, concentrating memory) and the
    search returns the largest count for which the fold still fits.
    Returns -1 when the graph does not even fit on the healthy device.
    ``plan_memory=True`` gates each degraded recompile on the *planned*
    peak, so graphs with reusable staging buffers survive more dead
    tiles.
    """
    order = np.random.default_rng(
        np.random.SeedSequence([int(seed)])
    ).permutation(spec.n_tiles)

    def fits(k: int) -> bool:
        excl = (
            frozenset(int(t) for t in order[:k]) if k else None
        )
        try:
            compile_graph(
                graph, spec, exclude_tiles=excl, plan_memory=plan_memory
            )
            return True
        except IPUOutOfMemoryError:
            return False

    if not fits(0):
        return -1
    lo, hi = 0, spec.n_tiles - 1
    while lo < hi:
        mid = (lo + hi + 1) // 2
        if fits(mid):
            lo = mid
        else:
            hi = mid - 1
    return lo


def degraded_tile_sweep(
    methods: tuple[str, ...] = ("Baseline", "Butterfly", "Pixelfly"),
    dim: int = 2048,
    batch: int = 50,
    spec: IPUSpec = GC200,
    seed: int = 0,
) -> Table:
    """Dead-tile tolerance of each weight parameterisation (a Table).

    The paper's memory argument, restated as resilience: a compressed
    model's smaller footprint is headroom the runtime can spend
    absorbing failed tiles, so butterfly/pixelfly SHL models keep
    running on a GC200 that has lost most of its tiles while the dense
    baseline gives out much earlier.
    """
    table = Table(
        title=(
            f"Dead-tile tolerance (SHL dim={dim}, batch={batch}, "
            f"{spec.name}: {spec.n_tiles} tiles)"
        ),
        columns=[
            "method",
            "n_params",
            "max dead tiles",
            "survivable fraction",
        ],
    )
    for method in methods:
        model = shl_model(method, dim=dim, seed=seed)
        n_params = sum(p.data.size for p in model.parameters())
        graph, _ = lower_model(model, spec, batch=batch, in_features=dim)
        dead = max_dead_tiles(graph, spec, seed=seed)
        table.add_row(
            method,
            n_params,
            dead,
            f"{dead / spec.n_tiles:.1%}" if dead >= 0 else "does not fit",
        )
    return table


# -- the `python -m repro chaos` driver ---------------------------------------


def _ipu_timeline(tracer) -> list[tuple]:
    """The simulated-IPU trace as comparable tuples (host track excluded:
    wall-clock timings differ between identical runs by construction)."""
    return [
        (s.name, s.category, round(s.start_s, 15), round(s.duration_s, 15),
         s.depth)
        for s in tracer.spans
        if s.track == Executor.TRACE_TRACK
    ]


def _chaos_once(
    graph, spec: IPUSpec, plan: FaultPlan, nbytes: int
) -> tuple[ChaosResult, list, list]:
    """One traced chaos execution (executor faults + link-drop recovery)."""
    injector = FaultInjector(plan)
    with obs.tracing() as tracer:
        result = chaos_execute(graph, spec, plan, injector=injector)
        links = recover_link_drops(plan, injector, nbytes)
    # Re-snapshot the report: recover_link_drops adds ledger entries
    # after chaos_execute already rolled it up.
    result.faults = injector.report()
    return result, links, _ipu_timeline(tracer)


#: Independently runnable chaos scenarios (``--only`` on the CLI).
SCENARIOS = ("executor", "kill-resume", "guard", "tile-sweep")


def run_chaos(
    seed: int = 0,
    smoke: bool = False,
    dim: int | None = None,
    only: str | None = None,
) -> tuple[str, bool]:
    """The full chaos suite; returns (rendered report, success flag).

    Success requires: every injected fault recovered, the double-run
    replay deterministic (identical fault reports *and* identical
    simulated-IPU timelines), the kill/resume check bit-identical, the
    supervised-grid check surviving worker kills/hangs/transient faults
    with bit-identical results and a working resume, and the
    degraded-tile sweep ranking compressed models above the dense
    baseline.  *only* restricts the run to one of :data:`SCENARIOS`.
    """
    if only is not None and only not in SCENARIOS:
        raise ValueError(
            f"unknown chaos scenario {only!r}; choose from {SCENARIOS}"
        )

    def want(scenario: str) -> bool:
        return only is None or only == scenario

    lines: list[str] = []
    ok = True
    spec = GC200

    if want("executor"):
        model_dim = dim if dim is not None else (256 if smoke else 1024)
        model = shl_model("Butterfly", dim=model_dim, seed=seed)
        graph, param_bytes = lower_model(
            model, spec, batch=16 if smoke else 50, in_features=model_dim,
            host_io=True,
        )
        plan = default_plan(seed, graph.program)

        first, links, timeline1 = _chaos_once(graph, spec, plan, param_bytes)
        second, _, timeline2 = _chaos_once(graph, spec, plan, param_bytes)

        lines.append(
            f"chaos run (seed={seed}, butterfly SHL dim={model_dim}, "
            f"{len(graph.program)} program steps)"
        )
        lines.append(str(first.faults))
        if first.error is not None:
            ok = False
            lines.append(f"FAIL: execution did not complete: {first.error}")
        else:
            lines.append(
                f"completed with {first.recompiles} recompile(s); excluded "
                f"tiles {sorted(first.excluded_tiles)}; "
                f"retry overhead {format_seconds(first.report.retry_s)} "
                f"of {format_seconds(first.report.total_s)} total"
            )
        if not first.faults.all_recovered:
            ok = False
            lines.append("FAIL: unrecovered fault(s) in the ledger")
        kinds = first.faults.kinds_injected()
        lines.append(f"fault kinds injected: {', '.join(kinds)}")
        if len(kinds) < 4:
            ok = False
            lines.append(
                f"FAIL: only {len(kinds)} fault kinds fired (need 4+)"
            )
        for event, healthy, degraded in links:
            lines.append(
                f"link_drop at step {event.step}: all-reduce "
                f"{format_seconds(healthy)} -> {format_seconds(degraded)} "
                "over surviving link direction"
            )

        replay_ok = (
            first.faults == second.faults and timeline1 == timeline2
        )
        if replay_ok:
            lines.append(
                "replay determinism: OK (identical fault report and "
                f"{len(timeline1)}-span simulated timeline)"
            )
        else:
            ok = False
            lines.append(
                "FAIL: replay mismatch "
                f"(reports equal: {first.faults == second.faults}, "
                f"timelines equal: {timeline1 == timeline2})"
            )

    if want("kill-resume"):
        resume = kill_resume_check(
            seed=seed,
            epochs=2 if smoke else 3,
            kill_after_steps=9 if smoke else 17,
            dim=32 if smoke else 64,
            n_samples=96 if smoke else 240,
        )
        if resume["bit_identical"]:
            lines.append(
                "kill/resume: OK (killed mid-epoch, resumed from step "
                f"{resume['resumed_from_step']}, bit-identical to "
                "uninterrupted run)"
            )
        else:
            ok = False
            lines.append(f"FAIL: kill/resume mismatch: {resume}")

    if want("guard"):
        guard = guard_grid_check(
            seed=seed, cell_timeout_s=5.0 if smoke else 10.0
        )
        report = guard["report"]
        lines.append("")
        lines.append(
            "supervised grid: 1 worker killed, 1 hung, 2 transient "
            "faults, 1 poisoned config"
        )
        lines.append(report.render())
        if guard["ok"]:
            lines.append(
                "supervised grid: OK (survivors bit-identical to clean "
                "serial run; resume re-executed only the quarantined "
                f"cell, {guard['resumed_report'].journal_hits} journal "
                "hits)"
            )
        else:
            ok = False
            lines.append(
                "FAIL: supervised grid mismatch "
                f"(survivors_identical={guard['survivors_identical']}, "
                f"accounted={guard['accounted']}, "
                f"resume_ok={guard['resume_ok']}, "
                f"counters={guard['counters']})"
            )

    if want("tile-sweep"):
        sweep = degraded_tile_sweep(
            methods=("Baseline", "Butterfly")
            if smoke
            else ("Baseline", "Butterfly", "Pixelfly"),
            dim=512 if smoke else 2048,
            batch=16 if smoke else 50,
            spec=spec,
            seed=seed,
        )
        lines.append("")
        lines.append(sweep.render())
        dense_dead = sweep.rows[0][2]
        compressed_dead = min(row[2] for row in sweep.rows[1:])
        if compressed_dead <= dense_dead:
            ok = False
            lines.append(
                "FAIL: compressed models should survive more dead tiles "
                f"than the dense baseline ({compressed_dead} <= "
                f"{dense_dead})"
            )
        else:
            lines.append(
                "degradation headroom: compressed models survive "
                f"{compressed_dead - dense_dead} more dead tiles than dense"
            )

    lines.append("")
    lines.append("CHAOS OK" if ok else "CHAOS FAILED")
    return "\n".join(lines), ok
