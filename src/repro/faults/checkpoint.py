"""Atomic, corruption-tolerant training checkpoints.

A checkpoint is one ``.npz`` file holding named numpy arrays (model
parameters, optimiser slots) plus a JSON metadata blob (epoch/step
cursor, RNG bit-generator states, partial-epoch metrics).  Writes are
atomic — serialise to a temporary file in the same directory, fsync,
then :func:`os.replace` — so a run killed mid-save never leaves a
half-written "latest" checkpoint: the rename either happened or it
did not.

:class:`CheckpointManager` keeps the ``keep`` most recent checkpoints
and, on load, transparently falls back past corrupt (e.g. truncated)
files to the newest readable one, raising :class:`CheckpointError` only
when *no* checkpoint survives.

This module deliberately imports nothing from ``repro.nn`` or
``repro.ipu`` — the trainer imports *it*, not the other way round.
"""

from __future__ import annotations

import itertools
import json
import os
import re
from pathlib import Path

import numpy as np

__all__ = [
    "CheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "CheckpointManager",
]

#: Reserved npz key carrying the JSON metadata blob.
_META_KEY = "__meta__"

#: Checkpoint format version (bump on incompatible layout changes).
FORMAT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint file is missing, corrupt, or incompatible."""


#: Per-process suffix counter so concurrent saves never share a temp file.
_tmp_counter = itertools.count()


def save_checkpoint(
    path: str | Path, arrays: dict[str, np.ndarray], meta: dict
) -> Path:
    """Atomically write *arrays* + *meta* to *path* (``.npz`` format).

    The temporary file lives in the destination directory so the final
    :func:`os.replace` is a same-filesystem rename (atomic on POSIX).
    Its name is unique per (process, call) — ``<name>.<pid>.<seq>.tmp``
    — so two processes writing the same destination (e.g. a shared
    compilation-cache directory) never interleave partial writes: each
    serialises its own temp file and the last rename wins whole.
    """
    path = Path(path)
    if _META_KEY in arrays:
        raise ValueError(f"array name {_META_KEY!r} is reserved")
    payload = dict(arrays)
    payload[_META_KEY] = np.array(
        json.dumps({"format_version": FORMAT_VERSION, **meta})
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(
        f"{path.name}.{os.getpid()}.{next(_tmp_counter)}.tmp"
    )
    try:
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()
    return path


def load_checkpoint(path: str | Path) -> tuple[dict[str, np.ndarray], dict]:
    """Read a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` (never a raw ``zipfile``/``json``
    error) if the file is unreadable, truncated, or missing its metadata.
    """
    path = Path(path)
    if not path.exists():
        raise CheckpointError(f"checkpoint {path} does not exist")
    try:
        with np.load(path, allow_pickle=False) as data:
            if _META_KEY not in data:
                raise CheckpointError(
                    f"checkpoint {path} has no {_META_KEY} entry"
                )
            meta = json.loads(str(data[_META_KEY]))
            arrays = {
                k: np.asarray(data[k]) for k in data.files if k != _META_KEY
            }
    except CheckpointError:
        raise
    except Exception as exc:  # zipfile/OSError/ValueError/json errors
        raise CheckpointError(
            f"checkpoint {path} is corrupt or unreadable: {exc}"
        ) from exc
    version = meta.pop("format_version", None)
    if version != FORMAT_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has format version {version}, "
            f"expected {FORMAT_VERSION}"
        )
    return arrays, meta


class CheckpointManager:
    """Rotating checkpoint store: ``<dir>/<prefix>-<step>.npz``.

    ``keep`` >= 2 gives the corruption fallback something to fall back
    *to*; ``keep=0`` disables pruning entirely.
    """

    def __init__(
        self,
        directory: str | Path,
        prefix: str = "ckpt",
        keep: int = 3,
    ) -> None:
        if keep < 0:
            raise ValueError(f"keep must be >= 0, got {keep}")
        if not re.fullmatch(r"[A-Za-z0-9_.-]+", prefix):
            raise ValueError(f"prefix must be a simple name, got {prefix!r}")
        self.directory = Path(directory)
        self.prefix = prefix
        self.keep = keep
        self._pattern = re.compile(
            rf"^{re.escape(prefix)}-(\d+)\.npz$"
        )

    def path_for(self, step: int) -> Path:
        return self.directory / f"{self.prefix}-{step:010d}.npz"

    def step_of(self, path: str | Path) -> int:
        """The step number encoded in a checkpoint filename."""
        m = self._pattern.match(Path(path).name)
        if m is None:
            raise ValueError(f"{path} is not a {self.prefix!r} checkpoint")
        return int(m.group(1))

    def checkpoints(self) -> list[Path]:
        """All checkpoint files present, oldest first."""
        if not self.directory.is_dir():
            return []
        found = [
            p
            for p in self.directory.iterdir()
            if self._pattern.match(p.name)
        ]
        return sorted(found, key=self.step_of)

    def save(
        self, step: int, arrays: dict[str, np.ndarray], meta: dict
    ) -> Path:
        """Write the checkpoint for *step* and prune old ones."""
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        path = save_checkpoint(self.path_for(step), arrays, meta)
        self.prune()
        return path

    def prune(self) -> list[Path]:
        """Delete all but the ``keep`` newest checkpoints; returns deleted."""
        if self.keep == 0:
            return []
        existing = self.checkpoints()
        stale = existing[: -self.keep] if len(existing) > self.keep else []
        for p in stale:
            p.unlink()
        return stale

    def load_latest(
        self,
    ) -> tuple[int, dict[str, np.ndarray], dict] | None:
        """Newest *readable* checkpoint as ``(step, arrays, meta)``.

        Corrupt files (truncated writes, bad zip members) are skipped —
        newest first — so a damaged latest checkpoint falls back to its
        predecessor.  Returns ``None`` when the directory holds no
        checkpoints at all; raises :class:`CheckpointError` when every
        checkpoint present is corrupt.
        """
        candidates = self.checkpoints()
        if not candidates:
            return None
        errors: list[str] = []
        for path in reversed(candidates):
            try:
                arrays, meta = load_checkpoint(path)
            except CheckpointError as exc:
                errors.append(str(exc))
                continue
            return self.step_of(path), arrays, meta
        raise CheckpointError(
            "all checkpoints are corrupt:\n  " + "\n  ".join(errors)
        )
