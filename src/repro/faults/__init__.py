"""Fault injection, recovery and checkpointing (`repro.faults`).

The chaos-engineering layer of the reproduction: seeded
:class:`FaultPlan`\\ s describe what goes wrong (tile parity errors,
permanent tile death, exchange ECC failures, host stalls, IPU-Link
drops), the :class:`FaultInjector` delivers them to the executor and
ledgers each fault's fate, and :class:`CheckpointManager` provides the
atomic checkpoint/resume machinery that makes training survive the
fatal ones.

The chaos *harness* — which drives executors, recompiles around dead
tiles and runs kill/resume experiments — lives in
:mod:`repro.faults.chaos` and is imported explicitly (it pulls in the
experiment configs; this package root stays import-light so
``repro.ipu`` and ``repro.nn`` can depend on it without cycles).
"""

from repro.faults.checkpoint import (
    CheckpointError,
    CheckpointManager,
    load_checkpoint,
    save_checkpoint,
)
from repro.faults.injector import (
    NULL_INJECTOR,
    FaultError,
    FaultInjector,
    FaultReport,
    PermanentTileFault,
    UnrecoveredFaultError,
)
from repro.faults.plan import (
    EXCHANGE_CORRUPTION,
    FAULT_KINDS,
    HOST_STALL,
    LINK_DROP,
    PERMANENT_TILE,
    TRANSIENT_COMPUTE,
    FaultEvent,
    FaultPlan,
    RecoveryPolicy,
)

__all__ = [
    "TRANSIENT_COMPUTE",
    "PERMANENT_TILE",
    "EXCHANGE_CORRUPTION",
    "HOST_STALL",
    "LINK_DROP",
    "FAULT_KINDS",
    "FaultEvent",
    "FaultPlan",
    "RecoveryPolicy",
    "FaultError",
    "PermanentTileFault",
    "UnrecoveredFaultError",
    "FaultReport",
    "FaultInjector",
    "NULL_INJECTOR",
    "CheckpointError",
    "CheckpointManager",
    "save_checkpoint",
    "load_checkpoint",
]
