"""The fault injector: delivers planned faults and accounts their fate.

The executor (and the chaos harness, for multi-IPU link faults) asks the
injector which faults fire at each program step; the injector answers from
its :class:`~repro.faults.plan.FaultPlan` and records every observation in
a ledger keyed by the fault's identity, so re-executions after a
recompile (permanent tile failure) do not double-count.  The ledger rolls
up into a :class:`FaultReport` — injected vs recovered vs fatal per kind —
whose equality across two same-seed runs is the chaos suite's
replay-determinism check.

A :data:`NULL_INJECTOR` mirrors the :data:`repro.obs.NULL_TRACER` fast
path: ``active`` is ``False`` and the executor skips every fault hook, so
an un-injected run is byte-identical to the pre-fault code path.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.faults.plan import (
    FAULT_KINDS,
    PERMANENT_TILE,
    FaultEvent,
    FaultPlan,
    RecoveryPolicy,
)
from repro.obs import get_logger, get_registry
from repro.utils import format_seconds

__all__ = [
    "FaultError",
    "PermanentTileFault",
    "UnrecoveredFaultError",
    "FaultReport",
    "FaultInjector",
    "NULL_INJECTOR",
]


class FaultError(RuntimeError):
    """Base class for unrecoverable injected faults."""


class PermanentTileFault(FaultError):
    """A tile died permanently; the graph must be recompiled without it."""

    def __init__(self, event: FaultEvent) -> None:
        super().__init__(
            f"tile {event.tile} failed permanently at program step "
            f"{event.step}; recompile with exclude_tiles to recover"
        )
        self.event = event
        self.tile = event.tile
        self.step = event.step


class UnrecoveredFaultError(FaultError):
    """A retryable fault exhausted the recovery policy's retry budget."""

    def __init__(self, event: FaultEvent, max_retries: int) -> None:
        super().__init__(
            f"{event.kind} fault at step {event.step} (tile {event.tile}) "
            f"not recovered within {max_retries} retries"
        )
        self.event = event


#: Ledger outcomes.
RECOVERED = "recovered"
FATAL = "fatal"


@dataclass
class _LedgerEntry:
    event: FaultEvent
    outcome: str
    retries: int = 0
    retry_s: float = 0.0


@dataclass(frozen=True)
class FaultReport:
    """Summary of one chaos run: injected vs recovered vs fatal per kind.

    Built from the injector's deduplicated ledger; two runs of the same
    seeded plan produce *equal* reports (the replay-determinism check).
    """

    injected: tuple[tuple[str, int], ...]
    recovered: tuple[tuple[str, int], ...]
    fatal: tuple[tuple[str, int], ...]
    total_retries: int
    total_retry_s: float

    @property
    def n_injected(self) -> int:
        return sum(n for _, n in self.injected)

    @property
    def n_recovered(self) -> int:
        return sum(n for _, n in self.recovered)

    @property
    def n_fatal(self) -> int:
        return sum(n for _, n in self.fatal)

    @property
    def all_recovered(self) -> bool:
        """True iff every injected fault was recovered."""
        return self.n_fatal == 0 and self.n_recovered == self.n_injected

    def kinds_injected(self) -> list[str]:
        """Fault kinds that fired at least once, canonical order."""
        return [k for k, n in self.injected if n > 0]

    def render(self) -> str:
        lines = [
            "FaultReport: "
            f"{self.n_injected} injected, {self.n_recovered} recovered, "
            f"{self.n_fatal} fatal; {self.total_retries} retries costing "
            f"{format_seconds(self.total_retry_s)}"
        ]
        counts = {
            "injected": dict(self.injected),
            "recovered": dict(self.recovered),
            "fatal": dict(self.fatal),
        }
        for kind in FAULT_KINDS:
            i = counts["injected"].get(kind, 0)
            if not i:
                continue
            r = counts["recovered"].get(kind, 0)
            f = counts["fatal"].get(kind, 0)
            lines.append(
                f"  {kind:20s} injected={i} recovered={r} fatal={f}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


class FaultInjector:
    """Stateful delivery of a :class:`FaultPlan` plus the outcome ledger."""

    def __init__(
        self,
        plan: FaultPlan | None = None,
        policy: RecoveryPolicy | None = None,
    ) -> None:
        self.plan = plan if plan is not None else FaultPlan.none()
        self.policy = policy if policy is not None else RecoveryPolicy()
        #: Fast-path flag, mirroring ``Tracer.enabled``: when False the
        #: executor skips every fault hook.
        self.active: bool = not self.plan.is_empty
        #: Tiles already declared permanently dead (their faults do not
        #: re-fire after the recompile that excluded them).
        self.dead_tiles: set[int] = set()
        self._ledger: dict[tuple, _LedgerEntry] = {}

    # -- fault delivery -------------------------------------------------------

    def faults_at(self, step: int, n_tiles: int) -> list[FaultEvent]:
        """Faults firing at program step *step* on an *n_tiles* device.

        Permanent-tile faults whose tile is already dead (recovered via
        recompilation) are filtered out, so a re-execution survives the
        step that killed its predecessor.
        """
        events = self.plan.faults_at(step, n_tiles)
        return [
            e
            for e in events
            if not (e.kind == PERMANENT_TILE and e.tile in self.dead_tiles)
        ]

    # -- ledger ---------------------------------------------------------------

    def record_recovered(
        self, event: FaultEvent, retries: int = 0, retry_s: float = 0.0
    ) -> None:
        """Mark *event* recovered (idempotent per fault identity)."""
        first = event.key not in self._ledger
        self._ledger[event.key] = _LedgerEntry(
            event, RECOVERED, retries=retries, retry_s=retry_s
        )
        if event.kind == PERMANENT_TILE and event.tile is not None:
            self.dead_tiles.add(event.tile)
        registry = get_registry()
        if registry.enabled:
            # Metric counters mirror first-observation semantics (the
            # ledger stays authoritative for replay checks): a fault
            # seen fatal first and recovered after a recompile counts
            # once as injected, then once as recovered.
            if first:
                registry.counter(
                    "faults.injected", kind=event.kind
                ).inc()
            registry.counter("faults.recovered", kind=event.kind).inc()
            registry.counter("faults.retries", kind=event.kind).inc(
                retries
            )
            registry.counter("faults.retry_s", kind=event.kind).inc(
                retry_s
            )
        log = get_logger()
        if log.enabled:
            log.warning(
                "fault.recovered",
                kind=event.kind,
                step=event.step,
                tile=event.tile,
                retries=retries,
            )

    def record_fatal(self, event: FaultEvent) -> None:
        """Mark *event* fatal (unrecovered)."""
        first = event.key not in self._ledger
        self._ledger[event.key] = _LedgerEntry(event, FATAL)
        registry = get_registry()
        if registry.enabled:
            if first:
                registry.counter(
                    "faults.injected", kind=event.kind
                ).inc()
            registry.counter("faults.fatal", kind=event.kind).inc()
        log = get_logger()
        if log.enabled:
            log.error(
                "fault.fatal",
                kind=event.kind,
                step=event.step,
                tile=event.tile,
            )

    def report(self) -> FaultReport:
        """Roll the ledger up into a :class:`FaultReport`."""
        injected = {k: 0 for k in FAULT_KINDS}
        recovered = {k: 0 for k in FAULT_KINDS}
        fatal = {k: 0 for k in FAULT_KINDS}
        total_retries = 0
        total_retry_s = 0.0
        for key in sorted(
            self._ledger, key=lambda k: (k[1], FAULT_KINDS.index(k[0]))
        ):
            entry = self._ledger[key]
            kind = entry.event.kind
            injected[kind] += 1
            if entry.outcome == RECOVERED:
                recovered[kind] += 1
            else:
                fatal[kind] += 1
            total_retries += entry.retries
            total_retry_s += entry.retry_s
        def as_items(d: dict[str, int]) -> tuple[tuple[str, int], ...]:
            return tuple((k, d[k]) for k in FAULT_KINDS if d[k])

        return FaultReport(
            injected=as_items(injected),
            recovered=as_items(recovered),
            fatal=as_items(fatal),
            total_retries=total_retries,
            total_retry_s=total_retry_s,
        )


class _NullInjector(FaultInjector):
    """Inactive singleton used when no faults are injected."""

    def __init__(self) -> None:
        super().__init__(FaultPlan.none())
        self.active = False


#: The module-level inactive injector (the executor default).
NULL_INJECTOR = _NullInjector()
