"""Experiment drivers: one module per paper table/figure.

Each module exposes ``run(...)`` returning structured rows and ``render()``
producing the text artefact; the ``benchmarks/`` suite wraps these with
pytest-benchmark, and ``examples/`` scripts call them directly.

| Module    | Paper artefact                                        |
|-----------|-------------------------------------------------------|
| table1    | Table 1 — GC200 vs A30 spec sheet                     |
| fig3      | Fig 3 — exchange latency/bandwidth vs tile distance   |
| table2    | Table 2 — dense/sparse matmul GFLOP/s matrix          |
| fig4      | Fig 4 — skewed matmul, GPU vs IPU                     |
| fig5      | Fig 5 — IPU graph/memory growth with problem size     |
| fig6      | Fig 6 — linear vs butterfly vs pixelfly layer times   |
| fig7      | Fig 7 — compute sets & memory for the factorizations  |
| table4    | Table 4 — SHL on CIFAR-10: params/accuracy/time       |
| table5    | Table 5 — pixelfly hyper-parameter sweep              |
"""

from repro.experiments.config import Table3Hyperparameters, TABLE3, shl_model, METHODS

__all__ = ["Table3Hyperparameters", "TABLE3", "shl_model", "METHODS"]
