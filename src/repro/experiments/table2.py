"""Table 2 — dense vs sparse matmul throughput, GPU vs IPU.

Reproduces every column of the paper's Table 2: GPU naive / shared-memory /
cuBLAS (FP32 and TF32) / PyTorch, IPU naive / blocked / poplin / PopTorch,
and the cuSPARSE / popsparse sparse columns at 90 % and 99 % sparsity.

Following the paper's Note 1, each column reports the *best* GFLOP/s over a
set of square problem sizes; sparse columns use the paper's dense-equivalent
convention (Note: starred values exceed device peaks because the FLOP count
is the dense one).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.flops import dense_equivalent, gflops
from repro.bench.parallel import run_grid
from repro.guard import GuardPolicy
from repro.bench.reporting import Table
from repro.gpu.machine import A30, GPUSpec
from repro.gpu.simulator import GPUDevice
from repro.ipu.compiler import compile_graph
from repro.ipu.executor import Executor
from repro.ipu.machine import GC200, IPUSpec
from repro.ipu.poplin import (
    build_blocked_matmul_graph,
    matmul_report,
    poptorch_matmul_report,
)
from repro.ipu.popsparse import spmm_report
from repro.linalg.sparse import random_sparse

__all__ = ["Table2Result", "run", "render", "default_sizes"]


def default_sizes() -> list[int]:
    """Square sizes the best-of sweep covers."""
    return [1024, 2048, 4096]


@dataclass(frozen=True)
class Table2Result:
    """Best GFLOP/s per implementation (dense) and per sparsity (sparse)."""

    dense: dict[str, float]
    sparse: dict[str, float]

    def best(self, column: str) -> float:
        """Look up any column by its paper name."""
        if column in self.dense:
            return self.dense[column]
        return self.sparse[column]


def _best(values: list[float]) -> float:
    return max(values) if values else 0.0


def _dense_columns_for_size(
    config: tuple[GPUSpec, IPUSpec, int], seed_seq
) -> dict[str, float]:
    """Grid worker: every dense Table 2 column at one square size."""
    gpu, ipu, n = config
    device = GPUDevice(gpu)
    flops = 2 * n**3
    # The executor needs the concrete graph, so the blocked column builds
    # it even on a cache hit — compile_graph still skips the memory
    # accounting then.
    blocked = build_blocked_matmul_graph(ipu, n, n, n, block=128)
    compiled = compile_graph(blocked, ipu, check_fit=False)
    # Insertion order is the table's row order — keep the paper's.
    return {
        "GPU naive": device.matmul_cost(n, n, n, "naive").gflops,
        "GPU shmem": device.matmul_cost(n, n, n, "shmem").gflops,
        "GPU cublas (FP32)": device.matmul_cost(
            n, n, n, "cublas_fp32"
        ).gflops,
        "GPU cublas (TF32)": device.matmul_cost(
            n, n, n, "cublas_tf32"
        ).gflops,
        "IPU naive": gflops(
            flops,
            matmul_report(
                ipu, n, n, n, codelet="MatMulPartialScalar",
                check_fit=False,
            ).total_s,
        ),
        "IPU blocked": gflops(
            flops, Executor(compiled).estimate().total_s
        ),
        "IPU poplin": gflops(
            flops, matmul_report(ipu, n, n, n, check_fit=False).total_s
        ),
        "PyTorch (FP32)": device.matmul_cost(
            n, n, n, "pytorch_fp32"
        ).gflops,
        "PyTorch (TF32)": device.matmul_cost(
            n, n, n, "pytorch_tf32"
        ).gflops,
        "PopTorch": gflops(
            flops, poptorch_matmul_report(ipu, n, n, n).total_s
        ),
    }


def run(
    gpu: GPUSpec = A30,
    ipu: IPUSpec = GC200,
    sizes: list[int] | None = None,
    sparse_size: int = 2048,
    seed: int = 0,
    jobs: int = 1,
    guard: GuardPolicy | None = None,
) -> Table2Result:
    """Evaluate every Table 2 column; returns best-over-sizes GFLOP/s."""
    sizes = sizes or default_sizes()
    device = GPUDevice(gpu)

    per_size = run_grid(
        _dense_columns_for_size,
        [(gpu, ipu, n) for n in sizes],
        jobs=jobs,
        guard=guard,
        name="table2",
    )
    dense: dict[str, list[float]] = {}
    for columns in per_size:
        if columns is None:
            continue
        for name, value in columns.items():
            dense.setdefault(name, []).append(value)

    sparse: dict[str, float] = {}
    n = sparse_size
    for label, density in [("99%", 0.01), ("90%", 0.1)]:
        csr = random_sparse(n, n, density, seed=seed, fmt="csr")
        gpu_cost = device.spmm_cost(csr, n)
        sparse[f"GPU cusparse {label}"] = dense_equivalent(
            n, n, n, gpu_cost.time_s
        )
        ipu_rep = spmm_report(ipu, csr, n, check_fit=False)
        sparse[f"IPU popsparse {label}"] = dense_equivalent(
            n, n, n, ipu_rep.total_s
        )

    return Table2Result(
        dense={k: _best(v) for k, v in dense.items()}, sparse=sparse
    )


def render(
    gpu: GPUSpec = A30,
    ipu: IPUSpec = GC200,
    sizes: list[int] | None = None,
    jobs: int = 1,
    guard: GuardPolicy | None = None,
) -> str:
    """Text rendering of the Table 2 reproduction."""
    result = run(gpu, ipu, sizes, jobs=jobs, guard=guard)
    table = Table(
        title=(
            "Table 2: dense vs sparse matmul, GPU vs IPU (GFLOP/s; sparse "
            "columns are dense-equivalent, like the paper)"
        ),
        columns=["column", "GFLOP/s"],
        precision=0,
    )
    for name, value in {**result.dense, **result.sparse}.items():
        table.add_row(name, round(value))
    return table.render()


if __name__ == "__main__":
    print(render())  # noqa: T201
