"""Cost-model ablations: which mechanisms produce the paper's shapes?

DESIGN.md commits to assembling every reported time from architecture
constants, never hard-coding outputs.  These ablations demonstrate it by
switching individual mechanisms off (or on) and watching the figures move:

* **Host streaming off** — the paper states *"We assume that without data
  movement, the following performance differences would be more drastic."*
  Removing the PopTorch host streams from the Fig 6 IPU panel should make
  butterfly's large-N speedup much larger.  It does.
* **Hypothetical AMP butterfly codelet** — the paper's "possible
  optimizations for butterfly on the IPU": if a fused butterfly vertex
  could drive the AMP pipeline instead of the gather path, the levels
  would cost ``8 n/2 / amp_rate`` cycles.  Quantifies the headroom a
  hand-written Poplar codelet could unlock.
* **Sync-cost sensitivity** — the per-compute-set BSP sync drives the
  small-N degradation of multi-superstep layers; sweeping it moves the
  worst-case exactly as the model predicts.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro import nn
from repro.bench.reporting import Table
from repro.ipu.machine import GC200, IPUSpec
from repro.ipu.poptorch import IPUModule
from repro.ipu.vertices import (
    CODELETS,
    Codelet,
    VERTEX_OVERHEAD_CYCLES,
    register_codelet,
)

__all__ = [
    "streaming_ablation",
    "amp_butterfly_ablation",
    "sync_sensitivity",
    "render",
]


def _bf_speedup(n: int, spec: IPUSpec, host_io: bool) -> float:
    linear = IPUModule(
        nn.Linear(n, n, bias=False, seed=0), n, n, spec=spec,
        host_io=host_io,
    ).forward_time()
    butterfly = IPUModule(
        nn.ButterflyLinear(n, n, bias=False, seed=0), n, n, spec=spec,
        host_io=host_io,
    ).forward_time()
    return linear / butterfly


@dataclass(frozen=True)
class StreamingAblationRow:
    n: int
    speedup_with_streaming: float
    speedup_without_streaming: float

    @property
    def more_drastic(self) -> bool:
        """The paper's prediction, per size."""
        return self.speedup_without_streaming > self.speedup_with_streaming


def streaming_ablation(
    sizes: tuple[int, ...] = (1024, 2048, 4096), spec: IPUSpec = GC200
) -> list[StreamingAblationRow]:
    """Fig 6 IPU panel with and without PopTorch host streaming."""
    return [
        StreamingAblationRow(
            n=n,
            speedup_with_streaming=_bf_speedup(n, spec, host_io=True),
            speedup_without_streaming=_bf_speedup(n, spec, host_io=False),
        )
        for n in sizes
    ]


@dataclass(frozen=True)
class AmpButterflyRow:
    n: int
    stock_speedup: float
    amp_codelet_speedup: float

    @property
    def headroom(self) -> float:
        """Factor a fused AMP butterfly codelet would add."""
        return self.amp_codelet_speedup / self.stock_speedup


def amp_butterfly_ablation(
    sizes: tuple[int, ...] = (1024, 4096), spec: IPUSpec = GC200
) -> list[AmpButterflyRow]:
    """What if a fused butterfly codelet could drive the AMP pipeline?

    Temporarily replaces the ButterflyStage cycle model with an AMP-rate
    one (8 flops per pair at ``amp_macs_per_cycle`` MACs/cycle) and
    re-times the Fig 6 IPU sweep.
    """
    stock = CODELETS["ButterflyStage"]

    def amp_cycles(vertex, s):
        n_pairs = vertex.params["n_pairs"]
        return VERTEX_OVERHEAD_CYCLES + (
            4.0 * n_pairs / s.amp_macs_per_cycle
        )

    rows = []
    try:
        for n in sizes:
            # host_io off: isolate the compute headroom (streaming would
            # otherwise mask it — see Ablation 1).
            stock_speedup = _bf_speedup(n, spec, host_io=False)
            register_codelet(
                Codelet("ButterflyStage", amp_cycles, stock.execute)
            )
            amp_speedup = _bf_speedup(n, spec, host_io=False)
            register_codelet(stock)
            rows.append(
                AmpButterflyRow(
                    n=n,
                    stock_speedup=stock_speedup,
                    amp_codelet_speedup=amp_speedup,
                )
            )
    finally:
        register_codelet(stock)
    return rows


@dataclass(frozen=True)
class SyncSensitivityRow:
    sync_cycles: int
    small_n_degradation: float  # butterfly slowdown at N=128


def sync_sensitivity(
    sync_values: tuple[int, ...] = (100, 700, 3000), spec: IPUSpec = GC200
) -> list[SyncSensitivityRow]:
    """Small-N butterfly degradation as a function of BSP sync cost."""
    rows = []
    for sync in sync_values:
        tweaked = dataclasses.replace(spec, sync_cycles=sync)
        rows.append(
            SyncSensitivityRow(
                sync_cycles=sync,
                small_n_degradation=1.0
                / _bf_speedup(128, tweaked, host_io=True),
            )
        )
    return rows


def render() -> str:
    """Text rendering of all three ablations."""
    out = []

    t1 = Table(
        title=(
            "Ablation 1: IPU butterfly speedup with/without host streaming "
            '(the paper: "without data movement the differences would be '
            'more drastic")'
        ),
        columns=["N", "with streaming", "without streaming", "more drastic"],
    )
    for row in streaming_ablation():
        t1.add_row(
            row.n,
            f"{row.speedup_with_streaming:.2f}x",
            f"{row.speedup_without_streaming:.2f}x",
            row.more_drastic,
        )
    out.append(t1.render())

    t2 = Table(
        title=(
            "Ablation 2: hypothetical AMP-capable butterfly codelet "
            "(the paper's 'possible optimizations')"
        ),
        columns=["N", "stock speedup", "AMP-codelet speedup", "headroom"],
    )
    for row in amp_butterfly_ablation():
        t2.add_row(
            row.n,
            f"{row.stock_speedup:.2f}x",
            f"{row.amp_codelet_speedup:.2f}x",
            f"{row.headroom:.2f}x",
        )
    out.append(t2.render())

    t3 = Table(
        title="Ablation 3: BSP sync cost vs small-N butterfly degradation",
        columns=["sync cycles", "slowdown at N=128"],
    )
    for row in sync_sensitivity():
        t3.add_row(row.sync_cycles, f"{row.small_n_degradation:.2f}x")
    out.append(t3.render())

    return "\n\n".join(out)


if __name__ == "__main__":
    print(render())  # noqa: T201
