"""GC2 vs GC200: does the paper's story survive an IPU generation?

The paper positions itself against GC2-era related work: *"a prime
question at hand is to which extent previous findings hold true for the
current generation."*  This driver answers it inside the simulator: the
same benchmarks on both machine models (first-generation GC2: 1216 tiles x
256 KiB, ~31 TFLOP/s; second-generation GC200: 1472 x 624 KiB, ~62.5
TFLOP/s), showing which conclusions are generational and which are
architectural.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import nn
from repro.bench.flops import gflops
from repro.bench.reporting import Table
from repro.ipu.compiler import compile_graph
from repro.ipu.machine import GC2, GC200, IPUSpec
from repro.ipu.poplin import build_matmul_graph, matmul_report
from repro.ipu.poptorch import IPUModule
from repro.utils import MiB

__all__ = ["GenerationRow", "run", "render", "largest_fitting_matmul"]


def largest_fitting_matmul(spec: IPUSpec, max_exp: int = 14) -> int:
    """Largest square N = 2**e whose poplin graph fits tile memory."""
    best = 0
    for e in range(5, max_exp + 1):
        n = 1 << e
        graph, _ = build_matmul_graph(spec, n, n, n)
        if compile_graph(graph, spec, check_fit=False).memory.fits:
            best = n
        else:
            break
    return best


@dataclass(frozen=True)
class GenerationRow:
    """One device generation's headline numbers."""

    spec: IPUSpec
    poplin_gflops_1024: float
    naive_gflops_1024: float
    butterfly_step_s: float
    linear_step_s: float
    largest_matmul: int

    @property
    def butterfly_vs_linear(self) -> float:
        """Training-step ratio butterfly/linear (same SHL, batch 50)."""
        return self.butterfly_step_s / self.linear_step_s


def _shl(layer: nn.Module) -> nn.Module:
    return nn.Sequential(layer, nn.ReLU(), nn.Linear(1024, 10, seed=1))


def run(specs: tuple[IPUSpec, ...] = (GC2, GC200)) -> list[GenerationRow]:
    """Evaluate the generational comparison on each spec."""
    rows = []
    for spec in specs:
        poplin = matmul_report(spec, 1024, 1024, 1024, check_fit=False)
        naive = matmul_report(
            spec, 1024, 1024, 1024, codelet="MatMulPartialScalar",
            check_fit=False,
        )
        linear = IPUModule(
            _shl(nn.Linear(1024, 1024, seed=0)), 1024, 50, spec=spec
        ).training_step_time()
        butterfly = IPUModule(
            _shl(nn.ButterflyLinear(1024, 1024, seed=0)), 1024, 50, spec=spec
        ).training_step_time()
        rows.append(
            GenerationRow(
                spec=spec,
                poplin_gflops_1024=gflops(2 * 1024**3, poplin.total_s),
                naive_gflops_1024=gflops(2 * 1024**3, naive.total_s),
                butterfly_step_s=butterfly,
                linear_step_s=linear,
                largest_matmul=largest_fitting_matmul(spec),
            )
        )
    return rows


def render(specs: tuple[IPUSpec, ...] = (GC2, GC200)) -> str:
    """Text rendering of the generational comparison."""
    rows = run(specs)
    table = Table(
        title="IPU generations: GC2 (2018) vs GC200 (2020)",
        columns=[
            "device",
            "tiles",
            "memory (MiB)",
            "poplin GF @1024",
            "naive GF @1024",
            "bf/linear step",
            "largest square MM",
        ],
    )
    for row in rows:
        table.add_row(
            row.spec.name,
            row.spec.n_tiles,
            round(row.spec.total_memory_bytes / MiB),
            round(row.poplin_gflops_1024),
            round(row.naive_gflops_1024),
            f"{row.butterfly_vs_linear:.2f}x",
            row.largest_matmul,
        )
    return table.render()


if __name__ == "__main__":
    print(render())  # noqa: T201
