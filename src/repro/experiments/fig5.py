"""Fig 5 — how IPU graph structure and memory grow with problem size.

Compiles poplin matmul graphs across square sizes and reports the PopVision
quantities the paper plots: number of edges, variables, vertices, compute
sets, and the remaining free memory.  Observation 3 — memory grows faster
than the raw tensor footprint, driven by graph structure — falls out of the
compiler's accounting.

Each size compiles through :func:`~repro.ipu.compiler.cached_compile`
keyed on the matmul's provenance, so a warm compilation cache skips graph
construction entirely; ``run(jobs=N)`` fans the sizes out over the
parallel runner (:mod:`repro.bench.parallel`).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.parallel import run_grid
from repro.bench.reporting import Table
from repro.ipu.compiler import GraphProfile, cached_compile
from repro.ipu.machine import GC200, IPUSpec
from repro.ipu.poplin import build_matmul_graph, matmul_provenance
from repro.utils import MiB

__all__ = ["Fig5Row", "default_sizes", "run", "render"]


def default_sizes() -> list[int]:
    """Square matmul sizes 2**5 .. 2**12."""
    return [1 << e for e in range(5, 13)]


@dataclass(frozen=True)
class Fig5Row:
    """One problem size's graph profile."""

    n: int
    profile: GraphProfile

    @property
    def overhead_ratio(self) -> float:
        """Total compiled memory / raw variable bytes."""
        if self.profile.variable_bytes == 0:
            return 0.0
        return self.profile.total_bytes / self.profile.variable_bytes


def _profile_one(config: tuple[IPUSpec, int], seed_seq) -> Fig5Row:
    """Grid worker: compile one size's matmul (cache-aware) and profile."""
    spec, n = config
    compiled = cached_compile(
        matmul_provenance(n, n, n),
        lambda: build_matmul_graph(spec, n, n, n)[0],
        spec,
        check_fit=False,
    )
    return Fig5Row(n=n, profile=compiled.profile())


def run(
    spec: IPUSpec = GC200,
    sizes: list[int] | None = None,
    jobs: int = 1,
) -> list[Fig5Row]:
    """Compile a poplin matmul per size and collect profiles."""
    configs = [(spec, n) for n in (sizes or default_sizes())]
    return run_grid(_profile_one, configs, jobs=jobs)


def render(spec: IPUSpec = GC200, jobs: int = 1) -> str:
    """Text rendering of the Fig 5 series."""
    table = Table(
        title=(
            "Fig 5: IPU matmul graph structure and memory vs problem size"
        ),
        columns=[
            "N",
            "variables",
            "vertices",
            "edges",
            "compute sets",
            "data (MiB)",
            "total (MiB)",
            "free (MiB)",
            "overhead x",
        ],
    )
    for row in run(spec, jobs=jobs):
        p = row.profile
        table.add_row(
            row.n,
            p.n_variables,
            p.n_vertices,
            p.n_edges,
            p.n_compute_sets,
            p.variable_bytes / MiB,
            p.total_bytes / MiB,
            p.free_bytes / MiB,
            row.overhead_ratio,
        )
    return table.render()


if __name__ == "__main__":
    print(render())
