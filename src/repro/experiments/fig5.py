"""Fig 5 — how IPU graph structure and memory grow with problem size.

Compiles poplin matmul graphs across square sizes and reports the PopVision
quantities the paper plots: number of edges, variables, vertices, compute
sets, and the remaining free memory.  Observation 3 — memory grows faster
than the raw tensor footprint, driven by graph structure — falls out of the
compiler's accounting.

Each size compiles through :func:`~repro.ipu.compiler.cached_compile`
keyed on the matmul's provenance, so a warm compilation cache skips graph
construction entirely; ``run(jobs=N)`` fans the sizes out over the
parallel runner (:mod:`repro.bench.parallel`).

The **planner headroom sweep** (``planner_run`` / ``render_planner``)
extends the figure with the liveness-driven memory planner
(:mod:`repro.ipu.memplan`): deep MLP forward graphs are compiled with
and without ``plan_memory=True``, showing the per-depth "planned peak"
series, the reclaimed fraction, and — the point of the exercise — depths
that fail ``check_fit`` without the planner but compile with it.
:func:`verify_planner_numerics` executes a small configuration both ways
and confirms the outputs are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bench.parallel import run_grid
from repro.guard import GuardPolicy
from repro.bench.reporting import Table
from repro.ipu.compiler import GraphProfile, cached_compile, compile_graph
from repro.ipu.executor import Executor
from repro.ipu.machine import GC200, IPUSpec
from repro.ipu.poplin import build_matmul_graph, matmul_provenance
from repro.utils import KiB, MiB

__all__ = [
    "Fig5Row",
    "PlannerRow",
    "default_sizes",
    "planner_depths",
    "run",
    "planner_run",
    "verify_planner_numerics",
    "render",
    "render_planner",
]


def default_sizes() -> list[int]:
    """Square matmul sizes 2**5 .. 2**12."""
    return [1 << e for e in range(5, 13)]


@dataclass(frozen=True)
class Fig5Row:
    """One problem size's graph profile."""

    n: int
    profile: GraphProfile

    @property
    def overhead_ratio(self) -> float:
        """Total compiled memory / raw variable bytes."""
        if self.profile.variable_bytes == 0:
            return 0.0
        return self.profile.total_bytes / self.profile.variable_bytes


def _profile_one(config: tuple[IPUSpec, int], seed_seq) -> Fig5Row:
    """Grid worker: compile one size's matmul (cache-aware) and profile."""
    spec, n = config
    compiled = cached_compile(
        matmul_provenance(n, n, n),
        lambda: build_matmul_graph(spec, n, n, n)[0],
        spec,
        check_fit=False,
    )
    return Fig5Row(n=n, profile=compiled.profile())


# -- planner headroom sweep ----------------------------------------------------


def planner_depths() -> list[int]:
    """MLP depths for the planner headroom sweep.

    Sized (with ``dim=batch=2048``) so the deepest entries exceed GC200's
    usable tile memory without buffer reuse but fit with the planner.
    """
    return [2, 4, 6, 8, 10]


@dataclass(frozen=True)
class PlannerRow:
    """One MLP depth compiled with and without the memory planner."""

    depth: int
    dim: int
    batch: int
    unplanned: GraphProfile
    planned: GraphProfile

    @property
    def fits_no_reuse(self) -> bool:
        return self.unplanned.fits

    @property
    def fits_planned(self) -> bool:
        return self.planned.fits

    @property
    def reclaimed_fraction(self) -> float:
        """Fraction of the no-reuse peak the planner reclaimed."""
        return self.planned.plan_saving_fraction


def _mlp(depth: int, dim: int):
    from repro import nn

    return nn.Sequential(
        *[
            m
            for i in range(depth)
            for m in (nn.Linear(dim, dim, seed=i), nn.ReLU())
        ]
    )


def _planner_one(
    config: tuple[IPUSpec, int, int, int], seed_seq
) -> PlannerRow:
    """Grid worker: profile one MLP depth planned and unplanned."""
    from repro.ipu.poptorch import IPUModule

    spec, depth, dim, batch = config
    module = IPUModule(_mlp(depth, dim), dim, batch, spec=spec)
    unplanned = compile_graph(module.graph, spec, check_fit=False)
    planned = compile_graph(
        module.graph, spec, check_fit=False, plan_memory=True
    )
    return PlannerRow(
        depth=depth,
        dim=dim,
        batch=batch,
        unplanned=unplanned.profile(),
        planned=planned.profile(),
    )


def planner_run(
    spec: IPUSpec = GC200,
    depths: list[int] | None = None,
    dim: int = 2048,
    batch: int = 2048,
    jobs: int = 1,
    guard: GuardPolicy | None = None,
) -> list[PlannerRow]:
    """The planner headroom series: deep MLPs with/without buffer reuse.

    Under a non-strict *guard*, quarantined depths are dropped from the
    returned rows (the grid completes without them).
    """
    configs = [
        (spec, depth, dim, batch) for depth in (depths or planner_depths())
    ]
    rows = run_grid(
        _planner_one, configs, jobs=jobs, guard=guard, name="fig5.planner"
    )
    return [row for row in rows if row is not None]


def verify_planner_numerics(
    spec: IPUSpec = GC200,
    depth: int = 4,
    dim: int = 64,
    batch: int = 32,
    seed: int = 0,
) -> bool:
    """Execute a small MLP planned and unplanned; True iff bit-identical.

    The headroom sweep itself only *profiles* (its sizes are too big to
    execute in numpy); this companion check runs real numerics through the
    slot-aliased executor at a small size, including the executor's own
    shadow-replay verification (``check_aliasing=True``).
    """
    from repro.ipu.poptorch import IPUModule

    module = IPUModule(_mlp(depth, dim), dim, batch, spec=spec)
    graph = module.graph
    rng = np.random.default_rng(seed)
    inputs = {
        name: rng.standard_normal(var.shape)
        for name, var in graph.variables.items()
        if name.startswith(("input", "linear_w", "linear_bias_"))
    }
    plain = compile_graph(graph, spec, check_fit=False)
    planned = compile_graph(
        graph, spec, check_fit=False, plan_memory=True
    )
    ref, _ = Executor(plain).run(inputs)
    out, _ = Executor(planned).run(inputs, check_aliasing=True)
    surviving = planned.memory_plan().surviving_variables()
    return all(
        np.array_equal(ref[name], out[name]) for name in surviving
    )


def run(
    spec: IPUSpec = GC200,
    sizes: list[int] | None = None,
    jobs: int = 1,
    guard: GuardPolicy | None = None,
) -> list[Fig5Row]:
    """Compile a poplin matmul per size and collect profiles."""
    configs = [(spec, n) for n in (sizes or default_sizes())]
    rows = run_grid(
        _profile_one, configs, jobs=jobs, guard=guard, name="fig5"
    )
    return [row for row in rows if row is not None]


def render(
    spec: IPUSpec = GC200, jobs: int = 1, guard: GuardPolicy | None = None
) -> str:
    """Text rendering of the Fig 5 series."""
    table = Table(
        title=(
            "Fig 5: IPU matmul graph structure and memory vs problem size"
        ),
        columns=[
            "N",
            "variables",
            "vertices",
            "edges",
            "compute sets",
            "data (MiB)",
            "total (MiB)",
            "free (MiB)",
            "overhead x",
        ],
    )
    for row in run(spec, jobs=jobs, guard=guard):
        p = row.profile
        table.add_row(
            row.n,
            p.n_variables,
            p.n_vertices,
            p.n_edges,
            p.n_compute_sets,
            p.variable_bytes / MiB,
            p.total_bytes / MiB,
            p.free_bytes / MiB,
            row.overhead_ratio,
        )
    return table.render()


def render_planner(
    spec: IPUSpec = GC200,
    jobs: int = 1,
    verify: bool = True,
    rows: list[PlannerRow] | None = None,
    guard: GuardPolicy | None = None,
) -> str:
    """Text rendering of the planner headroom series."""
    table = Table(
        title=(
            "Fig 5 (planner): deep-MLP peak tile memory, "
            "no-reuse vs liveness-planned"
        ),
        columns=[
            "depth",
            "no-reuse peak (KiB)",
            "planned peak (KiB)",
            "reclaimed",
            "fits no-reuse",
            "fits planned",
        ],
    )
    if rows is None:
        rows = planner_run(spec, jobs=jobs, guard=guard)
    for row in rows:
        table.add_row(
            row.depth,
            row.unplanned.peak_tile_bytes / KiB,
            row.planned.peak_tile_bytes / KiB,
            f"{row.reclaimed_fraction:.0%}",
            "yes" if row.fits_no_reuse else "NO",
            "yes" if row.fits_planned else "NO",
        )
    text = table.render()
    if verify:
        ok = verify_planner_numerics(spec)
        text += (
            "\nnumerics: planned execution "
            + ("bit-identical to unplanned" if ok else "DIVERGED")
        )
    return text


if __name__ == "__main__":
    print(render())  # noqa: T201
    print()  # noqa: T201
    print(render_planner())  # noqa: T201
