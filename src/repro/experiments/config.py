"""Experiment configuration: the paper's Table 3 hyper-parameters and the
canonical single-hidden-layer (SHL) model factory for every Table 4 method.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn

__all__ = ["Table3Hyperparameters", "TABLE3", "shl_model", "METHODS"]


@dataclass(frozen=True)
class Table3Hyperparameters:
    """Table 3 of the paper, verbatim where applicable.

    The learning rate deviates from the paper's 1e-3 (see EXPERIMENTS.md):
    with the synthetic dataset's smaller sample count we train far fewer
    steps than the paper's CIFAR-10 epochs, so the rate is scaled up to
    reach the same optimisation depth; everything else matches.
    """

    learning_rate: float = 0.01
    momentum: float = 0.9
    batch_size: int = 50
    val_fraction: float = 0.15
    activation: str = "ReLU"
    loss: str = "Cross-Entropy"
    optimizer: str = "SGD"
    epochs: int = 12
    n_train: int = 8000
    n_test: int = 1000
    hidden_dim: int = 1024  # grayscale CIFAR-10


TABLE3 = Table3Hyperparameters()

#: Table 4 method names in paper order.
METHODS = [
    "Baseline",
    "Butterfly",
    "Fastfood",
    "Circulant",
    "Low-rank",
    "Pixelfly",
]


def shl_model(
    method: str,
    dim: int = 1024,
    n_classes: int = 10,
    seed: int | np.random.Generator = 0,
) -> nn.Module:
    """Single-hidden-layer model with the chosen weight parameterisation.

    Architecture (Thomas et al. 2018, as used by the paper):
    ``x (dim) -> W (dim x dim, structured) -> ReLU -> classifier (dim x C)``.

    The pixelfly hyper-parameters (block 32, full butterfly, rank 96) are
    the ones that decode Table 4's ``N_params = 404 490`` exactly.
    """
    hidden: nn.Module
    if method == "Baseline":
        hidden = nn.Linear(dim, dim, seed=seed)
    elif method == "Butterfly":
        hidden = nn.ButterflyLinear(dim, dim, seed=seed)
    elif method == "Fastfood":
        hidden = nn.FastfoodLinear(dim, seed=seed)
    elif method == "Circulant":
        hidden = nn.CirculantLinear(dim, seed=seed)
    elif method == "Low-rank":
        hidden = nn.LowRankLinear(dim, dim, rank=1, seed=seed)
    elif method == "Pixelfly":
        hidden = nn.PixelflyLinear(
            dim, block_size=32, butterfly_size=None, rank=96, seed=seed
        )
    else:
        raise ValueError(
            f"unknown method {method!r}; expected one of {METHODS}"
        )
    return nn.Sequential(hidden, nn.ReLU(), nn.Linear(dim, n_classes, seed=1))
