"""Fig 4 — skewed matrix multiply: GPU collapses, IPU stays flat.

The sweep skews the left operand ``A (m x n)`` at constant output area
(``m * n`` fixed) with ``k`` fixed, following the paper's definition
``s = m / n``.  At extreme ratios one of the GPU kernel's tile dimensions
collapses below the CTA tile and utilisation falls off (the TF32 path
earlier and harder — its tiles are coarser), while the IPU's planner just
picks a different grid.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.flops import gflops
from repro.bench.reporting import Table
from repro.gpu.machine import A30, GPUSpec
from repro.gpu.simulator import GPUDevice
from repro.ipu.machine import GC200, IPUSpec
from repro.ipu.poplin import matmul_report

__all__ = ["Fig4Row", "default_exponents", "skew_shape", "run", "render"]


def default_exponents() -> list[int]:
    """Skew exponents: s = 2**e for e in -16..16 (steps of 4).

    The extremes push one operand dimension below the GPU kernels' CTA
    tiles, where the Fig 4 collapse happens; the TF32 path (coarser tiles)
    collapses earlier.
    """
    return list(range(-16, 17, 4))


def skew_shape(base: int, exponent: int) -> tuple[int, int, int]:
    """Shape with ``m * n = base**2``, ``k = base`` and ``m / n = 2**e``."""
    if exponent >= 0:
        m = base << (exponent // 2 + exponent % 2)
        n = base >> (exponent // 2)
    else:
        e = -exponent
        m = base >> (e // 2)
        n = base << (e // 2 + e % 2)
    return max(m, 1), max(n, 1), base


@dataclass(frozen=True)
class Fig4Row:
    """One skew point: throughput per device path."""

    skew: float
    m: int
    n: int
    k: int
    gpu_fp32_gflops: float
    gpu_tf32_gflops: float
    ipu_gflops: float


def run(
    base: int = 2048,
    exponents: list[int] | None = None,
    gpu: GPUSpec = A30,
    ipu: IPUSpec = GC200,
) -> list[Fig4Row]:
    """Sweep the skew exponents on both devices."""
    device = GPUDevice(gpu)
    rows = []
    for e in exponents if exponents is not None else default_exponents():
        m, n, k = skew_shape(base, e)
        flops = 2 * m * n * k
        fp32 = device.matmul_cost(m, n, k, "cublas_fp32")
        tf32 = device.matmul_cost(m, n, k, "cublas_tf32")
        ipu_t = matmul_report(ipu, m, n, k, check_fit=False).total_s
        rows.append(
            Fig4Row(
                skew=m / n,
                m=m,
                n=n,
                k=k,
                gpu_fp32_gflops=fp32.gflops,
                gpu_tf32_gflops=tf32.gflops,
                ipu_gflops=gflops(flops, ipu_t),
            )
        )
    return rows


def render(base: int = 2048) -> str:
    """Text rendering of the Fig 4 series."""
    table = Table(
        title="Fig 4: skewed MM throughput (GFLOP/s), GPU vs IPU",
        columns=[
            "skew m/n",
            "m",
            "n",
            "k",
            "GPU FP32",
            "GPU TF32",
            "IPU poplin",
        ],
        precision=0,
    )
    for row in run(base):
        table.add_row(
            row.skew,
            row.m,
            row.n,
            row.k,
            round(row.gpu_fp32_gflops),
            round(row.gpu_tf32_gflops),
            round(row.ipu_gflops),
        )
    return table.render()


if __name__ == "__main__":
    print(render())  # noqa: T201
