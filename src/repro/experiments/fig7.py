"""Fig 7 — compute sets and memory of butterfly vs pixelfly IPU graphs.

The paper uses the PopVision Graph Analyzer to explain the Fig 6
performance gap: the number of compute sets correlates with variables,
edges and vertices, and those drive memory.  This sweep compiles the
lowered forward graphs of both factorizations (plus linear for reference)
and reports the same quantities, plus the liveness-planned peak per
parameterisation (:mod:`repro.ipu.memplan`) — how much of each lowering's
footprint is reclaimable staging buffers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import nn
from repro.bench.parallel import run_grid
from repro.guard import GuardPolicy
from repro.bench.reporting import Table
from repro.experiments.fig6 import FIG6_PIXELFLY
from repro.ipu.compiler import GraphProfile, compile_graph
from repro.ipu.machine import GC200, IPUSpec
from repro.ipu.poptorch import IPUModule
from repro.utils import KiB, MiB

__all__ = ["Fig7Row", "default_sizes", "run", "render"]


def default_sizes() -> list[int]:
    """N = 2**7 .. 2**12."""
    return [1 << e for e in range(7, 13)]


@dataclass(frozen=True)
class Fig7Row:
    """Graph profile of one layer type at one size.

    ``profile`` is the classic (no-reuse) compile; ``planned`` the same
    graph under the liveness-driven memory planner.
    """

    layer: str
    n: int
    profile: GraphProfile
    planned: GraphProfile | None = None

    @property
    def reclaimed_fraction(self) -> float:
        """Fraction of the no-reuse peak the planner reclaimed."""
        if self.planned is None:
            return 0.0
        return self.planned.plan_saving_fraction


def _profile_size(config: tuple[IPUSpec, int], seed_seq) -> list[Fig7Row]:
    """Grid worker: profile the three layer graphs at one size."""
    spec, n = config
    layers = {
        "linear": nn.Linear(n, n, bias=False, seed=0),
        "butterfly": nn.ButterflyLinear(n, n, bias=False, seed=0),
        "pixelfly": nn.PixelflyLinear(
            n, bias=False, seed=0, **FIG6_PIXELFLY
        ),
    }
    rows = []
    for name, layer in layers.items():
        module = IPUModule(layer, in_features=n, batch=n, spec=spec)
        rows.append(
            Fig7Row(
                layer=name,
                n=n,
                profile=module.profile(),
                planned=compile_graph(
                    module.graph, spec, check_fit=False, plan_memory=True
                ).profile(),
            )
        )
    return rows


def run(
    spec: IPUSpec = GC200,
    sizes: list[int] | None = None,
    jobs: int = 1,
    guard: GuardPolicy | None = None,
) -> list[Fig7Row]:
    """Compile the three layer graphs per size and profile them."""
    configs = [(spec, n) for n in (sizes or default_sizes())]
    per_size = run_grid(
        _profile_size, configs, jobs=jobs, guard=guard, name="fig7"
    )
    return [row for rows in per_size if rows is not None for row in rows]


def render(
    spec: IPUSpec = GC200,
    sizes: list[int] | None = None,
    jobs: int = 1,
    guard: GuardPolicy | None = None,
) -> str:
    """Text rendering of the Fig 7 sweep."""
    table = Table(
        title=(
            "Fig 7: IPU graph structure for linear/butterfly/pixelfly "
            "(square problems)"
        ),
        columns=[
            "layer",
            "N",
            "compute sets",
            "vertices",
            "edges",
            "variables",
            "total mem (MiB)",
            "free (MiB)",
            "peak tile (KiB)",
            "planned peak (KiB)",
            "reclaimed",
        ],
    )
    for row in run(spec, sizes, jobs=jobs, guard=guard):
        p = row.profile
        planned = row.planned
        table.add_row(
            row.layer,
            row.n,
            p.n_compute_sets,
            p.n_vertices,
            p.n_edges,
            p.n_variables,
            p.total_bytes / MiB,
            p.free_bytes / MiB,
            p.peak_tile_bytes / KiB,
            planned.peak_tile_bytes / KiB if planned else float("nan"),
            f"{row.reclaimed_fraction:.0%}",
        )
    return table.render()


if __name__ == "__main__":
    print(render())  # noqa: T201
