"""Table 4 — SHL benchmark on (synthetic) CIFAR-10.

For each of the six weight parameterisations: parameter count, test
accuracy after real training on the synthetic dataset, and simulated
training time on GPU w/ TC, GPU w/o TC, and IPU (per step, integrated over
the steps actually run).

The parameter counts reproduce the paper *exactly* for Baseline
(1 059 850), Fastfood (14 346), Circulant (12 298), Low-rank (13 322) and
Pixelfly (404 490); Butterfly differs (31 754 vs the paper's 16 390)
because we implement the standard ``2 n log2 n`` twiddle parameterisation —
see DESIGN.md §5.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro import nn
from repro.bench.reporting import Table
from repro.core.compression import compression_ratio
from repro.datasets import load_cifar10
from repro.experiments.config import METHODS, TABLE3, Table3Hyperparameters, shl_model
from repro.gpu.machine import A30, GPUSpec
from repro.gpu.torchsim import GPUModule
from repro.ipu.machine import GC200, IPUSpec
from repro.ipu.poptorch import IPUModule

__all__ = ["Table4Row", "run_method", "run", "render"]


@dataclass(frozen=True)
class Table4Row:
    """One method's Table 4 entries."""

    method: str
    n_params: int
    accuracy: float
    gpu_tc_time_s: float
    gpu_notc_time_s: float
    ipu_time_s: float

    def compression(self, baseline_params: int) -> float:
        """Fraction of baseline parameters removed."""
        return compression_ratio(baseline_params, self.n_params)


def _device_step_times(
    model: nn.Module, hp: Table3Hyperparameters, gpu: GPUSpec, ipu: IPUSpec
) -> tuple[float, float, float]:
    """(GPU w/ TC, GPU w/o TC, IPU) seconds per training step."""
    gpu_tc = GPUModule(
        model, in_features=hp.hidden_dim, batch=hp.batch_size,
        tensor_cores=True, spec=gpu,
    ).training_step_time()
    gpu_notc = GPUModule(
        model, in_features=hp.hidden_dim, batch=hp.batch_size,
        tensor_cores=False, spec=gpu,
    ).training_step_time()
    ipu_mod = IPUModule(
        model, in_features=hp.hidden_dim, batch=hp.batch_size, spec=ipu
    )
    ipu = ipu_mod.training_step_time() + ipu_mod.spec.host_step_overhead_s
    return gpu_tc, gpu_notc, ipu


def run_method(
    method: str,
    train: nn.ArrayDataset,
    test: nn.ArrayDataset,
    hp: Table3Hyperparameters = TABLE3,
    gpu: GPUSpec = A30,
    ipu: IPUSpec = GC200,
    seed: int = 2,
    epochs: int | None = None,
) -> Table4Row:
    """Train one method and integrate simulated device times over its steps."""
    epochs = hp.epochs if epochs is None else epochs
    model = shl_model(method, dim=hp.hidden_dim, seed=seed)
    trainer = nn.Trainer(
        model,
        nn.SGD(
            model.parameters(), lr=hp.learning_rate, momentum=hp.momentum
        ),
    )
    tr, va = nn.train_val_split(train, hp.val_fraction, seed=seed)
    history = trainer.fit(
        nn.DataLoader(tr, hp.batch_size, seed=seed),
        nn.DataLoader(va, 250, shuffle=False) if len(va) else None,
        epochs=epochs,
    )
    _, test_acc = trainer.evaluate(nn.DataLoader(test, 250, shuffle=False))
    gpu_tc, gpu_notc, ipu_t = _device_step_times(model, hp, gpu, ipu)
    steps = history.steps
    return Table4Row(
        method=method,
        n_params=model.param_count(),
        accuracy=test_acc,
        gpu_tc_time_s=gpu_tc * steps,
        gpu_notc_time_s=gpu_notc * steps,
        ipu_time_s=ipu_t * steps,
    )


def run(
    hp: Table3Hyperparameters = TABLE3,
    methods: list[str] | None = None,
    seed: int = 0,
    epochs: int | None = None,
    n_train: int | None = None,
    n_test: int | None = None,
) -> list[Table4Row]:
    """Full Table 4: train every method on the same data and seeds."""
    train, test = load_cifar10(
        n_train=n_train or hp.n_train, n_test=n_test or hp.n_test, seed=seed
    )
    return [
        run_method(method, train, test, hp=hp, epochs=epochs)
        for method in methods or METHODS
    ]


def render(rows: list[Table4Row] | None = None) -> str:
    """Text rendering of the Table 4 reproduction (plus Table 3 header)."""
    hp = TABLE3
    header = (
        "Table 3 hyperparameters: "
        f"lr={hp.learning_rate}, optimizer={hp.optimizer}, "
        f"momentum={hp.momentum}, batch={hp.batch_size}, "
        f"activation={hp.activation}, loss={hp.loss}, "
        f"val={hp.val_fraction:.0%} of training set\n"
    )
    rows = rows if rows is not None else run()
    baseline = next(r for r in rows if r.method == "Baseline")
    table = Table(
        title="Table 4: SHL benchmark on synthetic CIFAR-10",
        columns=[
            "Method",
            "N_params",
            "compression",
            "Accuracy [%]",
            "GPU w/TC [s]",
            "GPU w/o TC [s]",
            "IPU [s]",
        ],
    )
    for row in rows:
        table.add_row(
            row.method,
            row.n_params,
            f"{row.compression(baseline.n_params):.1%}",
            row.accuracy * 100,
            row.gpu_tc_time_s,
            row.gpu_notc_time_s,
            row.ipu_time_s,
        )
    return header + table.render()


if __name__ == "__main__":
    print(render())  # noqa: T201
