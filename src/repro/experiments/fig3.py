"""Fig 3 — exchange latency and bandwidth vs message size and tile distance.

The paper measures transfers between a neighbouring tile pair (0, 1) and a
distant pair (0, 644) and finds identical curves — Observation 1.  The
sweep here regenerates both series from the exchange model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.reporting import Table
from repro.ipu.exchange import ExchangeModel
from repro.ipu.machine import GC200, IPUSpec

__all__ = ["NEIGHBOUR_PAIR", "DISTANT_PAIR", "default_sizes", "run", "render"]

#: The paper's tile pairs.
NEIGHBOUR_PAIR = (0, 1)
DISTANT_PAIR = (0, 644)


def default_sizes() -> list[int]:
    """Message sizes 4 B .. 4 MiB, powers of two."""
    return [4 << i for i in range(21)]


@dataclass(frozen=True)
class Fig3Row:
    """One sweep point: both pairs at one message size."""

    n_bytes: int
    neighbour_latency_s: float
    distant_latency_s: float
    neighbour_bandwidth: float
    distant_bandwidth: float

    @property
    def distance_independent(self) -> bool:
        """Observation 1 for this point."""
        return self.neighbour_latency_s == self.distant_latency_s


def run(
    spec: IPUSpec = GC200, sizes: list[int] | None = None
) -> list[Fig3Row]:
    """Sweep both tile pairs over the message sizes."""
    model = ExchangeModel(spec)
    rows = []
    for size in sizes or default_sizes():
        near = model.measure(size, *NEIGHBOUR_PAIR)
        far = model.measure(size, *DISTANT_PAIR)
        rows.append(
            Fig3Row(
                n_bytes=size,
                neighbour_latency_s=near.latency_s,
                distant_latency_s=far.latency_s,
                neighbour_bandwidth=near.bandwidth_bytes_per_s,
                distant_bandwidth=far.bandwidth_bytes_per_s,
            )
        )
    return rows


def render(spec: IPUSpec = GC200) -> str:
    """Text rendering of the Fig 3 series."""
    table = Table(
        title=(
            "Fig 3: GC200 exchange latency/bandwidth, tile pairs "
            f"{NEIGHBOUR_PAIR} vs {DISTANT_PAIR}"
        ),
        columns=[
            "bytes",
            "lat near (us)",
            "lat far (us)",
            "BW near (GB/s)",
            "BW far (GB/s)",
            "distance-free",
        ],
    )
    for row in run(spec):
        table.add_row(
            row.n_bytes,
            row.neighbour_latency_s * 1e6,
            row.distant_latency_s * 1e6,
            row.neighbour_bandwidth / 1e9,
            row.distant_bandwidth / 1e9,
            row.distance_independent,
        )
    return table.render()


if __name__ == "__main__":
    print(render())  # noqa: T201
