"""Table 1 — spec-sheet comparison of the GC200 IPU and A30 GPU.

Regenerated from the two machine models so every number the simulators use
is the number the table shows (a consistency test cross-checks derived
rates against the datasheet peaks).
"""

from __future__ import annotations

from repro.bench.reporting import Table
from repro.gpu.machine import A30, GPUSpec
from repro.ipu.machine import GC200, IPUSpec
from repro.utils import GiB, MiB

__all__ = ["run", "render"]


def run(
    gpu: GPUSpec = A30, ipu: IPUSpec = GC200
) -> list[tuple[str, str, str]]:
    """Rows of (quantity, GPU value, IPU value), paper order."""
    return [
        ("Number of cores", f"{gpu.sm_count * 64}", f"{ipu.n_tiles}"),
        (
            "On-chip memory",
            "10.75 MB",  # A30 L2 (datasheet; not modelled further)
            f"{ipu.total_memory_bytes / MiB:.0f} MB",
        ),
        (
            "Off-chip memory",
            f"{gpu.memory_bytes / GiB:.0f} GB",
            f"{ipu.offchip_memory_bytes / GiB:.0f} GB",
        ),
        (
            "Off-chip memory bandwidth",
            f"{gpu.dram_bandwidth / 1e9:.0f} GB/s",
            f"{ipu.host_bandwidth / 1e9:.0f} GB/s",
        ),
        (
            "On-chip memory bandwidth",
            "5.5 TB/s",  # A30 L2 bandwidth (datasheet)
            f"{ipu.exchange_bandwidth_total / 1e12:.1f} TB/s",
        ),
        (
            "FP32 peak compute",
            f"{gpu.peak_flops_fp32 / 1e12:.1f} TFLOPS",
            f"{ipu.peak_flops_fp32 / 1e12:.1f} TFLOPS",
        ),
        (
            "TF32 peak compute",
            f"{gpu.peak_flops_tf32 / 1e12:.0f} TFLOPS",
            "-",
        ),
        (
            "Clock frequency",
            f"{gpu.clock_hz / 1e9:.2f} GHz",
            f"{ipu.clock_hz / 1e9:.2f} GHz",
        ),
    ]


def render(gpu: GPUSpec = A30, ipu: IPUSpec = GC200) -> str:
    """Text rendering of the Table 1 reproduction."""
    table = Table(
        title="Table 1: Comparison of Graphcore GC200 and NVIDIA A30",
        columns=["", gpu.name, ipu.name],
    )
    for row in run(gpu, ipu):
        table.add_row(*row)
    return table.render()


if __name__ == "__main__":
    print(render())  # noqa: T201
