"""Table 5 — pixelfly hyper-parameter sweep on the IPU.

The paper varies one of {butterfly size, block size, low-rank size} while
holding the other two fixed, for every combination of the fixed pair, and
reports the *maximum standard deviation* of training time, accuracy and
parameter count attributable to each knob.  Its conclusions:

* low-rank size barely moves execution time (dense matmul is the IPU's
  cheap path) but moves accuracy the most;
* block size moves execution time the most;
* butterfly size moves the parameter count the most.

We regenerate the full grid.  Accuracy per configuration comes from a short
real training run on the synthetic dataset (configurable budget); time is
the simulated IPU training-step time integrated over the steps.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.bench.parallel import run_grid
from repro.guard import GuardPolicy
from repro.bench.reporting import Table
from repro.datasets import load_cifar10
from repro.experiments.config import TABLE3, Table3Hyperparameters
from repro.ipu.machine import GC200, IPUSpec
from repro.ipu.poptorch import IPUModule

__all__ = [
    "SweepPoint",
    "SweepSummary",
    "default_grid",
    "evaluate_config",
    "run",
    "summarize",
    "render",
]

#: The paper's parameter ranges (Table 5).
BUTTERFLY_SIZES = [2, 4, 16, 128]
BLOCK_SIZES = [8, 16, 32]
RANK_SIZES = [2, 4, 64, 128]


def default_grid() -> list[tuple[int, int, int]]:
    """(butterfly_size, block_size, rank) combinations."""
    return list(itertools.product(BUTTERFLY_SIZES, BLOCK_SIZES, RANK_SIZES))


@dataclass(frozen=True)
class SweepPoint:
    """Metrics of one pixelfly configuration."""

    butterfly_size: int
    block_size: int
    rank: int
    time_s: float
    accuracy: float
    n_params: int


@dataclass(frozen=True)
class SweepSummary:
    """Mean and max-std per metric for one varied knob (a Table 5 block)."""

    varied: str
    time_mean: float
    time_max_std: float
    accuracy_mean: float
    accuracy_max_std: float
    params_mean: float
    params_max_std: float


def evaluate_config(
    butterfly_size: int,
    block_size: int,
    rank: int,
    train: nn.ArrayDataset,
    test: nn.ArrayDataset,
    hp: Table3Hyperparameters = TABLE3,
    ipu: IPUSpec = GC200,
    epochs: int = 2,
    seed: int = 2,
) -> SweepPoint:
    """Train one pixelfly SHL configuration and collect its metrics."""
    dim = hp.hidden_dim
    model = nn.Sequential(
        nn.PixelflyLinear(
            dim,
            block_size=block_size,
            butterfly_size=butterfly_size,
            rank=rank,
            seed=seed,
        ),
        nn.ReLU(),
        nn.Linear(dim, 10, seed=1),
    )
    trainer = nn.Trainer(
        model,
        nn.SGD(model.parameters(), lr=hp.learning_rate, momentum=hp.momentum),
    )
    history = trainer.fit(
        nn.DataLoader(train, hp.batch_size, seed=seed), epochs=epochs
    )
    _, acc = trainer.evaluate(nn.DataLoader(test, 250, shuffle=False))
    step = IPUModule(
        model, in_features=dim, batch=hp.batch_size, spec=ipu
    ).training_step_time() + ipu.host_step_overhead_s
    return SweepPoint(
        butterfly_size=butterfly_size,
        block_size=block_size,
        rank=rank,
        time_s=step * history.steps,
        accuracy=acc,
        n_params=model.param_count(),
    )


def _evaluate_config_worker(config: tuple, seed_seq) -> SweepPoint:
    """Grid worker: reload the dataset and train one configuration.

    Each worker re-derives the synthetic dataset from ``(n_train,
    n_test, seed)`` — a pure function of those arguments — instead of
    pickling the arrays, so results match the serial path exactly.
    """
    bf, bs, r, hp, epochs, n_train, n_test, seed = config
    train, test = load_cifar10(n_train=n_train, n_test=n_test, seed=seed)
    return evaluate_config(bf, bs, r, train, test, hp=hp, epochs=epochs)


def run(
    grid: list[tuple[int, int, int]] | None = None,
    hp: Table3Hyperparameters = TABLE3,
    epochs: int = 2,
    n_train: int = 2000,
    n_test: int = 1000,
    seed: int = 0,
    jobs: int = 1,
    guard: GuardPolicy | None = None,
) -> list[SweepPoint]:
    """Evaluate the whole grid (short training budget per point)."""
    grid = grid or default_grid()
    if jobs == 1 and guard is None:
        # Serial path loads the dataset once and shares it across points.
        train, test = load_cifar10(
            n_train=n_train, n_test=n_test, seed=seed
        )
        return [
            evaluate_config(bf, bs, r, train, test, hp=hp, epochs=epochs)
            for bf, bs, r in grid
        ]
    configs = [
        (bf, bs, r, hp, epochs, n_train, n_test, seed)
        for bf, bs, r in grid
    ]
    points = run_grid(
        _evaluate_config_worker,
        configs,
        jobs=jobs,
        seed=seed,
        guard=guard,
        name="table5",
    )
    return [point for point in points if point is not None]


def _attr(point: SweepPoint, name: str) -> float:
    return float(getattr(point, name))


def summarize(points: list[SweepPoint]) -> list[SweepSummary]:
    """The paper's reduction: vary one knob, hold the others, take max std.

    For each knob, group the points by the values of the other two knobs;
    within each group the knob varies alone.  The reported std is the
    maximum group std (the paper's ``max_std``); the mean is over all
    points.
    """
    knobs = ["butterfly_size", "block_size", "rank"]
    out = []
    for knob in knobs:
        others = [k for k in knobs if k != knob]
        groups: dict[tuple, list[SweepPoint]] = {}
        for p in points:
            key = tuple(getattr(p, o) for o in others)
            groups.setdefault(key, []).append(p)
        max_stds = {}
        for metric in ["time_s", "accuracy", "n_params"]:
            stds = [
                float(np.std([_attr(p, metric) for p in group]))
                for group in groups.values()
                if len(group) > 1
            ]
            max_stds[metric] = max(stds) if stds else 0.0
        out.append(
            SweepSummary(
                varied=knob,
                time_mean=float(np.mean([p.time_s for p in points])),
                time_max_std=max_stds["time_s"],
                accuracy_mean=float(np.mean([p.accuracy for p in points])),
                accuracy_max_std=max_stds["accuracy"],
                params_mean=float(np.mean([p.n_params for p in points])),
                params_max_std=max_stds["n_params"],
            )
        )
    return out


def render(
    points: list[SweepPoint] | None = None,
    jobs: int = 1,
    guard: GuardPolicy | None = None,
) -> str:
    """Text rendering of the Table 5 reproduction."""
    points = points if points is not None else run(jobs=jobs, guard=guard)
    summaries = summarize(points)
    table = Table(
        title=(
            "Table 5: pixelfly sweep on the IPU — max std per varied "
            "parameter (others held fixed)"
        ),
        columns=[
            "varied",
            "time mean [s]",
            "time max_std",
            "acc mean [%]",
            "acc max_std",
            "params mean",
            "params max_std",
        ],
    )
    for s in summaries:
        table.add_row(
            s.varied,
            s.time_mean,
            s.time_max_std,
            s.accuracy_mean * 100,
            s.accuracy_max_std * 100,
            round(s.params_mean),
            round(s.params_max_std),
        )
    return table.render()


if __name__ == "__main__":
    print(render())  # noqa: T201
