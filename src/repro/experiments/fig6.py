"""Fig 6 — torch.nn.Linear vs butterfly vs pixelfly layer execution time.

Three panels like the paper: GPU with tensor cores off, GPU with tensor
cores on, and the IPU (PopTorch mode, which inseparably includes host data
movement — the paper's stated measurement caveat).  Square problems: an
``N x N`` layer applied to an ``N``-row batch.

Headline shapes preserved (see EXPERIMENTS.md for measured values):
GPU break-even for butterfly near ``N = 2**11`` with an order-of-magnitude
worst-case slowdown at small N; IPU break-even near ``N = 2**10`` with only
~1.4x worst-case slowdown and ~1.3-1.6x best-case speedup.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import nn
from repro.bench.parallel import run_grid
from repro.guard import GuardPolicy
from repro.bench.reporting import Table
from repro.gpu.machine import A30, GPUSpec
from repro.gpu.torchsim import GPUModule
from repro.ipu.machine import GC200, IPUSpec
from repro.ipu.poptorch import IPUModule

__all__ = [
    "Fig6Row",
    "MemoryLimitRow",
    "default_sizes",
    "layer_times",
    "memory_limits",
    "render_memory_limits",
    "run",
    "render",
]

#: Fig 6's lightweight pixelfly configuration (few stride bands, rank 1) —
#: the layer-benchmark default, unlike Table 4's parameter-matched config.
FIG6_PIXELFLY = dict(block_size=32, butterfly_size=4, rank=1)


def default_sizes() -> list[int]:
    """N = 2**7 .. 2**12 (2**13 is available but slow to plan)."""
    return [1 << e for e in range(7, 13)]


@dataclass(frozen=True)
class Fig6Row:
    """Layer forward times at one size on one device panel."""

    device: str  # 'gpu_notc' | 'gpu_tc' | 'ipu'
    n: int
    linear_s: float
    butterfly_s: float
    pixelfly_s: float

    @property
    def butterfly_speedup(self) -> float:
        """linear / butterfly (>1 means butterfly wins)."""
        return self.linear_s / self.butterfly_s

    @property
    def pixelfly_speedup(self) -> float:
        """linear / pixelfly (>1 means pixelfly wins)."""
        return self.linear_s / self.pixelfly_s


def _layers(n: int):
    linear = nn.Linear(n, n, bias=False, seed=0)
    butterfly = nn.ButterflyLinear(n, n, bias=False, seed=0)
    pixelfly = nn.PixelflyLinear(n, bias=False, seed=0, **FIG6_PIXELFLY)
    return linear, butterfly, pixelfly


def layer_times(
    device: str,
    n: int,
    gpu: GPUSpec = A30,
    ipu: IPUSpec = GC200,
) -> Fig6Row:
    """Forward time of the three layers at size *n* on one panel."""
    linear, butterfly, pixelfly = _layers(n)
    if device == "ipu":
        times = [
            IPUModule(layer, in_features=n, batch=n, spec=ipu, host_io=True)
            .forward_time()
            for layer in (linear, butterfly, pixelfly)
        ]
    elif device in ("gpu_notc", "gpu_tc"):
        tc = device == "gpu_tc"
        times = [
            GPUModule(
                layer, in_features=n, batch=n, tensor_cores=tc, spec=gpu
            ).forward_time()
            for layer in (linear, butterfly, pixelfly)
        ]
    else:
        raise ValueError(f"unknown device panel {device!r}")
    return Fig6Row(
        device=device,
        n=n,
        linear_s=times[0],
        butterfly_s=times[1],
        pixelfly_s=times[2],
    )


def _layer_times_worker(
    config: tuple[str, int, GPUSpec, IPUSpec], seed_seq
) -> Fig6Row:
    """Grid worker: one (device panel, size) cell."""
    device, n, gpu, ipu = config
    return layer_times(device, n, gpu=gpu, ipu=ipu)


def run(
    sizes: list[int] | None = None,
    devices: tuple[str, ...] = ("gpu_notc", "gpu_tc", "ipu"),
    gpu: GPUSpec = A30,
    ipu: IPUSpec = GC200,
    jobs: int = 1,
    guard: GuardPolicy | None = None,
) -> list[Fig6Row]:
    """All three panels across the size sweep."""
    configs = [
        (device, n, gpu, ipu)
        for device in devices
        for n in sizes or default_sizes()
    ]
    rows = run_grid(
        _layer_times_worker, configs, jobs=jobs, guard=guard, name="fig6"
    )
    return [row for row in rows if row is not None]


@dataclass(frozen=True)
class MemoryLimitRow:
    """Largest runnable layer size per device/layer type."""

    device: str
    linear_max: int
    butterfly_max: int
    pixelfly_max: int


def memory_limits(
    max_exp: int = 18,
    batch: int = 256,
    gpu: GPUSpec = A30,
    ipu: IPUSpec = GC200,
) -> list[MemoryLimitRow]:
    """The Fig 6 footnote claim: Linear "reaches its limit earlier".

    Finds the largest ``N = 2**e`` at which each layer's forward pass is
    runnable at a fixed batch (256, Dao et al.'s setting — at batch = N the
    activations dominate and every layer hits the same wall): on the GPU,
    the dense weight must fit the 24 GB device; on the IPU, the compiled
    forward graph must fit In-Processor-Memory.  Structured layers never
    materialise the ``N x N`` weight, so they keep going long after the
    dense layer OOMs.
    """
    from repro.gpu.simulator import GPUDevice, GPUOutOfMemoryError

    device = GPUDevice(gpu)
    rows = []

    def gpu_fits(layer_kind: str, n: int) -> bool:
        # Weight + activations (+ cuBLAS workspace for the dense layer).
        act = 2 * 4 * batch * n  # input + output
        if layer_kind == "linear":
            try:
                device.check_fit(
                    device.matmul_workspace_bytes(batch, n, n) + act
                )
                return True
            except GPUOutOfMemoryError:
                return False
        if layer_kind == "butterfly":
            from repro.core.butterfly import butterfly_param_count

            weight = 4 * butterfly_param_count(n)
        else:  # pixelfly
            from repro.core.pixelfly import pixelfly_param_count

            weight = 4 * pixelfly_param_count(n, 32, 4, 1)
        try:
            device.check_fit(weight + act)
            return True
        except GPUOutOfMemoryError:
            return False

    def largest(fits) -> int:
        best = 0
        for e in range(7, max_exp + 1):
            n = 1 << e
            if fits(n):
                best = n
            else:
                break
        return best

    rows.append(
        MemoryLimitRow(
            device="gpu",
            linear_max=largest(lambda n: gpu_fits("linear", n)),
            butterfly_max=largest(lambda n: gpu_fits("butterfly", n)),
            pixelfly_max=largest(lambda n: gpu_fits("pixelfly", n)),
        )
    )

    def ipu_fits(layer_factory, n: int) -> bool:
        module = IPUModule(
            layer_factory(n), in_features=n, batch=batch, spec=ipu
        )
        return module.fits()

    ipu_max_exp = min(max_exp, 14)  # graph construction cost grows fast
    def largest_ipu(factory) -> int:
        best = 0
        for e in range(7, ipu_max_exp + 1):
            n = 1 << e
            if ipu_fits(factory, n):
                best = n
            else:
                break
        return best

    rows.append(
        MemoryLimitRow(
            device="ipu",
            linear_max=largest_ipu(
                lambda n: nn.Linear(n, n, bias=False, seed=0)
            ),
            butterfly_max=largest_ipu(
                lambda n: nn.ButterflyLinear(n, n, bias=False, seed=0)
            ),
            pixelfly_max=largest_ipu(
                lambda n: nn.PixelflyLinear(
                    n, bias=False, seed=0, **FIG6_PIXELFLY
                )
            ),
        )
    )
    return rows


def render_memory_limits(limits: list[MemoryLimitRow] | None = None) -> str:
    """Text rendering of the memory-limit probe (Fig 6 footnote claim)."""
    limits = limits if limits is not None else memory_limits()
    table = Table(
        title=(
            "Fig 6 footnote: largest runnable layer size (batch 256) — "
            "'torch.nn.Linear reaches its limit earlier'"
        ),
        columns=["device", "linear max N", "butterfly max N", "pixelfly max N"],
    )
    for row in limits:
        table.add_row(
            row.device, row.linear_max, row.butterfly_max, row.pixelfly_max
        )
    return table.render()


def render(
    sizes: list[int] | None = None,
    jobs: int = 1,
    guard: GuardPolicy | None = None,
) -> str:
    """Text rendering of the three Fig 6 panels."""
    rows = run(sizes, jobs=jobs, guard=guard)
    out = []
    for device, label in [
        ("gpu_notc", "GPU, tensor cores OFF"),
        ("gpu_tc", "GPU, tensor cores ON"),
        ("ipu", "IPU (PopTorch, incl. host streaming)"),
    ]:
        table = Table(
            title=f"Fig 6 [{label}]: layer forward time",
            columns=[
                "N",
                "linear (ms)",
                "butterfly (ms)",
                "pixelfly (ms)",
                "bf speedup",
                "pxf speedup",
            ],
        )
        for row in rows:
            if row.device != device:
                continue
            table.add_row(
                row.n,
                row.linear_s * 1e3,
                row.butterfly_s * 1e3,
                row.pixelfly_s * 1e3,
                row.butterfly_speedup,
                row.pixelfly_speedup,
            )
        out.append(table.render())
    return "\n\n".join(out)


if __name__ == "__main__":
    print(render())  # noqa: T201
