"""Seeded open-loop request workloads for the serving simulator.

An inference workload is a stream of requests arriving *open loop*: the
arrival process does not react to server backpressure, which is what
makes offered load an independent variable (and overload an observable
outcome rather than an artefact of the generator slowing down).

Determinism contract: every random draw for request *i* comes from
``numpy.random.SeedSequence([seed, i, stream])`` — its own child stream,
never a shared cursor.  Request *i* is therefore identical whether the
workload generates 10 requests or 10 000, and identical across serial
and parallel runs of the same grid.  Payload bytes are regenerated on
demand from the same coordinates instead of being stored, so a
:class:`Request` stays a few plain numbers and pickles cheaply across
worker processes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ARRIVALS",
    "Request",
    "WorkloadSpec",
    "generate_requests",
    "request_payload",
]

#: Supported arrival processes.
ARRIVALS = ("poisson", "burst")

# Per-request child-stream indices.  Keeping the gap/rows draws and the
# payload draws on separate streams means reading a payload never
# perturbs arrival times.
_ARRIVAL_STREAM = 0
_PAYLOAD_STREAM = 1


@dataclass(frozen=True)
class Request:
    """One inference request: arrival coordinates plus an SLO deadline.

    ``rows`` is the number of input rows (a request may carry more than
    one sample); the batcher packs whole requests into the compiled
    batch and pads the remainder.  ``deadline_s`` is absolute simulated
    time — a completion after it still returns a result but does not
    count toward goodput.
    """

    index: int
    arrival_s: float
    rows: int
    deadline_s: float


@dataclass(frozen=True)
class WorkloadSpec:
    """Declarative description of an open-loop request stream.

    ``rate_rps`` is the long-run offered load in requests/second.  The
    ``burst`` process alternates between a quiet phase and a burst phase
    (``burst_factor`` × the base rate) with period ``burst_period_s``
    and duty cycle ``burst_duty``; the *current* phase is decided by the
    arrival time accumulated so far, so the process stays a pure
    function of the seed.
    """

    seed: int = 0
    n_requests: int = 200
    rate_rps: float = 200.0
    arrival: str = "poisson"
    burst_factor: float = 4.0
    burst_period_s: float = 0.25
    burst_duty: float = 0.25
    rows_min: int = 1
    rows_max: int = 4
    slo_s: float = 0.05

    def __post_init__(self) -> None:
        if self.arrival not in ARRIVALS:
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; "
                f"expected one of {ARRIVALS}"
            )
        if self.n_requests < 0:
            raise ValueError(
                f"n_requests must be >= 0, got {self.n_requests}"
            )
        if self.rate_rps <= 0:
            raise ValueError(f"rate_rps must be > 0, got {self.rate_rps}")
        if not 1 <= self.rows_min <= self.rows_max:
            raise ValueError(
                f"need 1 <= rows_min <= rows_max, got "
                f"[{self.rows_min}, {self.rows_max}]"
            )
        if self.slo_s <= 0:
            raise ValueError(f"slo_s must be > 0, got {self.slo_s}")
        if self.burst_factor < 1:
            raise ValueError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if not 0 < self.burst_duty < 1:
            raise ValueError(
                f"burst_duty must be in (0, 1), got {self.burst_duty}"
            )
        if self.burst_period_s <= 0:
            raise ValueError(
                f"burst_period_s must be > 0, got {self.burst_period_s}"
            )


def _request_rng(
    spec: WorkloadSpec, index: int, stream: int
) -> np.random.Generator:
    return np.random.default_rng(
        np.random.SeedSequence([spec.seed, index, stream])
    )


def _local_rate(spec: WorkloadSpec, now_s: float) -> float:
    """The instantaneous arrival rate at simulated time *now_s*."""
    if spec.arrival != "burst":
        return spec.rate_rps
    phase = math.fmod(now_s, spec.burst_period_s)
    in_burst = phase < spec.burst_duty * spec.burst_period_s
    return spec.rate_rps * spec.burst_factor if in_burst else spec.rate_rps


def generate_requests(spec: WorkloadSpec) -> list[Request]:
    """Materialise the request stream described by *spec*.

    Arrival gaps are exponential in the local rate (a Poisson process,
    rate-modulated for ``burst``); request *i*'s gap and row count come
    from ``SeedSequence([seed, i, 0])`` only, so a prefix of a longer
    workload is bit-identical to a shorter one.
    """
    requests: list[Request] = []
    now_s = 0.0
    for index in range(spec.n_requests):
        rng = _request_rng(spec, index, _ARRIVAL_STREAM)
        gap_s = rng.exponential(1.0 / _local_rate(spec, now_s))
        now_s += gap_s
        rows = int(rng.integers(spec.rows_min, spec.rows_max + 1))
        requests.append(
            Request(
                index=index,
                arrival_s=now_s,
                rows=rows,
                deadline_s=now_s + spec.slo_s,
            )
        )
    return requests


def request_payload(
    spec: WorkloadSpec, request: Request, in_features: int
) -> np.ndarray:
    """The input rows of *request*, regenerated from its coordinates.

    Pure in ``SeedSequence([seed, index, 1])``: the same request always
    carries the same bytes, on any worker, in any run.
    """
    rng = _request_rng(spec, request.index, _PAYLOAD_STREAM)
    return rng.standard_normal((request.rows, in_features))
