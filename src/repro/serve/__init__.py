"""Deterministic inference serving on the IPU simulator.

The serving subsystem closes the loop the paper opens: butterfly /
pixelfly factorizations shrink a model's SRAM footprint, so a fixed IPU
memory budget holds more replicas, so the same offered load is served
with higher goodput and lower tail latency.  Everything runs on a
simulated clock with seeded randomness — same seed, same manifest,
byte for byte, at any ``--jobs``.

Layers (each its own module):

* :mod:`repro.serve.workload` — seeded open-loop request generation
* :mod:`repro.serve.batcher` — dynamic micro-batching with padding
* :mod:`repro.serve.replica` — memory-budget-derived replica pools
* :mod:`repro.serve.server` — the SLO-aware discrete-event scheduler
* :mod:`repro.serve.report` — ``repro.serve/1`` manifest + obs wiring

Entry points: ``python -m repro serve [--smoke]`` and
``benchmarks/test_serve_throughput.py``; docs in docs/SERVING.md.
"""

from repro.serve.batcher import Batch, BatchPolicy, MicroBatcher
from repro.serve.replica import (
    SERVE_METHODS,
    Replica,
    ReplicaPool,
    build_model,
    build_pool,
)
from repro.serve.report import (
    SERVE_SCHEMA,
    ServeScenario,
    record_metrics,
    record_spans,
    serve_section,
    serve_worker,
)
from repro.serve.server import (
    ReplicaDeadError,
    ServeConfig,
    ServeResult,
    Server,
    death_schedule,
    simulate,
)
from repro.serve.workload import (
    Request,
    WorkloadSpec,
    generate_requests,
    request_payload,
)

__all__ = [
    "SERVE_METHODS",
    "SERVE_SCHEMA",
    "Batch",
    "BatchPolicy",
    "MicroBatcher",
    "Replica",
    "ReplicaDeadError",
    "ReplicaPool",
    "Request",
    "ServeConfig",
    "ServeResult",
    "ServeScenario",
    "Server",
    "WorkloadSpec",
    "build_model",
    "build_pool",
    "death_schedule",
    "generate_requests",
    "record_metrics",
    "record_spans",
    "request_payload",
    "serve_section",
    "serve_worker",
    "simulate",
]
