"""The serving event loop: simulated clock, SLOs, admission, faults.

A :class:`Server` joins a :class:`~repro.serve.replica.ReplicaPool`, a
:class:`~repro.serve.batcher.MicroBatcher` and a request stream into one
discrete-event simulation.  There is **no wall clock anywhere in the
loop** — time is a heap of ``(time_s, priority, seq)``-ordered events,
service times come from the executor's cost model, and every random
draw (arrivals, payloads, deaths, retry backoff) is seeded.  Two runs of
the same configuration are therefore bit-identical, on any machine, at
any ``--jobs`` — the property the manifest-determinism tests and the CI
``serve-smoke`` gate assert.

Behaviours modelled:

* **Admission control** — a request is shed at arrival when the bounded
  queue is full (``shed_queue``) or when a service-time estimate says
  its SLO deadline is already unreachable (``shed_slo``): shedding at
  the door costs nothing, missing the deadline after doing the work
  costs a batch slot.
* **Load shedding under overload** — open-loop arrivals keep coming, so
  overload shows up as a rising shed rate instead of generator slowdown.
* **Degraded replicas** — a seeded death schedule kills replicas
  mid-run.  The in-flight batch is lost; each of its requests raises a
  :class:`ReplicaDeadError` (a :class:`~repro.guard.policy.TransientError`),
  is classified by :func:`~repro.guard.policy.classify_exception`, and
  re-queued after :meth:`GuardPolicy.backoff_s` — the same seeded
  retry/backoff machinery the supervised grid runner uses.  Dead
  replicas drain and are routed around; the pool shrinks.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field

import numpy as np

from repro.guard.policy import (
    TRANSIENT,
    GuardPolicy,
    TransientError,
    classify_exception,
)
from repro.serve.batcher import Batch, BatchPolicy, MicroBatcher
from repro.serve.replica import ReplicaPool
from repro.serve.workload import Request, WorkloadSpec, generate_requests

__all__ = [
    "ReplicaDeadError",
    "ServeConfig",
    "ServeResult",
    "Server",
    "death_schedule",
    "nearest_rank",
    "simulate",
]

# Event kinds, by processing priority at equal timestamps: completions
# free replicas before deaths can kill them, deaths reroute before new
# work is admitted, flush timers run last so they see the final queue.
_COMPLETE = 0
_DEATH = 1
_ARRIVAL = 2
_RETRY = 3
_FLUSH = 4

# Terminal request statuses.
COMPLETED = "completed"
SHED_QUEUE = "shed_queue"
SHED_SLO = "shed_slo"
SHED_DEAD = "shed_dead"
FAILED = "failed"

SHED_STATUSES = (SHED_QUEUE, SHED_SLO, SHED_DEAD)


class ReplicaDeadError(TransientError):
    """A replica died with this request's batch in flight."""


#: The grid runner's default backoff (50 ms base) suits process restarts;
#: re-queuing a request inside a microsecond-scale serving loop needs the
#: same seeded exponential curve at a thousandth the scale.
SERVE_GUARD = GuardPolicy(
    retries=2, backoff_base_s=1e-4, backoff_max_s=1e-3, jitter=0.25, seed=0
)


@dataclass(frozen=True)
class ServeConfig:
    """Server-side policy knobs (the workload is specified separately)."""

    batch_policy: BatchPolicy
    queue_max_requests: int = 32
    guard: GuardPolicy = SERVE_GUARD
    #: ``(replica_index, time_s)`` pairs; see :func:`death_schedule`.
    deaths: tuple[tuple[int, float], ...] = ()

    def __post_init__(self) -> None:
        if self.queue_max_requests < 1:
            raise ValueError(
                "queue_max_requests must be >= 1, "
                f"got {self.queue_max_requests}"
            )


def death_schedule(
    seed: int, n_replicas: int, n_deaths: int, horizon_s: float
) -> tuple[tuple[int, float], ...]:
    """A seeded replica-death schedule: which replicas die, and when.

    Pure in ``SeedSequence([seed, 0xdead])``; victims are distinct
    replica indices, death times are uniform over ``(0, horizon_s)``.
    """
    if n_deaths < 0:
        raise ValueError(f"n_deaths must be >= 0, got {n_deaths}")
    n_deaths = min(n_deaths, n_replicas)
    if n_deaths == 0:
        return ()
    rng = np.random.default_rng(np.random.SeedSequence([seed, 0xDEAD]))
    victims = rng.choice(n_replicas, size=n_deaths, replace=False)
    times = rng.uniform(0.0, horizon_s, size=n_deaths)
    return tuple(
        (int(v), float(t)) for v, t in sorted(zip(victims, times))
    )


def nearest_rank(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile — exact, platform-independent."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(q / 100.0 * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass
class _Outcome:
    request: Request
    status: str = ""
    completed_s: float | None = None
    attempts: int = 0
    replica: int | None = None

    @property
    def latency_s(self) -> float | None:
        if self.completed_s is None:
            return None
        return self.completed_s - self.request.arrival_s

    @property
    def on_time(self) -> bool:
        return (
            self.completed_s is not None
            and self.completed_s <= self.request.deadline_s
        )


@dataclass
class ServeResult:
    """Everything one simulated serving run produced, JSON-ready."""

    pool: ReplicaPool
    outcomes: list[_Outcome]
    batches: list[dict]
    retries: int
    deaths: int
    horizon_s: float
    last_arrival_s: float

    def as_dict(self) -> dict:
        """Plain-dict form: picklable across workers, manifest-ready."""
        completed = [o for o in self.outcomes if o.status == COMPLETED]
        latencies = sorted(o.latency_s for o in completed)
        on_time = sum(1 for o in completed if o.on_time)
        shed = {
            status: sum(1 for o in self.outcomes if o.status == status)
            for status in SHED_STATUSES
        }
        shed = {k: v for k, v in shed.items() if v}
        n = len(self.outcomes)
        ok_batches = [b for b in self.batches if b["status"] == "ok"]
        real_rows = sum(b["rows"] for b in ok_batches)
        slot_rows = sum(b["rows"] + b["pad_rows"] for b in ok_batches)
        pool = self.pool
        return {
            "method": pool.method,
            "dim": int(pool.dim),
            "batch_rows": int(pool.batch_rows),
            "budget_bytes": float(pool.budget_bytes),
            "replica_bytes": float(pool.replica_bytes),
            "n_replicas": int(pool.n_replicas),
            "service_s": float(pool.service_s),
            "requests": int(n),
            "completed": len(completed),
            "on_time": int(on_time),
            "failed": sum(1 for o in self.outcomes if o.status == FAILED),
            "shed": shed,
            "shed_rate": (n - len(completed)) / n if n else 0.0,
            "retries": int(self.retries),
            "deaths": int(self.deaths),
            "latency_s": {
                "p50": nearest_rank(latencies, 50.0),
                "p95": nearest_rank(latencies, 95.0),
                "p99": nearest_rank(latencies, 99.0),
                "max": latencies[-1] if latencies else 0.0,
            },
            "goodput_rps": (
                on_time / self.horizon_s if self.horizon_s > 0 else 0.0
            ),
            "offered_rps": (
                n / self.last_arrival_s if self.last_arrival_s > 0 else 0.0
            ),
            "occupancy": real_rows / slot_rows if slot_rows else 0.0,
            "horizon_s": float(self.horizon_s),
            "replicas": [
                {
                    "index": r.index,
                    "batches": int(r.batches),
                    "busy_s": float(r.busy_s),
                    "utilisation": float(r.utilisation(self.horizon_s)),
                    "died_at_s": (
                        None if r.died_at_s is None else float(r.died_at_s)
                    ),
                }
                for r in pool.replicas
            ],
            "batches": list(self.batches),
        }


@dataclass
class Server:
    """Discrete-event serving simulation over one replica pool."""

    pool: ReplicaPool
    config: ServeConfig
    _events: list = field(default_factory=list, repr=False)
    _seq: int = 0

    def __post_init__(self) -> None:
        self.batcher = MicroBatcher(self.config.batch_policy)
        self._outcomes: dict[int, _Outcome] = {}
        self._in_flight: dict[int, tuple[int, Batch, float]] = {}
        self._batch_log: list[dict] = []
        self._batch_records: dict[int, dict] = {}
        self._scheduled_flushes: set[float] = set()
        self._next_batch_id = 0
        self._retries = 0
        self._deaths = 0
        self._horizon_s = 0.0

    # -- event plumbing --------------------------------------------------------

    def _push(self, time_s: float, priority: int, kind: str, payload) -> None:
        heapq.heappush(
            self._events, (time_s, priority, self._seq, kind, payload)
        )
        self._seq += 1

    # -- the run ---------------------------------------------------------------

    def run(self, requests: list[Request]) -> ServeResult:
        """Drive the event loop to completion and summarise."""
        for request in requests:
            self._outcomes[request.index] = _Outcome(request=request)
            self._push(request.arrival_s, _ARRIVAL, "arrival", request)
        for replica_index, time_s in self.config.deaths:
            if 0 <= replica_index < self.pool.n_replicas:
                self._push(time_s, _DEATH, "death", replica_index)
        last_arrival_s = requests[-1].arrival_s if requests else 0.0

        while self._events:
            now_s, _, _, kind, payload = heapq.heappop(self._events)
            self._horizon_s = max(self._horizon_s, now_s)
            if kind == "arrival":
                self._on_arrival(now_s, payload)
            elif kind == "retry":
                self._on_retry(now_s, payload)
            elif kind == "complete":
                self._on_complete(now_s, payload)
            elif kind == "death":
                self._on_death(now_s, payload)
            # "flush" events carry no handler: they exist to wake the
            # dispatch pass below at the delay-trigger time.
            self._dispatch(now_s)
            self._schedule_flush_wakeup(now_s)

        return ServeResult(
            pool=self.pool,
            outcomes=[
                self._outcomes[i] for i in sorted(self._outcomes)
            ],
            batches=self._batch_log,
            retries=self._retries,
            deaths=self._deaths,
            horizon_s=self._horizon_s,
            last_arrival_s=last_arrival_s,
        )

    # -- admission -------------------------------------------------------------

    def _estimate_completion_s(self, now_s: float, rows: int) -> float:
        """Crude but deterministic finish-time estimate for admission."""
        healthy = self.pool.healthy_replicas()
        batches_ahead = math.ceil(
            (self.batcher.queued_rows + rows)
            / self.config.batch_policy.max_batch_rows
        )
        start_s = max(now_s, min(r.free_at_s for r in healthy))
        per_wave = max(1, len(healthy))
        waves = math.ceil(batches_ahead / per_wave)
        return start_s + waves * self.pool.service_s

    def _on_arrival(self, now_s: float, request: Request) -> None:
        outcome = self._outcomes[request.index]
        if not self.pool.healthy_replicas():
            outcome.status = SHED_DEAD
            return
        if self.batcher.queued_requests >= self.config.queue_max_requests:
            outcome.status = SHED_QUEUE
            return
        if self._estimate_completion_s(now_s, request.rows) > request.deadline_s:
            outcome.status = SHED_SLO
            return
        self.batcher.offer(request, now_s)

    def _on_retry(self, now_s: float, request: Request) -> None:
        # Retried requests were already admitted once; they bypass the
        # SLO estimate (a late answer still beats none) but not a dead
        # pool.
        if not self.pool.healthy_replicas():
            self._outcomes[request.index].status = FAILED
            return
        self.batcher.offer(request, now_s)

    # -- dispatch --------------------------------------------------------------

    def _dispatch(self, now_s: float) -> None:
        while True:
            reason = self.batcher.flush_reason(now_s)
            if reason is None:
                return
            free = [
                r
                for r in self.pool.healthy_replicas()
                if r.free_at_s <= now_s
            ]
            if not free:
                return
            replica = min(free, key=lambda r: (r.free_at_s, r.index))
            batch = self.batcher.flush(now_s, reason)
            service_s = self.pool.service_s
            replica.free_at_s = now_s + service_s
            replica.batches += 1
            replica.busy_s += service_s
            batch_id = self._next_batch_id
            self._next_batch_id += 1
            self._in_flight[replica.index] = (batch_id, batch, now_s)
            record = {
                "replica": replica.index,
                "start_s": now_s,
                "service_s": service_s,
                "rows": batch.rows,
                "pad_rows": batch.pad_rows,
                "n_requests": len(batch.requests),
                "reason": batch.reason,
                "status": "ok",
            }
            self._batch_log.append(record)
            self._batch_records[batch_id] = record
            self._push(
                now_s + service_s,
                _COMPLETE,
                "complete",
                (replica.index, batch_id),
            )

    def _schedule_flush_wakeup(self, now_s: float) -> None:
        wake_s = self.batcher.next_delay_flush_s()
        if (
            wake_s is not None
            and wake_s > now_s
            and wake_s not in self._scheduled_flushes
        ):
            self._scheduled_flushes.add(wake_s)
            self._push(wake_s, _FLUSH, "flush", None)

    # -- completion / failure --------------------------------------------------

    def _on_complete(self, now_s: float, payload: tuple[int, int]) -> None:
        replica_index, batch_id = payload
        entry = self._in_flight.get(replica_index)
        if entry is None or entry[0] != batch_id:
            return  # the batch was lost to a death before completing
        _, batch, _ = self._in_flight.pop(replica_index)
        for request in batch.requests:
            outcome = self._outcomes[request.index]
            outcome.status = COMPLETED
            outcome.completed_s = now_s
            outcome.replica = replica_index

    def _on_death(self, now_s: float, replica_index: int) -> None:
        replica = self.pool.replicas[replica_index]
        if not replica.healthy:
            return
        replica.healthy = False
        replica.died_at_s = now_s
        self._deaths += 1
        entry = self._in_flight.pop(replica_index, None)
        if entry is None:
            return
        batch_id, batch, start_s = entry
        # Give back the unserved tail of the lost batch's service time.
        replica.busy_s -= max(0.0, start_s + self.pool.service_s - now_s)
        self._batch_records[batch_id]["status"] = "lost"
        guard = self.config.guard
        for request in batch.requests:
            outcome = self._outcomes[request.index]
            outcome.attempts += 1
            error = ReplicaDeadError(
                f"replica {replica_index} died at "
                f"{now_s:.6f}s with request {request.index} in flight"
            )
            if (
                classify_exception(error) is TRANSIENT
                and outcome.attempts <= guard.retries
            ):
                self._retries += 1
                retry_s = now_s + guard.backoff_s(
                    request.index, outcome.attempts
                )
                self._push(retry_s, _RETRY, "retry", request)
            else:
                outcome.status = FAILED


def simulate(
    pool: ReplicaPool,
    workload: WorkloadSpec,
    config: ServeConfig,
) -> ServeResult:
    """Generate the workload, run the server, return the result."""
    return Server(pool=pool, config=config).run(generate_requests(workload))
