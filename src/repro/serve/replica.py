"""Replica pools: IPU memory budget → replica count.

This is where the paper's memory result becomes a serving result.  One
replica's SRAM footprint is read off the compiled graph's
:class:`~repro.ipu.compiler.MemoryReport` (the same accounting the
memory-planning and regression subsystems gate on), and the pool size is
*derived*: ``floor(budget_bytes / replica_bytes)``, capped by
``max_replicas``.  A butterfly factorization that shrinks the footprint
~40× therefore fields ~40× the replicas of the dense baseline inside the
same budget — which the server turns into goodput.

All replicas of a pool serve the same model, so the pool compiles
*once* (through the ambient :mod:`repro.cache` compilation cache — a
second pool build of the same method anywhere in the process is a cache
hit) and shares the compiled artefact.  Per-batch service time is the
executor's deterministic cost-model estimate, so the whole serving
simulation stays bit-reproducible across machines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro import nn
from repro.ipu.executor import Executor
from repro.ipu.machine import GC200, IPUSpec
from repro.ipu.poptorch import IPUModule

__all__ = [
    "SERVE_METHODS",
    "Replica",
    "ReplicaPool",
    "build_model",
    "build_pool",
]

#: The model families the serving benchmark compares.
SERVE_METHODS = ("dense", "butterfly", "pixelfly")

#: Pixelfly parameters, matching the fig6 experiment configuration.
PIXELFLY_PARAMS = dict(block_size=32, butterfly_size=4, rank=1)


def build_model(
    method: str, dim: int, depth: int = 3, seed: int = 0
) -> nn.Module:
    """A *depth*-layer ReLU MLP in the given parameterisation."""
    if method == "dense":
        make = lambda i: nn.Linear(dim, dim, bias=False, seed=seed + i)
    elif method == "butterfly":
        make = lambda i: nn.ButterflyLinear(
            dim, dim, bias=False, seed=seed + i
        )
    elif method == "pixelfly":
        make = lambda i: nn.PixelflyLinear(
            dim, bias=False, seed=seed + i, **PIXELFLY_PARAMS
        )
    else:
        raise ValueError(
            f"unknown serve method {method!r}; "
            f"expected one of {SERVE_METHODS}"
        )
    layers: list[nn.Module] = []
    for i in range(depth):
        layers.append(make(i))
        if i < depth - 1:
            layers.append(nn.ReLU())
    return nn.Sequential(*layers)


@dataclass
class Replica:
    """Mutable serving state of one replica (simulated time)."""

    index: int
    free_at_s: float = 0.0
    healthy: bool = True
    died_at_s: float | None = None
    batches: int = 0
    busy_s: float = 0.0

    def utilisation(self, horizon_s: float) -> float:
        """Busy fraction of the run (up to death, for dead replicas)."""
        alive_s = horizon_s if self.died_at_s is None else self.died_at_s
        return self.busy_s / alive_s if alive_s > 0 else 0.0


@dataclass
class ReplicaPool:
    """``n_replicas`` copies of one compiled model under one budget."""

    method: str
    dim: int
    batch_rows: int
    budget_bytes: float
    replica_bytes: float
    service_s: float
    module: IPUModule = field(repr=False)
    replicas: list[Replica] = field(default_factory=list)

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    def healthy_replicas(self) -> list[Replica]:
        return [r for r in self.replicas if r.healthy]


def build_pool(
    method: str,
    dim: int,
    batch_rows: int,
    budget_bytes: float,
    depth: int = 3,
    spec: IPUSpec = GC200,
    max_replicas: int = 64,
    seed: int = 0,
) -> ReplicaPool:
    """Compile *method* once and size the pool from the memory budget.

    Raises :class:`ValueError` when not even one replica fits — an
    undersized budget is a configuration error, not a zero-throughput
    data point.
    """
    if budget_bytes <= 0:
        raise ValueError(f"budget_bytes must be > 0, got {budget_bytes}")
    if max_replicas < 1:
        raise ValueError(f"max_replicas must be >= 1, got {max_replicas}")
    model = build_model(method, dim, depth=depth, seed=seed)
    module = IPUModule(model, in_features=dim, batch=batch_rows, spec=spec)
    compiled = module.compile(check_fit=False)
    replica_bytes = float(compiled.memory.total_bytes)
    n = min(max_replicas, math.floor(budget_bytes / replica_bytes))
    if n < 1:
        raise ValueError(
            f"budget {budget_bytes:.0f} B holds no {method} replica "
            f"({replica_bytes:.0f} B each)"
        )
    service_s = float(Executor(compiled).estimate().total_s)
    return ReplicaPool(
        method=method,
        dim=dim,
        batch_rows=batch_rows,
        budget_bytes=float(budget_bytes),
        replica_bytes=replica_bytes,
        service_s=service_s,
        module=module,
        replicas=[Replica(index=i) for i in range(n)],
    )
