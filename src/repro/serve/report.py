"""The ``repro.serve/1`` manifest section and its obs wiring.

The split of responsibilities is what makes ``--jobs 1`` and ``--jobs 2``
runs byte-identical: the *simulation* (worker side, possibly in a spawn
process) returns one plain dict per method, and the *presentation*
(parent side) rebuilds metrics and trace spans from those dicts in
method order.  Nothing that reaches the manifest ever touches a wall
clock or depends on which process ran which method.

:func:`serve_worker` is the :func:`repro.bench.parallel.run_grid` worker
(module top level, spawn-picklable); :func:`serve_section` produces the
manifest section; :func:`record_metrics` / :func:`record_spans` populate
a :class:`~repro.obs.metrics.MetricRegistry` and a
:class:`~repro.obs.tracer.Tracer` so the standard report/regress/
timeline tooling works on serving runs unchanged — ``python -m repro
timeline`` renders one track per replica.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.serve.batcher import BatchPolicy
from repro.serve.replica import build_pool
from repro.serve.server import (
    ServeConfig,
    death_schedule,
    simulate,
)
from repro.serve.workload import WorkloadSpec

__all__ = [
    "SERVE_SCHEMA",
    "ServeScenario",
    "record_metrics",
    "record_spans",
    "serve_section",
    "serve_worker",
]

#: Manifest section schema written by :func:`serve_section`.
SERVE_SCHEMA = "repro.serve/1"


@dataclass(frozen=True)
class ServeScenario:
    """One method's full serving configuration — the grid cell."""

    method: str
    dim: int = 512
    depth: int = 3
    batch_rows: int = 8
    budget_bytes: float = 32 * 2**20
    max_replicas: int = 64
    n_requests: int = 400
    rate_rps: float = 400000.0
    arrival: str = "poisson"
    slo_ms: float = 0.5
    max_delay_ms: float = 0.05
    queue_max_requests: int = 32
    n_deaths: int = 1
    seed: int = 0

    def as_config(self) -> dict:
        """The plain-dict grid config (spawn workers pickle this)."""
        return {
            "method": self.method,
            "dim": self.dim,
            "depth": self.depth,
            "batch_rows": self.batch_rows,
            "budget_bytes": self.budget_bytes,
            "max_replicas": self.max_replicas,
            "n_requests": self.n_requests,
            "rate_rps": self.rate_rps,
            "arrival": self.arrival,
            "slo_ms": self.slo_ms,
            "max_delay_ms": self.max_delay_ms,
            "queue_max_requests": self.queue_max_requests,
            "n_deaths": self.n_deaths,
            "seed": self.seed,
        }


def serve_worker(config: dict, seed_seq=None) -> dict:
    """Simulate one method's serving run; returns a plain dict.

    The grid's ``seed_seq`` is deliberately unused: every draw inside
    the simulation is keyed off ``config["seed"]`` so the result is a
    pure function of the config — independent of worker placement.
    """
    scenario = ServeScenario(**config)
    pool = build_pool(
        scenario.method,
        scenario.dim,
        scenario.batch_rows,
        scenario.budget_bytes,
        depth=scenario.depth,
        max_replicas=scenario.max_replicas,
        seed=0,
    )
    workload = WorkloadSpec(
        seed=scenario.seed,
        n_requests=scenario.n_requests,
        rate_rps=scenario.rate_rps,
        arrival=scenario.arrival,
        rows_min=1,
        rows_max=min(4, scenario.batch_rows),
        slo_s=scenario.slo_ms / 1e3,
    )
    horizon_s = scenario.n_requests / scenario.rate_rps
    config_obj = ServeConfig(
        batch_policy=BatchPolicy(
            max_batch_rows=scenario.batch_rows,
            max_delay_s=scenario.max_delay_ms / 1e3,
        ),
        queue_max_requests=scenario.queue_max_requests,
        deaths=death_schedule(
            scenario.seed, pool.n_replicas, scenario.n_deaths, horizon_s
        ),
    )
    return simulate(pool, workload, config_obj).as_dict()


def serve_section(results: list[dict]) -> dict:
    """The ``repro.serve/1`` manifest section for one serving run.

    *results* is one :meth:`ServeResult.as_dict` per method, in method
    order.  Per-batch logs are summarised away (they live in the trace);
    everything else is carried so regressions in replica count, shed
    rate or tail latency are visible in a manifest diff.
    """
    methods = []
    for result in results:
        entry = {
            key: result[key]
            for key in (
                "method",
                "dim",
                "batch_rows",
                "budget_bytes",
                "replica_bytes",
                "n_replicas",
                "service_s",
                "requests",
                "completed",
                "on_time",
                "failed",
                "shed",
                "shed_rate",
                "retries",
                "deaths",
                "latency_s",
                "goodput_rps",
                "offered_rps",
                "occupancy",
                "horizon_s",
            )
        }
        entry["batches"] = len(result["batches"])
        entry["lost_batches"] = sum(
            1 for b in result["batches"] if b["status"] == "lost"
        )
        entry["replicas"] = [
            {k: v for k, v in replica.items()}
            for replica in result["replicas"]
        ]
        methods.append(entry)
    return {"schema": SERVE_SCHEMA, "methods": methods}


def record_metrics(results: list[dict], registry) -> None:
    """Rebuild the serving metrics deterministically, in method order.

    Naming is chosen for the regress gate's default directions: the
    ``_s`` gauges (latency percentiles) fail CI on increase, the
    ``_bytes`` gauge fails on replica-footprint growth, and the
    ``.count`` counters gate both ways.
    """
    for result in results:
        method = result["method"]
        registry.gauge("serve.replicas", method=method).set(
            result["n_replicas"]
        )
        registry.gauge("serve.replica_bytes", method=method).set(
            result["replica_bytes"]
        )
        registry.gauge("serve.service_s", method=method).set(
            result["service_s"]
        )
        registry.gauge("serve.goodput_rps", method=method).set(
            result["goodput_rps"]
        )
        registry.gauge("serve.occupancy", method=method).set(
            result["occupancy"]
        )
        for percentile in ("p50", "p95", "p99"):
            registry.gauge(
                f"serve.{percentile}_s", method=method
            ).set(result["latency_s"][percentile])
        registry.counter("serve.requests.count", method=method).inc(
            result["requests"]
        )
        registry.counter("serve.completed.count", method=method).inc(
            result["completed"]
        )
        registry.counter("serve.on_time.count", method=method).inc(
            result["on_time"]
        )
        registry.counter("serve.failed.count", method=method).inc(
            result["failed"]
        )
        for reason, count in sorted(result["shed"].items()):
            registry.counter(
                "serve.shed.count", method=method, reason=reason
            ).inc(count)
        registry.counter("serve.retry.count", method=method).inc(
            result["retries"]
        )
        registry.counter("serve.death.count", method=method).inc(
            result["deaths"]
        )


def record_spans(results: list[dict], tracer) -> None:
    """Lay each method's batches onto per-replica virtual tracks.

    Track names are ``serve/<method>/r<index>``, so the HTML timeline
    shows one lane per replica with its batch intervals — lost batches
    (replica died mid-service) render under their own span name.
    """
    for result in results:
        method = result["method"]
        for batch in result["batches"]:
            name = (
                "serve.batch" if batch["status"] == "ok" else "serve.lost"
            )
            tracer.add_span(
                name,
                batch["service_s"],
                track=f"serve/{method}/r{batch['replica']}",
                category="serve",
                start_s=batch["start_s"],
                rows=batch["rows"],
                pad_rows=batch["pad_rows"],
                reason=batch["reason"],
            )
        for replica in result["replicas"]:
            if replica["died_at_s"] is not None:
                tracer.add_span(
                    "serve.dead",
                    max(0.0, result["horizon_s"] - replica["died_at_s"]),
                    track=f"serve/{method}/r{replica['index']}",
                    category="fault",
                    start_s=replica["died_at_s"],
                )
