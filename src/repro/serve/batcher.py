"""Dynamic micro-batching: pack queued requests into the compiled batch.

The IPU executes a *fixed* compiled batch shape, so the batcher's job is
to trade latency for occupancy: wait for more requests (better padding
efficiency) or flush now (better tail latency).  The policy is the
classic two-trigger rule — flush when the queue can fill the compiled
batch, or when the oldest queued request has waited ``max_delay_s``.

Requests are packed whole (a request's rows never split across two
batches) in arrival order, and the remainder of the compiled batch is
padded with zero rows.  Padding is semantically free: the numeric
forward is row-independent for every layer family this repo ships (the
``batched_forward`` verify oracle and
``tests/ipu/test_batched_forward.py`` pin this down bit-for-bit), so a
padded batch returns exactly the bytes each request would have gotten
alone.

The batcher is a pure data structure driven by the server's simulated
clock — it never reads wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.workload import Request

__all__ = ["Batch", "BatchPolicy", "MicroBatcher"]

#: Flush reasons, in the order they are checked.
FLUSH_FULL = "full"
FLUSH_DELAY = "delay"
FLUSH_DRAIN = "drain"


@dataclass(frozen=True)
class BatchPolicy:
    """The two-trigger micro-batching policy.

    ``max_batch_rows`` is the compiled batch size (the hard packing
    limit); ``max_delay_s`` bounds how long the oldest queued request
    may wait before a partial batch is flushed anyway.
    """

    max_batch_rows: int
    max_delay_s: float

    def __post_init__(self) -> None:
        if self.max_batch_rows < 1:
            raise ValueError(
                f"max_batch_rows must be >= 1, got {self.max_batch_rows}"
            )
        if self.max_delay_s < 0:
            raise ValueError(
                f"max_delay_s must be >= 0, got {self.max_delay_s}"
            )


@dataclass(frozen=True)
class Batch:
    """One formed micro-batch, ready for a replica."""

    requests: tuple[Request, ...]
    rows: int
    pad_rows: int
    formed_s: float
    reason: str

    @property
    def occupancy(self) -> float:
        """Fraction of the compiled batch carrying real rows."""
        return self.rows / (self.rows + self.pad_rows)


@dataclass
class MicroBatcher:
    """FIFO request queue with the two-trigger flush rule."""

    policy: BatchPolicy
    _queue: list[tuple[Request, float]] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._rows = 0

    # -- queue state -----------------------------------------------------------

    @property
    def queued_requests(self) -> int:
        return len(self._queue)

    @property
    def queued_rows(self) -> int:
        return self._rows

    def oldest_enqueued_s(self) -> float | None:
        """Enqueue time of the head request, or ``None`` when empty."""
        return self._queue[0][1] if self._queue else None

    def next_delay_flush_s(self) -> float | None:
        """Absolute time at which the delay trigger fires, or ``None``."""
        oldest = self.oldest_enqueued_s()
        return None if oldest is None else oldest + self.policy.max_delay_s

    # -- enqueue / flush -------------------------------------------------------

    def offer(self, request: Request, now_s: float) -> None:
        """Append *request* to the queue (admission already decided)."""
        if request.rows > self.policy.max_batch_rows:
            raise ValueError(
                f"request {request.index} carries {request.rows} rows; "
                f"the compiled batch holds {self.policy.max_batch_rows}"
            )
        self._queue.append((request, now_s))
        self._rows += request.rows

    def flush_reason(self, now_s: float) -> str | None:
        """Which trigger (if any) says a batch should be formed now.

        The *full* trigger fires when the head batch cannot grow any
        further — its rows hit ``max_batch_rows`` exactly, **or** the
        next queued request would overflow it.  Waiting on a maximal
        partial batch would buy nothing and cost delay.
        """
        if not self._queue:
            return None
        rows, taken = self._head_prefix()
        if rows >= self.policy.max_batch_rows or taken < len(self._queue):
            return FLUSH_FULL
        if now_s >= self._queue[0][1] + self.policy.max_delay_s:
            return FLUSH_DELAY
        return None

    def _head_prefix(self) -> tuple[int, int]:
        """(rows, requests) of the maximal whole-request head batch."""
        rows = 0
        taken = 0
        for request, _ in self._queue:
            if rows + request.rows > self.policy.max_batch_rows:
                break
            rows += request.rows
            taken += 1
        return rows, taken

    def flush(self, now_s: float, reason: str) -> Batch:
        """Form a batch from the head of the queue.

        Takes whole requests in FIFO order while they fit the compiled
        batch; the remainder stays queued for the next flush.
        """
        if not self._queue:
            raise ValueError("flush on an empty queue")
        taken: list[Request] = []
        rows = 0
        while self._queue:
            request, _ = self._queue[0]
            if rows + request.rows > self.policy.max_batch_rows:
                break
            taken.append(request)
            rows += request.rows
            self._queue.pop(0)
        self._rows -= rows
        return Batch(
            requests=tuple(taken),
            rows=rows,
            pad_rows=self.policy.max_batch_rows - rows,
            formed_s=now_s,
            reason=reason,
        )
