"""Deterministic random-number-generator plumbing.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Centralising the
coercion here keeps experiments reproducible: a single seed at the experiment
driver fans out into independent, stable substreams via :func:`derive_rng`.
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng", "derive_rng"]

# Type alias used across the code base in annotations.
RngLike = "int | np.random.Generator | None"


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce *seed* into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged (shared stream);
    passing an ``int`` builds a fresh PCG64 stream; ``None`` draws OS entropy.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def derive_rng(rng: np.random.Generator, *key: int | str) -> np.random.Generator:
    """Derive an independent child stream from *rng*, keyed by *key*.

    The child is independent of later draws from the parent: we spawn it from
    a seed sequence built from fresh parent entropy plus the (hashed) key, so
    two children with different keys never collide even if created in a
    different order across runs of the same seed.
    """
    material = [int(rng.integers(0, 2**32))]
    for part in key:
        if isinstance(part, str):
            # Stable string hash (Python's hash() is salted per process).
            acc = 0
            for ch in part.encode("utf-8"):
                acc = (acc * 131 + ch) % (2**31 - 1)
            material.append(acc)
        else:
            material.append(int(part) & 0xFFFFFFFF)
    return np.random.default_rng(np.random.SeedSequence(material))
