"""Shared utilities: deterministic RNG handling, validation helpers, units."""

from repro.utils.rng import as_rng, derive_rng
from repro.utils.validation import (
    check_power_of_two,
    check_positive,
    check_square,
    log2_int,
)
from repro.utils.units import (
    KiB,
    MiB,
    GiB,
    format_bytes,
    format_seconds,
    format_flops,
)

__all__ = [
    "as_rng",
    "derive_rng",
    "check_power_of_two",
    "check_positive",
    "check_square",
    "log2_int",
    "KiB",
    "MiB",
    "GiB",
    "format_bytes",
    "format_seconds",
    "format_flops",
]
