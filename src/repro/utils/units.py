"""Byte/time/FLOP unit constants and human-readable formatting.

The simulators account memory in bytes and time in seconds; benchmark tables
render through these formatters so every report uses consistent units.
"""

from __future__ import annotations

__all__ = ["KiB", "MiB", "GiB", "format_bytes", "format_seconds", "format_flops"]

KiB = 1024
MiB = 1024**2
GiB = 1024**3


def format_bytes(n: float) -> str:
    """Render a byte count with a binary-prefix unit (e.g. ``'1.50 MiB'``)."""
    n = float(n)
    for unit, scale in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= scale:
            return f"{n / scale:.2f} {unit}"
    return f"{n:.0f} B"


def format_seconds(t: float) -> str:
    """Render a duration with an SI prefix (e.g. ``'12.3 us'``)."""
    t = float(t)
    for unit, scale in (("s", 1.0), ("ms", 1e-3), ("us", 1e-6)):
        if abs(t) >= scale:
            return f"{t / scale:.3g} {unit}"
    return f"{t / 1e-9:.3g} ns"


def format_flops(f: float) -> str:
    """Render a FLOP/s rate (e.g. ``'62.5 TFLOP/s'``)."""
    f = float(f)
    for unit, scale in (("TFLOP/s", 1e12), ("GFLOP/s", 1e9), ("MFLOP/s", 1e6)):
        if abs(f) >= scale:
            return f"{f / scale:.3g} {unit}"
    return f"{f:.3g} FLOP/s"
