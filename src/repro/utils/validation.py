"""Small argument-validation helpers shared across subpackages.

These raise early with precise messages; structured factorizations have hard
shape constraints (powers of two, squareness) that would otherwise surface as
confusing reshape errors deep inside vectorised numpy code.
"""

from __future__ import annotations

import numpy as np

__all__ = ["check_power_of_two", "check_positive", "check_square", "log2_int"]


def check_power_of_two(n: int, name: str = "n") -> int:
    """Validate that *n* is a positive power of two; return it unchanged."""
    n = int(n)
    if n <= 0 or (n & (n - 1)) != 0:
        raise ValueError(f"{name} must be a positive power of two, got {n}")
    return n


def check_positive(value: float, name: str = "value") -> float:
    """Validate that *value* is strictly positive; return it unchanged."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value}")
    return value


def check_square(a: np.ndarray, name: str = "matrix") -> np.ndarray:
    """Validate that *a* is a 2-D square array; return it unchanged."""
    if a.ndim != 2 or a.shape[0] != a.shape[1]:
        raise ValueError(f"{name} must be square 2-D, got shape {a.shape}")
    return a


def log2_int(n: int, name: str = "n") -> int:
    """Return log2(n) for a power-of-two *n* as an exact int."""
    check_power_of_two(n, name)
    return int(n).bit_length() - 1
