#!/usr/bin/env python3
"""Fig 6 / Fig 7: when does a butterfly beat torch.nn.Linear?

Sweeps the layer size N (square problems, batch = N like the paper) and
prints the three Fig 6 panels — GPU without tensor cores, GPU with tensor
cores, and the IPU — followed by the Fig 7 graph statistics that explain
the IPU numbers.

Run:  python examples/butterfly_vs_linear.py [--max-exp 12]
"""

import argparse
import sys

from repro.experiments import fig6, fig7


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--max-exp",
        type=int,
        default=12,
        help="largest size is 2**max_exp (default 12)",
    )
    args = parser.parse_args(argv)
    sizes = [1 << e for e in range(7, args.max_exp + 1)]

    print(fig6.render(sizes=sizes))
    print()
    print(fig7.render(sizes=sizes))
    print()
    print(fig6.render_memory_limits())

    rows = fig6.run(sizes=sizes, devices=("ipu", "gpu_notc"))
    ipu = {r.n: r for r in rows if r.device == "ipu"}
    gpu = {r.n: r for r in rows if r.device == "gpu_notc"}
    ipu_even = next(
        (n for n in sizes if ipu[n].butterfly_speedup >= 1.0), None
    )
    gpu_even = next(
        (n for n in sizes if gpu[n].butterfly_speedup >= 1.0), None
    )
    print()
    print(
        f"IPU butterfly break-even: N = {ipu_even} (paper: 2^10); "
        f"GPU break-even: N = {gpu_even} (paper: 2^11)"
    )
    best = max(r.butterfly_speedup for r in ipu.values())
    print(
        f"IPU max butterfly speedup in range: {best:.2f}x (paper: 1.6x) — "
        "far below the N/log2(N) asymptotic factor because only "
        "torch.nn.Linear reaches the AMP units and PopTorch measurements "
        "include host streaming."
    )


if __name__ == "__main__":
    main(sys.argv[1:])
