#!/usr/bin/env python3
"""Serving butterfly models: more replicas per IPU, more goodput.

The paper's memory result, restated for inference serving: at a fixed
device-memory budget, a butterfly (or pixelfly) MLP is small enough to
fit many replicas where a dense MLP fits a few — and at equal offered
load the bigger pool delivers strictly higher goodput (requests
completed within their SLO, per second).

This example sweeps the offered load and prints goodput per method, so
the saturation knee of each pool is visible: dense flattens first, the
structured factorizations keep scaling.

Run:  python examples/serving_butterfly.py [--dim 512] [--budget-mb 32]
"""

import argparse
import dataclasses

from repro.serve import SERVE_METHODS, ServeScenario, serve_worker


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--dim", type=int, default=512, help="model width (default 512)"
    )
    parser.add_argument(
        "--budget-mb",
        type=int,
        default=32,
        help="per-method memory budget in MiB (default 32)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=300,
        help="requests per load point (default 300)",
    )
    args = parser.parse_args(argv)

    base = ServeScenario(
        method="dense",
        dim=args.dim,
        budget_bytes=args.budget_mb * 2**20,
        n_requests=args.requests,
    )
    loads = [100e3, 200e3, 400e3, 800e3]

    pools = {}
    for method in SERVE_METHODS:
        summary = serve_worker(
            dataclasses.replace(base, method=method).as_config()
        )
        pools[method] = summary
        print(
            f"{method:>9}: {summary['n_replicas']:3d} replicas x "
            f"{summary['replica_bytes'] / 1024:8.1f} KiB "
            f"(budget {args.budget_mb} MiB)"
        )

    print()
    header = "offered rps".rjust(12) + "".join(
        m.rjust(12) for m in SERVE_METHODS
    )
    print(header)
    print("-" * len(header))
    for rate in loads:
        cells = []
        for method in SERVE_METHODS:
            scenario = dataclasses.replace(
                base, method=method, rate_rps=rate
            )
            summary = serve_worker(scenario.as_config())
            cells.append(f"{summary['goodput_rps']:12.0f}")
        print(f"{rate:12.0f}" + "".join(cells))

    print()
    print(
        "goodput = requests completed within their SLO per second; "
        "dense saturates at its small pool's capacity while butterfly "
        "and pixelfly keep absorbing load."
    )


if __name__ == "__main__":
    main()
