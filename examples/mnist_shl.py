#!/usr/bin/env python3
"""The paper's MNIST side-experiment.

Two findings the paper reports in prose (its MNIST table is omitted):

1. *"the pixelfly approach did not work on the MNIST dataset due to the
   requirements of the matrix sizes being a power of two"* — MNIST images
   are 28 x 28 = 784-dimensional.
2. *"for MNIST slight accuracy improvements for butterfly are visible,
   most likely due to improved regularization as a side effect."*

This script demonstrates both on the synthetic MNIST substitute: pixelfly
refuses to construct, and the butterfly SHL is trained against the dense
baseline (the butterfly pads 784 -> 1024 internally).

Run:  python examples/mnist_shl.py [--epochs 8]
"""

import argparse
import sys

from repro import nn
from repro.bench.reporting import Table
from repro.datasets import MNIST_DIM, load_mnist


def train(hidden: nn.Module, train_ds, test_ds, epochs: int, seed=0):
    model = nn.Sequential(hidden, nn.ReLU(), nn.Linear(MNIST_DIM, 10, seed=1))
    trainer = nn.Trainer(
        model, nn.SGD(model.parameters(), lr=0.01, momentum=0.9)
    )
    trainer.fit(nn.DataLoader(train_ds, 50, seed=seed), epochs=epochs)
    _, acc = trainer.evaluate(nn.DataLoader(test_ds, 250, shuffle=False))
    return model.param_count(), acc


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--n-train", type=int, default=6000)
    args = parser.parse_args(argv)

    # -- 1. pixelfly cannot be built at 784 features ------------------------
    try:
        nn.PixelflyLinear(MNIST_DIM)
        raise AssertionError("pixelfly unexpectedly accepted 784 features")
    except ValueError as exc:
        print(f"pixelfly on MNIST: {exc}")
        print("(matches the paper: pixelfly requires power-of-two sizes)\n")

    # -- 2. butterfly vs baseline -------------------------------------------
    train_ds, test_ds = load_mnist(n_train=args.n_train, n_test=1500, seed=0)
    table = Table(
        title=f"SHL on synthetic MNIST ({args.epochs} epochs)",
        columns=["method", "N_params", "test accuracy [%]"],
    )
    for name, hidden in [
        ("Baseline", nn.Linear(MNIST_DIM, MNIST_DIM, seed=2)),
        ("Butterfly", nn.ButterflyLinear(MNIST_DIM, MNIST_DIM, seed=2)),
        ("Low-rank", nn.LowRankLinear(MNIST_DIM, MNIST_DIM, rank=1, seed=2)),
    ]:
        params, acc = train(hidden, train_ds, test_ds, args.epochs)
        table.add_row(name, params, acc * 100)
    print(table.render())
    print(
        "\nNote the butterfly's internal padding: 784 features round up to "
        "a 1024-wide butterfly, the rectangular path the MNIST experiment "
        "exercises."
    )


if __name__ == "__main__":
    main(sys.argv[1:])
