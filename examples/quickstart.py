#!/usr/bin/env python3
"""Quickstart: replace a dense layer with a butterfly factorization.

Demonstrates the library's core loop in under a minute:

1. build a butterfly layer and check it against its dense expansion;
2. count parameters / compression vs. a dense ``Linear``;
3. train a small classifier with it (numpy autograd, SGD + momentum);
4. estimate what one training step would cost on the simulated GC200 IPU
   and A30 GPU.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import nn
from repro.core.compression import CompressionReport
from repro.datasets import SyntheticSpec, make_classification
from repro.gpu.torchsim import GPUModule
from repro.ipu.poptorch import IPUModule
from repro.utils import format_seconds

DIM = 256
CLASSES = 4


def main() -> None:
    # -- 1. a butterfly layer is a drop-in Linear replacement --------------
    layer = nn.ButterflyLinear(DIM, DIM, seed=0)
    x = np.random.default_rng(0).standard_normal((8, DIM))
    fast = layer(nn.Tensor(x)).data
    dense_equiv = x @ layer.weight_dense().T + layer.bias.data
    print(
        "butterfly fast path == dense expansion:",
        np.allclose(fast, dense_equiv),
    )

    # -- 2. compression accounting -----------------------------------------
    dense_params = nn.Linear(DIM, DIM, seed=0).param_count()
    report = CompressionReport("butterfly", dense_params, layer.param_count())
    print(report)

    # -- 3. train it on the synthetic planted-transform task ---------------
    spec = SyntheticSpec(dim=DIM, n_classes=CLASSES, support_size=16)
    train = make_classification(1500, spec, seed=1, split=0)
    test = make_classification(500, spec, seed=1, split=1)
    model = nn.Sequential(layer, nn.ReLU(), nn.Linear(DIM, CLASSES, seed=1))
    trainer = nn.Trainer(
        model, nn.SGD(model.parameters(), lr=0.02, momentum=0.9)
    )
    trainer.fit(nn.DataLoader(train, 50, seed=0), epochs=6, verbose=True)
    _, acc = trainer.evaluate(nn.DataLoader(test, 250, shuffle=False))
    print(f"test accuracy: {acc:.1%}")

    # -- 4. what would a training step cost on the simulated devices? ------
    ipu = IPUModule(model, in_features=DIM, batch=50)
    gpu = GPUModule(model, in_features=DIM, batch=50)
    gpu_tc = GPUModule(model, in_features=DIM, batch=50, tensor_cores=True)
    print(
        "simulated step time:"
        f" IPU {format_seconds(ipu.training_step_time())},"
        f" GPU {format_seconds(gpu.training_step_time())},"
        f" GPU+TC {format_seconds(gpu_tc.training_step_time())}"
    )
    profile = ipu.profile()
    print(
        f"IPU forward graph: {profile.n_compute_sets} compute sets, "
        f"{profile.n_vertices} vertices, {profile.n_edges} edges; "
        f"fits in tile memory: {profile.fits}"
    )


if __name__ == "__main__":
    main()
