#!/usr/bin/env python3
"""Table 5: the pixelfly hyper-parameter sweep on the IPU.

Evaluates the (butterfly size, block size, low-rank size) grid, training
each configuration briefly on synthetic CIFAR-10 and integrating the
simulated IPU step time, then prints the paper's max-std reduction and the
per-configuration detail.

Run:  python examples/pixelfly_sweep.py [--epochs 2] [--full]
"""

import argparse
import sys

from repro.bench.reporting import Table
from repro.experiments import table5


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--epochs", type=int, default=2)
    parser.add_argument(
        "--full",
        action="store_true",
        help="full paper grid (slower); default is a 2x2x2 subgrid",
    )
    args = parser.parse_args(argv)

    grid = None
    if not args.full:
        grid = [
            (bf, bs, r)
            for bf in (2, 16)
            for bs in (8, 32)
            for r in (2, 64)
        ]
    points = table5.run(grid=grid, epochs=args.epochs)

    detail = Table(
        title="Table 5 raw grid: per-configuration metrics",
        columns=[
            "butterfly",
            "block",
            "rank",
            "time [s]",
            "accuracy [%]",
            "N_params",
        ],
    )
    for p in points:
        detail.add_row(
            p.butterfly_size,
            p.block_size,
            p.rank,
            p.time_s,
            p.accuracy * 100,
            p.n_params,
        )
    print(detail.render())
    print()
    print(table5.render(points))
    print()
    print(
        "Paper's reading: block size moves execution time the most; the "
        "low-rank size barely moves it (dense matmuls are the IPU's cheap "
        "path) but matters for accuracy; pick the configuration by the "
        "primary target — no single optimum exists."
    )


if __name__ == "__main__":
    main(sys.argv[1:])
