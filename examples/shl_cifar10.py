#!/usr/bin/env python3
"""Table 4 at full scale: the SHL benchmark on synthetic CIFAR-10.

Trains the single-hidden-layer model with all six weight parameterisations
(baseline dense, butterfly, fastfood, circulant, low-rank, pixelfly) under
the paper's Table 3 hyper-parameters, then prints the regenerated Table 4:
parameter counts (paper-exact for five of six methods), test accuracy, and
simulated training times on GPU w/ TC, GPU w/o TC, and the IPU.

Run:  python examples/shl_cifar10.py [--quick]

``--quick`` uses a reduced budget (~1 minute); the default takes several
minutes of numpy training.
"""

import argparse
import sys

from repro.experiments import table4
from repro.experiments.config import TABLE3


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced budget (3 epochs, 1500 samples)",
    )
    parser.add_argument(
        "--epochs", type=int, default=None, help="override epoch count"
    )
    args = parser.parse_args(argv)

    if args.quick:
        rows = table4.run(
            epochs=args.epochs or 3, n_train=1500, n_test=600
        )
    else:
        rows = table4.run(epochs=args.epochs)

    print(table4.render(rows))

    baseline = next(r for r in rows if r.method == "Baseline")
    butterfly = next(r for r in rows if r.method == "Butterfly")
    pixelfly = next(r for r in rows if r.method == "Pixelfly")
    print()
    print("Headline checks against the paper:")
    print(
        f"  butterfly compression: "
        f"{butterfly.compression(baseline.n_params):.1%} "
        "(paper: 98.5% with its twiddle counting; ours is the standard "
        "2n*log2(n) parameterisation)"
    )
    print(
        f"  butterfly IPU vs GPU(w/o TC) training: "
        f"{butterfly.gpu_notc_time_s / butterfly.ipu_time_s:.2f}x faster "
        "on IPU (paper: 1.62x)"
    )
    print(
        f"  pixelfly IPU vs GPU(w/o TC) training: "
        f"{pixelfly.ipu_time_s / pixelfly.gpu_notc_time_s:.2f}x slower "
        "on IPU (paper: 1.28x)"
    )
    print(
        f"  hyperparameters: lr={TABLE3.learning_rate}, "
        f"momentum={TABLE3.momentum}, batch={TABLE3.batch_size} (Table 3)"
    )


if __name__ == "__main__":
    main(sys.argv[1:])
