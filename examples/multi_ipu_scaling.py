#!/usr/bin/env python3
"""Future work from the paper: multi-IPU scaling and streaming memory.

The paper's conclusion proposes (a) scaling sparse methods to multiple
IPUs and (b) streaming memory for models beyond In-Processor-Memory.
This example quantifies both with the simulator:

1. data-parallel SHL training across the M2000's 4 GC200s — butterfly's
   ~97 % parameter compression shrinks the gradient all-reduce by the same
   factor, so it scales better than the dense baseline;
2. weight streaming for oversized dense layers vs butterfly layers that
   stay resident in on-chip SRAM.

Run:  python examples/multi_ipu_scaling.py
"""

from repro import nn
from repro.bench.reporting import Table
from repro.ipu.multi import M2000, data_parallel_step, streaming_step
from repro.utils import format_bytes, format_seconds


def shl(hidden_kind: str, dim: int = 1024):
    hidden = (
        nn.ButterflyLinear(dim, dim, seed=0)
        if hidden_kind == "butterfly"
        else nn.Linear(dim, dim, seed=0)
    )
    return nn.Sequential(hidden, nn.ReLU(), nn.Linear(dim, 10, seed=1))


def main() -> None:
    # -- 1. data-parallel scaling ------------------------------------------
    table = Table(
        title="Data-parallel SHL training on the M2000 (global batch 512)",
        columns=[
            "model",
            "IPUs",
            "step",
            "allreduce",
            "comm %",
            "speedup",
            "efficiency",
        ],
    )
    for kind in ["dense", "butterfly"]:
        for n_ipus in [1, 2, 4]:
            report = data_parallel_step(
                shl(kind), 1024, global_batch=512, n_ipus=n_ipus
            )
            table.add_row(
                kind,
                n_ipus,
                format_seconds(report.step_s),
                format_seconds(report.allreduce_s),
                f"{report.communication_fraction:.0%}",
                f"{report.speedup:.2f}x",
                f"{report.scaling_efficiency:.0%}",
            )
    print(table.render())
    print()

    # -- 2. weight streaming -----------------------------------------------
    table = Table(
        title=(
            "Weight streaming (weight budget 4 MB of In-Processor-Memory)"
        ),
        columns=["model", "weights", "resident", "stream/step", "overhead"],
    )
    budget = 4 * 10**6
    for kind, layer in [
        ("dense 2048", nn.Linear(2048, 2048, bias=False, seed=0)),
        ("dense 4096", nn.Linear(4096, 4096, bias=False, seed=0)),
        (
            "butterfly 2048",
            nn.ButterflyLinear(2048, 2048, bias=False, seed=0),
        ),
        (
            "butterfly 4096",
            nn.ButterflyLinear(4096, 4096, bias=False, seed=0),
        ),
    ]:
        dim = layer.in_features
        report = streaming_step(
            nn.Sequential(layer), dim, 32, weight_budget_bytes=budget
        )
        table.add_row(
            kind,
            format_bytes(report.param_bytes),
            report.resident,
            format_seconds(report.stream_s),
            f"{report.streaming_overhead:.1f}x",
        )
    print(table.render())
    print()
    print(
        "Takeaway: compression pays twice at scale — smaller gradients to "
        "all-reduce, and weights that stay resident instead of streaming "
        "over the 20 GB/s DDR link."
    )


if __name__ == "__main__":
    main()
