#!/usr/bin/env python3
"""Section 3 of the paper: characterise the simulated IPU against the GPU.

Regenerates, in order:

* Table 1 — the spec sheet both simulators are built from;
* Fig 3   — exchange latency/bandwidth for neighbouring vs distant tiles
            (Observation 1: distance doesn't matter);
* Table 2 — the dense/sparse matmul throughput matrix;
* Fig 4   — skewed matmul (Observation 2: the IPU stays flat);
* Fig 5   — graph/memory growth with problem size (Observation 3).

Run:  python examples/ipu_characterization.py [--fast]
"""

import argparse
import sys

from repro.experiments import fig3, fig4, fig5, table1, table2


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fast", action="store_true", help="smaller sweeps (seconds)"
    )
    args = parser.parse_args(argv)

    print(table1.render())
    print()
    print(fig3.render())
    print()
    if args.fast:
        print(table2.render(sizes=[512, 1024]))
        print()
        print(fig4.render(base=1024))
    else:
        print(table2.render())
        print()
        print(fig4.render())
    print()
    print(fig5.render())
    print()
    print("Observations reproduced:")
    print("  1. exchange cost is independent of tile distance (Fig 3);")
    print("  2. IPU >= GPU(FP32) on fitting dense MM and flat under skew")
    print("     (Table 2 / Fig 4);")
    print("  3. compiled memory exceeds the raw tensor footprint, driven")
    print("     by vertices/edges/compute sets (Fig 5).")


if __name__ == "__main__":
    main(sys.argv[1:])
