"""The workload generator: purity, structure, serialisation."""

import dataclasses

import numpy as np
import pytest

from repro.verify import (
    Case,
    build_model,
    canonical_json,
    case_from_dict,
    case_to_dict,
    generate_case,
    generate_cases,
)
from repro.verify.gen import ACTIVATIONS, DIMS, LAYER_KINDS, out_features


class TestPurity:
    def test_same_coordinates_same_case(self):
        for index in range(20):
            assert generate_case(3, index) == generate_case(3, index)

    def test_canonical_json_is_byte_stable(self):
        a = canonical_json(generate_case(0, 7))
        b = canonical_json(generate_case(0, 7))
        assert a == b

    def test_independent_of_global_rng_state(self):
        before = generate_case(1, 2)
        np.random.seed(12345)
        np.random.default_rng(0).random(1000)
        assert generate_case(1, 2) == before

    def test_distinct_indices_differ(self):
        cases = generate_cases(0, 30)
        assert len({canonical_json(c) for c in cases}) > 25

    def test_distinct_seeds_differ(self):
        assert generate_case(0, 0) != generate_case(1, 0)


class TestStructure:
    @pytest.mark.parametrize("index", range(30))
    def test_generated_cases_are_buildable(self, index):
        case = generate_case(0, index)
        model = build_model(case)
        x = np.zeros((case.batch, case.in_features))
        y = model(x)
        assert y.data.shape == (case.batch, out_features(case))

    def test_fields_within_catalogue(self):
        for case in generate_cases(5, 40):
            assert case.in_features in DIMS
            assert 4 <= case.n_tiles <= 64
            assert all(t < case.n_tiles for t in case.excluded_tiles)
            for layer in case.layers:
                assert layer.kind in LAYER_KINDS
                assert layer.activation in ACTIVATIONS

    def test_spec_reflects_case(self):
        case = generate_case(0, 3)
        spec = case.spec()
        assert spec.n_tiles == case.n_tiles
        assert spec.tile_memory_bytes == case.tile_memory_kib * 1024
        assert spec.name == "fuzz-0-3"

    def test_generator_covers_the_odd_corners(self):
        # 200 cases must exercise faults, parallel grids, excluded
        # tiles, the planner, and degenerate dims — the whole point of
        # the generator.  Threshold is loose; the draw is seeded.
        cases = generate_cases(0, 200)
        assert any(c.run.faulted for c in cases)
        assert any(c.run.jobs > 1 for c in cases)
        assert any(c.excluded_tiles for c in cases)
        assert any(c.run.plan_memory for c in cases)
        assert any(not c.run.cache for c in cases)
        assert any(c.in_features in (1, 3, 7) for c in cases)
        kinds = {layer.kind for c in cases for layer in c.layers}
        assert kinds == set(LAYER_KINDS)


class TestSerialisation:
    @pytest.mark.parametrize("index", range(20))
    def test_dict_round_trip(self, index):
        case = generate_case(2, index)
        assert case_from_dict(case_to_dict(case)) == case

    def test_round_trip_through_json_types(self):
        import json

        case = generate_case(2, 4)
        rehydrated = case_from_dict(json.loads(canonical_json(case)))
        assert rehydrated == case

    def test_replace_keeps_frozen_semantics(self):
        case = generate_case(0, 0)
        smaller = dataclasses.replace(case, batch=1)
        assert isinstance(smaller, Case)
        assert smaller.batch == 1
        with pytest.raises(dataclasses.FrozenInstanceError):
            case.batch = 2
