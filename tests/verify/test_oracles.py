"""The oracles: they pass on the clean tree and catch planted bugs."""

import dataclasses

import numpy as np
import pytest

from repro import nn
from repro.verify import ORACLES, OracleFailure, check_case, generate_case
from repro.verify.gen import LayerSpec, RunConfig, Case
from repro.verify.hooks import PLANTS, plant
from repro.verify.oracles import (
    check_plan_sound,
    codelet_doubles,
    dense_twin,
    external_inputs,
)


def quiet_case(**overrides) -> Case:
    """A tiny hand-built case for targeted oracle tests."""
    defaults = dict(
        seed=0,
        index=0,
        batch=2,
        in_features=8,
        layers=(
            LayerSpec(kind="butterfly", out_features=8, seed=3),
            LayerSpec(kind="dense", out_features=4, seed=4),
        ),
        n_tiles=8,
        tile_memory_kib=624,
        reserved_tile_kib=16,
        run=RunConfig(),
    )
    defaults.update(overrides)
    return Case(**defaults)


class TestRegistry:
    def test_execution_order_and_names(self):
        assert list(ORACLES) == [
            "forward_dense",
            "backward_dense",
            "batched_forward",
            "metamorphic_linear",
            "metamorphic_probe",
            "optimizer_reference",
            "planned_unplanned",
            "cached_cold",
            "grid_manifest",
            "chaos_recovery",
        ]

    def test_every_oracle_has_description(self):
        for oracle in ORACLES.values():
            assert oracle.desc

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            check_case(quiet_case(), oracles=["nope"])

    def test_check_case_reports_applicable_oracles(self):
        ran = check_case(quiet_case(), oracles=["forward_dense"])
        assert ran == ["forward_dense"]


class TestDenseTwin:
    def test_twin_matches_structured_model(self):
        case = quiet_case()
        from repro.verify.gen import build_model

        model = build_model(case)
        twin = dense_twin(model)
        x = np.random.default_rng(0).standard_normal((3, 8))
        np.testing.assert_allclose(
            model(x).data, twin(x).data, atol=1e-8
        )

    def test_twin_is_all_linear(self):
        from repro.verify.gen import build_model

        twin = dense_twin(build_model(quiet_case()))
        kinds = {type(m) for m in twin.modules()} - {nn.Sequential}
        assert kinds <= {nn.Linear, nn.ReLU, nn.Tanh, nn.Sigmoid}


class TestPlantedBugs:
    def test_nesterov_plant_caught_by_optimizer_oracle(self):
        case = quiet_case()
        check_case(case, oracles=["optimizer_reference"])  # clean: passes
        with plant("nesterov"):
            with pytest.raises(OracleFailure) as exc_info:
                check_case(case, oracles=["optimizer_reference"])
        assert exc_info.value.oracle == "optimizer_reference"
        assert "nesterov" in exc_info.value.detail

    def test_butterfly_scale_plant_caught_by_forward_oracle(self):
        case = quiet_case()
        check_case(case, oracles=["forward_dense"])  # clean: passes
        with plant("butterfly-scale"):
            with pytest.raises(OracleFailure) as exc_info:
                check_case(case, oracles=["forward_dense"])
        assert exc_info.value.oracle == "forward_dense"

    def test_plants_deactivate_on_exit(self):
        case = quiet_case()
        for name in PLANTS:
            with plant(name):
                pass
            check_case(
                case, oracles=["forward_dense", "optimizer_reference"]
            )

    def test_unknown_plant_rejected(self):
        with pytest.raises(ValueError, match="unknown plant"):
            plant("nope")


class TestPlanSoundness:
    def _compiled(self, case):
        from repro.ipu.compiler import compile_graph
        from repro.ipu.poptorch import IPUModule
        from repro.verify.gen import build_model

        module = IPUModule(
            build_model(case), case.in_features, case.batch,
            spec=case.spec(),
        )
        return module.graph, compile_graph(
            module.graph, case.spec(), check_fit=False, plan_memory=True
        )

    def test_real_plan_validates(self):
        graph, compiled = self._compiled(quiet_case())
        check_plan_sound(graph, compiled.plan)

    def test_forged_overlap_rejected(self):
        graph, compiled = self._compiled(quiet_case())
        plan = compiled.plan
        # Merge two slots into one: their members' live intervals then
        # overlap, which the validator must reject.
        multi = [s for s in plan.slots if len(s.members) >= 1]
        if len(multi) < 2:
            pytest.skip("plan has no two occupied slots to merge")
        a, b = multi[0], multi[1]
        forged_members = (*a.members, *b.members)
        forged_slot = dataclasses.replace(
            a, members=forged_members, nbytes=max(a.nbytes, b.nbytes)
        )
        forged = dataclasses.replace(
            plan,
            slots=(
                forged_slot,
                *(s for s in plan.slots if s not in (a, b)),
            ),
        )
        with pytest.raises(OracleFailure):
            check_plan_sound(graph, forged)


class TestSharedMachinery:
    def test_codelet_doubles_restore_originals(self):
        from repro.ipu.vertices import CODELETS

        before = {name: CODELETS[name] for name in CODELETS}
        with codelet_doubles():
            assert CODELETS["ButterflyStage"].execute is not None
        assert {name: CODELETS[name] for name in CODELETS} == before

    def test_external_inputs_cover_unwritten_variables(self):
        from repro.ipu.poptorch import IPUModule
        from repro.verify.gen import build_model

        case = quiet_case()
        module = IPUModule(
            build_model(case), case.in_features, case.batch,
            spec=case.spec(),
        )
        inputs = external_inputs(module.graph, seed=0)
        a = external_inputs(module.graph, seed=0)
        b = external_inputs(module.graph, seed=1)
        for name, value in inputs.items():
            np.testing.assert_array_equal(value, a[name])
            assert value.shape == module.graph.variables[name].shape
        assert any(
            not np.array_equal(a[name], b[name]) for name in a
        )


class TestOraclesOnGeneratedCases:
    @pytest.mark.parametrize("index", range(8))
    def test_first_cases_green(self, index):
        case = generate_case(0, index)
        ran = check_case(case)
        assert "forward_dense" in ran
