"""Delta-debugging: minimisation, signature stability, corpus I/O."""

import dataclasses

import pytest

from repro.verify import (
    CORPUS_SCHEMA,
    generate_case,
    load_corpus,
    make_predicate,
    shrink,
    write_reproducer,
)
from repro.verify.gen import LayerSpec
from repro.verify.hooks import plant
from repro.verify.shrink import _candidates, _valid, describe


class TestCandidates:
    def test_candidates_are_strictly_simpler(self):
        case = generate_case(0, 1)
        for candidate in _candidates(case):
            assert candidate != case

    def test_single_layer_never_dropped(self):
        case = generate_case(0, 0)
        single = dataclasses.replace(case, layers=case.layers[:1])
        for candidate in _candidates(single):
            assert candidate.n_layers >= 1

    def test_validity_probe_rejects_out_of_range_exclusions(self):
        case = generate_case(0, 0)
        broken = dataclasses.replace(
            case, excluded_tiles=(case.n_tiles + 3,)
        )
        assert not _valid(broken)

    def test_validity_probe_rejects_unbuildable_models(self):
        case = generate_case(0, 0)
        broken = dataclasses.replace(
            case,
            in_features=7,
            layers=(LayerSpec(kind="fastfood"),),  # needs a power of two
        )
        assert not _valid(broken)


class TestShrink:
    def test_requires_a_failing_case(self):
        with pytest.raises(ValueError, match="fails the predicate"):
            shrink(generate_case(0, 0), lambda case: None)

    def test_planted_nesterov_shrinks_to_trivial_case(self):
        case = generate_case(0, 1)
        with plant("nesterov"):
            predicate = make_predicate("optimizer_reference")
            minimal, steps, detail = shrink(case, predicate)
        assert steps > 0
        assert minimal.n_layers <= 2
        assert minimal.batch == 1
        assert not minimal.run.faulted
        assert "nesterov" in detail

    def test_shrink_never_drifts_to_a_different_failure_kind(self):
        # The minimal case must fail the same way the original did: an
        # oracle disagreement must not be "simplified" into an
        # unrelated crash, or the stored reproducer stops reproducing
        # the original finding on the clean tree.
        case = generate_case(0, 4)
        predicate = make_predicate("optimizer_reference")
        with plant("nesterov"):
            minimal, _steps, detail = shrink(case, predicate)
        assert not detail.startswith("crash:")
        # And the minimal case passes once the plant is gone.
        assert predicate(minimal) is None

    def test_eval_budget_bounds_work(self):
        calls = 0

        def predicate(case):
            nonlocal calls
            calls += 1
            return "still failing"

        shrink(generate_case(0, 2), predicate, max_evals=10)
        assert calls <= 12  # initial check + budgeted candidate evals


class TestCorpusIO:
    def test_write_load_round_trip(self, tmp_path):
        case = generate_case(0, 5)
        path = write_reproducer(
            tmp_path, case, "forward_dense", "detail text", 7,
            plant="nesterov",
        )
        entries = load_corpus(tmp_path)
        assert [p for p, _, _ in entries] == [path]
        _, entry, loaded = entries[0]
        assert entry["schema"] == CORPUS_SCHEMA
        assert entry["oracle"] == "forward_dense"
        assert entry["plant"] == "nesterov"
        assert entry["shrink_steps"] == 7
        assert loaded == case

    def test_unknown_schema_rejected(self, tmp_path):
        (tmp_path / "bad.json").write_text('{"schema": "other/9"}')
        with pytest.raises(ValueError, match="schema"):
            load_corpus(tmp_path)

    def test_describe_is_one_line(self):
        line = describe(generate_case(0, 3))
        assert "\n" not in line
        assert "tiles=" in line
