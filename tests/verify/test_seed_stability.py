"""Cross-process seed stability: ``(seed, index)`` is the whole story.

The committed corpus and CI replay both assume a case regenerates
byte-identically anywhere — in this process, in a ``spawn``-ed child
(fresh interpreter, no inherited RNG state), regardless of import order
or ambient ``np.random`` seeding.
"""

import multiprocessing

import numpy as np

from repro.verify import canonical_json, generate_case

COORDS = [(0, 0), (0, 1), (0, 17), (3, 5), (123456789, 42)]


def _child(coords, queue):
    # Deliberately perturb ambient RNG state before generating.
    np.random.seed(999)
    np.random.default_rng(1).random(100)
    from repro.verify import canonical_json as cj
    from repro.verify import generate_case as gc

    queue.put([cj(gc(seed, index)) for seed, index in coords])


class TestSeedStability:
    def test_spawned_process_reproduces_cases_byte_identically(self):
        parent = [
            canonical_json(generate_case(seed, index))
            for seed, index in COORDS
        ]
        ctx = multiprocessing.get_context("spawn")
        queue = ctx.Queue()
        proc = ctx.Process(target=_child, args=(COORDS, queue))
        proc.start()
        child = queue.get(timeout=60)
        proc.join(timeout=60)
        assert proc.exitcode == 0
        assert child == parent

    def test_stable_against_ambient_rng_perturbation(self):
        before = [
            canonical_json(generate_case(seed, index))
            for seed, index in COORDS
        ]
        np.random.seed(31337)
        after = [
            canonical_json(generate_case(seed, index))
            for seed, index in COORDS
        ]
        assert after == before

    def test_known_case_fingerprint(self):
        # A pinned fingerprint: if this changes, every stored corpus
        # entry silently stops matching its (seed, index) coordinates.
        # Bump the corpus together with any intentional generator change.
        import hashlib

        digest = hashlib.sha256(
            "\n".join(
                canonical_json(generate_case(0, index))
                for index in range(50)
            ).encode()
        ).hexdigest()
        assert digest == EXPECTED_DIGEST


EXPECTED_DIGEST = (
    "c493be453002c56d76d14c85821a978e1799f8df14a907a7bb9546db550aca8f"
)
