"""The fuzz loop and its CLI: metrics, spans, manifests, exit codes."""

import json

import pytest

from repro import obs
from repro.__main__ import main
from repro.verify import run_fuzz


class TestRunFuzz:
    def test_clean_tree_is_green(self):
        report = run_fuzz(seed=0, cases=5)
        assert report.ok
        assert report.oracles_run["forward_dense"] == 5
        assert "all oracles agree" in report.render()

    def test_metrics_and_spans_recorded(self):
        with obs.tracing() as tracer, obs.collecting() as registry:
            run_fuzz(seed=0, cases=3)
        snapshot = {
            entry["name"]: entry["value"]
            for entry in registry.snapshot()
            if entry["name"].startswith("verify.")
        }
        assert snapshot["verify.cases"] == 3
        spans = [s for s in tracer.spans if s.name == "verify.case"]
        assert len(spans) == 3
        assert {s.attributes["index"] for s in spans} == {0, 1, 2}
        assert all(s.category == "verify" for s in spans)

    def test_planted_run_counts_failures_and_shrinks(self, tmp_path):
        with obs.collecting() as registry:
            report = run_fuzz(
                seed=0,
                cases=2,
                shrink=True,
                corpus_dir=tmp_path,
                plant="nesterov",
            )
        assert not report.ok
        assert len(report.failures) == 2
        assert report.shrink_steps > 0
        for failure in report.failures:
            assert failure.oracle == "optimizer_reference"
            assert failure.shrunk is not None
            assert failure.shrunk.n_layers <= 2
            assert failure.corpus_path is not None
        names = {e["name"]: e["value"] for e in registry.snapshot()}
        assert names["verify.failures"] == 2
        assert names["verify.shrink_steps"] == report.shrink_steps
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_unknown_oracle_rejected(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            run_fuzz(seed=0, cases=1, oracles=["nope"])

    def test_start_offset_selects_indices(self):
        report = run_fuzz(seed=0, cases=2, start=10)
        assert report.ok
        assert report.n_cases == 2


class TestFuzzCLI:
    def test_green_run_exits_zero(self, capsys):
        assert main(["fuzz", "--cases", "3", "--seed", "0"]) == 0
        out = capsys.readouterr().out
        assert "all oracles agree" in out

    def test_planted_run_exits_one_and_writes_corpus(
        self, tmp_path, capsys
    ):
        code = main(
            [
                "fuzz",
                "--cases",
                "1",
                "--plant",
                "nesterov",
                "--shrink",
                "--corpus",
                str(tmp_path / "corpus"),
                "--out",
                str(tmp_path / "out"),
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "FAIL case 0" in out
        assert list((tmp_path / "corpus").glob("*.json"))
        manifest = json.loads((tmp_path / "out" / "fuzz.json").read_text())
        verify = manifest["verify"]
        assert verify["schema"] == "repro.verify/1"
        assert verify["ok"] is False
        assert verify["plant"] == "nesterov"
        assert verify["failures"][0]["oracle"] == "optimizer_reference"
        assert (tmp_path / "out" / "fuzz.txt").exists()

    def test_manifest_verify_section_renders(self, tmp_path, capsys):
        assert (
            main(
                [
                    "fuzz",
                    "--cases",
                    "2",
                    "--out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["report", str(tmp_path / "fuzz.json")]) == 0
        out = capsys.readouterr().out
        assert "verify [repro.verify/1]" in out
        assert "all oracles agree" in out

    def test_oracle_flag_restricts_run(self, capsys):
        assert (
            main(
                [
                    "fuzz",
                    "--cases",
                    "2",
                    "--oracle",
                    "forward_dense",
                    "--oracle",
                    "metamorphic_probe",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "forward_dense          x2" in out
        assert "optimizer_reference    x0" in out

    def test_bad_flags_rejected(self):
        with pytest.raises(SystemExit):
            main(["fuzz", "--oracle", "nope"])
        with pytest.raises(SystemExit):
            main(["fuzz", "--plant", "nope"])
        with pytest.raises(SystemExit):
            main(["fuzz", "--cases", "0"])
