"""Replay every committed reproducer in ``tests/corpus/``.

Corpus entries come in two flavours:

* entries **without** a ``plant`` field are real, fixed bugs — replay
  must *pass* on the clean tree (the regression stays fixed);
* entries **with** a ``plant`` field were produced by a deliberately
  planted bug (the fuzzer's self-test) — replay must *pass* clean and
  *fail again* with the plant active, pinning the oracle's power to
  detect that bug class.
"""

import pathlib

import pytest

from repro.verify import OracleFailure, check_case, load_corpus
from repro.verify.gen import canonical_json, generate_case
from repro.verify.hooks import plant

CORPUS_DIR = pathlib.Path(__file__).parent.parent / "corpus"

ENTRIES = load_corpus(CORPUS_DIR)


def _ids():
    return [path.name for path, _, _ in ENTRIES]


class TestCorpusReplay:
    def test_corpus_is_not_empty(self):
        assert ENTRIES, "tests/corpus must hold at least one reproducer"

    @pytest.mark.parametrize(
        "path, entry, case", ENTRIES, ids=_ids()
    )
    def test_clean_tree_passes(self, path, entry, case):
        check_case(case, oracles=[entry["oracle"]])

    @pytest.mark.parametrize(
        "path, entry, case",
        [e for e in ENTRIES if "plant" in e[1]],
        ids=[p.name for p, e, _ in ENTRIES if "plant" in e],
    )
    def test_plant_still_detected(self, path, entry, case):
        with plant(entry["plant"]):
            with pytest.raises(OracleFailure) as exc_info:
                check_case(case, oracles=[entry["oracle"]])
        assert exc_info.value.oracle == entry["oracle"]

    @pytest.mark.parametrize(
        "path, entry, case", ENTRIES, ids=_ids()
    )
    def test_unshrunk_coordinates_regenerate(self, path, entry, case):
        # The stored case is the *shrunk* form, but its (seed, index)
        # coordinates must still regenerate the original failing case.
        original = generate_case(entry["seed"], entry["index"])
        assert canonical_json(original)  # pure + serialisable
        assert original.seed == case.seed
        assert original.index == case.index
