"""Trainer checkpoint/resume: bit-identical restarts, exhaustion errors,
optimizer and loader state snapshots."""

import numpy as np
import pytest

from repro.faults.checkpoint import CheckpointError, CheckpointManager
from repro.nn.data import ArrayDataset, DataLoader
from repro.nn.layers import Linear, ReLU, Sequential
from repro.nn.optim import SGD, Adam
from repro.nn.trainer import Trainer


def make_dataset(n=120, dim=8, classes=3, seed=0):
    rng = np.random.default_rng(seed)
    return ArrayDataset(
        rng.normal(size=(n, dim)), rng.integers(0, classes, size=n)
    )


def make_trainer(dataset, optimizer="sgd", seed=0):
    model = Sequential(
        Linear(8, 16, seed=seed), ReLU(), Linear(16, 3, seed=seed + 1)
    )
    if optimizer == "sgd":
        opt = SGD(model.parameters(), lr=0.05, momentum=0.9)
    else:
        opt = Adam(model.parameters(), lr=1e-3)
    return Trainer(model, opt)


def make_loaders(dataset):
    return (
        DataLoader(dataset, batch_size=10, seed=1),
        DataLoader(dataset, batch_size=10, seed=2),
    )


class _Killed(Exception):
    pass


def fit_with_kill(trainer, loaders, kill_after, **kwargs):
    """Run fit() but raise after `kill_after` optimisation steps."""
    inner = trainer.train_step
    count = [0]

    def dying(x, y):
        if count[0] == kill_after:
            raise _Killed()
        count[0] += 1
        return inner(x, y)

    trainer.train_step = dying
    try:
        trainer.fit(*loaders, **kwargs)
    except _Killed:
        return True
    finally:
        trainer.train_step = inner
    return False


@pytest.mark.parametrize("optimizer", ["sgd", "adam"])
@pytest.mark.parametrize("kill_after", [7, 17, 24])
def test_kill_resume_bit_identical(tmp_path, optimizer, kill_after):
    dataset = make_dataset()
    ref = make_trainer(dataset, optimizer)
    history_ref = ref.fit(*make_loaders(dataset), epochs=3)

    manager = CheckpointManager(tmp_path, keep=3)
    victim = make_trainer(dataset, optimizer)
    killed = fit_with_kill(
        victim,
        make_loaders(dataset),
        kill_after,
        epochs=3,
        checkpoint=manager,
        checkpoint_every=5,
    )
    assert killed

    survivor = make_trainer(dataset, optimizer)
    resumed = survivor.fit(
        *make_loaders(dataset),
        epochs=3,
        checkpoint=manager,
        checkpoint_every=5,
    )
    assert resumed.resumed_from_step is not None
    assert resumed.train_loss == history_ref.train_loss
    assert resumed.train_accuracy == history_ref.train_accuracy
    assert resumed.val_loss == history_ref.val_loss
    assert resumed.val_accuracy == history_ref.val_accuracy
    assert resumed.steps == history_ref.steps
    assert resumed.steps_per_epoch == history_ref.steps_per_epoch
    ref_params = ref.model.state_dict()
    res_params = survivor.model.state_dict()
    for key in ref_params:
        np.testing.assert_array_equal(ref_params[key], res_params[key])


def test_resume_after_completion_is_noop(tmp_path):
    dataset = make_dataset()
    manager = CheckpointManager(tmp_path)
    trainer = make_trainer(dataset)
    done = trainer.fit(*make_loaders(dataset), epochs=2, checkpoint=manager)
    params = {k: v.copy() for k, v in trainer.model.state_dict().items()}
    again = trainer.fit(*make_loaders(dataset), epochs=2, checkpoint=manager)
    assert again.resumed_from_step == done.steps
    assert again.train_loss == done.train_loss
    for key, value in trainer.model.state_dict().items():
        np.testing.assert_array_equal(value, params[key])


def test_steps_per_epoch_recorded():
    dataset = make_dataset(n=95)  # 10 batches of 10 (no drop_last)
    trainer = make_trainer(dataset)
    history = trainer.fit(DataLoader(dataset, batch_size=10, seed=1), epochs=2)
    assert history.steps_per_epoch == [10, 10]
    assert history.steps == 20
    assert history.resumed_from_step is None


def test_exhausted_loader_raises():
    dataset = make_dataset(n=5)
    loader = DataLoader(dataset, batch_size=10, drop_last=True, seed=1)
    trainer = make_trainer(dataset)
    with pytest.raises(ValueError, match="exhausted"):
        trainer.fit(loader, epochs=1)


def test_checkpoint_cursor_mismatch_raises(tmp_path):
    """A checkpoint whose cursor exceeds the loader's epoch length is a
    mismatched-loader error, not silent corruption."""
    big = make_dataset(n=200)
    manager = CheckpointManager(tmp_path, keep=3)
    victim = make_trainer(big)
    fit_with_kill(
        victim,
        (DataLoader(big, batch_size=10, seed=1), None),
        kill_after=17,
        epochs=2,
        checkpoint=manager,
        checkpoint_every=15,
    )
    small_loader = DataLoader(make_dataset(n=50), batch_size=10, seed=1)
    with pytest.raises((CheckpointError, KeyError, ValueError)):
        make_trainer(big).fit(
            small_loader, epochs=2, checkpoint=manager
        )


def test_checkpoint_every_requires_manager():
    dataset = make_dataset()
    with pytest.raises(ValueError, match="CheckpointManager"):
        make_trainer(dataset).fit(
            DataLoader(dataset, seed=1), epochs=1, checkpoint_every=5
        )
    with pytest.raises(ValueError, match="checkpoint_every"):
        make_trainer(dataset).fit(
            DataLoader(dataset, seed=1), epochs=1, checkpoint_every=-2
        )


def test_resume_false_starts_fresh(tmp_path):
    dataset = make_dataset()
    manager = CheckpointManager(tmp_path)
    trainer = make_trainer(dataset)
    trainer.fit(*make_loaders(dataset), epochs=1, checkpoint=manager)
    fresh = make_trainer(dataset)
    history = fresh.fit(
        *make_loaders(dataset),
        epochs=1,
        checkpoint=manager,
        resume=False,
    )
    assert history.resumed_from_step is None


class TestOptimizerStateDict:
    def test_sgd_velocity_roundtrip(self):
        dataset = make_dataset()
        trainer = make_trainer(dataset, "sgd")
        trainer.fit(DataLoader(dataset, seed=1), epochs=1)
        state = trainer.optimizer.state_dict()
        clone = make_trainer(dataset, "sgd").optimizer
        clone.load_state_dict(state)
        for a, b in zip(clone._velocity, trainer.optimizer._velocity):
            if a is None:
                assert b is None
            else:
                np.testing.assert_array_equal(a, b)

    def test_adam_scalars_roundtrip(self):
        dataset = make_dataset()
        trainer = make_trainer(dataset, "adam")
        trainer.fit(DataLoader(dataset, seed=1), epochs=1)
        state = trainer.optimizer.state_dict()
        clone = make_trainer(dataset, "adam").optimizer
        clone.load_state_dict(state)
        assert clone._t == trainer.optimizer._t > 0

    def test_slot_mismatch_rejected(self):
        dataset = make_dataset()
        sgd = make_trainer(dataset, "sgd").optimizer
        adam = make_trainer(dataset, "adam").optimizer
        with pytest.raises(KeyError, match="state mismatch"):
            sgd.load_state_dict(adam.state_dict())

    def test_state_dict_is_a_copy(self):
        dataset = make_dataset()
        trainer = make_trainer(dataset, "sgd")
        trainer.fit(DataLoader(dataset, seed=1), epochs=1)
        state = trainer.optimizer.state_dict()
        state["slots"]["velocity"][0][:] = 999.0
        assert not np.array_equal(
            trainer.optimizer._velocity[0], state["slots"]["velocity"][0]
        )


class TestLoaderRngState:
    def test_snapshot_restores_permutation(self):
        dataset = make_dataset()
        loader = DataLoader(dataset, batch_size=10, seed=3)
        state = loader.rng_state()
        first = [y.tolist() for _, y in loader]
        loader.set_rng_state(state)
        replay = [y.tolist() for _, y in loader]
        assert first == replay
