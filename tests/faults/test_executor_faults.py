"""Executor fault injection: recovery timing, fatal paths, trace spans,
and the zero-fault byte-identity guarantee."""

import numpy as np
import pytest

from repro import obs
from repro.faults.injector import (
    FaultInjector,
    PermanentTileFault,
    UnrecoveredFaultError,
)
from repro.faults.plan import (
    EXCHANGE_CORRUPTION,
    HOST_STALL,
    PERMANENT_TILE,
    TRANSIENT_COMPUTE,
    FaultEvent,
    FaultPlan,
    RecoveryPolicy,
)
from repro.ipu.compiler import compile_graph
from repro.ipu.executor import Executor
from repro.ipu.graph import Edge, Graph, Vertex
from repro.ipu.machine import GC200


def build_pipeline(size=64, stages=3, tiles=4, host_io=True):
    """A small multi-tile elementwise pipeline with optional host I/O."""
    graph = Graph(GC200.n_tiles, name="chaos-test")
    graph.add_variable("v0", (size,))
    if host_io:
        graph.add_host_write("v0")
    bounds = np.linspace(0, size, tiles + 1, dtype=int)
    for i in range(stages):
        graph.add_variable(f"v{i + 1}", (size,))
        cs = graph.add_compute_set(f"s{i}")
        for p in range(tiles):
            lo, hi = int(bounds[p]), int(bounds[p + 1])
            graph.add_vertex(
                cs,
                Vertex(
                    codelet="ElementwiseUnary",
                    tile=p,
                    inputs=[Edge(f"v{i}", hi - lo, key=slice(lo, hi))],
                    outputs=[Edge(f"v{i + 1}", hi - lo, key=slice(lo, hi))],
                    params={"op": "relu"},
                ),
            )
    if host_io:
        graph.add_host_read(f"v{stages}")
    return graph


def compute_step_indices(graph):
    return [i for i, s in enumerate(graph.program) if s.kind == "compute"]


def ipu_spans(tracer):
    return [
        (s.name, s.category, s.start_s, s.duration_s, s.depth)
        for s in tracer.spans
        if s.track == Executor.TRACE_TRACK
    ]


class TestZeroFaultByteIdentity:
    """Satellite guarantee: an empty FaultPlan changes nothing at all."""

    def test_reports_and_traces_identical(self):
        graph = build_pipeline()
        compiled = compile_graph(graph, GC200)
        with obs.tracing() as t_plain:
            plain = Executor(compiled).estimate()
        null_injector = FaultInjector(FaultPlan.none())
        assert not null_injector.active
        with obs.tracing() as t_null:
            nulled = Executor(compiled, injector=null_injector).estimate()
        assert plain == nulled
        assert ipu_spans(t_plain) == ipu_spans(t_null)
        assert null_injector.report().n_injected == 0

    def test_run_numerics_identical(self):
        graph = build_pipeline(host_io=False)
        compiled = compile_graph(graph, GC200)
        x = np.random.default_rng(0).standard_normal(64)
        state_a, report_a = Executor(compiled).run({"v0": x})
        state_b, report_b = Executor(
            compiled, injector=FaultInjector(FaultPlan.none())
        ).run({"v0": x})
        assert report_a == report_b
        for key in state_a:
            np.testing.assert_array_equal(state_a[key], state_b[key])

    def test_healthy_steps_have_zero_retry_fields(self):
        graph = build_pipeline()
        report = Executor(compile_graph(graph, GC200)).estimate()
        assert report.retries == 0
        assert report.retry_s == 0.0
        assert all(s.retries == 0 and s.retry_s == 0.0 for s in report.steps)


class TestTransientRecovery:
    def test_retry_time_added_to_faulted_step_only(self):
        graph = build_pipeline()
        step = compute_step_indices(graph)[0]
        plan = FaultPlan(
            events=(
                FaultEvent(TRANSIENT_COMPUTE, step=step, tile=1, severity=2),
            )
        )
        compiled = compile_graph(graph, GC200)
        healthy = Executor(compiled).estimate()
        injector = FaultInjector(plan)
        faulty = Executor(compiled, injector=injector).estimate()
        assert faulty.retries == 2
        assert faulty.retry_s > 0
        for i, (h, f) in enumerate(zip(healthy.steps, faulty.steps)):
            if i == step:
                assert f.retry_s > h.total_s  # 2 re-runs + backoff + sync
                assert f.compute_s == h.compute_s
            else:
                assert f == h
        assert faulty.total_s == pytest.approx(
            healthy.total_s + faulty.retry_s
        )
        report = injector.report()
        assert report.all_recovered
        assert report.total_retries == 2

    def test_exhausted_retry_budget_is_fatal(self):
        graph = build_pipeline()
        step = compute_step_indices(graph)[0]
        plan = FaultPlan(
            events=(
                FaultEvent(TRANSIENT_COMPUTE, step=step, tile=0, severity=9),
            )
        )
        injector = FaultInjector(plan, RecoveryPolicy(max_retries=3))
        executor = Executor(compile_graph(graph, GC200), injector=injector)
        with pytest.raises(UnrecoveredFaultError, match="3 retries"):
            executor.estimate()
        report = injector.report()
        assert report.n_fatal == 1
        assert not report.all_recovered


class TestExchangeAndHostFaults:
    def test_exchange_corruption_scrub(self):
        graph = build_pipeline()
        step = compute_step_indices(graph)[1]
        plan = FaultPlan(
            events=(FaultEvent(EXCHANGE_CORRUPTION, step=step, tile=0),)
        )
        compiled = compile_graph(graph, GC200)
        healthy = Executor(compiled).estimate()
        faulty = Executor(compiled, injector=FaultInjector(plan)).estimate()
        scrub = GC200.exchange_ecc_retry_cycles / GC200.clock_hz
        sync = GC200.sync_cycles / GC200.clock_hz
        expected = scrub + healthy.steps[step].exchange_s + sync
        assert faulty.steps[step].retry_s == pytest.approx(expected)
        assert faulty.steps[step].retries == 1

    def test_host_stall_scales_with_severity(self):
        graph = build_pipeline()
        plan = FaultPlan(
            events=(FaultEvent(HOST_STALL, step=0, severity=3),)
        )
        policy = RecoveryPolicy(host_stall_s=1e-4)
        compiled = compile_graph(graph, GC200)
        faulty = Executor(
            compiled, injector=FaultInjector(plan, policy)
        ).estimate()
        assert graph.program[0].kind == "host_write"
        assert faulty.steps[0].retry_s == pytest.approx(3e-4)

    def test_kind_step_mismatch_is_ignored(self):
        """A host stall scheduled on a compute step never fires."""
        graph = build_pipeline()
        step = compute_step_indices(graph)[0]
        plan = FaultPlan(events=(FaultEvent(HOST_STALL, step=step),))
        injector = FaultInjector(plan)
        compiled = compile_graph(graph, GC200)
        healthy = Executor(compiled).estimate()
        faulty = Executor(compiled, injector=injector).estimate()
        assert faulty.steps == healthy.steps
        assert injector.report().n_injected == 0


class TestPermanentTileFault:
    def test_raises_and_recovers_via_recompile(self):
        graph = build_pipeline()
        step = compute_step_indices(graph)[-1]
        plan = FaultPlan(
            events=(FaultEvent(PERMANENT_TILE, step=step, tile=2),)
        )
        injector = FaultInjector(plan)
        with pytest.raises(PermanentTileFault, match="tile 2"):
            Executor(
                compile_graph(graph, GC200), injector=injector
            ).estimate()
        assert injector.report().n_fatal == 1
        # Recompile without the dead tile; mark the fault recovered.
        degraded = compile_graph(graph, GC200, exclude_tiles={2})
        injector.record_recovered(plan.events[0], retries=1)
        report = Executor(degraded, injector=injector).estimate()
        assert report.total_s > 0
        final = injector.report()
        assert final.all_recovered
        assert final.n_injected == 1  # dedup across both executions

    def test_degraded_compute_serialises_on_folded_tile(self):
        graph = build_pipeline(tiles=4)
        healthy = Executor(compile_graph(graph, GC200)).estimate()
        # Kill every tile but one: all four vertex tiles fold onto the
        # single survivor and their compute must serialise (~4x).
        degraded_compiled = compile_graph(
            graph, GC200, exclude_tiles=set(range(1, GC200.n_tiles))
        )
        degraded = Executor(degraded_compiled).estimate()
        assert degraded.compute_s > 2 * healthy.compute_s

    def test_run_aborts_before_step_numerics(self):
        graph = build_pipeline(host_io=False)
        step = compute_step_indices(graph)[0]
        plan = FaultPlan(
            events=(FaultEvent(PERMANENT_TILE, step=step, tile=0),)
        )
        executor = Executor(
            compile_graph(graph, GC200), injector=FaultInjector(plan)
        )
        with pytest.raises(PermanentTileFault):
            executor.run({"v0": np.ones(64)})


class TestFaultTraceSpans:
    def test_fault_retry_recovery_spans_emitted(self):
        graph = build_pipeline()
        step = compute_step_indices(graph)[0]
        plan = FaultPlan(
            events=(
                FaultEvent(TRANSIENT_COMPUTE, step=step, tile=1, severity=2),
            )
        )
        with obs.tracing() as tracer:
            report = Executor(
                compile_graph(graph, GC200), injector=FaultInjector(plan)
            ).estimate()
        spans = [
            s for s in tracer.spans if s.track == Executor.TRACE_TRACK
        ]
        fault = [s for s in spans if s.category == "fault"]
        retries = [s for s in spans if s.category == "retry"]
        recoveries = [s for s in spans if s.category == "recovery"]
        assert len(fault) == 1
        assert fault[0].name == TRANSIENT_COMPUTE
        assert fault[0].depth == 1
        assert fault[0].attributes["tile"] == 1
        assert len(retries) == 2
        assert len(recoveries) == 1
        assert all(s.depth == 2 for s in retries + recoveries)
        # The fault window sits inside its step span and sums exactly.
        window = sum(s.duration_s for s in retries + recoveries)
        assert window == pytest.approx(report.steps[step].retry_s)
        step_span = [
            s for s in spans if s.depth == 0 and s.category == "compute"
        ][0]
        assert fault[0].start_s >= step_span.start_s
        assert fault[0].end_s <= step_span.end_s + 1e-15

    def test_estimate_and_run_fault_timings_identical(self):
        graph = build_pipeline(host_io=False)
        step = compute_step_indices(graph)[1]
        plan = FaultPlan(
            events=(
                FaultEvent(TRANSIENT_COMPUTE, step=step, tile=0, severity=1),
                FaultEvent(EXCHANGE_CORRUPTION, step=step, tile=0),
            )
        )
        compiled = compile_graph(graph, GC200)
        est = Executor(compiled, injector=FaultInjector(plan)).estimate()
        _, run = Executor(compiled, injector=FaultInjector(plan)).run(
            {"v0": np.ones(64)}
        )
        assert est.steps == run.steps
