"""Atomic checkpoints: roundtrip, rotation, corruption fallback."""

import numpy as np
import pytest

from repro.faults.checkpoint import (
    CheckpointError,
    CheckpointManager,
    load_checkpoint,
    save_checkpoint,
)


@pytest.fixture
def arrays():
    rng = np.random.default_rng(0)
    return {
        "model/w": rng.normal(size=(4, 4)),
        "opt/velocity/0": rng.normal(size=(4, 4)).astype(np.float32),
    }


META = {"epoch": 2, "step_in_epoch": 7, "rng": {"state": 123456789}}


class TestSaveLoad:
    def test_roundtrip_bitexact(self, tmp_path, arrays):
        path = save_checkpoint(tmp_path / "c.npz", arrays, META)
        loaded, meta = load_checkpoint(path)
        assert meta == META
        assert set(loaded) == set(arrays)
        for key in arrays:
            np.testing.assert_array_equal(loaded[key], arrays[key])
            assert loaded[key].dtype == arrays[key].dtype

    def test_no_temp_file_left_behind(self, tmp_path, arrays):
        save_checkpoint(tmp_path / "c.npz", arrays, META)
        assert [p.name for p in tmp_path.iterdir()] == ["c.npz"]

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_checkpoint(
                tmp_path / "c.npz", {"__meta__": np.zeros(1)}, {}
            )

    def test_missing_file_is_clean_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_truncated_file_is_clean_error(self, tmp_path, arrays):
        path = save_checkpoint(tmp_path / "c.npz", arrays, META)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path)

    def test_garbage_file_is_clean_error(self, tmp_path):
        path = tmp_path / "c.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(CheckpointError, match="corrupt"):
            load_checkpoint(path)


class TestManager:
    def test_rotation_keeps_newest(self, tmp_path, arrays):
        manager = CheckpointManager(tmp_path, keep=2)
        for step in (5, 10, 15, 20):
            manager.save(step, arrays, META)
        steps = [manager.step_of(p) for p in manager.checkpoints()]
        assert steps == [15, 20]

    def test_load_latest_none_when_empty(self, tmp_path):
        assert CheckpointManager(tmp_path).load_latest() is None
        assert CheckpointManager(tmp_path / "missing").load_latest() is None

    def test_load_latest_returns_newest(self, tmp_path, arrays):
        manager = CheckpointManager(tmp_path, keep=3)
        manager.save(1, arrays, {"cursor": 1})
        manager.save(9, arrays, {"cursor": 9})
        step, _, meta = manager.load_latest()
        assert step == 9
        assert meta["cursor"] == 9

    def test_corrupt_latest_falls_back_to_previous(self, tmp_path, arrays):
        """The satellite scenario: a truncated newest checkpoint must not
        take the run down — resume falls back to its predecessor."""
        manager = CheckpointManager(tmp_path, keep=3)
        manager.save(10, arrays, {"cursor": 10})
        newest = manager.save(20, arrays, {"cursor": 20})
        raw = newest.read_bytes()
        newest.write_bytes(raw[: len(raw) // 3])
        step, loaded, meta = manager.load_latest()
        assert step == 10
        assert meta["cursor"] == 10
        np.testing.assert_array_equal(loaded["model/w"], arrays["model/w"])

    def test_all_corrupt_raises(self, tmp_path, arrays):
        manager = CheckpointManager(tmp_path, keep=3)
        for step in (1, 2):
            path = manager.save(step, arrays, META)
            path.write_bytes(b"junk")
        with pytest.raises(CheckpointError, match="all checkpoints"):
            manager.load_latest()

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            CheckpointManager(tmp_path, keep=-1)
        with pytest.raises(ValueError, match="prefix"):
            CheckpointManager(tmp_path, prefix="bad/name")
        with pytest.raises(ValueError, match="step"):
            CheckpointManager(tmp_path).save(-1, {}, {})

    def test_foreign_files_ignored(self, tmp_path, arrays):
        manager = CheckpointManager(tmp_path, keep=2)
        (tmp_path).mkdir(exist_ok=True)
        (tmp_path / "notes.txt").write_text("hello")
        manager.save(3, arrays, META)
        assert len(manager.checkpoints()) == 1
