"""Tests for seeded fault plans: validation and replay determinism."""

import pytest

from repro.faults.plan import (
    EXCHANGE_CORRUPTION,
    FAULT_KINDS,
    HOST_STALL,
    PERMANENT_TILE,
    TRANSIENT_COMPUTE,
    FaultEvent,
    FaultPlan,
    RecoveryPolicy,
)


class TestFaultEvent:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("cosmic_ray", step=0)
        with pytest.raises(ValueError, match="step"):
            FaultEvent(TRANSIENT_COMPUTE, step=-1)
        with pytest.raises(ValueError, match="severity"):
            FaultEvent(TRANSIENT_COMPUTE, step=0, severity=0)

    def test_key_identity(self):
        a = FaultEvent(TRANSIENT_COMPUTE, step=3, tile=7)
        b = FaultEvent(TRANSIENT_COMPUTE, step=3, tile=7, severity=2)
        assert a.key == b.key == (TRANSIENT_COMPUTE, 3, 7)


class TestRecoveryPolicy:
    def test_backoff_doubles(self):
        policy = RecoveryPolicy(backoff_base_s=1e-6)
        assert policy.backoff_s(1) == 1e-6
        assert policy.backoff_s(2) == 2e-6
        assert policy.backoff_s(3) == 4e-6

    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RecoveryPolicy(backoff_base_s=-1.0)
        with pytest.raises(ValueError):
            RecoveryPolicy().backoff_s(0)


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan.none()
        assert plan.is_empty
        assert plan.faults_at(0, 8) == []

    def test_zero_rates_are_empty(self):
        assert FaultPlan.from_rates(0, transient_compute=0.0).is_empty

    def test_rate_validation(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan(rates=(("nope", 0.5),))
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            FaultPlan.from_rates(0, host_stall=1.5)

    def test_scheduled_events_fire_at_their_step(self):
        event = FaultEvent(HOST_STALL, step=4)
        plan = FaultPlan(events=(event,))
        assert plan.faults_at(4, 8) == [event]
        assert plan.faults_at(3, 8) == []

    def test_drawn_faults_are_pure_functions_of_seed_and_step(self):
        plan = FaultPlan.from_rates(
            7, transient_compute=0.3, exchange_corruption=0.3
        )
        per_step = [plan.drawn_at(s, 64) for s in range(50)]
        # Replay in reverse order: identical results, so the injector's
        # query order cannot change what fires.
        replayed = [plan.drawn_at(s, 64) for s in reversed(range(50))]
        assert per_step == list(reversed(replayed))

    def test_rate_one_always_fires(self):
        plan = FaultPlan.from_rates(0, permanent_tile=1.0)
        for step in range(10):
            (event,) = plan.drawn_at(step, 16)
            assert event.kind == PERMANENT_TILE
            assert 0 <= event.tile < 16

    def test_different_seeds_differ(self):
        a = FaultPlan.from_rates(0, transient_compute=0.2)
        b = FaultPlan.from_rates(1, transient_compute=0.2)
        hits_a = [bool(a.drawn_at(s, 8)) for s in range(200)]
        hits_b = [bool(b.drawn_at(s, 8)) for s in range(200)]
        assert hits_a != hits_b

    def test_rate_roughly_respected(self):
        plan = FaultPlan.from_rates(3, exchange_corruption=0.25)
        hits = sum(bool(plan.drawn_at(s, 8)) for s in range(400))
        assert 60 <= hits <= 140  # ~100 expected

    def test_kind_order_is_canonical(self):
        assert FAULT_KINDS[0] == TRANSIENT_COMPUTE
        assert EXCHANGE_CORRUPTION in FAULT_KINDS
        assert len(set(FAULT_KINDS)) == len(FAULT_KINDS) == 5
