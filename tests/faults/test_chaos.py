"""The chaos harness: recompile-and-recover loop, replay determinism,
kill/resume, and the CLI driver."""

import numpy as np
import pytest

from repro.faults.chaos import (
    ChaosResult,
    chaos_execute,
    default_plan,
    kill_resume_check,
    recover_link_drops,
    run_chaos,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    LINK_DROP,
    PERMANENT_TILE,
    TRANSIENT_COMPUTE,
    FaultEvent,
    FaultPlan,
    RecoveryPolicy,
)
from repro.ipu.machine import GC200

from tests.faults.test_executor_faults import (
    build_pipeline,
    compute_step_indices,
)

# the whole chaos suite, subprocess kills included: excluded from the
# `-m "not slow"` fast loop (docs/VERIFICATION.md).
pytestmark = pytest.mark.slow


class TestChaosExecute:
    def test_clean_plan_completes(self):
        result = chaos_execute(build_pipeline(), GC200, FaultPlan.none())
        assert result.ok
        assert result.recompiles == 0
        assert result.faults.n_injected == 0

    def test_permanent_fault_recovers_by_recompiling(self):
        graph = build_pipeline()
        step = compute_step_indices(graph)[0]
        plan = FaultPlan(
            events=(FaultEvent(PERMANENT_TILE, step=step, tile=3),)
        )
        result = chaos_execute(graph, GC200, plan)
        assert result.ok
        assert result.recompiles == 1
        assert result.excluded_tiles == frozenset({3})
        assert result.faults.all_recovered

    def test_two_sequential_tile_deaths(self):
        graph = build_pipeline()
        steps = compute_step_indices(graph)
        plan = FaultPlan(
            events=(
                FaultEvent(PERMANENT_TILE, step=steps[0], tile=0),
                FaultEvent(PERMANENT_TILE, step=steps[-1], tile=1),
            )
        )
        result = chaos_execute(graph, GC200, plan)
        assert result.ok
        assert result.recompiles == 2
        assert result.excluded_tiles == frozenset({0, 1})
        assert result.faults.n_injected == 2

    def test_unrecovered_transient_reported_as_error(self):
        graph = build_pipeline()
        step = compute_step_indices(graph)[0]
        plan = FaultPlan(
            events=(
                FaultEvent(TRANSIENT_COMPUTE, step=step, tile=0, severity=9),
            )
        )
        result = chaos_execute(
            graph, GC200, plan, policy=RecoveryPolicy(max_retries=2)
        )
        assert not result.ok
        assert "not recovered" in result.error
        assert result.faults.n_fatal == 1

    def test_replay_determinism(self):
        graph = build_pipeline()
        plan = FaultPlan.from_rates(
            11, transient_compute=0.5, exchange_corruption=0.5
        )
        a = chaos_execute(graph, GC200, plan)
        b = chaos_execute(graph, GC200, plan)
        assert a.faults == b.faults
        assert a.report.steps == b.report.steps

    def test_result_flags(self):
        result = ChaosResult(
            report=None,
            faults=FaultInjector(FaultPlan.none()).report(),
            excluded_tiles=frozenset(),
            recompiles=0,
            error="boom",
        )
        assert not result.ok


class TestDefaultPlan:
    def test_covers_at_least_four_kinds(self):
        graph = build_pipeline()
        plan = default_plan(0, graph.program)
        kinds = {e.kind for e in plan.events}
        assert len(kinds) >= 4
        assert not plan.is_empty

    def test_rejects_computeless_program(self):
        graph = build_pipeline(stages=1)
        graph.program[:] = [s for s in graph.program if s.kind != "compute"]
        with pytest.raises(ValueError, match="no compute steps"):
            default_plan(0, graph.program)


class TestLinkDropRecovery:
    def test_ledgered_with_degraded_cost(self):
        plan = FaultPlan(events=(FaultEvent(LINK_DROP, step=0),))
        injector = FaultInjector(plan)
        triples = recover_link_drops(plan, injector, nbytes=10**6)
        assert len(triples) == 1
        _, healthy, degraded = triples[0]
        assert degraded > healthy
        report = injector.report()
        assert report.kinds_injected() == [LINK_DROP]
        assert report.all_recovered
        assert report.total_retry_s == pytest.approx(degraded - healthy)


class TestKillResume:
    def test_bit_identical(self, tmp_path):
        result = kill_resume_check(
            seed=0,
            epochs=2,
            kill_after_steps=7,
            dim=32,
            n_samples=96,
            directory=str(tmp_path),
        )
        assert result["killed"]
        assert result["bit_identical"]
        assert result["resumed_from_step"] is not None


class TestRunChaos:
    def test_smoke_suite_passes(self):
        text, ok = run_chaos(seed=0, smoke=True)
        assert ok, text
        assert "CHAOS OK" in text
        assert "replay determinism: OK" in text
        assert "kill/resume: OK" in text
        for kind in (
            "transient_compute",
            "permanent_tile",
            "exchange_corruption",
            "host_stall",
            "link_drop",
        ):
            assert kind in text

    def test_seed_changes_drawn_faults(self):
        graph = build_pipeline(stages=6)
        plan_a = FaultPlan.from_rates(0, transient_compute=0.4)
        plan_b = FaultPlan.from_rates(123, transient_compute=0.4)
        a = chaos_execute(graph, GC200, plan_a)
        b = chaos_execute(graph, GC200, plan_b)
        # Different seeds, same rates: almost surely different ledgers
        # (6 compute steps at p=0.4 each).
        assert a.ok and b.ok
        assert a.faults != b.faults or a.report.steps != b.report.steps
