"""Tests for the fault injector's ledger and report rollup."""

from repro.faults.injector import (
    NULL_INJECTOR,
    FaultInjector,
    FaultReport,
)
from repro.faults.plan import (
    LINK_DROP,
    PERMANENT_TILE,
    TRANSIENT_COMPUTE,
    FaultEvent,
    FaultPlan,
)


class TestNullInjector:
    def test_inactive_and_empty(self):
        assert not NULL_INJECTOR.active
        assert NULL_INJECTOR.plan.is_empty
        report = NULL_INJECTOR.report()
        assert report.n_injected == 0
        assert report.all_recovered

    def test_active_flag_tracks_plan(self):
        assert not FaultInjector(FaultPlan.none()).active
        assert FaultInjector(
            FaultPlan(events=(FaultEvent(LINK_DROP, step=0),))
        ).active


class TestLedger:
    def test_recovered_dedup_by_identity(self):
        injector = FaultInjector(FaultPlan.none())
        event = FaultEvent(TRANSIENT_COMPUTE, step=2, tile=5)
        # A re-execution after recompile observes the same fault twice.
        injector.record_recovered(event, retries=2, retry_s=1e-6)
        injector.record_recovered(event, retries=2, retry_s=1e-6)
        report = injector.report()
        assert report.n_injected == 1
        assert report.total_retries == 2

    def test_fatal_then_recovered_flips(self):
        injector = FaultInjector(FaultPlan.none())
        event = FaultEvent(PERMANENT_TILE, step=1, tile=3)
        injector.record_fatal(event)
        assert injector.report().n_fatal == 1
        injector.record_recovered(event, retries=1)
        report = injector.report()
        assert report.n_fatal == 0
        assert report.n_recovered == 1
        assert report.all_recovered

    def test_dead_tiles_filter_permanent_refires(self):
        event = FaultEvent(PERMANENT_TILE, step=4, tile=9)
        injector = FaultInjector(FaultPlan(events=(event,)))
        assert injector.faults_at(4, 16) == [event]
        injector.record_recovered(event, retries=1)
        assert injector.dead_tiles == {9}
        # After the recompile the dead tile's fault no longer fires.
        assert injector.faults_at(4, 16) == []

    def test_report_deterministic_across_insertion_order(self):
        a = FaultInjector(FaultPlan.none())
        b = FaultInjector(FaultPlan.none())
        e1 = FaultEvent(TRANSIENT_COMPUTE, step=1, tile=0)
        e2 = FaultEvent(PERMANENT_TILE, step=2, tile=1)
        a.record_recovered(e1, retries=1)
        a.record_recovered(e2, retries=1)
        b.record_recovered(e2, retries=1)
        b.record_recovered(e1, retries=1)
        assert a.report() == b.report()


class TestFaultReport:
    def test_counts_and_render(self):
        report = FaultReport(
            injected=((TRANSIENT_COMPUTE, 2), (LINK_DROP, 1)),
            recovered=((TRANSIENT_COMPUTE, 2),),
            fatal=((LINK_DROP, 1),),
            total_retries=3,
            total_retry_s=5e-6,
        )
        assert report.n_injected == 3
        assert report.n_recovered == 2
        assert report.n_fatal == 1
        assert not report.all_recovered
        assert report.kinds_injected() == [TRANSIENT_COMPUTE, LINK_DROP]
        text = report.render()
        assert "3 injected" in text
        assert "link_drop" in text
