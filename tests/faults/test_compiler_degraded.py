"""Degraded-tile recompilation: folding, memory accounting, genuine OOM."""

import numpy as np
import pytest

from repro.faults.chaos import max_dead_tiles
from repro.ipu.compiler import (
    IPUOutOfMemoryError,
    _tile_fold_map,
    compile_graph,
)
from repro.ipu.machine import GC200
from repro.ipu.poptorch import lower_model
from repro.experiments.config import shl_model

from tests.faults.test_executor_faults import build_pipeline


class TestTileFoldMap:
    def test_identity_free_of_excluded(self):
        fold = _tile_fold_map(8, frozenset({2, 5}))
        assert fold.shape == (8,)
        assert not set(fold.tolist()) & {2, 5}
        assert set(fold.tolist()) <= set(range(8)) - {2, 5}

    def test_round_robin_balance(self):
        fold = _tile_fold_map(100, frozenset({0}))
        counts = np.bincount(fold, minlength=100)
        assert counts[0] == 0
        # 100 logical tiles over 99 survivors: loads differ by <= 1.
        assert counts[1:].min() >= 1
        assert counts[1:].max() <= 2


class TestDegradedCompile:
    def test_healthy_compile_has_no_map(self):
        compiled = compile_graph(build_pipeline(), GC200)
        assert compiled.tile_map is None
        assert compiled.excluded_tiles == frozenset()
        assert compiled.n_surviving_tiles == GC200.n_tiles
        assert compiled.physical_tile(3) == 3

    def test_excluded_tiles_carry_no_memory(self):
        compiled = compile_graph(
            build_pipeline(), GC200, exclude_tiles={1, 3}
        )
        assert compiled.excluded_tiles == frozenset({1, 3})
        assert compiled.n_surviving_tiles == GC200.n_tiles - 2
        assert compiled.memory.per_tile_bytes[1] == 0.0
        assert compiled.memory.per_tile_bytes[3] == 0.0
        assert compiled.physical_tile(1) not in (1, 3)

    def test_fold_conserves_total_memory(self):
        graph = build_pipeline()
        healthy = compile_graph(graph, GC200)
        degraded = compile_graph(graph, GC200, exclude_tiles={0, 1, 2})
        assert degraded.memory.total_bytes == pytest.approx(
            healthy.memory.total_bytes
        )
        assert (
            degraded.memory.peak_tile_bytes
            >= healthy.memory.peak_tile_bytes
        )

    def test_validation(self):
        graph = build_pipeline()
        with pytest.raises(ValueError, match="out of range"):
            compile_graph(graph, GC200, exclude_tiles={GC200.n_tiles})
        with pytest.raises(ValueError, match="cannot exclude all"):
            compile_graph(
                graph, GC200, exclude_tiles=set(range(GC200.n_tiles))
            )

    def test_oom_only_when_fold_genuinely_overflows(self):
        """Shrinking to very few survivors concentrates a real model's
        memory until it overflows — and the error says it was degraded."""
        model = shl_model("Baseline", dim=1024)
        graph, _ = lower_model(model, GC200, batch=50, in_features=1024)
        compile_graph(graph, GC200)  # healthy: fits
        survivors = 2
        excl = set(range(GC200.n_tiles - survivors))
        with pytest.raises(IPUOutOfMemoryError, match="tiles excluded"):
            compile_graph(graph, GC200, exclude_tiles=excl)


class TestMaxDeadTiles:
    def test_compressed_beats_dense(self):
        """The PR's quantitative claim at test scale: butterfly survives
        strictly more dead tiles than the dense baseline."""
        results = {}
        for method in ("Baseline", "Butterfly"):
            model = shl_model(method, dim=512)
            graph, _ = lower_model(model, GC200, batch=16, in_features=512)
            results[method] = max_dead_tiles(graph, GC200, seed=0)
        assert 0 < results["Baseline"] < GC200.n_tiles
        assert results["Butterfly"] > results["Baseline"]
