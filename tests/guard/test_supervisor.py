"""End-to-end supervisor tests: pathologies, determinism, resume.

Workers live at module top level so the ``spawn`` context can pickle
them by reference (the convention of ``tests/bench/test_parallel.py``).
Cross-attempt state lives in marker files — every attempt is a fresh
process, so module globals reset between attempts.

Deadlines are generous (seconds) against a 600 s hang: the spawn
interpreter startup counts toward the cell deadline, and these tests
must not flake on a loaded CI box.
"""

import os
import time
from pathlib import Path

import numpy as np
import pytest

from repro.bench.parallel import WorkerError, run_grid
from repro.guard import (
    GuardPolicy,
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_RETRIED,
    STATUS_TIMED_OUT,
    TransientError,
    run_supervised_grid,
)
from repro.guard.journal import GridJournal, cell_key
from repro.obs.metrics import collecting

# real worker pools, deadlines and kills: excluded from the
# `-m "not slow"` fast loop (docs/VERIFICATION.md).
pytestmark = pytest.mark.slow


# -- worker zoo ----------------------------------------------------------------


def _plain_worker(config, seed_seq):
    (n,) = config
    rng = np.random.default_rng(seed_seq)
    return float(n) * 10.0 + float(rng.random())


def _metric_worker(config, seed_seq):
    from repro.obs.metrics import get_registry

    (n,) = config
    registry = get_registry()
    registry.counter("test.cells").inc()
    registry.gauge("test.last_n").set(float(n))
    rng = np.random.default_rng(seed_seq)
    return float(n) + float(rng.random())


def _flaky_worker(config, seed_seq):
    n, marker_dir = config
    marker = Path(marker_dir) / f"flaky-{n}"
    if not marker.exists():
        marker.write_text("attempted")
        raise TransientError(f"transient glitch on {n}")
    return _plain_worker((n,), seed_seq)


def _kill_once_worker(config, seed_seq):
    n, marker_dir = config
    marker = Path(marker_dir) / f"kill-{n}"
    if not marker.exists():
        marker.write_text("attempted")
        os._exit(3)
    return _plain_worker((n,), seed_seq)


def _hang_worker(config, seed_seq):
    time.sleep(600.0)
    return None  # pragma: no cover - always killed first


def _poison_worker(config, seed_seq):
    (n,) = config
    if n == 13:
        raise ValueError(f"poisoned config {n}")
    return _plain_worker((n,), seed_seq)


def _unpicklable_worker(config, seed_seq):
    return lambda: None  # functions defined here cannot cross the pipe


def _traced_failing_worker(config, seed_seq):
    # Emits a span and a log event *before* dying, so the partial
    # buffers must still come back over the pipe (satellite 1).
    from repro.obs import get_logger, get_tracer

    (n,) = config
    with get_tracer().span("doomed.setup", category="test"):
        get_logger().info("test.progress", n=n)
    raise ValueError(f"poisoned {n}")


# -- pathologies ---------------------------------------------------------------


def test_clean_grid_matches_serial_run():
    configs = [(n,) for n in (1, 2, 3)]
    expected = run_grid(_plain_worker, configs, jobs=1, seed=7)
    results, report = run_supervised_grid(
        _plain_worker, configs, policy=GuardPolicy(), jobs=2, seed=7
    )
    assert results == expected
    assert report.ok
    assert [c.status for c in report.cells] == [STATUS_OK] * 3
    assert report.total_retries == 0
    assert report.pool_rebuilds == 0


def test_transient_failure_is_retried(tmp_path):
    configs = [(1, str(tmp_path)), (2, str(tmp_path))]
    policy = GuardPolicy(retries=2, backoff_base_s=0.01, backoff_max_s=0.05)
    results, report = run_supervised_grid(
        _flaky_worker, configs, policy=policy, jobs=2, seed=0
    )
    assert all(r is not None for r in results)
    assert report.ok
    assert [c.status for c in report.cells] == [STATUS_RETRIED] * 2
    assert report.total_retries == 2
    assert report.total_crashes == 0
    # An error retry is not a pool rebuild: the process exited cleanly.
    assert report.pool_rebuilds == 0
    # The backoff actually taken matches the policy's seeded schedule.
    for cell in report.cells:
        assert cell.backoff_s == (policy.backoff_s(cell.index, 1),)


def test_abrupt_death_rebuilds_without_losing_siblings(tmp_path):
    # Only n=1 crashes: the calm cells find a pre-written marker and run
    # clean on their first attempt.
    calm = tmp_path / "calm"
    calm.mkdir()
    for n in (2, 3, 4):
        (calm / f"kill-{n}").write_text("pre-marked: runs clean")
    configs = [(1, str(tmp_path))] + [(n, str(calm)) for n in (2, 3, 4)]

    policy = GuardPolicy(retries=1, backoff_base_s=0.01, backoff_max_s=0.05)
    results, report = run_supervised_grid(
        _kill_once_worker, configs, policy=policy, jobs=2, seed=0
    )
    assert all(r is not None for r in results)
    assert report.ok
    assert report.cells[0].status == STATUS_RETRIED
    assert report.cells[0].crashes == 1
    assert [c.status for c in report.cells[1:]] == [STATUS_OK] * 3
    assert report.pool_rebuilds == 1
    assert report.total_crashes == 1


def test_hung_worker_is_killed_at_deadline():
    policy = GuardPolicy(cell_timeout_s=3.0, retries=0)
    start = time.monotonic()
    results, report = run_supervised_grid(
        _hang_worker, [(1,)], policy=policy, jobs=1, seed=0
    )
    elapsed = time.monotonic() - start
    assert results == [None]
    assert report.cells[0].status == STATUS_TIMED_OUT
    assert report.cells[0].timeouts == 1
    assert report.total_timeouts == 1
    assert report.pool_rebuilds == 1
    assert not report.ok
    # Killed at the deadline, not after the 600 s sleep.
    assert elapsed < 60.0


def test_permanent_failure_quarantined_on_first_attempt():
    configs = [(12,), (13,), (14,)]
    policy = GuardPolicy(retries=3, backoff_base_s=0.01)
    results, report = run_supervised_grid(
        _poison_worker, configs, policy=policy, jobs=2, seed=0
    )
    assert results[0] is not None and results[2] is not None
    assert results[1] is None
    cell = report.cells[1]
    assert cell.status == STATUS_QUARANTINED
    assert cell.attempts == 1  # permanent → no retry budget burned
    assert "poisoned config 13" in cell.error
    assert not report.ok
    assert [c.index for c in report.failed_cells()] == [1]


def test_unpicklable_result_is_permanent():
    results, report = run_supervised_grid(
        _unpicklable_worker, [(1,)], policy=GuardPolicy(retries=2), seed=0
    )
    assert results == [None]
    assert report.cells[0].status == STATUS_QUARANTINED
    assert report.cells[0].attempts == 1
    assert "not picklable" in report.cells[0].error


def test_serial_fallback_after_rebuild_budget(tmp_path):
    calm = tmp_path / "calm"
    calm.mkdir()
    for n in (2, 3):
        (calm / f"kill-{n}").write_text("runs clean")
    configs = [(1, str(tmp_path))] + [(n, str(calm)) for n in (2, 3)]
    policy = GuardPolicy(
        retries=1, backoff_base_s=0.01, max_pool_rebuilds=0
    )
    results, report = run_supervised_grid(
        _kill_once_worker, configs, policy=policy, jobs=2, seed=0
    )
    assert all(r is not None for r in results)
    assert report.serial_fallback
    assert report.pool_rebuilds == 1
    assert "[serial fallback]" in report.render()


# -- strict mode through run_grid ----------------------------------------------


def test_strict_guard_raises_with_partial_results():
    configs = [(12,), (13,), (14,)]
    policy = GuardPolicy(retries=0, strict=True)
    with pytest.raises(WorkerError) as excinfo:
        run_grid(_poison_worker, configs, jobs=2, seed=0, guard=policy)
    err = excinfo.value
    assert err.config == (13,)
    assert "poisoned config 13" in err.detail
    assert len(err.failures) == 1
    assert err.failures[0][0] == (13,)
    assert err.results[1] is None
    assert err.results[0] is not None and err.results[2] is not None


def test_non_strict_guard_returns_none_placeholders():
    configs = [(12,), (13,)]
    results = run_grid(
        _poison_worker,
        configs,
        jobs=1,
        seed=0,
        guard=GuardPolicy(retries=0),
    )
    assert results[0] is not None
    assert results[1] is None


# -- journal + resume ----------------------------------------------------------


def test_resume_serves_journal_and_matches_clean_run(tmp_path):
    configs = [(n,) for n in (1, 2, 3, 4)]
    seed = 11

    with collecting() as clean_registry:
        clean = run_grid(_metric_worker, configs, jobs=1, seed=seed)
    clean_snapshot = clean_registry.snapshot()

    journal_dir = tmp_path / "journal"
    with collecting() as first_registry:
        first, first_report = run_supervised_grid(
            _metric_worker,
            configs,
            policy=GuardPolicy(journal_dir=journal_dir),
            jobs=2,
            seed=seed,
            registry=first_registry,
        )
    assert first == clean
    assert first_registry.snapshot() == clean_snapshot
    assert first_report.journal_hits == 0
    assert len(GridJournal(journal_dir)) == 4

    # Resume: every cell served from the journal, zero processes spawned,
    # results AND merged metrics bit-identical to the clean serial run.
    with collecting() as resumed_registry:
        resumed, resumed_report = run_supervised_grid(
            _metric_worker,
            configs,
            policy=GuardPolicy(
                retries=0, journal_dir=journal_dir, resume=True
            ),
            jobs=2,
            seed=seed,
            registry=resumed_registry,
        )
    assert resumed == clean
    assert resumed_registry.snapshot() == clean_snapshot
    assert resumed_report.journal_hits == 4
    assert all(c.from_journal for c in resumed_report.cells)
    assert all(c.attempts == 0 for c in resumed_report.cells)


def test_resume_executes_only_missing_cells(tmp_path):
    configs = [(n,) for n in (1, 2, 3, 4)]
    seed = 5
    journal_dir = tmp_path / "journal"
    full, _ = run_supervised_grid(
        _plain_worker,
        configs,
        policy=GuardPolicy(journal_dir=journal_dir),
        jobs=2,
        seed=seed,
    )

    # Simulate a mid-grid kill: cell 2's journal entry never landed.
    missing = cell_key(_plain_worker, seed, 2, configs[2])
    (journal_dir / f"cell-{missing}.npz").unlink()

    resumed, report = run_supervised_grid(
        _plain_worker,
        configs,
        policy=GuardPolicy(journal_dir=journal_dir, resume=True),
        jobs=2,
        seed=seed,
    )
    assert resumed == full
    assert report.journal_hits == 3
    executed = [c.index for c in report.cells if c.attempts]
    assert executed == [2]
    # The re-run repaired the journal: a second resume is all hits.
    _, second = run_supervised_grid(
        _plain_worker,
        configs,
        policy=GuardPolicy(journal_dir=journal_dir, resume=True),
        jobs=1,
        seed=seed,
    )
    assert second.journal_hits == 4


def test_journal_key_miss_on_changed_seed(tmp_path):
    configs = [(1,)]
    journal_dir = tmp_path / "journal"
    run_supervised_grid(
        _plain_worker,
        configs,
        policy=GuardPolicy(journal_dir=journal_dir),
        seed=0,
    )
    # Same grid, different seed: the journal must not serve stale cells.
    _, report = run_supervised_grid(
        _plain_worker,
        configs,
        policy=GuardPolicy(journal_dir=journal_dir, resume=True),
        seed=1,
    )
    assert report.journal_hits == 0
    assert report.cells[0].attempts == 1


# -- observability -------------------------------------------------------------


def test_guard_counters_account_for_events(tmp_path):
    calm = tmp_path / "calm"
    calm.mkdir()
    (calm / "kill-2").write_text("runs clean")
    configs = [(1, str(tmp_path)), (2, str(calm))]
    with collecting() as registry:
        run_supervised_grid(
            _kill_once_worker,
            configs,
            policy=GuardPolicy(retries=1, backoff_base_s=0.01),
            jobs=2,
            seed=0,
            registry=registry,
        )
    by_name = {e["name"]: e for e in registry.snapshot()}
    assert by_name["guard.retries"]["value"] == 1
    assert by_name["guard.pool_rebuilds"]["value"] == 1
    assert "guard.timeouts" not in by_name  # no deadline was hit
    assert "guard.quarantined" not in by_name


# -- partial observability on failure ------------------------------------------


def test_failed_cell_ships_partial_observability():
    from repro import obs

    configs = [(1,), (2,)]
    with obs.tracing() as tracer, obs.logging() as runlog:
        results, report = run_supervised_grid(
            _traced_failing_worker,
            configs,
            policy=GuardPolicy(retries=0),
            jobs=2,
            seed=0,
        )
    assert results == [None, None]
    assert not report.ok
    # The failing attempts' buffers were flushed before the error was
    # reported, counted onto the cell reports...
    for cell in report.cells:
        assert cell.status == STATUS_QUARANTINED
        assert cell.n_spans >= 1
        assert cell.n_log_events >= 1
    # ...and merged under attempt-qualified cell tracks.
    doomed_tracks = {
        s.track for s in tracer.spans if s.name == "doomed.setup"
    }
    assert len(doomed_tracks) == 2
    for track in doomed_tracks:
        cell, _, rest = track.partition(".")
        assert cell in {"cell0", "cell1"}
        assert rest.startswith("a")
    # The worker's own log events carry their cell index, and the
    # supervisor logged the quarantine verdicts alongside them.
    progress = [e for e in runlog.events if e.event == "test.progress"]
    assert sorted(e.worker for e in progress) == [0, 1]
    assert all(e.run_id for e in progress)
    quarantines = [
        e for e in runlog.events if e.event == "guard.quarantine"
    ]
    assert len(quarantines) == 2
    assert all(e.level == "error" for e in quarantines)


def test_observability_off_ships_nothing():
    # With instruments disabled nothing is counted: the disabled path
    # records no buffers at all (null-object contract end to end).
    results, report = run_supervised_grid(
        _plain_worker, [(1,)], policy=GuardPolicy(), jobs=2, seed=0
    )
    assert results[0] is not None
    assert report.cells[0].n_spans == 0
    assert report.cells[0].n_log_events == 0
