"""Unit tests for the cell journal: round-trips, corruption, keying."""

import numpy as np

from repro.guard import GridJournal
from repro.guard.journal import cell_key


def _worker_a(config, seed_seq):
    return config


def _worker_b(config, seed_seq):
    return config


def test_record_lookup_round_trip(tmp_path):
    journal = GridJournal(tmp_path)
    key = cell_key(_worker_a, seed=0, index=3, config=(64, "butterfly"))
    result = {"rows": [1.0, 2.0], "arr": np.arange(4.0)}
    metrics = [{"name": "m", "kind": "counter", "points": [[0, 1.0]]}]
    stats = {"hits": 2, "misses": 1}
    journal.record(key, 3, (64, "butterfly"), result, metrics, stats)

    assert key in journal
    entry = journal.lookup(key)
    assert entry is not None
    assert entry.index == 3
    assert entry.config == repr((64, "butterfly"))
    assert entry.result["rows"] == [1.0, 2.0]
    np.testing.assert_array_equal(entry.result["arr"], np.arange(4.0))
    assert entry.metrics == metrics
    assert entry.cache_stats == stats
    assert journal.corrupt == 0
    assert len(journal) == 1


def test_missing_key_is_none(tmp_path):
    journal = GridJournal(tmp_path)
    assert journal.lookup("deadbeef") is None
    assert "deadbeef" not in journal
    assert journal.corrupt == 0


def test_key_depends_on_every_input():
    base = cell_key(_worker_a, seed=0, index=0, config=(64,))
    assert cell_key(_worker_a, seed=1, index=0, config=(64,)) != base
    assert cell_key(_worker_a, seed=0, index=1, config=(64,)) != base
    assert cell_key(_worker_a, seed=0, index=0, config=(65,)) != base
    assert cell_key(_worker_b, seed=0, index=0, config=(64,)) != base
    # Same inputs → same key (content addressing, not randomness).
    assert cell_key(_worker_a, seed=0, index=0, config=(64,)) == base


def test_truncated_entry_counts_corrupt_not_raise(tmp_path):
    journal = GridJournal(tmp_path)
    key = cell_key(_worker_a, seed=0, index=0, config=("x",))
    path = journal.record(key, 0, ("x",), [1.0], [], {})
    path.write_bytes(path.read_bytes()[: max(1, path.stat().st_size // 2)])
    assert journal.lookup(key) is None
    assert journal.corrupt == 1


def test_garbage_entry_counts_corrupt_not_raise(tmp_path):
    journal = GridJournal(tmp_path)
    key = cell_key(_worker_a, seed=0, index=0, config=("y",))
    (tmp_path / f"cell-{key}.npz").write_bytes(b"not a checkpoint")
    assert journal.lookup(key) is None
    assert journal.corrupt == 1


def test_keys_lists_entries_sorted(tmp_path):
    journal = GridJournal(tmp_path)
    keys = [
        cell_key(_worker_a, seed=0, index=i, config=(i,)) for i in range(3)
    ]
    for i, key in enumerate(keys):
        journal.record(key, i, (i,), i, [], {})
    assert journal.keys() == sorted(keys)


def test_empty_directory_ok(tmp_path):
    journal = GridJournal(tmp_path / "never-created")
    assert journal.keys() == []
    assert len(journal) == 0
