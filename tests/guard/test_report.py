"""Unit tests for CellReport/GridReport and the ambient collector."""

from repro.guard import (
    STATUS_OK,
    STATUS_QUARANTINED,
    STATUS_RETRIED,
    STATUS_TIMED_OUT,
    CellReport,
    GridReport,
    collected_reports,
    record_report,
    reporting,
)


def _sample_report():
    return GridReport(
        name="g",
        cells=[
            CellReport(index=0, config="(1,)", status=STATUS_OK, attempts=1),
            CellReport(
                index=1,
                config="(2,)",
                status=STATUS_RETRIED,
                attempts=2,
                retries=1,
                crashes=1,
            ),
            CellReport(
                index=2,
                config="(3,)",
                status=STATUS_QUARANTINED,
                attempts=1,
                error="Traceback...\nValueError: poisoned",
            ),
            CellReport(
                index=3,
                config="(4,)",
                status=STATUS_TIMED_OUT,
                attempts=3,
                retries=2,
                timeouts=3,
            ),
        ],
        pool_rebuilds=2,
    )


def test_grid_report_accounting():
    report = _sample_report()
    assert report.n_cells == 4
    assert report.n_ok == 1
    assert report.n_retried == 1
    assert report.n_quarantined == 1
    assert report.n_timed_out == 1
    assert report.total_retries == 3
    assert report.total_timeouts == 3
    assert report.total_crashes == 1
    assert not report.ok
    assert [c.index for c in report.failed_cells()] == [2, 3]


def test_cell_ok_property():
    assert CellReport(0, "c", status=STATUS_OK).ok
    assert CellReport(0, "c", status=STATUS_RETRIED).ok
    assert not CellReport(0, "c", status=STATUS_QUARANTINED).ok
    assert not CellReport(0, "c", status=STATUS_TIMED_OUT).ok


def test_render_names_every_non_clean_cell():
    text = _sample_report().render()
    assert "GridReport[g]" in text
    assert "2 pool rebuilds" in text
    # Clean cell 0 is omitted; the three interesting ones appear.
    assert "cell 0" not in text
    assert "cell 1" in text and "retried" in text
    assert "cell 2" in text and "ValueError: poisoned" in text
    assert "cell 3" in text and "timed_out" in text


def test_render_flags_serial_fallback():
    report = GridReport(name="g", serial_fallback=True)
    assert "[serial fallback]" in report.render()


def test_reporting_collects_and_restores():
    assert collected_reports() == []
    record_report(GridReport(name="dropped"))  # no collector → dropped
    assert collected_reports() == []

    with reporting() as outer:
        record_report(GridReport(name="a"))
        with reporting() as inner:
            record_report(GridReport(name="b"))
        record_report(GridReport(name="c"))

    assert [r.name for r in outer] == ["a", "c"]
    assert [r.name for r in inner] == ["b"]
    assert collected_reports() == []


def test_as_dict_round_trips_fields():
    cell = CellReport(
        index=5,
        config="(9,)",
        status=STATUS_RETRIED,
        attempts=2,
        retries=1,
        crashes=1,
        from_journal=False,
        error=None,
    )
    d = cell.as_dict()
    assert d["index"] == 5
    assert d["status"] == STATUS_RETRIED
    assert d["retries"] == 1
    assert d["crashes"] == 1
    assert d["from_journal"] is False
