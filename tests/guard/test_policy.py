"""Unit tests for GuardPolicy: classification, backoff, validation."""

import pytest

from repro.faults.injector import UnrecoveredFaultError
from repro.faults.plan import (
    FaultEvent,
    HOST_STALL,
    PERMANENT_TILE,
    TRANSIENT_COMPUTE,
)
from repro.guard import (
    PERMANENT,
    TRANSIENT,
    GuardPolicy,
    TransientError,
    classify_exception,
)


class _FlaggedError(RuntimeError):
    transient = True


def test_transient_error_is_transient():
    assert classify_exception(TransientError("x")) == TRANSIENT


def test_transient_attribute_is_honoured():
    assert classify_exception(_FlaggedError("x")) == TRANSIENT


def test_plain_exceptions_are_permanent():
    assert classify_exception(ValueError("x")) == PERMANENT
    assert classify_exception(RuntimeError("x")) == PERMANENT
    assert classify_exception(MemoryError()) == PERMANENT


def test_connection_failures_are_transient():
    assert classify_exception(ConnectionResetError()) == TRANSIENT
    assert classify_exception(EOFError()) == TRANSIENT
    assert classify_exception(InterruptedError()) == TRANSIENT


def test_unrecovered_fault_kind_splits_the_verdict():
    transient = UnrecoveredFaultError(
        FaultEvent(TRANSIENT_COMPUTE, step=0, tile=1), max_retries=2
    )
    stall = UnrecoveredFaultError(
        FaultEvent(HOST_STALL, step=0), max_retries=2
    )
    permanent = UnrecoveredFaultError(
        FaultEvent(PERMANENT_TILE, step=0, tile=1), max_retries=2
    )
    assert classify_exception(transient) == TRANSIENT
    assert classify_exception(stall) == TRANSIENT
    assert classify_exception(permanent) == PERMANENT


def test_backoff_is_deterministic_and_exponential():
    policy = GuardPolicy(
        retries=4, backoff_base_s=0.1, backoff_max_s=10.0, jitter=0.5, seed=3
    )
    schedule = policy.backoff_schedule(index=2)
    assert schedule == policy.backoff_schedule(index=2)
    assert len(schedule) == 4
    # Exponential base under the jittered value: delay k in
    # [base*2^k, base*2^k * 1.5].
    for attempt, delay in enumerate(schedule, start=1):
        base = 0.1 * 2.0 ** (attempt - 1)
        assert base <= delay <= base * 1.5


def test_backoff_decorrelates_cells():
    policy = GuardPolicy(jitter=0.5, backoff_base_s=1.0)
    assert policy.backoff_s(0, 1) != policy.backoff_s(1, 1)


def test_backoff_respects_cap():
    policy = GuardPolicy(
        retries=8, backoff_base_s=1.0, backoff_max_s=2.0, jitter=0.0
    )
    assert policy.backoff_s(0, 8) == 2.0


def test_backoff_seed_changes_schedule():
    a = GuardPolicy(seed=0, jitter=1.0, backoff_base_s=1.0)
    b = GuardPolicy(seed=1, jitter=1.0, backoff_base_s=1.0)
    assert a.backoff_s(0, 1) != b.backoff_s(0, 1)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"cell_timeout_s": 0.0},
        {"cell_timeout_s": -1.0},
        {"retries": -1},
        {"backoff_base_s": -0.1},
        {"jitter": 1.5},
        {"max_pool_rebuilds": -1},
        {"resume": True},  # resume without a journal_dir
    ],
)
def test_invalid_policy_rejected(kwargs):
    with pytest.raises(ValueError):
        GuardPolicy(**kwargs)


def test_backoff_attempt_must_be_positive():
    with pytest.raises(ValueError):
        GuardPolicy().backoff_s(0, 0)
