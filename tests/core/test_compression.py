"""Tests for compression-ratio accounting against the paper's numbers."""

import pytest

from repro.core.compression import CompressionReport, compression_ratio


class TestRatio:
    def test_basic(self):
        assert compression_ratio(100, 25) == pytest.approx(0.75)

    def test_paper_butterfly_number(self):
        # The paper's headline: 16390 / 1059850 -> 98.45 % compression.
        assert compression_ratio(1059850, 16390) == pytest.approx(
            0.9845, abs=1e-4
        )

    def test_our_butterfly_number(self):
        # Standard 2 n log2 n twiddles + classifier: 31754 params -> 97.0 %.
        assert compression_ratio(1059850, 31754) == pytest.approx(
            0.970, abs=1e-3
        )

    def test_zero_method_params(self):
        assert compression_ratio(10, 0) == 1.0

    def test_rejects_bad_baseline(self):
        with pytest.raises(ValueError):
            compression_ratio(0, 1)

    def test_rejects_negative_method(self):
        with pytest.raises(ValueError):
            compression_ratio(10, -1)

    def test_expansion_gives_negative_ratio(self):
        assert compression_ratio(10, 20) == -1.0


class TestReport:
    def test_fields(self):
        report = CompressionReport("butterfly", 1000, 100)
        assert report.ratio == pytest.approx(0.9)
        assert report.bytes_saved_fp32 == 3600

    def test_str_contains_percentage(self):
        text = str(CompressionReport("m", 1000, 15))
        assert "98.5%" in text
