"""Tests for the Table 4 baseline factorizations (fastfood/circulant/low-rank)."""

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.circulant import (
    circulant_multiply,
    circulant_multiply_backward,
    circulant_param_count,
    circulant_to_dense,
)
from repro.core.fastfood import (
    FastfoodTransform,
    fastfood_param_count,
    fwht,
    fwht_matrix,
)
from repro.core.lowrank import (
    lowrank_multiply,
    lowrank_param_count,
    lowrank_to_dense,
)
from tests.conftest import numeric_gradient

pow2 = st.sampled_from([2, 4, 8, 16, 32, 64])


class TestFWHT:
    @pytest.mark.parametrize("n", [2, 4, 8, 32, 128])
    def test_matches_scipy_hadamard(self, n):
        np.testing.assert_allclose(
            fwht_matrix(n), scipy.linalg.hadamard(n), atol=1e-12
        )

    def test_unnormalised_double_application(self, rng):
        x = rng.standard_normal((3, 16))
        np.testing.assert_allclose(fwht(fwht(x)), 16 * x, atol=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(pow2, st.integers(0, 2**31 - 1))
    def test_normalized_is_involution(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal((2, n))
        np.testing.assert_allclose(
            fwht(fwht(x, normalized=True), normalized=True), x, atol=1e-9
        )

    @settings(max_examples=25, deadline=None)
    @given(pow2, st.integers(0, 2**31 - 1))
    def test_normalized_preserves_norm(self, n, seed):
        rng = np.random.default_rng(seed)
        x = rng.standard_normal(n)
        np.testing.assert_allclose(
            np.linalg.norm(fwht(x, normalized=True)),
            np.linalg.norm(x),
            rtol=1e-9,
        )

    def test_batch_shapes_preserved(self, rng):
        x = rng.standard_normal((2, 3, 8))
        assert fwht(x).shape == (2, 3, 8)

    def test_rejects_non_pow2(self, rng):
        with pytest.raises(ValueError):
            fwht(rng.standard_normal(12))

    def test_linearity(self, rng):
        x = rng.standard_normal(16)
        y = rng.standard_normal(16)
        np.testing.assert_allclose(
            fwht(2 * x - y), 2 * fwht(x) - fwht(y), atol=1e-10
        )


class TestFastfood:
    def test_param_count(self):
        assert fastfood_param_count(1024) == 3072

    def test_multiply_matches_dense(self, rng):
        ff = FastfoodTransform.random(32, seed=1)
        x = rng.standard_normal((4, 32))
        np.testing.assert_allclose(
            ff(x), x @ ff.to_dense().T, atol=1e-10
        )

    def test_explicit_composition(self, rng):
        ff = FastfoodTransform.random(16, seed=2)
        x = rng.standard_normal(16)
        h = fwht_matrix(16, normalized=True)
        p = np.zeros((16, 16))
        p[np.arange(16), ff.perm] = 1
        manual = np.diag(ff.s) @ h @ np.diag(ff.g) @ p @ h @ np.diag(ff.b)
        np.testing.assert_allclose(ff(x), manual @ x, atol=1e-10)

    def test_wrong_feature_count(self, rng):
        ff = FastfoodTransform.random(16)
        with pytest.raises(ValueError, match="features"):
            ff(rng.standard_normal(8))

    def test_component_length_validated(self):
        with pytest.raises(ValueError, match="length"):
            FastfoodTransform(
                s=np.ones(8), g=np.ones(8), b=np.ones(8), perm=np.arange(4)
            )

    def test_deterministic(self):
        a = FastfoodTransform.random(16, seed=3)
        b = FastfoodTransform.random(16, seed=3)
        np.testing.assert_array_equal(a.to_dense(), b.to_dense())

    def test_output_scale_is_reasonable(self, rng):
        ff = FastfoodTransform.random(256, seed=4)
        x = rng.standard_normal((50, 256))
        ratio = np.linalg.norm(ff(x)) / np.linalg.norm(x)
        assert 0.3 < ratio < 3.0


class TestCirculant:
    def test_param_count(self):
        assert circulant_param_count(1024) == 1024
        with pytest.raises(ValueError):
            circulant_param_count(0)

    def test_matches_dense(self, rng):
        c = rng.standard_normal(12)
        x = rng.standard_normal((3, 12))
        np.testing.assert_allclose(
            circulant_multiply(c, x), x @ circulant_to_dense(c).T, atol=1e-10
        )

    def test_matches_scipy_circulant(self, rng):
        c = rng.standard_normal(9)
        np.testing.assert_allclose(
            circulant_to_dense(c), scipy.linalg.circulant(c), atol=1e-12
        )

    def test_non_power_of_two_size(self, rng):
        c = rng.standard_normal(7)
        x = rng.standard_normal(7)
        np.testing.assert_allclose(
            circulant_multiply(c, x), circulant_to_dense(c) @ x, atol=1e-10
        )

    def test_identity_circulant(self, rng):
        c = np.zeros(8)
        c[0] = 1.0
        x = rng.standard_normal((2, 8))
        np.testing.assert_allclose(circulant_multiply(c, x), x, atol=1e-12)

    def test_shift_circulant(self, rng):
        c = np.zeros(8)
        c[1] = 1.0  # circular shift by one
        x = rng.standard_normal(8)
        np.testing.assert_allclose(
            circulant_multiply(c, x), np.roll(x, 1), atol=1e-12
        )

    def test_backward_matches_finite_difference(self, rng):
        c = rng.standard_normal(6)
        x = rng.standard_normal((3, 6))
        g = rng.standard_normal((3, 6))
        grad_c, grad_x = circulant_multiply_backward(c, x, g)
        num_c = numeric_gradient(
            lambda cc: float((circulant_multiply(cc, x) * g).sum()), c
        )
        num_x = numeric_gradient(
            lambda a: float((circulant_multiply(c, a) * g).sum()), x
        )
        np.testing.assert_allclose(grad_c, num_c, atol=1e-6)
        np.testing.assert_allclose(grad_x, num_x, atol=1e-6)

    def test_rejects_2d_c(self, rng):
        with pytest.raises(ValueError, match="1-D"):
            circulant_multiply(rng.standard_normal((2, 3)), rng.standard_normal(3))

    def test_feature_mismatch(self, rng):
        with pytest.raises(ValueError, match="features"):
            circulant_multiply(rng.standard_normal(8), rng.standard_normal(4))


class TestLowRank:
    def test_param_count(self):
        assert lowrank_param_count(1024, 1) == 2048
        assert lowrank_param_count(100, 3, m=50) == 450

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError):
            lowrank_param_count(10, -1)

    def test_matches_dense(self, rng):
        u = rng.standard_normal((10, 3))
        v = rng.standard_normal((8, 3))
        x = rng.standard_normal((5, 8))
        np.testing.assert_allclose(
            lowrank_multiply(u, v, x), x @ lowrank_to_dense(u, v).T, atol=1e-10
        )

    def test_rank_of_expansion(self, rng):
        u = rng.standard_normal((12, 2))
        v = rng.standard_normal((12, 2))
        assert np.linalg.matrix_rank(lowrank_to_dense(u, v)) == 2

    def test_rank_mismatch_rejected(self, rng):
        with pytest.raises(ValueError, match="equal r"):
            lowrank_multiply(
                rng.standard_normal((4, 2)),
                rng.standard_normal((4, 3)),
                rng.standard_normal(4),
            )

    def test_feature_mismatch(self, rng):
        with pytest.raises(ValueError, match="features"):
            lowrank_multiply(
                rng.standard_normal((4, 2)),
                rng.standard_normal((6, 2)),
                rng.standard_normal(4),
            )
