"""Property-based tests (hypothesis) for butterfly invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.butterfly import (
    butterfly_multiply,
    butterfly_param_count,
    butterfly_to_dense,
    orthogonal_twiddle,
    random_twiddle,
)
from repro.utils import log2_int

pow2 = st.sampled_from([2, 4, 8, 16, 32])
seeds = st.integers(min_value=0, max_value=2**31 - 1)


@settings(max_examples=30, deadline=None)
@given(pow2, seeds)
def test_fast_multiply_equals_dense(n, seed):
    tw = random_twiddle(n, seed=seed)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((3, n))
    np.testing.assert_allclose(
        butterfly_multiply(tw, x),
        x @ butterfly_to_dense(tw).T,
        atol=1e-9,
    )


@settings(max_examples=30, deadline=None)
@given(pow2, seeds)
def test_orthogonal_twiddle_preserves_norm(n, seed):
    tw = orthogonal_twiddle(n, seed=seed)
    rng = np.random.default_rng(seed)
    x = rng.standard_normal(n)
    y = butterfly_multiply(tw, x)
    np.testing.assert_allclose(
        np.linalg.norm(y), np.linalg.norm(x), rtol=1e-9
    )


@settings(max_examples=30, deadline=None)
@given(pow2)
def test_param_count_formula(n):
    assert butterfly_param_count(n) == 2 * n * log2_int(n)


@settings(max_examples=20, deadline=None)
@given(pow2, seeds)
def test_dense_expansion_sparsity_bound(n, seed):
    # A butterfly is a product of log n factors with 2n nonzeros each; the
    # dense product is generically full but each FACTOR stays 2n-sparse.
    from repro.core.butterfly import butterfly_factor_dense, level_stride

    tw = random_twiddle(n, seed=seed)
    log_n = log2_int(n)
    for level in range(log_n):
        stride = level_stride(level, log_n)
        factor = butterfly_factor_dense(tw[level], stride)
        assert np.count_nonzero(factor) <= 2 * n


@settings(max_examples=30, deadline=None)
@given(pow2, seeds, seeds)
def test_composition_is_matrix_product(n, seed_a, seed_b):
    ta = random_twiddle(n, seed=seed_a)
    tb = random_twiddle(n, seed=seed_b)
    rng = np.random.default_rng(0)
    x = rng.standard_normal((2, n))
    composed = butterfly_multiply(ta, butterfly_multiply(tb, x))
    dense = butterfly_to_dense(ta) @ butterfly_to_dense(tb)
    np.testing.assert_allclose(composed, x @ dense.T, atol=1e-8)


@settings(max_examples=30, deadline=None)
@given(pow2, seeds)
def test_orthogonal_inverse_is_transpose(n, seed):
    dense = butterfly_to_dense(orthogonal_twiddle(n, seed=seed))
    np.testing.assert_allclose(
        np.linalg.inv(dense), dense.T, atol=1e-9
    )
