"""Tests for the butterfly factorization core."""

import numpy as np
import pytest

from repro.core.butterfly import (
    ButterflyFactorization,
    butterfly_factor_dense,
    butterfly_multiply,
    butterfly_multiply_backward,
    butterfly_multiply_with_intermediates,
    butterfly_param_count,
    butterfly_to_dense,
    fft_twiddle,
    identity_twiddle,
    level_stride,
    orthogonal_twiddle,
    random_twiddle,
)
from repro.core.permutations import bit_reversal_permutation
from tests.conftest import numeric_gradient


class TestTwiddles:
    def test_identity_twiddle_gives_identity(self):
        tw = identity_twiddle(16)
        np.testing.assert_allclose(butterfly_to_dense(tw), np.eye(16))

    def test_param_count(self):
        assert butterfly_param_count(1024) == 20480
        assert random_twiddle(64).size == butterfly_param_count(64)

    def test_param_count_rejects_non_pow2(self):
        with pytest.raises(ValueError):
            butterfly_param_count(100)

    def test_orthogonal_twiddle_is_orthogonal(self):
        dense = butterfly_to_dense(orthogonal_twiddle(32, seed=3))
        np.testing.assert_allclose(dense @ dense.T, np.eye(32), atol=1e-12)

    def test_random_twiddle_deterministic(self):
        np.testing.assert_array_equal(
            random_twiddle(16, seed=5), random_twiddle(16, seed=5)
        )

    def test_random_twiddle_scale_preserves_norm(self, rng):
        tw = random_twiddle(256, seed=0)
        x = rng.standard_normal((64, 256))
        y = butterfly_multiply(tw, x)
        ratio = np.linalg.norm(y) / np.linalg.norm(x)
        assert 0.3 < ratio < 3.0

    def test_level_stride_increasing(self):
        assert [level_stride(i, 4, True) for i in range(4)] == [1, 2, 4, 8]

    def test_level_stride_decreasing(self):
        assert [level_stride(i, 4, False) for i in range(4)] == [8, 4, 2, 1]

    def test_level_stride_bounds(self):
        with pytest.raises(ValueError):
            level_stride(4, 4)


class TestMultiply:
    def test_matches_dense_expansion(self, rng):
        tw = random_twiddle(32, seed=1)
        dense = butterfly_to_dense(tw)
        x = rng.standard_normal((5, 32))
        np.testing.assert_allclose(
            butterfly_multiply(tw, x), x @ dense.T, atol=1e-10
        )

    def test_decreasing_stride_matches_dense(self, rng):
        tw = random_twiddle(16, seed=2)
        dense = butterfly_to_dense(tw, increasing_stride=False)
        x = rng.standard_normal((3, 16))
        np.testing.assert_allclose(
            butterfly_multiply(tw, x, increasing_stride=False),
            x @ dense.T,
            atol=1e-10,
        )

    def test_1d_input(self, rng):
        tw = random_twiddle(8, seed=3)
        v = rng.standard_normal(8)
        out = butterfly_multiply(tw, v)
        assert out.shape == (8,)
        np.testing.assert_allclose(
            out, butterfly_to_dense(tw) @ v, atol=1e-12
        )

    def test_wrong_feature_count(self, rng):
        tw = random_twiddle(8)
        with pytest.raises(ValueError, match="features"):
            butterfly_multiply(tw, rng.standard_normal((2, 16)))

    def test_invalid_twiddle_shape(self):
        with pytest.raises(ValueError, match="levels"):
            butterfly_multiply(np.zeros((3, 8, 2, 2)), np.zeros((1, 16)))
        with pytest.raises(ValueError, match="shape"):
            butterfly_multiply(np.zeros((3, 8, 2)), np.zeros((1, 16)))

    def test_linearity(self, rng):
        tw = random_twiddle(16, seed=4)
        x = rng.standard_normal((2, 16))
        y = rng.standard_normal((2, 16))
        np.testing.assert_allclose(
            butterfly_multiply(tw, 2 * x + 3 * y),
            2 * butterfly_multiply(tw, x) + 3 * butterfly_multiply(tw, y),
            atol=1e-10,
        )

    def test_identity_multiply(self, rng):
        x = rng.standard_normal((4, 32))
        np.testing.assert_allclose(
            butterfly_multiply(identity_twiddle(32), x), x
        )


class TestFFT:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 64, 256])
    def test_fft_twiddle_reproduces_dft(self, n, rng):
        tw = fft_twiddle(n)
        perm = bit_reversal_permutation(n)
        x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
        np.testing.assert_allclose(
            butterfly_multiply(tw, x[perm]), np.fft.fft(x), atol=1e-9
        )

    def test_fft_dense_matches_dft_matrix(self):
        n = 16
        tw = fft_twiddle(n)
        perm = bit_reversal_permutation(n)
        bf = ButterflyFactorization(tw, input_permutation=perm)
        dft = np.fft.fft(np.eye(n), axis=0)
        np.testing.assert_allclose(bf.to_dense(), dft, atol=1e-9)


class TestBackward:
    def test_grad_twiddle_matches_finite_difference(self, rng):
        tw = random_twiddle(8, seed=6)
        x = rng.standard_normal((4, 8))
        g = rng.standard_normal((4, 8))
        _, inputs = butterfly_multiply_with_intermediates(tw, x)
        grad_t, _ = butterfly_multiply_backward(tw, inputs, g)
        num = numeric_gradient(
            lambda t: float((butterfly_multiply(t, x) * g).sum()), tw
        )
        np.testing.assert_allclose(grad_t, num, atol=1e-5)

    def test_grad_x_matches_finite_difference(self, rng):
        tw = random_twiddle(8, seed=7)
        x = rng.standard_normal((3, 8))
        g = rng.standard_normal((3, 8))
        _, inputs = butterfly_multiply_with_intermediates(tw, x)
        _, grad_x = butterfly_multiply_backward(tw, inputs, g)
        num = numeric_gradient(
            lambda a: float((butterfly_multiply(tw, a) * g).sum()), x
        )
        np.testing.assert_allclose(grad_x, num, atol=1e-5)

    def test_backward_decreasing_stride(self, rng):
        tw = random_twiddle(8, seed=8)
        x = rng.standard_normal((2, 8))
        g = rng.standard_normal((2, 8))
        _, inputs = butterfly_multiply_with_intermediates(
            tw, x, increasing_stride=False
        )
        grad_t, _ = butterfly_multiply_backward(
            tw, inputs, g, increasing_stride=False
        )
        num = numeric_gradient(
            lambda t: float(
                (butterfly_multiply(t, x, increasing_stride=False) * g).sum()
            ),
            tw,
        )
        np.testing.assert_allclose(grad_t, num, atol=1e-5)


class TestFactorization:
    def test_factors_product_equals_dense(self):
        bf = ButterflyFactorization.random(16, seed=1)
        product = np.eye(16)
        for factor in bf.factors():
            product = factor @ product
        np.testing.assert_allclose(product, bf.to_dense(), atol=1e-12)

    def test_each_factor_has_2n_nonzeros(self):
        bf = ButterflyFactorization.random(32, seed=2)
        for factor in bf.factors():
            assert np.count_nonzero(factor) <= 2 * 32

    def test_factor_dense_invalid_stride(self):
        tw = random_twiddle(8)
        with pytest.raises(ValueError, match="stride"):
            butterfly_factor_dense(tw[0], 8)

    def test_param_count_property(self):
        bf = ButterflyFactorization.random(64)
        assert bf.param_count == butterfly_param_count(64)

    def test_input_permutation_applied(self, rng):
        perm = bit_reversal_permutation(16)
        bf = ButterflyFactorization(
            random_twiddle(16, seed=3), input_permutation=perm
        )
        x = rng.standard_normal(16)
        np.testing.assert_allclose(
            bf(x), butterfly_multiply(bf.twiddle, x[perm]), atol=1e-12
        )

    def test_to_dense_with_permutation(self, rng):
        perm = bit_reversal_permutation(8)
        bf = ButterflyFactorization(
            random_twiddle(8, seed=4), input_permutation=perm
        )
        x = rng.standard_normal(8)
        np.testing.assert_allclose(bf.to_dense() @ x, bf(x), atol=1e-12)

    def test_wrong_permutation_length(self):
        with pytest.raises(ValueError, match="permutation"):
            ButterflyFactorization(
                random_twiddle(8), input_permutation=np.arange(4)
            )
