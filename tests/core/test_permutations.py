"""Tests for bit-reversal / stride permutations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.permutations import (
    bit_reversal_permutation,
    compose_permutations,
    invert_permutation,
    is_permutation,
    permutation_matrix,
    stride_permutation,
)

pow2 = st.sampled_from([2, 4, 8, 16, 32, 64, 128])


class TestBitReversal:
    def test_small_case(self):
        np.testing.assert_array_equal(
            bit_reversal_permutation(8), [0, 4, 2, 6, 1, 5, 3, 7]
        )

    def test_identity_for_n2(self):
        np.testing.assert_array_equal(bit_reversal_permutation(2), [0, 1])

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            bit_reversal_permutation(12)

    @settings(max_examples=20, deadline=None)
    @given(pow2)
    def test_is_valid_permutation(self, n):
        assert is_permutation(bit_reversal_permutation(n))

    @settings(max_examples=20, deadline=None)
    @given(pow2)
    def test_is_involution(self, n):
        perm = bit_reversal_permutation(n)
        np.testing.assert_array_equal(perm[perm], np.arange(n))


class TestStride:
    def test_even_odd_separation(self):
        # stride 2 reads evens then odds.
        np.testing.assert_array_equal(
            stride_permutation(8, 2), [0, 2, 4, 6, 1, 3, 5, 7]
        )

    def test_stride_one_is_identity(self):
        np.testing.assert_array_equal(
            stride_permutation(8, 1), np.arange(8)
        )

    def test_stride_must_divide(self):
        with pytest.raises(ValueError, match="divide"):
            stride_permutation(8, 3)

    @settings(max_examples=20, deadline=None)
    @given(pow2, st.sampled_from([1, 2, 4]))
    def test_valid_permutation(self, n, stride):
        if n % stride:
            with pytest.raises(ValueError):
                stride_permutation(n, stride)
        else:
            assert is_permutation(stride_permutation(n, stride))


class TestMatrixAndComposition:
    def test_permutation_matrix_applies(self, rng):
        perm = rng.permutation(10)
        x = rng.standard_normal(10)
        np.testing.assert_allclose(permutation_matrix(perm) @ x, x[perm])

    def test_invert(self, rng):
        perm = rng.permutation(15)
        inv = invert_permutation(perm)
        x = rng.standard_normal(15)
        np.testing.assert_array_equal(x[perm][inv], x)

    def test_compose(self, rng):
        p = rng.permutation(12)
        q = rng.permutation(12)
        x = rng.standard_normal(12)
        np.testing.assert_array_equal(
            x[compose_permutations(p, q)], x[q][p]
        )

    def test_compose_length_mismatch(self):
        with pytest.raises(ValueError, match="equal length"):
            compose_permutations(np.arange(3), np.arange(4))

    def test_matrix_is_orthogonal(self, rng):
        perm = rng.permutation(9)
        mat = permutation_matrix(perm)
        np.testing.assert_allclose(mat @ mat.T, np.eye(9))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=1, max_value=30))
    def test_invert_property(self, n):
        rng = np.random.default_rng(n)
        perm = rng.permutation(n)
        inv = invert_permutation(perm)
        np.testing.assert_array_equal(perm[inv], np.arange(n))
        np.testing.assert_array_equal(inv[perm], np.arange(n))


class TestIsPermutation:
    def test_accepts_valid(self):
        assert is_permutation(np.array([2, 0, 1]))

    def test_rejects_repeats(self):
        assert not is_permutation(np.array([0, 0, 1]))

    def test_rejects_out_of_range(self):
        assert not is_permutation(np.array([0, 3]))

    def test_rejects_2d(self):
        assert not is_permutation(np.eye(3, dtype=int))
