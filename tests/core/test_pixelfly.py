"""Tests for pixelfly masks and block-sparse numerics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pixelfly import (
    block_butterfly_mask,
    block_sparse_multiply,
    block_sparse_multiply_backward,
    blocks_to_dense,
    flat_butterfly_mask,
    pixelfly_param_count,
    pixelfly_pattern,
)
from tests.conftest import numeric_gradient


class TestFlatMask:
    def test_support_is_xor_powers_of_two(self):
        n = 16
        mask = flat_butterfly_mask(n)
        idx = np.arange(n)
        diff = idx[:, None] ^ idx[None, :]
        expected = (diff == 0)
        for level in range(4):
            expected |= diff == (1 << level)
        np.testing.assert_array_equal(mask, expected)

    def test_symmetric(self):
        mask = flat_butterfly_mask(32)
        np.testing.assert_array_equal(mask, mask.T)

    def test_diagonal_always_set(self):
        assert flat_butterfly_mask(64).diagonal().all()

    def test_levels_zero_is_diagonal(self):
        np.testing.assert_array_equal(
            flat_butterfly_mask(8, n_levels=0), np.eye(8, dtype=bool)
        )

    def test_nnz_count(self):
        # diagonal + log2(n) bands of n entries each.
        n = 64
        assert flat_butterfly_mask(n).sum() == n * (1 + 6)

    def test_levels_monotone(self):
        prev = 0
        for levels in range(0, 6):
            count = flat_butterfly_mask(32, n_levels=levels).sum()
            assert count >= prev
            prev = count

    def test_invalid_levels(self):
        with pytest.raises(ValueError, match="n_levels"):
            flat_butterfly_mask(8, n_levels=9)


class TestBlockMask:
    def test_grid_shape(self):
        assert block_butterfly_mask(64, 8).shape == (8, 8)

    def test_block_size_exceeding_n(self):
        with pytest.raises(ValueError, match="exceeds"):
            block_butterfly_mask(16, 32)

    def test_full_butterfly_matches_flat_mask(self):
        nb = 16
        np.testing.assert_array_equal(
            block_butterfly_mask(64, 4),  # nb = 16, full butterfly
            flat_butterfly_mask(nb),
        )

    def test_butterfly_size_monotone_density(self):
        prev = 0
        for bf in [2, 4, 8, 16]:
            count = block_butterfly_mask(128, 8, butterfly_size=bf).sum()
            assert count >= prev
            prev = count

    def test_wrapping_strides_do_not_crash(self):
        # butterfly_size larger than the grid wraps modulo nb.
        mask = block_butterfly_mask(64, 16, butterfly_size=128)
        assert mask.shape == (4, 4)
        assert mask.diagonal().all()


class TestPattern:
    def test_param_counts(self):
        pat = pixelfly_pattern(1024, block_size=32, rank=96)
        # Table 4's exact pixelfly decode: 192 blocks of 32x32 + rank 96.
        assert pat.n_blocks == 192
        assert pat.sparse_params() == 196608
        assert pat.lowrank_params() == 196608
        assert pat.total_params() == 393216

    def test_param_count_helper(self):
        assert pixelfly_param_count(1024, 32, None, 96) == 393216

    def test_density(self):
        pat = pixelfly_pattern(64, block_size=8, rank=0)
        assert pat.density == pytest.approx(pat.nnz / 64**2)

    def test_negative_rank_rejected(self):
        with pytest.raises(ValueError, match="rank"):
            pixelfly_pattern(64, 8, rank=-1)

    def test_rows_cols_match_mask(self):
        pat = pixelfly_pattern(64, block_size=8)
        mask = np.zeros_like(pat.block_mask)
        mask[pat.block_rows, pat.block_cols] = True
        np.testing.assert_array_equal(mask, pat.block_mask)


class TestBlockSparseNumerics:
    def _setup(self, rng, n=64, bs=8, bf=None):
        pat = pixelfly_pattern(n, block_size=bs, butterfly_size=bf, rank=0)
        blocks = rng.standard_normal((pat.n_blocks, bs, bs))
        x = rng.standard_normal((5, n))
        return pat, blocks, x

    def test_matches_dense_scatter(self, rng):
        pat, blocks, x = self._setup(rng)
        dense = blocks_to_dense(blocks, pat)
        np.testing.assert_allclose(
            block_sparse_multiply(blocks, pat, x), x @ dense.T, atol=1e-10
        )

    def test_1d_input(self, rng):
        pat, blocks, _ = self._setup(rng)
        v = rng.standard_normal(64)
        out = block_sparse_multiply(blocks, pat, v)
        assert out.shape == (64,)

    def test_wrong_block_shape(self, rng):
        pat, blocks, x = self._setup(rng)
        with pytest.raises(ValueError, match="blocks"):
            block_sparse_multiply(blocks[:-1], pat, x)

    def test_wrong_feature_count(self, rng):
        pat, blocks, _ = self._setup(rng)
        with pytest.raises(ValueError, match="features"):
            block_sparse_multiply(blocks, pat, rng.standard_normal((2, 32)))

    def test_backward_blocks(self, rng):
        pat, blocks, x = self._setup(rng, n=16, bs=4)
        g = rng.standard_normal((5, 16))
        grad_b, _ = block_sparse_multiply_backward(blocks, pat, x, g)
        num = numeric_gradient(
            lambda b: float((block_sparse_multiply(b, pat, x) * g).sum()),
            blocks,
        )
        np.testing.assert_allclose(grad_b, num, atol=1e-5)

    def test_backward_x(self, rng):
        pat, blocks, x = self._setup(rng, n=16, bs=4)
        g = rng.standard_normal((5, 16))
        _, grad_x = block_sparse_multiply_backward(blocks, pat, x, g)
        num = numeric_gradient(
            lambda a: float((block_sparse_multiply(blocks, pat, a) * g).sum()),
            x,
        )
        np.testing.assert_allclose(grad_x, num, atol=1e-5)

    @settings(max_examples=20, deadline=None)
    @given(
        st.sampled_from([16, 32, 64]),
        st.sampled_from([4, 8]),
        st.integers(0, 2**31 - 1),
    )
    def test_property_matches_dense(self, n, bs, seed):
        rng = np.random.default_rng(seed)
        pat = pixelfly_pattern(n, block_size=bs, rank=0)
        blocks = rng.standard_normal((pat.n_blocks, bs, bs))
        x = rng.standard_normal((2, n))
        np.testing.assert_allclose(
            block_sparse_multiply(blocks, pat, x),
            x @ blocks_to_dense(blocks, pat).T,
            atol=1e-9,
        )

    def test_dense_expansion_respects_mask(self, rng):
        pat, blocks, _ = self._setup(rng)
        dense = blocks_to_dense(blocks, pat)
        bs = pat.block_size
        nb = pat.n // bs
        grid = dense.reshape(nb, bs, nb, bs)
        for i in range(nb):
            for j in range(nb):
                if not pat.block_mask[i, j]:
                    assert not grid[i, :, j, :].any()
