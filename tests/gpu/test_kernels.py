"""Tests for GPU kernel cost models."""

import pytest

from repro.gpu.kernels import (
    cublas_fp32_cost,
    cublas_tf32_cost,
    naive_matmul_cost,
    occupancy,
    pytorch_matmul_cost,
    shmem_matmul_cost,
    stream_cost,
    tile_quantisation,
)
from repro.gpu.machine import A30


class TestQuantisation:
    def test_aligned_is_one(self):
        assert tile_quantisation(256, 128, (128, 64)) == 1.0

    def test_misaligned_below_one(self):
        assert tile_quantisation(129, 64, (128, 64)) < 0.6

    def test_tiny_dims_waste_tiles(self):
        assert tile_quantisation(8, 8, (128, 64)) == pytest.approx(
            64 / (128 * 64)
        )


class TestOccupancy:
    def test_large_grid_full(self):
        assert occupancy(4096, 4096, (128, 64), A30) == 1.0

    def test_small_grid_partial(self):
        occ = occupancy(16, 16, (128, 64), A30)
        assert 0 < occ < 1.0

    def test_split_k_recovers_some(self):
        # One CTA with split-k 8 beats 1/112 raw occupancy.
        occ = occupancy(64, 32, (128, 64), A30)
        assert occ >= 8 / (A30.sm_count * A30.ctas_per_sm_for_peak)


class TestKernelHierarchy:
    def test_table2_ordering_naive_shmem_cublas(self):
        n = 2048
        naive = naive_matmul_cost(A30, n, n, n).gflops
        shmem = shmem_matmul_cost(A30, n, n, n).gflops
        cublas = cublas_fp32_cost(A30, n, n, n).gflops
        tf32 = cublas_tf32_cost(A30, n, n, n).gflops
        assert naive < shmem < cublas < tf32

    def test_cublas_near_datasheet_peak(self):
        gflops = cublas_fp32_cost(A30, 4096, 4096, 4096).gflops
        # Paper Table 2: 9722 GFLOPS.
        assert 9000 < gflops < 10300

    def test_tf32_near_paper_value(self):
        gflops = cublas_tf32_cost(A30, 4096, 4096, 4096).gflops
        # Paper Table 2: 59312 GFLOPS.
        assert 50000 < gflops < 70000

    def test_naive_near_paper_value(self):
        gflops = naive_matmul_cost(A30, 4096, 4096, 4096).gflops
        # Paper Table 2: 1091 GFLOPS.
        assert 500 < gflops < 2000

    def test_pytorch_adds_overhead(self):
        base = cublas_fp32_cost(A30, 64, 64, 64).time_s
        torch = pytorch_matmul_cost(A30, 64, 64, 64, tensor_cores=False).time_s
        assert torch > base

    def test_launch_floor(self):
        cost = cublas_fp32_cost(A30, 2, 2, 2)
        assert cost.time_s >= A30.kernel_launch_s

    def test_tf32_k_quantisation(self):
        aligned = cublas_tf32_cost(A30, 1024, 1024, 1024)
        thin_k = cublas_tf32_cost(A30, 1024, 1024, 4)
        # Same quantisation in m,n but k=4 cannot fill the MMA depth.
        assert thin_k.gflops < 0.6 * aligned.gflops


class TestSkewBehaviour:
    def test_fp32_collapses_at_extreme_skew(self):
        square = cublas_fp32_cost(A30, 2048, 2048, 2048).gflops
        skewed = cublas_fp32_cost(A30, 524288, 8, 2048).gflops
        assert skewed < 0.3 * square

    def test_tf32_degrades_faster_than_fp32(self):
        # Paper Section 3.4: "TC performance degrades faster than GPU
        # performance without TC for skewed matrices."
        m, n, k = 32768, 128, 2048
        fp32_ratio = (
            cublas_fp32_cost(A30, m, n, k).gflops
            / cublas_fp32_cost(A30, 2048, 2048, 2048).gflops
        )
        tf32_ratio = (
            cublas_tf32_cost(A30, m, n, k).gflops
            / cublas_tf32_cost(A30, 2048, 2048, 2048).gflops
        )
        assert tf32_ratio < fp32_ratio


class TestStream:
    def test_bandwidth_bound(self):
        nbytes = 1 << 28
        cost = stream_cost(A30, nbytes)
        expected = A30.kernel_launch_s + nbytes / A30.effective_bandwidth
        assert cost.time_s == pytest.approx(expected)

    def test_passes_scale_traffic(self):
        one = stream_cost(A30, 1 << 24, passes=1.0).time_s
        four = stream_cost(A30, 1 << 24, passes=4.0).time_s
        assert four > 2 * one
